#!/usr/bin/env bash
# Unwrap audit lint (DESIGN.md "Task-graph stepping" / ISSUE 9): the
# simulation layer's step and recovery paths return typed errors
# (`GuardError`, `SnapshotError`, `CheckpointError`, `ComputeError`) — a
# bare `unwrap()`/`expect(` in production code is either a latent panic on
# a path that should degrade loudly-but-typed, or it is provably
# infallible and must say why. Every such call in `crates/sim/src` must
# carry a `// unwrap-ok:` justification on the same line or within the six
# preceding lines, so a new unwrap cannot land without an argument.
#
# Scope: production code only. Scanning stops at the `#[cfg(test)]` module
# marker — tests unwrap freely, that is what they are for. Doc-comment
# lines (`///`, `//!`) are skipped: example code in docs is rendered, not
# executed on the step path (doctests still run it under the test harness).
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
for file in crates/sim/src/*.rs; do
    out=$(awk '
        /^#\[cfg\(test\)\]/ { exit }
        {
            hist[NR] = $0
            line = $0
            # Strip doc comments and trailing line comments so the match
            # only fires on executable code.
            sub(/^[[:space:]]*\/\/.*/, "", line)
            sub(/\/\/.*/, "", line)
            if (line ~ /\.unwrap\(\)/ || line ~ /\.expect\(/) {
                ok = 0
                for (i = NR; i >= NR - 6 && i > 0; i--)
                    if (hist[i] ~ /\/\/ unwrap-ok/) ok = 1
                if (!ok) printf "%s:%d: unwrap()/expect() without an unwrap-ok justification\n", FILENAME, NR
            }
        }
    ' "$file")
    if [[ -n "$out" ]]; then
        echo "$out" >&2
        status=1
    fi
done

if [[ $status -ne 0 ]]; then
    echo "unwrap_lint: convert to a typed error (GuardError/SnapshotError/...) or add \`// unwrap-ok: <why>\` (same line or the 6 above)" >&2
    exit $status
fi
echo "unwrap_lint: all unwrap()/expect() sites in crates/sim/src are typed or justified"
