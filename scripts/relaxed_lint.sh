#!/usr/bin/env bash
# Memory-ordering audit lint (DESIGN.md "Determinism & memory-ordering
# audit"): every `Ordering::Relaxed` in the audited concurrency cores must
# carry a `// relaxed-ok:` justification — on the same line or within the
# four preceding lines. Unjustified sites fail CI, so a new relaxed access
# cannot land without an argument for why the weakest ordering is enough.
#
# Scope: production code only. Scanning stops at the `#[cfg(test)]` module
# marker — test fixtures may use relaxed atomics freely (e.g. to model the
# very store orders the DetPar adversarial schedule is designed to catch).
set -euo pipefail

cd "$(dirname "$0")/.."

AUDITED=(
    crates/octree/src/tree.rs
    crates/octree/src/multipole.rs
    crates/octree/src/incremental.rs
    crates/stdpar/src/backend.rs
    crates/stdpar/src/detpar.rs
    crates/stdpar/src/taskgraph.rs
    crates/sim/src/dag.rs
)

status=0
for file in "${AUDITED[@]}"; do
    if [[ ! -f "$file" ]]; then
        echo "relaxed_lint: audited file missing: $file" >&2
        status=1
        continue
    fi
    # Two justification forms:
    #   `// relaxed-ok: <why>`          — covers the same line and the next
    #                                     few (6-line window, so a wrapped
    #                                     comment paragraph still reaches);
    #   `// relaxed-ok (<scope>): <why>` — block form, covers every Relaxed
    #                                     until the end of the enclosing
    #                                     method (a `}` at indent ≤ 4).
    out=$(awk '
        /^#\[cfg\(test\)\]/ { exit }
        {
            hist[NR] = $0
            if ($0 ~ /\/\/ relaxed-ok \(/) block = 1
            if ($0 ~ /^    }/ || $0 ~ /^}/) block = 0
            if ($0 ~ /Ordering::Relaxed/) {
                ok = block
                for (i = NR; i >= NR - 6 && i > 0; i--)
                    if (hist[i] ~ /\/\/ relaxed-ok/) ok = 1
                if (!ok) printf "%s:%d: Ordering::Relaxed without a relaxed-ok justification\n", FILENAME, NR
            }
        }
    ' "$file")
    if [[ -n "$out" ]]; then
        echo "$out" >&2
        status=1
    fi
done

if [[ $status -ne 0 ]]; then
    echo "relaxed_lint: add a \`// relaxed-ok: <why>\` comment (same line or the 6 above) or strengthen the ordering" >&2
    exit $status
fi
echo "relaxed_lint: all Ordering::Relaxed sites justified"
