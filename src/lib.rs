//! # stdpar-nbody
//!
//! Rust reproduction of *"Efficient Tree-based Parallel Algorithms for
//! N-Body Simulations Using C++ Standard Parallelism"* (SC 2024).
//!
//! This façade crate re-exports the whole workspace so examples, tests and
//! downstream users need a single dependency:
//!
//! * [`math`] — vectors, bounding boxes, Hilbert/Morton curves, atomics;
//! * [`stdpar`] — the ISO-C++-style parallel algorithm layer with
//!   `Seq` / `Par` / `ParUnseq` execution policies;
//! * [`progress`] — the forward-progress (ITS vs. legacy SIMT) scheduler
//!   simulator;
//! * [`octree`] — the Concurrent Octree strategy (paper §IV-A);
//! * [`bvh`] — the Hilbert-sorted BVH strategy (paper §IV-B);
//! * [`sim`] — workloads, integration loop, all-pairs baselines,
//!   diagnostics (paper §III, §V);
//! * [`telemetry`] — zero-steady-state-allocation step-level metrics
//!   (DESIGN.md § Observability), enabled by the default `telemetry`
//!   feature.
//!
//! ## Quickstart
//!
//! ```
//! use stdpar_nbody::prelude::*;
//!
//! // Two colliding galaxies, 1000 bodies, deterministic seed.
//! let state = galaxy_collision(1_000, 42);
//! let mut sim = Simulation::new(state, SolverKind::Octree, SimOptions {
//!     dt: 1e-3,
//!     theta: 0.5,
//!     ..SimOptions::default()
//! })
//! .expect("octree supports the default `par` policy");
//! sim.step();
//! assert!(sim.state().positions.iter().all(|p| p.is_finite()));
//! ```

pub use bh_bvh as bvh;
pub use bh_tsne as tsne;
pub use bh_octree as octree;
pub use bh_quadtree as quadtree;
pub use nbody_math as math;
pub use nbody_resilience as resilience;
pub use nbody_server as server;
pub use nbody_sim as sim;
pub use nbody_telemetry as telemetry;
pub use progress_sim as progress;
pub use stdpar;

/// Everything a typical simulation driver needs.
pub mod prelude {
    pub use crate::math::{Aabb, ForceEval, ForceKernel, KernelPrecision, TreeLifecycle, Vec3};
    pub use crate::sim::diagnostics::{l2_error, Diagnostics};
    pub use crate::sim::solver::{ForceSolver, SolverKind};
    pub use crate::sim::system::SystemState;
    pub use crate::sim::workload::{
        galaxy_collision, plummer, solar_system, spinning_disk, uniform_cube, WorkloadSpec,
    };
    pub use crate::sim::{
        resume_state_from_disk, GuardConfig, GuardError, GuardStats, GuardedSimulation,
        HealthConfig, HealthMonitor, HealthVerdict, SimOptions, SimWorkspace, Simulation,
        StepAllocs, StepTimings, Stepping,
    };
    pub use crate::stdpar::policy::{DynPolicy, Par, ParUnseq, Seq};
}
