//! Barnes-Hut beyond gravity: the repulsion field of a 2-D embedding
//! (the t-SNE use case motivating the paper's introduction and related
//! work, van der Maaten's Barnes-Hut-SNE).
//!
//! A toy force-directed layout: clustered 2-D points (z = 0 plane — the
//! octree degenerates gracefully into a quadtree) repel each other through
//! the Barnes-Hut field while a weak spring pulls each point toward its
//! cluster centroid. After a few dozen iterations the clusters separate
//! cleanly — measured by the ratio of inter- to intra-cluster distance.
//!
//!     cargo run --release --example tsne_layout

use stdpar_nbody::math::{Aabb, ForceParams, SplitMix64, Vec3};
use stdpar_nbody::octree::Octree;
use stdpar_nbody::prelude::*;

const CLUSTERS: usize = 4;
const PER_CLUSTER: usize = 250;

fn main() {
    let n = CLUSTERS * PER_CLUSTER;
    let mut rng = SplitMix64::new(99);

    // Initial embedding: all clusters overlap near the origin.
    let mut pos: Vec<Vec3> = (0..n)
        .map(|_| Vec3::new(rng.normal() * 0.1, rng.normal() * 0.1, 0.0))
        .collect();
    let labels: Vec<usize> = (0..n).map(|i| i / PER_CLUSTER).collect();
    let weights = vec![1.0; n];

    let mut tree = Octree::new();
    let params = ForceParams { theta: 0.7, softening: 0.05, g: 1.0, ..ForceParams::default() };

    let quality = |pos: &[Vec3]| -> f64 {
        // Mean distance to own centroid vs mean distance between centroids.
        let mut centroids = vec![Vec3::ZERO; CLUSTERS];
        for (p, &l) in pos.iter().zip(&labels) {
            centroids[l] += *p;
        }
        for c in &mut centroids {
            *c /= PER_CLUSTER as f64;
        }
        let intra: f64 = pos
            .iter()
            .zip(&labels)
            .map(|(p, &l)| p.distance(centroids[l]))
            .sum::<f64>()
            / n as f64;
        let mut inter = 0.0;
        let mut pairs = 0.0;
        for a in 0..CLUSTERS {
            for b in (a + 1)..CLUSTERS {
                inter += centroids[a].distance(centroids[b]);
                pairs += 1.0;
            }
        }
        (inter / pairs) / intra
    };

    println!("initial separation quality: {:.2}", quality(&pos));
    for iter in 0..60 {
        // Repulsion = negative gravity via the Barnes-Hut field.
        tree.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        tree.compute_multipoles(Par, &pos, &weights);
        let mut repulsion = vec![Vec3::ZERO; n];
        tree.compute_forces(ParUnseq, &pos, &weights, &mut repulsion, &params);

        // Attraction: spring to the (moving) cluster centroid.
        let mut centroids = vec![Vec3::ZERO; CLUSTERS];
        for (p, &l) in pos.iter().zip(&labels) {
            centroids[l] += *p;
        }
        for c in &mut centroids {
            *c /= PER_CLUSTER as f64;
        }

        let step = 0.02;
        for i in 0..n {
            let attract = (centroids[labels[i]] - pos[i]) * 4.0;
            let mut delta = (attract - repulsion[i]) * step;
            delta.z = 0.0; // stay in the embedding plane
            pos[i] += delta;
        }
        if (iter + 1) % 20 == 0 {
            println!("iter {:>3}: separation quality {:.2}", iter + 1, quality(&pos));
        }
    }

    let q = quality(&pos);
    println!("final separation quality: {q:.2} (>2 means clusters are well separated)");
    assert!(q > 2.0, "layout failed to separate clusters: {q}");
    assert!(pos.iter().all(|p| p.z == 0.0), "embedding must stay planar");
}
