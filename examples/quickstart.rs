//! Quickstart: simulate a small galaxy collision with the Concurrent
//! Octree and watch the conserved quantities.
//!
//!     cargo run --release --example quickstart
//!     cargo run --release --example quickstart -- 20000 bvh

use stdpar_nbody::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let kind = match args.next().as_deref() {
        Some("bvh") => SolverKind::Bvh,
        Some("all-pairs") => SolverKind::AllPairs,
        Some("all-pairs-col") => SolverKind::AllPairsCol,
        _ => SolverKind::Octree,
    };

    println!("galaxy collision: {n} bodies, solver = {}", kind.name());
    let state = galaxy_collision(n, 42);
    let before = Diagnostics::measure(&state, 1.0, 1e-3);
    println!(
        "t=0      E = {:+.6}  K = {:.6}  |p| = {:.2e}  M = {:.6}",
        before.total_energy, before.kinetic_energy, before.momentum.norm(), before.total_mass
    );

    let opts = SimOptions { dt: 1e-3, theta: 0.5, softening: 1e-3, ..SimOptions::default() };
    let mut sim = Simulation::new(state, kind, opts).expect("solver supports the default policy");

    // One scratch arena for the whole run: after the first few steps warm
    // its buffers, stepping performs zero heap allocations (DESIGN.md
    // § Memory management). `sim.step()` would do the same with a
    // simulation-owned arena.
    let mut ws = SimWorkspace::new();
    for chunk in 0..5 {
        let mut timings = StepTimings::default();
        for _ in 0..20 {
            timings.accumulate(&sim.step_into(&mut ws));
        }
        let d = Diagnostics::measure(sim.state(), 1.0, 1e-3);
        println!(
            "t={:.3}  E = {:+.6}  K = {:.6}  |p| = {:.2e}  (step {:?}: force {:.1?}, build {:.1?})",
            sim.time(),
            d.total_energy,
            d.kinetic_energy,
            d.momentum.norm(),
            20 * (chunk + 1),
            timings.force / 20,
            (timings.build + timings.sort + timings.multipole) / 20,
        );
    }

    let after = Diagnostics::measure(sim.state(), 1.0, 1e-3);
    let drift = ((after.total_energy - before.total_energy) / before.total_energy).abs();
    println!("relative energy drift over {} steps: {drift:.3e}", sim.steps_done());
    assert!(sim.state().is_valid(), "state must remain finite");
}
