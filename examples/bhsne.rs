//! Barnes-Hut-SNE end to end (the paper's §I/§VI machine-learning
//! motivation): embed clustered high-dimensional data into 2-D using the
//! concurrent octree for the repulsive term.
//!
//!     cargo run --release --example bhsne

use stdpar_nbody::math::SplitMix64;
use stdpar_nbody::tsne::{SparseAffinities, Tsne, TsneConfig};

fn main() {
    // Five 16-dimensional Gaussian clusters, 80 points each.
    let clusters = 5;
    let per = 80;
    let dim = 16;
    let mut rng = SplitMix64::new(2024);
    let mut data = Vec::with_capacity(clusters * per * dim);
    for c in 0..clusters {
        // Cluster centres on the corners of a simplex-ish arrangement.
        let center: Vec<f64> = (0..dim).map(|d| if d % clusters == c { 10.0 } else { 0.0 }).collect();
        for _ in 0..per {
            for cd in &center {
                data.push(cd + rng.normal() * 0.5);
            }
        }
    }

    println!("embedding {} points of dim {dim} (perplexity 25, theta 0.5)…", clusters * per);
    let cfg = TsneConfig { perplexity: 25.0, iters: 400, ..TsneConfig::default() };
    let p: SparseAffinities =
        stdpar_nbody::tsne::affinity::gaussian_affinities(&data, dim, cfg.perplexity);
    let t0 = std::time::Instant::now();
    let emb = Tsne::new(cfg).run_with_affinities(&p);
    println!("done in {:.2}s, KL = {:.3}", t0.elapsed().as_secs_f64(), Tsne::kl_divergence(&p, &emb));

    // Report per-cluster centroids and the worst pairwise separation ratio.
    let centroid = |g: &[[f64; 2]]| {
        let n = g.len() as f64;
        [g.iter().map(|p| p[0]).sum::<f64>() / n, g.iter().map(|p| p[1]).sum::<f64>() / n]
    };
    let mut intra_max: f64 = 0.0;
    let mut cents = vec![];
    for c in 0..clusters {
        let g = &emb[c * per..(c + 1) * per];
        let ctr = centroid(g);
        let spread = g
            .iter()
            .map(|p| ((p[0] - ctr[0]).powi(2) + (p[1] - ctr[1]).powi(2)).sqrt())
            .sum::<f64>()
            / per as f64;
        println!("cluster {c}: centroid ({:+7.2}, {:+7.2}), mean spread {spread:.2}", ctr[0], ctr[1]);
        intra_max = intra_max.max(spread);
        cents.push(ctr);
    }
    let mut inter_min = f64::INFINITY;
    for a in 0..clusters {
        for b in (a + 1)..clusters {
            let d = ((cents[a][0] - cents[b][0]).powi(2) + (cents[a][1] - cents[b][1]).powi(2)).sqrt();
            inter_min = inter_min.min(d);
        }
    }
    println!("worst separation ratio (min inter / max intra): {:.2}", inter_min / intra_max);
    assert!(inter_min > 1.5 * intra_max, "clusters failed to separate");
}
