//! The paper's validation experiment at example scale: a synthetic
//! solar-system ensemble (the stand-in for NASA's JPL Small-Body Database)
//! integrated for one full day with a one-hour timestep, cross-validating
//! the Octree and BVH solvers against the exact all-pairs field and
//! reporting the L2 error norm of the final positions (paper §V-A).
//!
//!     cargo run --release --example solar_system -- 5000

use nbody_math::{DAY, G_SI};
use stdpar_nbody::prelude::*;
use stdpar_nbody::sim::diagnostics::l2_error_relative;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3_000);
    let steps = 24; // one hour per step, one day total
    println!("synthetic solar system: 1 sun + {n} small bodies, {steps} x 1h steps");

    let initial = solar_system(n, 7);
    let base = SimOptions {
        dt: DAY / steps as f64,
        softening: 0.0,
        g: G_SI,
        policy: DynPolicy::Par,
        ..SimOptions::default()
    };

    // Exact reference (θ = 0 disables the multipole approximation).
    let mut exact = Simulation::new(
        initial.clone(),
        SolverKind::AllPairs,
        SimOptions { theta: 0.0, ..base },
    )
    .unwrap();
    exact.run(steps);
    let exact_state = exact.into_state();

    for kind in [SolverKind::Octree, SolverKind::Bvh] {
        for theta in [0.2, 0.5] {
            let mut sim =
                Simulation::new(initial.clone(), kind, SimOptions { theta, ..base }).unwrap();
            let t0 = std::time::Instant::now();
            sim.run(steps);
            let secs = t0.elapsed().as_secs_f64();
            let err = l2_error_relative(&sim.state().positions, &exact_state.positions);
            println!(
                "{:>7} θ={theta}: relative L2 error vs exact = {err:.3e}   ({secs:.2}s)",
                kind.name()
            );
            assert!(err < 1e-4, "{} at θ={theta} drifted too far: {err}", kind.name());
        }
    }
    println!();
    println!("paper: 'The L2 error norm of the final body positions among all three");
    println!("implementations is below 10^-6' — the θ=0.2 rows reproduce that regime.");
}
