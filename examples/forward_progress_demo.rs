//! Demonstration of the paper's forward-progress result (§II, §V-B):
//! the lock-based Concurrent Octree build needs *parallel* forward
//! progress (NVIDIA Independent Thread Scheduling); the wait-free
//! BVH/multipole pipeline runs under plain lockstep SIMT too.
//!
//!     cargo run --release --example forward_progress_demo

use stdpar_nbody::progress::reduce::reduction;
use stdpar_nbody::progress::scheduler::{run_its, run_lockstep, Outcome};
use stdpar_nbody::progress::tree_insert::contended_insertion;

fn report(name: &str, outcome: Outcome) {
    match outcome {
        Outcome::Completed { steps } => println!("  {name:<42} completed in {steps} steps"),
        Outcome::Livelock { steps } => println!("  {name:<42} LIVELOCKED after {steps} steps"),
    }
}

fn main() {
    let threads = 32;
    let budget = 1_000_000;

    println!("virtual GPU, {threads} threads, warp width 32, step budget {budget}:");
    println!();
    println!("Independent Thread Scheduling (Volta and newer — supports `par`):");
    report("octree build (lock-based, starvation-free)", run_its(contended_insertion(threads, 0.5), budget));
    report("multipole reduction (wait-free)", run_its(reduction(threads).0, budget));

    println!();
    println!("Legacy lockstep SIMT (only weakly parallel progress — `par_unseq` only):");
    report(
        "octree build (lock-based, starvation-free)",
        run_lockstep(contended_insertion(threads, 0.5), 32, budget),
    );
    report("multipole reduction (wait-free)", run_lockstep(reduction(threads).0, 32, budget));

    println!();
    println!("This is why the paper's Octree runs only on CPUs and ITS-capable NVIDIA");
    println!("GPUs, while the Hilbert BVH — whose phases are all wait-free — runs on");
    println!("every evaluated device. In this Rust reproduction the same contract is");
    println!("enforced at compile time: `Octree::build` requires a policy implementing");
    println!("`stdpar::policy::ParallelForwardProgress`, which `ParUnseq` does not.");
}
