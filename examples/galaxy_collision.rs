//! The paper's benchmark scenario end-to-end: a deterministic collision of
//! two neighbouring galaxies, run with both tree strategies side by side,
//! reporting per-phase timings (the data behind Figs. 5–8) and
//! cross-checking that the two trees agree on the dynamics.
//!
//!     cargo run --release --example galaxy_collision -- --n=30000 --steps=40
//!
//! Pass `--csv=out.csv` to dump body positions after the run (x,y,z per
//! line) for external plotting.

use std::io::Write;
use stdpar_nbody::prelude::*;
use stdpar_nbody::sim::diagnostics::l2_error_relative;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).and_then(|v| v.parse().ok()))
        .unwrap_or(default)
}

fn main() {
    let n: usize = arg("n", 30_000);
    let steps: usize = arg("steps", 40);
    println!("two-galaxy collision, {n} bodies, {steps} steps, theta = 0.5");

    let initial = galaxy_collision(n, 2024);
    let opts = SimOptions { dt: 2e-3, theta: 0.5, softening: 5e-3, ..SimOptions::default() };

    let mut results = vec![];
    for kind in [SolverKind::Octree, SolverKind::Bvh] {
        let mut sim = Simulation::new(initial.clone(), kind, opts).unwrap();
        let start = std::time::Instant::now();
        let t = sim.run(steps);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:>7}: {:6.2}s total | per-step: bbox {:>9.3?} sort {:>9.3?} build {:>9.3?} \
             multipole {:>9.3?} force {:>9.3?} update {:>9.3?}",
            sim.solver().name(),
            secs,
            t.bbox / steps as u32,
            t.sort / steps as u32,
            t.build / steps as u32,
            t.multipole / steps as u32,
            t.force / steps as u32,
            t.update / steps as u32,
        );
        results.push((kind, sim.into_state()));
    }

    let (_, ref octree_state) = results[0];
    let (_, ref bvh_state) = results[1];
    let disagreement = l2_error_relative(&bvh_state.positions, &octree_state.positions);
    println!("octree vs bvh relative L2 position difference: {disagreement:.3e}");
    assert!(disagreement < 0.05, "tree strategies diverged: {disagreement}");

    // Collision progress: the two galaxy cores should have moved toward
    // each other compared with the initial separation.
    let core = |s: &SystemState, half: bool| -> Vec3 {
        let (lo, hi) = if half { (0, n / 2) } else { (n / 2, n) };
        s.positions[lo..hi].iter().fold(Vec3::ZERO, |a, &p| a + p) / (hi - lo) as f64
    };
    let sep0 = (core(&initial, true) - core(&initial, false)).norm();
    let sep1 = (core(octree_state, true) - core(octree_state, false)).norm();
    println!("core separation: {sep0:.3} -> {sep1:.3} (the galaxies are falling together)");

    if let Some(path) = std::env::args().find_map(|a| a.strip_prefix("--csv=").map(String::from)) {
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "x,y,z").unwrap();
        for p in &octree_state.positions {
            writeln!(f, "{},{},{}", p.x, p.y, p.z).unwrap();
        }
        println!("wrote {} positions to {path}", octree_state.positions.len());
    }
}
