//! Demonstration of the fault-tolerant pipeline: a chaos run with a
//! deterministic, seeded fault injector.
//!
//! ```bash
//! cargo run --release --example fault_injection            # default seed
//! cargo run --release --example fault_injection -- 99      # another seed
//! ```
//!
//! Each step the injector may fire a stuck lock, allocator exhaustion, or
//! a NaN-poisoned input state; the `ResilientSolver` detects every fault,
//! retries, and (only if the retry also fails) degrades down the
//! Octree → BVH → All-Pairs chain. Same seed ⇒ same recovery history.

use stdpar_nbody::prelude::*;
use stdpar_nbody::resilience::{FaultInjector, FaultKind};
use stdpar_nbody::sim::solver::SolverParams;
use stdpar_nbody::sim::{ResilientSolver, SnapshotError};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2024);
    let state = galaxy_collision(2_000, 42);
    println!("chaos run: N={}, injector seed={seed}", state.len());

    let mut solver = ResilientSolver::new(SolverParams { softening: 1e-3, ..Default::default() })
        .with_injector(
            FaultInjector::new(seed)
                .with_rate(FaultKind::StuckLock, 0.2)
                .with_rate(FaultKind::AllocExhaustion, 0.2)
                .with_rate(FaultKind::NanPositions, 0.2)
                .with_rate(FaultKind::SlowWorker, 0.2),
        );

    let mut accel = vec![Vec3::ZERO; state.len()];
    for step in 0..12 {
        solver.try_compute(&state, &mut accel, false).expect("resilient step");
        assert!(accel.iter().all(|a| a.is_finite()));
        println!("  step {step:2}: served by {:?}", solver.last_kind());
    }
    println!("{}", solver.counters());

    // Strict snapshot loading: a truncated file is a typed error, not
    // garbage state.
    let mut buf = Vec::new();
    stdpar_nbody::sim::io::write_binary(&state, &mut buf).unwrap();
    buf.truncate(buf.len() / 2);
    match stdpar_nbody::sim::io::try_read_binary(&buf[..]) {
        Err(e @ SnapshotError::Truncated { .. }) => println!("snapshot guard: {e}"),
        other => panic!("expected Truncated, got {other:?}"),
    }
}
