//! # bh-quadtree — the Concurrent *Quadtree* (paper Fig. 1, in 2-D)
//!
//! The paper presents its data structure as a quadtree ("Figure 1 shows
//! the graph and in-memory representation of the quadtree data structure;
//! the octree uses a similar representation") and its flagship non-gravity
//! application — Barnes-Hut-SNE — lives in 2-D. This crate is the exact
//! 2-D instantiation of the Concurrent Octree algorithms:
//!
//! * one tagged atomic child offset per node, **four** children in Morton
//!   order per sibling group, one parent offset per group;
//! * the same starvation-free BUILDTREE (lock bit + critical-section
//!   sub-division; requires [`stdpar::policy::ParallelForwardProgress`]);
//! * the same wait-free arrival-counter multipole reduction;
//! * the same stackless DFS with a generic visitor ([`Quadtree::traverse`])
//!   and a 2-D gravity kernel ([`Quadtree::compute_forces`]).
//!
//! ```
//! use bh_quadtree::Quadtree;
//! use nbody_math::vec2::{Rect, Vec2};
//! use stdpar::prelude::*;
//!
//! let pos = vec![Vec2::new(0.1, 0.2), Vec2::new(0.9, 0.7), Vec2::new(0.4, 0.5)];
//! let mass = vec![1.0; 3];
//! let mut tree = Quadtree::new();
//! tree.build(Par, &pos, Rect::from_points(&pos)).unwrap();
//! tree.compute_multipoles(Par, &pos, &mass);
//! let mut acc = vec![Vec2::ZERO; 3];
//! tree.compute_forces(ParUnseq, &pos, &mass, &mut acc, 0.5, 1e-3);
//! assert!(acc.iter().all(|a| a.is_finite()));
//! ```

use nbody_math::vec2::{Rect, Vec2};
use nbody_math::AtomicF64;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use stdpar::prelude::*;

/// Children per node.
pub const CHILDREN: u32 = 4;
/// First child-group offset (root = 0; 1..4 reserved padding).
pub const FIRST_GROUP: u32 = 4;
/// Maximum descent depth before co-located chaining.
pub const MAX_DEPTH: u32 = 96;
const EMPTY: u32 = 0;
const LOCKED: u32 = 1;
const BODY_BIT: u32 = 0x8000_0000;
const CHAIN_END: u32 = u32::MAX;

/// Decoded child-slot state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    Empty,
    Locked,
    Body(u32),
    Node(u32),
}

#[inline]
const fn decode(tag: u32) -> Slot {
    if tag == EMPTY {
        Slot::Empty
    } else if tag == LOCKED {
        Slot::Locked
    } else if tag & BODY_BIT != 0 {
        Slot::Body(tag & !BODY_BIT)
    } else {
        Slot::Node(tag)
    }
}

/// Build failure (mirrors `bh_octree::BuildError`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    PoolExhausted { requested_nodes: u32 },
    TooManyBodies { n: usize },
    InvalidPositions,
}

/// A far node accepted by the acceptance criterion during
/// [`Quadtree::traverse`].
#[derive(Clone, Copy, Debug)]
pub struct NodeView {
    pub index: u32,
    pub mass: f64,
    pub com: Vec2,
    pub width: f64,
}

/// The concurrent quadtree.
pub struct Quadtree {
    child: Vec<AtomicU32>,
    parent: Vec<AtomicU32>,
    bump: AtomicU32,
    next_colocated: Vec<AtomicU32>,
    root_center: Vec2,
    root_edge: f64,
    node_mass: Vec<AtomicF64>,
    node_com: [Vec<AtomicF64>; 2],
    arrivals: Vec<AtomicU32>,
    n_bodies: usize,
}

impl Default for Quadtree {
    fn default() -> Self {
        Self::new()
    }
}

impl Quadtree {
    pub fn new() -> Self {
        Self::with_node_capacity(1024)
    }

    pub fn with_node_capacity(nodes: usize) -> Self {
        let nodes = pool_size_for(nodes as u32);
        Quadtree {
            child: make_atomic(nodes as usize, EMPTY),
            parent: make_atomic(
                (nodes as usize).saturating_sub(FIRST_GROUP as usize) / CHILDREN as usize,
                0,
            ),
            bump: AtomicU32::new(FIRST_GROUP),
            next_colocated: Vec::new(),
            root_center: Vec2::ZERO,
            root_edge: 0.0,
            node_mass: Vec::new(),
            node_com: [Vec::new(), Vec::new()],
            arrivals: Vec::new(),
            n_bodies: 0,
        }
    }

    #[inline]
    pub fn n_bodies(&self) -> usize {
        self.n_bodies
    }

    #[inline]
    pub fn allocated_nodes(&self) -> u32 {
        self.bump.load(Ordering::Relaxed).min(self.child.len() as u32)
    }

    #[inline]
    pub fn root_edge(&self) -> f64 {
        self.root_edge
    }

    #[inline]
    pub fn slot(&self, i: u32) -> Slot {
        decode(self.child[i as usize].load(Ordering::Acquire))
    }

    #[inline]
    pub fn parent_of(&self, i: u32) -> u32 {
        self.parent[((i - FIRST_GROUP) / CHILDREN) as usize].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn node_mass_of(&self, i: u32) -> f64 {
        self.node_mass[i as usize].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn node_com_of(&self, i: u32) -> Vec2 {
        Vec2::new(
            self.node_com[0][i as usize].load(Ordering::Relaxed),
            self.node_com[1][i as usize].load(Ordering::Relaxed),
        )
    }

    /// Iterate a co-located chain.
    pub fn chain(&self, head: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cur = head;
        std::iter::from_fn(move || {
            if cur == CHAIN_END {
                None
            } else {
                let b = cur;
                cur = self.next_colocated[b as usize].load(Ordering::Relaxed);
                Some(b)
            }
        })
    }

    /// BUILDTREE in 2-D (paper Algorithm 4 with four children).
    pub fn build<P: ParallelForwardProgress>(
        &mut self,
        policy: P,
        positions: &[Vec2],
        bounds: Rect,
    ) -> Result<(), BuildError> {
        let n = positions.len();
        if n > (BODY_BIT - 1) as usize {
            return Err(BuildError::TooManyBodies { n });
        }
        self.n_bodies = n;
        if n == 0 {
            self.reset();
            self.root_edge = 0.0;
            return Ok(());
        }
        if bounds.is_empty() || !bounds.min.is_finite() || !bounds.max.is_finite() {
            return Err(BuildError::InvalidPositions);
        }
        let square = bounds.to_square();
        self.root_center = square.center();
        self.root_edge = square.extent().x;
        let want = pool_size_for((2 * n as u32).max(1024));
        if self.child.len() < want as usize {
            self.grow(want)?;
        }
        if self.next_colocated.len() < n {
            self.next_colocated = make_atomic(n, CHAIN_END);
        }
        loop {
            self.reset();
            for_each(policy, &mut self.next_colocated[..n], |c| *c = AtomicU32::new(CHAIN_END));
            let overflow = AtomicBool::new(false);
            let this = &*self;
            let ov = &overflow;
            for_each_index(policy, 0..n, |b| {
                if !ov.load(Ordering::Relaxed) {
                    this.insert(b as u32, positions, ov);
                }
            });
            if !overflow.load(Ordering::Relaxed) {
                return Ok(());
            }
            let new_size = pool_size_for((self.child.len() as u32).saturating_mul(2));
            self.grow(new_size)?;
        }
    }

    fn insert(&self, b: u32, positions: &[Vec2], overflow: &AtomicBool) {
        let p = positions[b as usize];
        let mut i = 0u32;
        let mut center = self.root_center;
        let mut half = self.root_edge * 0.5;
        let mut depth = 0u32;
        loop {
            let tag = self.child[i as usize].load(Ordering::Acquire);
            match decode(tag) {
                Slot::Node(c) => {
                    let q = Rect::quadrant_of(center, p);
                    center = quadrant_center(center, half, q);
                    half *= 0.5;
                    i = c + q as u32;
                    depth += 1;
                }
                Slot::Empty => {
                    if self.child[i as usize]
                        .compare_exchange_weak(tag, b | BODY_BIT, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        return;
                    }
                }
                Slot::Locked => std::hint::spin_loop(),
                Slot::Body(b2) => {
                    if self.child[i as usize]
                        .compare_exchange_weak(tag, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_err()
                    {
                        continue;
                    }
                    let p2 = positions[b2 as usize];
                    if depth >= MAX_DEPTH || p == p2 {
                        let next = self.next_colocated[b2 as usize].load(Ordering::Relaxed);
                        self.next_colocated[b as usize].store(next, Ordering::Relaxed);
                        self.next_colocated[b2 as usize].store(b, Ordering::Relaxed);
                        self.child[i as usize].store(b2 | BODY_BIT, Ordering::Release);
                        return;
                    }
                    match self.allocate_group() {
                        Some(c) => {
                            self.parent[((c - FIRST_GROUP) / CHILDREN) as usize]
                                .store(i, Ordering::Relaxed);
                            let q2 = Rect::quadrant_of(center, p2);
                            self.child[(c + q2 as u32) as usize]
                                .store(b2 | BODY_BIT, Ordering::Relaxed);
                            self.child[i as usize].store(c, Ordering::Release);
                        }
                        None => {
                            self.child[i as usize].store(b2 | BODY_BIT, Ordering::Release);
                            overflow.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
        }
    }

    fn allocate_group(&self) -> Option<u32> {
        let c = self.bump.fetch_add(CHILDREN, Ordering::Relaxed);
        if (c as usize) + CHILDREN as usize <= self.child.len() {
            Some(c)
        } else {
            None
        }
    }

    fn reset(&mut self) {
        let used = self.bump.load(Ordering::Relaxed).min(self.child.len() as u32) as usize;
        for slot in &mut self.child[..used] {
            *slot = AtomicU32::new(EMPTY);
        }
        self.bump.store(FIRST_GROUP, Ordering::Relaxed);
    }

    fn grow(&mut self, nodes: u32) -> Result<(), BuildError> {
        if nodes > 1 << 30 {
            return Err(BuildError::PoolExhausted { requested_nodes: nodes });
        }
        self.child = make_atomic(nodes as usize, EMPTY);
        self.parent =
            make_atomic((nodes as usize - FIRST_GROUP as usize) / CHILDREN as usize, 0);
        self.bump.store(FIRST_GROUP, Ordering::Relaxed);
        Ok(())
    }

    /// CALCULATEMULTIPOLES — the wait-free arrival-counter reduction.
    pub fn compute_multipoles<P: ParallelForwardProgress>(
        &mut self,
        policy: P,
        positions: &[Vec2],
        masses: &[f64],
    ) {
        assert_eq!(positions.len(), self.n_bodies);
        assert_eq!(masses.len(), self.n_bodies);
        let alloc = self.allocated_nodes() as usize;
        self.ensure_storage(alloc, policy);
        match self.slot(0) {
            Slot::Empty => return,
            Slot::Body(head) => {
                let (m, mx) = self.leaf_moment(head, positions, masses);
                self.node_mass[0].store(m, Ordering::Relaxed);
                self.node_com[0][0].store(mx.x, Ordering::Relaxed);
                self.node_com[1][0].store(mx.y, Ordering::Relaxed);
                self.finalize(policy, alloc);
                return;
            }
            Slot::Locked => unreachable!(),
            Slot::Node(_) => {}
        }
        let this = &*self;
        for_each_index(policy, FIRST_GROUP as usize..alloc, |i| {
            let i = i as u32;
            let (m, mx) = match this.slot(i) {
                Slot::Node(_) => return,
                Slot::Empty => (0.0, Vec2::ZERO),
                Slot::Body(head) => this.leaf_moment(head, positions, masses),
                Slot::Locked => unreachable!(),
            };
            this.node_mass[i as usize].store(m, Ordering::Relaxed);
            this.node_com[0][i as usize].store(mx.x, Ordering::Relaxed);
            this.node_com[1][i as usize].store(mx.y, Ordering::Relaxed);
            let mut node = i;
            let (mut m_cur, mut mx_cur) = (m, mx);
            loop {
                let p = this.parent_of(node);
                this.node_mass[p as usize].fetch_add(m_cur, Ordering::Relaxed);
                this.node_com[0][p as usize].fetch_add(mx_cur.x, Ordering::Relaxed);
                this.node_com[1][p as usize].fetch_add(mx_cur.y, Ordering::Relaxed);
                let prev = this.arrivals[p as usize].fetch_add(1, Ordering::AcqRel);
                if prev + 1 != CHILDREN || p == 0 {
                    return;
                }
                m_cur = this.node_mass[p as usize].load(Ordering::Relaxed);
                mx_cur = Vec2::new(
                    this.node_com[0][p as usize].load(Ordering::Relaxed),
                    this.node_com[1][p as usize].load(Ordering::Relaxed),
                );
                node = p;
            }
        });
        self.finalize(policy, alloc);
    }

    fn leaf_moment(&self, head: u32, positions: &[Vec2], masses: &[f64]) -> (f64, Vec2) {
        let mut m = 0.0;
        let mut mx = Vec2::ZERO;
        for b in self.chain(head) {
            m += masses[b as usize];
            mx += positions[b as usize] * masses[b as usize];
        }
        (m, mx)
    }

    fn finalize<P: ExecutionPolicy>(&self, policy: P, alloc: usize) {
        let this = self;
        for_each_index(policy, 0..alloc, |i| {
            let m = this.node_mass[i].load(Ordering::Relaxed);
            if m > 0.0 {
                let cx = this.node_com[0][i].load(Ordering::Relaxed) / m;
                let cy = this.node_com[1][i].load(Ordering::Relaxed) / m;
                this.node_com[0][i].store(cx, Ordering::Relaxed);
                this.node_com[1][i].store(cy, Ordering::Relaxed);
            }
        });
    }

    fn ensure_storage<P: ExecutionPolicy>(&mut self, alloc: usize, policy: P) {
        if self.node_mass.len() < alloc {
            self.node_mass = (0..alloc).map(|_| AtomicF64::new(0.0)).collect();
            self.node_com =
                [(0..alloc).map(|_| AtomicF64::new(0.0)).collect(), (0..alloc)
                    .map(|_| AtomicF64::new(0.0))
                    .collect()];
            let mut a = Vec::with_capacity(alloc);
            a.resize_with(alloc, || AtomicU32::new(0));
            self.arrivals = a;
        }
        let this = &*self;
        for_each_index(policy, 0..alloc, |i| {
            this.node_mass[i].store(0.0, Ordering::Relaxed);
            this.node_com[0][i].store(0.0, Ordering::Relaxed);
            this.node_com[1][i].store(0.0, Ordering::Relaxed);
            this.arrivals[i].store(0, Ordering::Relaxed);
        });
    }

    /// Generic stackless DFS (2-D counterpart of `bh_octree::traverse`).
    pub fn traverse(
        &self,
        p: Vec2,
        theta: f64,
        mut far: impl FnMut(NodeView),
        mut near: impl FnMut(u32),
    ) {
        if self.n_bodies == 0 {
            return;
        }
        let theta2 = theta * theta;
        let mut i: u32 = 0;
        let mut width = self.root_edge;
        loop {
            let mut descend = false;
            match self.slot(i) {
                Slot::Node(c) => {
                    let com = self.node_com_of(i);
                    let d2 = com.distance2(p);
                    if width * width < theta2 * d2 {
                        far(NodeView { index: i, mass: self.node_mass_of(i), com, width });
                    } else {
                        i = c;
                        width *= 0.5;
                        descend = true;
                    }
                }
                Slot::Empty => {}
                Slot::Body(head) => {
                    for b in self.chain(head) {
                        near(b);
                    }
                }
                Slot::Locked => unreachable!(),
            }
            if descend {
                continue;
            }
            loop {
                if i == 0 {
                    return;
                }
                if (i - FIRST_GROUP) % CHILDREN != CHILDREN - 1 {
                    i += 1;
                    break;
                }
                i = self.parent_of(i);
                width *= 2.0;
            }
        }
    }

    /// 2-D gravity (`a_i = G Σ m_j d / (r²+ε²)^{3/2}` with `G = 1`).
    pub fn compute_forces<P: ExecutionPolicy>(
        &self,
        policy: P,
        positions: &[Vec2],
        masses: &[f64],
        accel: &mut [Vec2],
        theta: f64,
        softening: f64,
    ) {
        assert_eq!(positions.len(), self.n_bodies);
        assert_eq!(accel.len(), positions.len());
        let eps2 = softening * softening;
        let out = SyncSlice::new(accel);
        let this = self;
        for_each_index(policy, 0..positions.len(), |b| {
            let p = positions[b];
            let acc = std::cell::Cell::new(Vec2::ZERO);
            let kernel = |d: Vec2, m: f64| {
                let r2 = d.norm2() + eps2;
                if r2 > 0.0 {
                    d * (m / (r2 * r2.sqrt()))
                } else {
                    Vec2::ZERO
                }
            };
            this.traverse(
                p,
                theta,
                |node| acc.set(acc.get() + kernel(node.com - p, node.mass)),
                |j| {
                    if j != b as u32 {
                        acc.set(acc.get() + kernel(positions[j as usize] - p, masses[j as usize]));
                    }
                },
            );
            unsafe { out.write(b, acc.get()) };
        });
    }

    /// Collect every body id reachable from the root (tests).
    pub fn collect_bodies(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.n_bodies);
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            match self.slot(i) {
                Slot::Empty | Slot::Locked => {}
                Slot::Body(head) => out.extend(self.chain(head)),
                Slot::Node(c) => stack.extend(c..c + CHILDREN),
            }
        }
        out
    }
}

#[inline]
fn quadrant_center(center: Vec2, half: f64, q: usize) -> Vec2 {
    let o = half * 0.5;
    Vec2::new(
        center.x + if q & 1 != 0 { o } else { -o },
        center.y + if q & 2 != 0 { o } else { -o },
    )
}

fn pool_size_for(nodes: u32) -> u32 {
    let groups = nodes.saturating_sub(FIRST_GROUP).div_ceil(CHILDREN).max(4);
    FIRST_GROUP + groups.saturating_mul(CHILDREN)
}

fn make_atomic(n: usize, v: u32) -> Vec<AtomicU32> {
    let mut out = Vec::with_capacity(n);
    out.resize_with(n, || AtomicU32::new(v));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;

    fn random_points(n: usize, seed: u64) -> Vec<Vec2> {
        let mut r = SplitMix64::new(seed);
        (0..n).map(|_| Vec2::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0))).collect()
    }

    fn built(pos: &[Vec2], mass: &[f64]) -> Quadtree {
        let mut t = Quadtree::new();
        t.build(Par, pos, Rect::from_points(pos)).unwrap();
        t.compute_multipoles(Par, pos, mass);
        t
    }

    #[test]
    fn all_bodies_reachable() {
        let pos = random_points(3000, 201);
        let mass = vec![1.0; pos.len()];
        let t = built(&pos, &mass);
        let mut ids = t.collect_bodies();
        ids.sort_unstable();
        assert_eq!(ids, (0..3000u32).collect::<Vec<_>>());
    }

    #[test]
    fn root_totals() {
        let pos = random_points(1000, 202);
        let mass: Vec<f64> = (0..1000).map(|i| 1.0 + (i % 4) as f64).collect();
        let t = built(&pos, &mass);
        let total: f64 = mass.iter().sum();
        assert!((t.node_mass_of(0) - total).abs() < 1e-9 * total);
        let mut com = Vec2::ZERO;
        for (p, m) in pos.iter().zip(&mass) {
            com += *p * *m;
        }
        com /= total;
        assert!((t.node_com_of(0) - com).norm() < 1e-10);
    }

    #[test]
    fn theta_zero_matches_direct_2d() {
        let pos = random_points(300, 203);
        let mass: Vec<f64> = (0..300).map(|i| 0.5 + (i % 3) as f64).collect();
        let t = built(&pos, &mass);
        let mut acc = vec![Vec2::ZERO; pos.len()];
        t.compute_forces(ParUnseq, &pos, &mass, &mut acc, 0.0, 0.0);
        for (i, &a) in acc.iter().enumerate() {
            let mut exact = Vec2::ZERO;
            for (j, &x) in pos.iter().enumerate() {
                if j != i {
                    let d = x - pos[i];
                    let r2 = d.norm2();
                    exact += d * (mass[j] / (r2 * r2.sqrt()));
                }
            }
            assert!((a - exact).norm() < 1e-10 * (1.0 + exact.norm()), "body {i}");
        }
    }

    #[test]
    fn theta_half_is_accurate_2d() {
        let pos = random_points(1000, 204);
        let mass = vec![1.0; pos.len()];
        let t = built(&pos, &mass);
        let mut acc = vec![Vec2::ZERO; pos.len()];
        t.compute_forces(ParUnseq, &pos, &mass, &mut acc, 0.5, 1e-3);
        let mut mean = 0.0;
        for (i, &a) in acc.iter().enumerate() {
            let mut exact = Vec2::ZERO;
            for (j, &x) in pos.iter().enumerate() {
                if j != i {
                    let d = x - pos[i];
                    let r2 = d.norm2() + 1e-6;
                    exact += d * (mass[j] / (r2 * r2.sqrt()));
                }
            }
            mean += (a - exact).norm() / (1e-12 + exact.norm());
        }
        mean /= pos.len() as f64;
        // 2-D fields cancel more strongly than 3-D, inflating relative
        // errors; 3 % mean at θ = 0.5 is the empirically stable budget.
        assert!(mean < 0.03, "mean rel err {mean}");
    }

    #[test]
    fn duplicates_chain_and_count_once() {
        let p = Vec2::new(0.3, 0.3);
        let pos = vec![p, p, p, Vec2::new(-0.8, 0.1)];
        let mass = vec![1.0, 2.0, 3.0, 4.0];
        let t = built(&pos, &mass);
        assert!((t.node_mass_of(0) - 10.0).abs() < 1e-12);
        let mut ids = t.collect_bodies();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_and_single() {
        let mut t = Quadtree::new();
        t.build(Par, &[], Rect::EMPTY).unwrap();
        assert_eq!(t.slot(0), Slot::Empty);
        let pos = vec![Vec2::new(0.5, -0.5)];
        t.build(Par, &pos, Rect::from_points(&pos)).unwrap();
        t.compute_multipoles(Par, &pos, &[7.0]);
        assert_eq!(t.node_mass_of(0), 7.0);
        assert_eq!(t.slot(0), Slot::Body(0));
    }

    #[test]
    fn rebuild_and_pool_growth() {
        let pos = random_points(4000, 205);
        let mut t = Quadtree::with_node_capacity(32);
        t.build(Par, &pos, Rect::from_points(&pos)).unwrap();
        let mut ids = t.collect_bodies();
        ids.sort_unstable();
        assert_eq!(ids.len(), 4000);
        // Rebuild with fewer bodies reuses the pool.
        let pos2 = random_points(100, 206);
        t.build(Seq, &pos2, Rect::from_points(&pos2)).unwrap();
        assert_eq!(t.collect_bodies().len(), 100);
    }

    #[test]
    fn seq_par_agree() {
        let pos = random_points(800, 207);
        let mass = vec![1.0; pos.len()];
        let a = built(&pos, &mass);
        let mut t = Quadtree::new();
        t.build(Seq, &pos, Rect::from_points(&pos)).unwrap();
        t.compute_multipoles(Seq, &pos, &mass);
        assert!((a.node_mass_of(0) - t.node_mass_of(0)).abs() < 1e-12);
        assert!((a.node_com_of(0) - t.node_com_of(0)).norm() < 1e-10);
    }

    #[test]
    fn traverse_accounts_all_mass() {
        let pos = random_points(600, 208);
        let mass = vec![1.0; pos.len()];
        let t = built(&pos, &mass);
        let seen = std::cell::Cell::new(0.0f64);
        t.traverse(
            pos[0],
            0.7,
            |n| seen.set(seen.get() + n.mass),
            |b| seen.set(seen.get() + mass[b as usize]),
        );
        assert!((seen.get() - 600.0).abs() < 1e-9 * 600.0);
    }

    #[test]
    fn tsne_repulsion_kernel_on_quadtree() {
        // The use case this crate exists for.
        let pos = random_points(500, 209);
        let unit = vec![1.0; pos.len()];
        let t = built(&pos, &unit);
        let p = pos[3];
        let (rep, z) = {
            let rep = std::cell::Cell::new(Vec2::ZERO);
            let z = std::cell::Cell::new(0.0f64);
            t.traverse(
                p,
                0.5,
                |n| {
                    let d = p - n.com;
                    let q = 1.0 / (1.0 + d.norm2());
                    z.set(z.get() + n.mass * q);
                    rep.set(rep.get() + d * (n.mass * q * q));
                },
                |b| {
                    if b != 3 {
                        let d = p - pos[b as usize];
                        let q = 1.0 / (1.0 + d.norm2());
                        z.set(z.get() + q);
                        rep.set(rep.get() + d * (q * q));
                    }
                },
            );
            (rep.get(), z.get())
        };
        let mut exact = Vec2::ZERO;
        let mut z_exact = 0.0;
        for (j, &x) in pos.iter().enumerate() {
            if j != 3 {
                let d = p - x;
                let q = 1.0 / (1.0 + d.norm2());
                z_exact += q;
                exact += d * (q * q);
            }
        }
        assert!((z - z_exact).abs() < 0.05 * z_exact);
        assert!((rep - exact).norm() < 0.05 * (1e-9 + exact.norm()));
    }

    #[test]
    fn ulp_separated_points_terminate() {
        let a = 0.1f64;
        let b = f64::from_bits(a.to_bits() + 1);
        let pos = vec![Vec2::splat(a), Vec2::splat(b), Vec2::new(0.9, 0.9)];
        let mut t = Quadtree::new();
        t.build(Par, &pos, Rect::from_points(&pos)).unwrap();
        assert_eq!(t.collect_bodies().len(), 3);
    }
}
