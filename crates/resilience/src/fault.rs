//! Deterministic, seeded fault injection.
//!
//! A [`FaultInjector`] decides — purely as a function of `(seed, step)` —
//! which faults to inject into a simulation step. Determinism is the whole
//! point: a failing resilience test reproduces from its seed alone, with no
//! dependence on thread timing, global RNG state, or call order. Internally
//! each step gets its own [SplitMix64](nbody_math::SplitMix64) stream seeded
//! from `seed ^ mix(step)`, so querying steps out of order (or twice)
//! returns identical answers.

use nbody_math::SplitMix64;

/// The classes of fault the harness can inject.
///
/// The first four are *solver-level* faults, consumed by
/// `ResilientSolver`'s retry/fallback chain. The remaining four are
/// *state-level* numeric-corruption faults, consumed by the self-healing
/// `GuardedSimulation` layer: they damage the persistent simulation state
/// (or its durable checkpoints) *after* a step completes, modelling torn
/// updates, radiation bit-flips and partial writes — exactly the class of
/// damage the solver chain cannot see because its inputs are rebuilt from
/// the (already corrupted) state every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A worker acquires a tree-node lock and never releases it, livelocking
    /// peers that spin on the slot.
    StuckLock,
    /// The tree node pool is artificially capped so the build overflows.
    AllocExhaustion,
    /// A body position is corrupted to NaN before the force pass.
    NanPositions,
    /// A worker makes progress far slower than its peers (tests fairness /
    /// bounded-wait assumptions, not correctness).
    SlowWorker,
    /// A component of one persistent body position is seeded with NaN
    /// *after* the step's update phase (a torn/omitted write).
    NanInject,
    /// A high exponent bit of one persistent position component is flipped
    /// (a radiation-style single-event upset): the value teleports to an
    /// astronomically large or vanishingly small magnitude.
    PositionBitFlip,
    /// The most recent durable checkpoint file is truncated after the
    /// write (a crash mid-flush / torn rename).
    CheckpointTruncation,
    /// One byte of the most recent durable checkpoint file is bit-flipped
    /// in place (storage corruption).
    CheckpointBitFlip,
}

impl FaultKind {
    /// All fault kinds, in a fixed order (used for rate iteration). The
    /// original solver-level kinds come first so rate schedules draw their
    /// per-step random numbers in the same order as before the state-level
    /// kinds existed — seeded histories are stable across that extension.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::StuckLock,
        FaultKind::AllocExhaustion,
        FaultKind::NanPositions,
        FaultKind::SlowWorker,
        FaultKind::NanInject,
        FaultKind::PositionBitFlip,
        FaultKind::CheckpointTruncation,
        FaultKind::CheckpointBitFlip,
    ];

    /// The faults `ResilientSolver` detects and recovers from on its own.
    pub const SOLVER_LEVEL: [FaultKind; 4] = [
        FaultKind::StuckLock,
        FaultKind::AllocExhaustion,
        FaultKind::NanPositions,
        FaultKind::SlowWorker,
    ];

    /// The numeric-corruption faults handled by the guarded stepping layer
    /// (health watchdog + checkpoint rollback).
    pub const STATE_LEVEL: [FaultKind; 4] = [
        FaultKind::NanInject,
        FaultKind::PositionBitFlip,
        FaultKind::CheckpointTruncation,
        FaultKind::CheckpointBitFlip,
    ];

    /// Stable lowercase name for logs and diagnostics tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::StuckLock => "stuck-lock",
            FaultKind::AllocExhaustion => "alloc-exhaustion",
            FaultKind::NanPositions => "nan-positions",
            FaultKind::SlowWorker => "slow-worker",
            FaultKind::NanInject => "nan-inject",
            FaultKind::PositionBitFlip => "position-bit-flip",
            FaultKind::CheckpointTruncation => "checkpoint-truncation",
            FaultKind::CheckpointBitFlip => "checkpoint-bit-flip",
        }
    }
}

/// A deterministic fault schedule.
///
/// Two mechanisms compose:
/// * **rates** ([`FaultInjector::with_rate`]) — each step, each kind fires
///   independently with the given probability, decided by the per-step RNG
///   stream;
/// * **script** ([`FaultInjector::at_step`]) — a kind fires at exactly the
///   given step, unconditionally.
///
/// [`FaultInjector::faults_at`] returns the union, in [`FaultKind::ALL`]
/// order, each kind at most once per step.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    rates: Vec<(FaultKind, f64)>,
    scripted: Vec<(u64, FaultKind)>,
}

impl FaultInjector {
    /// A schedule that injects nothing (until configured).
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed, rates: Vec::new(), scripted: Vec::new() }
    }

    /// Seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fire `kind` each step with probability `rate` (clamped to `[0, 1]`).
    /// Later calls for the same kind replace earlier ones.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        if let Some(slot) = self.rates.iter_mut().find(|(k, _)| *k == kind) {
            slot.1 = rate;
        } else {
            self.rates.push((kind, rate));
        }
        self
    }

    /// Fire `kind` at exactly `step`, regardless of rates.
    pub fn at_step(mut self, step: u64, kind: FaultKind) -> Self {
        self.scripted.push((step, kind));
        self
    }

    /// The faults to inject at `step`. Pure in `(self, step)`: any query
    /// order, repetition, or interleaving yields the same answer.
    pub fn faults_at(&self, step: u64) -> Vec<FaultKind> {
        // Decorrelate the per-step stream from both seed and step with a
        // 64-bit finalizer so adjacent steps don't share low-bit structure.
        let mut rng = SplitMix64::new(self.seed ^ mix(step));
        let mut out = Vec::new();
        for kind in FaultKind::ALL {
            let by_rate = self
                .rates
                .iter()
                .find(|(k, _)| *k == kind)
                .is_some_and(|&(_, rate)| rng.next_f64() < rate);
            let by_script = self.scripted.iter().any(|&(s, k)| s == step && k == kind);
            if by_rate || by_script {
                out.push(kind);
            }
        }
        out
    }

    /// Whether `kind` fires at `step`.
    pub fn fires(&self, step: u64, kind: FaultKind) -> bool {
        self.faults_at(step).contains(&kind)
    }

    /// A deterministic RNG stream for the *parameters* of the faults fired
    /// at `step` (which body, which component, which bit). Decorrelated
    /// from the fire/no-fire decision stream of [`FaultInjector::faults_at`]
    /// by an extra salt, so drawing parameters never perturbs the schedule.
    pub fn param_stream(&self, step: u64) -> SplitMix64 {
        SplitMix64::new(self.seed ^ mix(step) ^ 0x9E37_79B9_7F4A_7C15)
    }
}

/// Stafford variant 13 of the MurmurHash3 finalizer.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultInjector::new(0xDEAD_BEEF)
            .with_rate(FaultKind::StuckLock, 0.3)
            .with_rate(FaultKind::NanPositions, 0.1);
        let b = a.clone();
        for step in 0..500 {
            assert_eq!(a.faults_at(step), b.faults_at(step), "step {step}");
        }
    }

    #[test]
    fn query_order_is_irrelevant() {
        let inj = FaultInjector::new(77).with_rate(FaultKind::AllocExhaustion, 0.5);
        let forward: Vec<_> = (0..100).map(|s| inj.faults_at(s)).collect();
        let backward: Vec<_> = (0..100).rev().map(|s| inj.faults_at(s)).collect();
        for (s, faults) in backward.iter().rev().enumerate() {
            assert_eq!(&forward[s], faults);
        }
    }

    #[test]
    fn scripted_faults_fire_exactly_once() {
        let inj = FaultInjector::new(1).at_step(17, FaultKind::StuckLock);
        for step in 0..100 {
            let hit = inj.fires(step, FaultKind::StuckLock);
            assert_eq!(hit, step == 17, "step {step}");
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let inj = FaultInjector::new(99).with_rate(FaultKind::SlowWorker, 0.25);
        let hits = (0..4000).filter(|&s| inj.fires(s, FaultKind::SlowWorker)).count();
        // 4000 trials at p=0.25: expect ~1000; allow a generous band.
        assert!((800..1200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn zero_and_full_rates() {
        let never = FaultInjector::new(5).with_rate(FaultKind::NanPositions, 0.0);
        let always = FaultInjector::new(5).with_rate(FaultKind::NanPositions, 1.0);
        for step in 0..200 {
            assert!(!never.fires(step, FaultKind::NanPositions));
            assert!(always.fires(step, FaultKind::NanPositions));
        }
    }

    #[test]
    fn kinds_have_distinct_names() {
        let mut names: Vec<_> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }

    #[test]
    fn level_groups_partition_all() {
        let mut joined: Vec<FaultKind> = FaultKind::SOLVER_LEVEL.to_vec();
        joined.extend(FaultKind::STATE_LEVEL);
        assert_eq!(joined, FaultKind::ALL.to_vec());
    }

    #[test]
    fn state_level_rates_do_not_perturb_solver_level_schedule() {
        // Adding rates for the new state-level kinds must leave the draw
        // order (and therefore the schedule) of the original kinds intact.
        let base = FaultInjector::new(0xC0FFEE).with_rate(FaultKind::StuckLock, 0.3);
        let extended = base.clone().with_rate(FaultKind::NanInject, 0.5);
        for step in 0..300 {
            assert_eq!(
                base.fires(step, FaultKind::StuckLock),
                extended.fires(step, FaultKind::StuckLock),
                "step {step}"
            );
        }
    }

    #[test]
    fn param_stream_is_deterministic_and_decorrelated() {
        let inj = FaultInjector::new(42).with_rate(FaultKind::NanInject, 1.0);
        let a: Vec<u64> = (0..4).map(|s| inj.param_stream(s).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|s| inj.param_stream(s).next_u64()).collect();
        assert_eq!(a, b, "parameters are a pure function of (seed, step)");
        // Drawing parameters must not change the fire/no-fire schedule.
        let before: Vec<_> = (0..50).map(|s| inj.faults_at(s)).collect();
        let _ = inj.param_stream(17).next_u64();
        let after: Vec<_> = (0..50).map(|s| inj.faults_at(s)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn rate_replacement_not_duplication() {
        let inj = FaultInjector::new(3)
            .with_rate(FaultKind::StuckLock, 1.0)
            .with_rate(FaultKind::StuckLock, 0.0);
        assert!(!inj.fires(0, FaultKind::StuckLock));
        assert_eq!(inj.rates.len(), 1);
    }
}
