//! Deterministic, seeded fault injection.
//!
//! A [`FaultInjector`] decides — purely as a function of `(seed, step)` —
//! which faults to inject into a simulation step. Determinism is the whole
//! point: a failing resilience test reproduces from its seed alone, with no
//! dependence on thread timing, global RNG state, or call order. Internally
//! each step gets its own [SplitMix64](nbody_math::SplitMix64) stream seeded
//! from `seed ^ mix(step)`, so querying steps out of order (or twice)
//! returns identical answers.

use nbody_math::SplitMix64;

/// The classes of fault the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A worker acquires a tree-node lock and never releases it, livelocking
    /// peers that spin on the slot.
    StuckLock,
    /// The tree node pool is artificially capped so the build overflows.
    AllocExhaustion,
    /// A body position is corrupted to NaN before the force pass.
    NanPositions,
    /// A worker makes progress far slower than its peers (tests fairness /
    /// bounded-wait assumptions, not correctness).
    SlowWorker,
}

impl FaultKind {
    /// All fault kinds, in a fixed order (used for rate iteration).
    pub const ALL: [FaultKind; 4] = [
        FaultKind::StuckLock,
        FaultKind::AllocExhaustion,
        FaultKind::NanPositions,
        FaultKind::SlowWorker,
    ];

    /// Stable lowercase name for logs and diagnostics tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::StuckLock => "stuck-lock",
            FaultKind::AllocExhaustion => "alloc-exhaustion",
            FaultKind::NanPositions => "nan-positions",
            FaultKind::SlowWorker => "slow-worker",
        }
    }
}

/// A deterministic fault schedule.
///
/// Two mechanisms compose:
/// * **rates** ([`FaultInjector::with_rate`]) — each step, each kind fires
///   independently with the given probability, decided by the per-step RNG
///   stream;
/// * **script** ([`FaultInjector::at_step`]) — a kind fires at exactly the
///   given step, unconditionally.
///
/// [`FaultInjector::faults_at`] returns the union, in [`FaultKind::ALL`]
/// order, each kind at most once per step.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    rates: Vec<(FaultKind, f64)>,
    scripted: Vec<(u64, FaultKind)>,
}

impl FaultInjector {
    /// A schedule that injects nothing (until configured).
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed, rates: Vec::new(), scripted: Vec::new() }
    }

    /// Seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fire `kind` each step with probability `rate` (clamped to `[0, 1]`).
    /// Later calls for the same kind replace earlier ones.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        if let Some(slot) = self.rates.iter_mut().find(|(k, _)| *k == kind) {
            slot.1 = rate;
        } else {
            self.rates.push((kind, rate));
        }
        self
    }

    /// Fire `kind` at exactly `step`, regardless of rates.
    pub fn at_step(mut self, step: u64, kind: FaultKind) -> Self {
        self.scripted.push((step, kind));
        self
    }

    /// The faults to inject at `step`. Pure in `(self, step)`: any query
    /// order, repetition, or interleaving yields the same answer.
    pub fn faults_at(&self, step: u64) -> Vec<FaultKind> {
        // Decorrelate the per-step stream from both seed and step with a
        // 64-bit finalizer so adjacent steps don't share low-bit structure.
        let mut rng = SplitMix64::new(self.seed ^ mix(step));
        let mut out = Vec::new();
        for kind in FaultKind::ALL {
            let by_rate = self
                .rates
                .iter()
                .find(|(k, _)| *k == kind)
                .is_some_and(|&(_, rate)| rng.next_f64() < rate);
            let by_script = self.scripted.iter().any(|&(s, k)| s == step && k == kind);
            if by_rate || by_script {
                out.push(kind);
            }
        }
        out
    }

    /// Whether `kind` fires at `step`.
    pub fn fires(&self, step: u64, kind: FaultKind) -> bool {
        self.faults_at(step).contains(&kind)
    }
}

/// Stafford variant 13 of the MurmurHash3 finalizer.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultInjector::new(0xDEAD_BEEF)
            .with_rate(FaultKind::StuckLock, 0.3)
            .with_rate(FaultKind::NanPositions, 0.1);
        let b = a.clone();
        for step in 0..500 {
            assert_eq!(a.faults_at(step), b.faults_at(step), "step {step}");
        }
    }

    #[test]
    fn query_order_is_irrelevant() {
        let inj = FaultInjector::new(77).with_rate(FaultKind::AllocExhaustion, 0.5);
        let forward: Vec<_> = (0..100).map(|s| inj.faults_at(s)).collect();
        let backward: Vec<_> = (0..100).rev().map(|s| inj.faults_at(s)).collect();
        for (s, faults) in backward.iter().rev().enumerate() {
            assert_eq!(&forward[s], faults);
        }
    }

    #[test]
    fn scripted_faults_fire_exactly_once() {
        let inj = FaultInjector::new(1).at_step(17, FaultKind::StuckLock);
        for step in 0..100 {
            let hit = inj.fires(step, FaultKind::StuckLock);
            assert_eq!(hit, step == 17, "step {step}");
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let inj = FaultInjector::new(99).with_rate(FaultKind::SlowWorker, 0.25);
        let hits = (0..4000).filter(|&s| inj.fires(s, FaultKind::SlowWorker)).count();
        // 4000 trials at p=0.25: expect ~1000; allow a generous band.
        assert!((800..1200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn zero_and_full_rates() {
        let never = FaultInjector::new(5).with_rate(FaultKind::NanPositions, 0.0);
        let always = FaultInjector::new(5).with_rate(FaultKind::NanPositions, 1.0);
        for step in 0..200 {
            assert!(!never.fires(step, FaultKind::NanPositions));
            assert!(always.fires(step, FaultKind::NanPositions));
        }
    }

    #[test]
    fn kinds_have_distinct_names() {
        let mut names: Vec<_> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }

    #[test]
    fn rate_replacement_not_duplication() {
        let inj = FaultInjector::new(3)
            .with_rate(FaultKind::StuckLock, 1.0)
            .with_rate(FaultKind::StuckLock, 0.0);
        assert!(!inj.fires(0, FaultKind::StuckLock));
        assert_eq!(inj.rates.len(), 1);
    }
}
