//! # nbody-resilience — typed failures and deterministic fault injection
//!
//! The paper's concurrent tree builds (§IV) are lock-based: a stuck worker,
//! an undersized node pool, or a single NaN position can wedge or poison an
//! entire simulation step. This crate centralises the *failure vocabulary*
//! shared by `bh-octree`, `bh-bvh`, and `nbody-sim`:
//!
//! * [`BuildError`] — every way a tree build can fail, as one typed enum,
//!   with [`BuildError::is_retryable`] encoding which failures the builders
//!   recover from by retrying with grown capacity;
//! * [`FaultKind`] / [`FaultInjector`] — a seeded, deterministic fault
//!   schedule for exercising those failure paths in tests: the same seed
//!   always injects the same faults at the same steps;
//! * [`RecoveryCounters`] — diagnostics accumulated by the resilient solver
//!   wrapper so tests (and operators) can assert *what* was recovered.
//!
//! The crate is deliberately dependency-light (only `nbody-math` for the
//! [SplitMix64](nbody_math::SplitMix64) generator) so every layer of the
//! workspace can name these types without cycles.

pub mod counters;
pub mod error;
pub mod fault;

pub use counters::RecoveryCounters;
pub use error::BuildError;
pub use fault::{FaultInjector, FaultKind};
