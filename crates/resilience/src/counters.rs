//! Recovery diagnostics.

use crate::error::BuildError;

/// Counts of every recovery action the resilient solver took, so a run can
/// report *how* it survived, not just that it did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Builds that failed with a retryable error and succeeded on retry.
    pub build_retries: u64,
    /// Steps where the active solver was abandoned for the next one in the
    /// fallback chain.
    pub fallbacks: u64,
    /// Steps rejected because a body position was NaN/non-finite on entry.
    pub invalid_states: u64,
    /// Force passes discarded because an output acceleration was non-finite.
    pub nonfinite_accels: u64,
    /// Builds that reported a spin-budget (livelock) exhaustion.
    pub spin_exhaustions: u64,
    /// Builds that reported pool exhaustion.
    pub pool_exhaustions: u64,
    /// Slow-worker faults observed (informational; no recovery needed).
    pub slow_workers: u64,
}

impl RecoveryCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total recovery actions (excludes informational `slow_workers`).
    pub fn total_recoveries(&self) -> u64 {
        self.build_retries + self.fallbacks + self.invalid_states + self.nonfinite_accels
    }

    /// Record a build error observed during a step (classification only;
    /// the caller separately records the retry/fallback it chose).
    pub fn record_build_error(&mut self, err: BuildError) {
        match err {
            BuildError::SpinBudgetExhausted { .. } => self.spin_exhaustions += 1,
            BuildError::PoolExhausted { .. } => self.pool_exhaustions += 1,
            BuildError::InvalidPositions => self.invalid_states += 1,
            _ => {}
        }
    }

    /// Merge another set of counters into this one.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.build_retries += other.build_retries;
        self.fallbacks += other.fallbacks;
        self.invalid_states += other.invalid_states;
        self.nonfinite_accels += other.nonfinite_accels;
        self.spin_exhaustions += other.spin_exhaustions;
        self.pool_exhaustions += other.pool_exhaustions;
        self.slow_workers += other.slow_workers;
    }
}

impl std::fmt::Display for RecoveryCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retries={} fallbacks={} invalid-states={} nonfinite-accels={} \
             spin-exhaustions={} pool-exhaustions={} slow-workers={}",
            self.build_retries,
            self.fallbacks,
            self.invalid_states,
            self.nonfinite_accels,
            self.spin_exhaustions,
            self.pool_exhaustions,
            self.slow_workers,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_merge() {
        let mut c = RecoveryCounters::new();
        c.record_build_error(BuildError::SpinBudgetExhausted { spins: 10 });
        c.record_build_error(BuildError::PoolExhausted { requested_nodes: 8 });
        c.record_build_error(BuildError::InvalidPositions);
        c.record_build_error(BuildError::NotSorted); // unclassified: no panic
        assert_eq!(c.spin_exhaustions, 1);
        assert_eq!(c.pool_exhaustions, 1);
        assert_eq!(c.invalid_states, 1);

        let mut d = RecoveryCounters { fallbacks: 2, build_retries: 1, ..Default::default() };
        d.merge(&c);
        assert_eq!(d.spin_exhaustions, 1);
        assert_eq!(d.fallbacks, 2);
        assert_eq!(d.total_recoveries(), 4);
    }

    #[test]
    fn display_is_greppable() {
        let c = RecoveryCounters { fallbacks: 3, ..Default::default() };
        let s = c.to_string();
        assert!(s.contains("fallbacks=3"), "{s}");
    }
}
