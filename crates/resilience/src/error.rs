//! The shared tree-build error type.

/// Everything that can go wrong while building an octree or a BVH.
///
/// Both builders previously panicked (or spun forever) on these conditions;
/// they now surface them as values so callers — in particular the resilient
/// solver wrapper in `nbody-sim` — can decide between retrying, degrading
/// to another solver, or aborting the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The node pool ran out of groups mid-build. Retryable: the builders
    /// grow the pool geometrically and rebuild.
    PoolExhausted {
        /// Pool size (in nodes) that proved insufficient.
        requested_nodes: u32,
    },
    /// More bodies than the `u32` index space of the node pools can address.
    TooManyBodies {
        /// Number of bodies requested.
        n: usize,
    },
    /// A position was NaN/infinite, or the bounding box of a non-empty body
    /// set was empty — no spatial tree can be defined.
    InvalidPositions,
    /// A worker exceeded its bounded-spin budget waiting on a locked child
    /// slot. Under the paper's *parallel forward progress* guarantee this
    /// indicates a livelock (e.g. a stuck or preempted lock holder), not
    /// ordinary contention.
    SpinBudgetExhausted {
        /// Consecutive spins observed by the worker that gave up.
        spins: u64,
    },
    /// A BVH build was attempted before Hilbert-sorting its bodies.
    NotSorted,
    /// `positions` and `masses` disagree in length.
    LengthMismatch {
        /// Number of positions supplied.
        positions: usize,
        /// Number of masses supplied.
        masses: usize,
    },
}

impl BuildError {
    /// Whether a rebuild with grown capacity can succeed. Only pool
    /// exhaustion qualifies; the other variants are input or liveness
    /// defects that a bigger pool cannot fix.
    pub fn is_retryable(self) -> bool {
        matches!(self, BuildError::PoolExhausted { .. })
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BuildError::PoolExhausted { requested_nodes } => {
                write!(f, "node pool exhausted at {requested_nodes} nodes")
            }
            BuildError::TooManyBodies { n } => write!(f, "too many bodies for u32 indices: {n}"),
            BuildError::InvalidPositions => write!(f, "positions invalid or bounding box empty"),
            BuildError::SpinBudgetExhausted { spins } => {
                write!(f, "spin budget exhausted after {spins} consecutive spins on a locked slot")
            }
            BuildError::NotSorted => write!(f, "bodies must be hilbert-sorted before building"),
            BuildError::LengthMismatch { positions, masses } => {
                write!(f, "length mismatch: {positions} positions vs {masses} masses")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_pool_exhaustion_is_retryable() {
        assert!(BuildError::PoolExhausted { requested_nodes: 64 }.is_retryable());
        assert!(!BuildError::TooManyBodies { n: 5_000_000_000 }.is_retryable());
        assert!(!BuildError::InvalidPositions.is_retryable());
        assert!(!BuildError::SpinBudgetExhausted { spins: 1 << 20 }.is_retryable());
        assert!(!BuildError::NotSorted.is_retryable());
        assert!(!BuildError::LengthMismatch { positions: 3, masses: 2 }.is_retryable());
    }

    #[test]
    fn display_mentions_the_key_quantity() {
        let s = BuildError::PoolExhausted { requested_nodes: 128 }.to_string();
        assert!(s.contains("128"), "{s}");
        let s = BuildError::SpinBudgetExhausted { spins: 4096 }.to_string();
        assert!(s.contains("4096"), "{s}");
        let s = BuildError::LengthMismatch { positions: 10, masses: 9 }.to_string();
        assert!(s.contains("10") && s.contains('9'), "{s}");
    }
}
