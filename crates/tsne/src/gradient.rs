//! Barnes-Hut t-SNE gradient descent (van der Maaten 2013).
//!
//! Gradient of the KL divergence, split as in the BH-SNE paper:
//!
//! ```text
//! ∂C/∂y_i = 4 ( Σ_j p_ij q_ij (y_i−y_j)  −  (1/Z) Σ_j q_ij² (y_i−y_j) )
//!            \_____ attractive, sparse _/    \__ repulsive, Barnes-Hut _/
//! ```
//!
//! with `q_ij = 1/(1+‖y_i−y_j‖²)` (unnormalised Student-t) and
//! `Z = Σ_{k≠l} q_kl`. The repulsive sum and `Z` are approximated with the
//! concurrent octree's visitor traversal at acceptance threshold θ, using
//! unit weights so node masses are body counts.

use crate::affinity::{gaussian_affinities, SparseAffinities};
use bh_octree::Octree;
use nbody_math::{Aabb, SplitMix64, Vec3};
use std::cell::Cell;
use stdpar::prelude::*;

/// Hyper-parameters (defaults follow the reference implementation).
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    pub perplexity: f64,
    /// Barnes-Hut acceptance threshold.
    pub theta: f64,
    pub learning_rate: f64,
    pub iters: usize,
    /// Multiply `P` by this factor for the first `exaggeration_iters`.
    pub early_exaggeration: f64,
    pub exaggeration_iters: usize,
    pub seed: u64,
    /// Use the native 2-D quadtree (`bh-quadtree`) for the repulsion
    /// field; `false` embeds the plane in the 3-D octree instead. The two
    /// agree (tested) — the quadtree halves the per-node footprint.
    pub use_quadtree: bool,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            theta: 0.5,
            learning_rate: 200.0,
            iters: 500,
            early_exaggeration: 12.0,
            exaggeration_iters: 100,
            seed: 42,
            use_quadtree: true,
        }
    }
}

/// The Barnes-Hut t-SNE embedder.
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    pub fn new(config: TsneConfig) -> Self {
        Tsne { config }
    }

    /// Embed `n × dim` row-major `data` into 2-D. Returns `n` points.
    pub fn run(&self, data: &[f64], dim: usize) -> Vec<[f64; 2]> {
        let p = gaussian_affinities(data, dim, self.config.perplexity);
        self.run_with_affinities(&p)
    }

    /// Embed from precomputed affinities.
    pub fn run_with_affinities(&self, p: &SparseAffinities) -> Vec<[f64; 2]> {
        let n = p.n();
        let cfg = self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        // Standard tiny-Gaussian initialisation.
        let mut y: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.normal() * 1e-4, rng.normal() * 1e-4, 0.0))
            .collect();
        let mut velocity = vec![Vec3::ZERO; n];
        let mut gains = vec![Vec3::ONE; n];
        let unit = vec![1.0f64; n];
        let mut tree = Octree::new();
        let mut qtree = bh_quadtree::Quadtree::new();

        for iter in 0..cfg.iters {
            let exaggeration =
                if iter < cfg.exaggeration_iters { cfg.early_exaggeration } else { 1.0 };
            let momentum = if iter < cfg.exaggeration_iters { 0.5 } else { 0.8 };

            let (rep, z) = if cfg.use_quadtree {
                repulsion_field_quadtree(&mut qtree, &y, &unit, cfg.theta)
            } else {
                repulsion_field(&mut tree, &y, &unit, cfg.theta)
            };
            let grad = gradient(p, &y, &rep, z, exaggeration);

            // Momentum update with per-coordinate adaptive gains.
            for i in 0..n {
                let g = grad[i];
                for c in 0..2 {
                    let sign_match = g[c].signum() == velocity[i][c].signum();
                    gains[i][c] =
                        if sign_match { (gains[i][c] * 0.8).max(0.01) } else { gains[i][c] + 0.2 };
                }
                velocity[i] = velocity[i] * momentum
                    - Vec3::new(g.x * gains[i].x, g.y * gains[i].y, 0.0) * cfg.learning_rate;
                y[i] += velocity[i];
                y[i].z = 0.0;
            }
            // Re-centre (the gradient is translation-invariant).
            let com: Vec3 = y.iter().fold(Vec3::ZERO, |a, &v| a + v) / n as f64;
            for v in &mut y {
                *v -= com;
            }
        }
        y.into_iter().map(|v| [v.x, v.y]).collect()
    }

    /// KL divergence of the current embedding (exact `O(N²)`; diagnostics).
    pub fn kl_divergence(p: &SparseAffinities, y: &[[f64; 2]]) -> f64 {
        let n = p.n();
        let mut z = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let dx = y[i][0] - y[j][0];
                    let dy = y[i][1] - y[j][1];
                    z += 1.0 / (1.0 + dx * dx + dy * dy);
                }
            }
        }
        let mut kl = 0.0;
        for i in 0..n {
            for (j, pij) in p.row(i) {
                if pij > 0.0 {
                    let dx = y[i][0] - y[j as usize][0];
                    let dy = y[i][1] - y[j as usize][1];
                    let qij = (1.0 / (1.0 + dx * dx + dy * dy)) / z;
                    kl += pij * (pij / qij.max(1e-300)).ln();
                }
            }
        }
        kl
    }
}

/// Barnes-Hut repulsive field: per point `Σ_j q² d` plus the global
/// normaliser `Z = Σ q`. Exact pairwise when `theta == 0`.
pub fn repulsion_field(
    tree: &mut Octree,
    y: &[Vec3],
    unit: &[f64],
    theta: f64,
) -> (Vec<Vec3>, f64) {
    let n = y.len();
    tree.build(Par, y, Aabb::from_points(y)).expect("tsne octree build");
    tree.compute_multipoles(Par, y, unit);

    let mut rep = vec![Vec3::ZERO; n];
    let mut z_parts = vec![0.0f64; n];
    {
        let rep_out = SyncSlice::new(&mut rep);
        let z_out = SyncSlice::new(&mut z_parts);
        let tree_ref = &*tree;
        for_each_index(Par, 0..n, |i| {
            let p = y[i];
            let acc = Cell::new(Vec3::ZERO);
            let z = Cell::new(0.0f64);
            tree_ref.traverse(
                p,
                theta,
                |node| {
                    let d = p - node.com;
                    let q = 1.0 / (1.0 + d.norm2());
                    z.set(z.get() + node.mass * q);
                    acc.set(acc.get() + d * (node.mass * q * q));
                },
                |b| {
                    if b != i as u32 {
                        let d = p - y[b as usize];
                        let q = 1.0 / (1.0 + d.norm2());
                        z.set(z.get() + q);
                        acc.set(acc.get() + d * (q * q));
                    }
                },
            );
            unsafe {
                rep_out.write(i, acc.get());
                z_out.write(i, z.get());
            }
        });
    }
    let z_total: f64 = z_parts.iter().sum();
    (rep, z_total.max(1e-12))
}

/// Like [`repulsion_field`], but on the native 2-D quadtree: positions are
/// projected to `Vec2`, the tree is built and reduced in 2-D, and the
/// resulting field is lifted back to the planar `Vec3` representation.
pub fn repulsion_field_quadtree(
    tree: &mut bh_quadtree::Quadtree,
    y: &[Vec3],
    unit: &[f64],
    theta: f64,
) -> (Vec<Vec3>, f64) {
    use nbody_math::vec2::{Rect, Vec2};
    let n = y.len();
    let y2: Vec<Vec2> = y.iter().map(|p| Vec2::new(p.x, p.y)).collect();
    tree.build(Par, &y2, Rect::from_points(&y2)).expect("tsne quadtree build");
    tree.compute_multipoles(Par, &y2, unit);

    let mut rep = vec![Vec3::ZERO; n];
    let mut z_parts = vec![0.0f64; n];
    {
        let rep_out = SyncSlice::new(&mut rep);
        let z_out = SyncSlice::new(&mut z_parts);
        let tree_ref = &*tree;
        let y2_ref = &y2;
        for_each_index(Par, 0..n, |i| {
            let p = y2_ref[i];
            let acc = Cell::new(Vec2::ZERO);
            let z = Cell::new(0.0f64);
            tree_ref.traverse(
                p,
                theta,
                |node| {
                    let d = p - node.com;
                    let q = 1.0 / (1.0 + d.norm2());
                    z.set(z.get() + node.mass * q);
                    acc.set(acc.get() + d * (node.mass * q * q));
                },
                |b| {
                    if b != i as u32 {
                        let d = p - y2_ref[b as usize];
                        let q = 1.0 / (1.0 + d.norm2());
                        z.set(z.get() + q);
                        acc.set(acc.get() + d * (q * q));
                    }
                },
            );
            let a = acc.get();
            unsafe {
                rep_out.write(i, Vec3::new(a.x, a.y, 0.0));
                z_out.write(i, z.get());
            }
        });
    }
    let z_total: f64 = z_parts.iter().sum();
    (rep, z_total.max(1e-12))
}

/// Full KL gradient from the sparse attractive term and the BH repulsion.
fn gradient(
    p: &SparseAffinities,
    y: &[Vec3],
    rep: &[Vec3],
    z: f64,
    exaggeration: f64,
) -> Vec<Vec3> {
    let n = y.len();
    let mut grad = vec![Vec3::ZERO; n];
    {
        let out = SyncSlice::new(&mut grad);
        for_each_index(Par, 0..n, |i| {
            let mut attr = Vec3::ZERO;
            for (j, pij) in p.row(i) {
                let d = y[i] - y[j as usize];
                let q = 1.0 / (1.0 + d.norm2());
                attr += d * (exaggeration * pij * q);
            }
            unsafe { out.write(i, (attr - rep[i] / z) * 4.0) };
        });
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_data(n_per: usize, dim: usize, centers: &[f64], seed: u64) -> Vec<f64> {
        let mut r = SplitMix64::new(seed);
        let mut data = Vec::new();
        for &c in centers {
            for _ in 0..n_per {
                for _ in 0..dim {
                    data.push(c + r.normal() * 0.2);
                }
            }
        }
        data
    }

    #[test]
    fn bh_repulsion_matches_exact_at_theta_zero_and_is_close_at_half() {
        let mut r = SplitMix64::new(7);
        let y: Vec<Vec3> =
            (0..300).map(|_| Vec3::new(r.normal(), r.normal(), 0.0)).collect();
        let unit = vec![1.0; y.len()];
        let mut tree = Octree::new();
        let (exact, z_exact) = repulsion_field(&mut tree, &y, &unit, 0.0);
        let (approx, z_approx) = repulsion_field(&mut tree, &y, &unit, 0.5);
        assert!((z_approx - z_exact).abs() < 0.02 * z_exact, "Z {z_approx} vs {z_exact}");
        let mut worst = 0.0f64;
        for (a, e) in approx.iter().zip(&exact) {
            worst = worst.max((*a - *e).norm() / (1e-9 + e.norm()));
        }
        assert!(worst < 0.25, "worst relative repulsion error {worst}");
        // And the exact branch really is exact: cross-check one point.
        let p = y[0];
        let mut reference = Vec3::ZERO;
        for (j, &x) in y.iter().enumerate() {
            if j != 0 {
                let d = p - x;
                let q = 1.0 / (1.0 + d.norm2());
                reference += d * (q * q);
            }
        }
        assert!((exact[0] - reference).norm() < 1e-12);
    }

    #[test]
    fn clusters_separate_and_kl_decreases() {
        let n_per = 60;
        let data = cluster_data(n_per, 8, &[0.0, 12.0, -12.0], 11);
        let p = gaussian_affinities(&data, 8, 15.0);

        let early = Tsne::new(TsneConfig {
            iters: 5,
            perplexity: 15.0,
            ..Default::default()
        })
        .run_with_affinities(&p);
        let late = Tsne::new(TsneConfig {
            iters: 350,
            perplexity: 15.0,
            ..Default::default()
        })
        .run_with_affinities(&p);

        let kl_early = Tsne::kl_divergence(&p, &early);
        let kl_late = Tsne::kl_divergence(&p, &late);
        assert!(kl_late < kl_early, "KL should decrease: {kl_early} -> {kl_late}");

        // Separation quality: inter-centroid vs intra-cluster spread.
        let centroid = |pts: &[[f64; 2]]| {
            let (mut cx, mut cy) = (0.0, 0.0);
            for p in pts {
                cx += p[0];
                cy += p[1];
            }
            [cx / pts.len() as f64, cy / pts.len() as f64]
        };
        let groups: Vec<&[[f64; 2]]> =
            vec![&late[..n_per], &late[n_per..2 * n_per], &late[2 * n_per..]];
        let cents: Vec<[f64; 2]> = groups.iter().map(|g| centroid(g)).collect();
        let intra: f64 = groups
            .iter()
            .zip(&cents)
            .map(|(g, c)| {
                g.iter().map(|p| ((p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2)).sqrt()).sum::<f64>()
                    / g.len() as f64
            })
            .sum::<f64>()
            / 3.0;
        let mut inter = 0.0;
        let mut pairs = 0.0;
        for a in 0..3 {
            for b in (a + 1)..3 {
                inter += ((cents[a][0] - cents[b][0]).powi(2)
                    + (cents[a][1] - cents[b][1]).powi(2))
                .sqrt();
                pairs += 1.0;
            }
        }
        inter /= pairs;
        assert!(
            inter > 2.0 * intra,
            "clusters not separated: inter {inter} vs intra {intra}"
        );
    }

    #[test]
    fn quadtree_and_octree_backends_agree() {
        let mut r = SplitMix64::new(19);
        let y: Vec<Vec3> = (0..400).map(|_| Vec3::new(r.normal(), r.normal(), 0.0)).collect();
        let unit = vec![1.0; y.len()];
        let mut oct = Octree::new();
        let mut quad = bh_quadtree::Quadtree::new();
        // Exact mode: both must produce the identical (exact) field.
        let (ro, zo) = repulsion_field(&mut oct, &y, &unit, 0.0);
        let (rq, zq) = repulsion_field_quadtree(&mut quad, &y, &unit, 0.0);
        assert!((zo - zq).abs() < 1e-9 * zo);
        for (a, b) in ro.iter().zip(&rq) {
            assert!((*a - *b).norm() < 1e-9 * (1.0 + a.norm()));
        }
        // Approximate mode: close agreement (different tree shapes).
        let (ro, zo) = repulsion_field(&mut oct, &y, &unit, 0.5);
        let (rq, zq) = repulsion_field_quadtree(&mut quad, &y, &unit, 0.5);
        assert!((zo - zq).abs() < 0.03 * zo, "Z {zo} vs {zq}");
        let mut mean = 0.0;
        for (a, b) in ro.iter().zip(&rq) {
            mean += (*a - *b).norm() / (1e-9 + a.norm().max(b.norm()));
        }
        mean /= ro.len() as f64;
        assert!(mean < 0.2, "mean backend disagreement {mean}");
    }

    #[test]
    fn embedding_is_deterministic_for_fixed_seed() {
        let data = cluster_data(30, 4, &[0.0, 6.0], 13);
        let cfg = TsneConfig { iters: 40, perplexity: 8.0, seed: 5, ..Default::default() };
        let a = Tsne::new(cfg).run(&data, 4);
        let b = Tsne::new(cfg).run(&data, 4);
        // The octree multipole reduction commutes floats; on a fixed tree
        // with Seq-equivalent single-core execution results coincide, but we
        // only require near-equality to stay robust on multi-core hosts.
        for (pa, pb) in a.iter().zip(&b) {
            assert!((pa[0] - pb[0]).abs() < 1e-6 && (pa[1] - pb[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn output_stays_planar_and_finite() {
        let data = cluster_data(25, 3, &[0.0, 4.0], 17);
        let emb = Tsne::new(TsneConfig { iters: 60, perplexity: 8.0, ..Default::default() })
            .run(&data, 3);
        assert_eq!(emb.len(), 50);
        assert!(emb.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }
}
