//! Input-space affinities: perplexity-calibrated Gaussian conditionals,
//! restricted to k nearest neighbours and symmetrised (van der Maaten 2013,
//! §3 of the Barnes-Hut-SNE paper).

use stdpar::prelude::*;

/// Symmetric sparse joint distribution `P` in CSR layout.
#[derive(Clone, Debug)]
pub struct SparseAffinities {
    /// Row offsets (`n + 1` entries).
    pub offsets: Vec<usize>,
    /// Column indices per row.
    pub columns: Vec<u32>,
    /// `p_ij` values (sum over all entries ≈ 1).
    pub values: Vec<f64>,
}

impl SparseAffinities {
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Iterate the nonzeros of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.offsets[i]..self.offsets[i + 1];
        self.columns[r.clone()].iter().copied().zip(self.values[r].iter().copied())
    }

    /// Total probability mass (≈ 1 after construction).
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }
}

/// Compute perplexity-calibrated affinities for `n` points of
/// dimensionality `dim`, stored row-major in `data` (`n × dim`).
///
/// `k = min(n-1, ceil(3·perplexity))` neighbours per point, as in the
/// reference implementation. `O(N²·dim)` neighbour search — appropriate
/// for the N ≤ tens of thousands this crate targets.
pub fn gaussian_affinities(data: &[f64], dim: usize, perplexity: f64) -> SparseAffinities {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    let n = data.len() / dim;
    assert!(n >= 2, "need at least two points");
    assert!(perplexity >= 1.0, "perplexity must be >= 1");
    let k = ((3.0 * perplexity).ceil() as usize).min(n - 1).max(1);

    // k nearest neighbours per point (squared distances), in parallel.
    let mut knn: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    {
        let out = SyncSlice::new(&mut knn);
        for_each_index(Par, 0..n, |i| {
            let xi = &data[i * dim..(i + 1) * dim];
            let mut dists: Vec<(u32, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    let xj = &data[j * dim..(j + 1) * dim];
                    let d2: f64 =
                        xi.iter().zip(xj).map(|(a, b)| (a - b) * (a - b)).sum();
                    (j as u32, d2)
                })
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            dists.truncate(k);
            unsafe { out.write(i, dists) };
        });
    }

    // Per-row bandwidth calibration: find beta = 1/(2σ²) such that the
    // Shannon entropy of p_{j|i} equals log2(perplexity).
    let target_entropy = perplexity.ln(); // nats
    let mut conditionals: Vec<Vec<f64>> = vec![Vec::new(); n];
    {
        let out = SyncSlice::new(&mut conditionals);
        let knn_ref = &knn;
        for_each_index(Par, 0..n, |i| {
            let row = &knn_ref[i];
            let d_min = row.first().map(|&(_, d)| d).unwrap_or(0.0);
            let mut lo = 0.0f64;
            let mut hi = f64::INFINITY;
            let mut beta = 1.0 / (1e-12 + d_min.max(1e-12));
            let mut probs = vec![0.0; row.len()];
            for _ in 0..64 {
                let mut sum = 0.0;
                for (p, &(_, d2)) in probs.iter_mut().zip(row) {
                    // Shift by d_min for numerical stability.
                    *p = (-(d2 - d_min) * beta).exp();
                    sum += *p;
                }
                let mut entropy = 0.0;
                for p in probs.iter_mut() {
                    *p /= sum;
                    if *p > 1e-300 {
                        entropy -= *p * p.ln();
                    }
                }
                let diff = entropy - target_entropy;
                if diff.abs() < 1e-5 {
                    break;
                }
                if diff > 0.0 {
                    // Too flat: increase beta (narrow the Gaussian).
                    lo = beta;
                    beta = if hi.is_finite() { 0.5 * (beta + hi) } else { beta * 2.0 };
                } else {
                    hi = beta;
                    beta = 0.5 * (beta + lo);
                }
            }
            unsafe { out.write(i, probs) };
        });
    }

    // Symmetrise: p_ij = (p_{j|i} + p_{i|j}) / (2n), building CSR rows.
    // Collect directed entries into per-row maps first.
    let mut rows: Vec<std::collections::BTreeMap<u32, f64>> =
        vec![std::collections::BTreeMap::new(); n];
    for i in 0..n {
        for (&(j, _), &p) in knn[i].iter().zip(conditionals[i].iter()) {
            let w = p / (2.0 * n as f64);
            *rows[i].entry(j).or_insert(0.0) += w;
            *rows[j as usize].entry(i as u32).or_insert(0.0) += w;
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut columns = Vec::new();
    let mut values = Vec::new();
    offsets.push(0);
    for row in rows {
        for (j, w) in row {
            columns.push(j);
            values.push(w);
        }
        offsets.push(columns.len());
    }
    SparseAffinities { offsets, columns, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;

    fn clusters(n_per: usize, dim: usize, centers: &[f64], seed: u64) -> Vec<f64> {
        let mut r = SplitMix64::new(seed);
        let mut data = Vec::new();
        for &c in centers {
            for _ in 0..n_per {
                for _ in 0..dim {
                    data.push(c + r.normal() * 0.3);
                }
            }
        }
        data
    }

    #[test]
    fn total_mass_is_one() {
        let data = clusters(50, 4, &[0.0, 10.0], 1);
        let p = gaussian_affinities(&data, 4, 15.0);
        assert!((p.total() - 1.0).abs() < 1e-9, "total {}", p.total());
        assert_eq!(p.n(), 100);
    }

    #[test]
    fn affinities_are_symmetric() {
        let data = clusters(30, 3, &[0.0, 5.0], 2);
        let p = gaussian_affinities(&data, 3, 10.0);
        // Rebuild a dense matrix to check symmetry.
        let n = p.n();
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            for (j, w) in p.row(i) {
                dense[i * n + j as usize] = w;
            }
        }
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (dense[i * n + j] - dense[j * n + i]).abs() < 1e-12,
                    "asymmetry at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn neighbours_within_cluster_dominate() {
        let n_per = 40;
        let data = clusters(n_per, 5, &[0.0, 20.0], 3);
        let p = gaussian_affinities(&data, 5, 10.0);
        // Mass of within-cluster links should dwarf cross-cluster links.
        let mut within = 0.0;
        let mut across = 0.0;
        for i in 0..p.n() {
            for (j, w) in p.row(i) {
                if (i < n_per) == ((j as usize) < n_per) {
                    within += w;
                } else {
                    across += w;
                }
            }
        }
        assert!(within > 100.0 * across, "within {within}, across {across}");
    }

    #[test]
    fn perplexity_is_matched() {
        let data = clusters(60, 4, &[0.0], 4);
        let perplexity = 12.0;
        // Re-derive entropy from the conditionals implicitly: each row of
        // the symmetrised matrix should have ~2k = 6·perplexity nonzeros
        // (own k plus incoming links), and row masses should be ~1/n.
        let p = gaussian_affinities(&data, 4, perplexity);
        let n = p.n();
        for i in 0..n {
            let row_mass: f64 = p.row(i).map(|(_, w)| w).sum();
            assert!(row_mass > 0.2 / n as f64, "row {i} mass {row_mass}");
            assert!(row_mass < 5.0 / n as f64, "row {i} mass {row_mass}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_dim() {
        let _ = gaussian_affinities(&[1.0, 2.0, 3.0], 2, 5.0);
    }
}
