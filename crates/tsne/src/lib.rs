//! # bh-tsne — Barnes-Hut t-SNE on the concurrent octree
//!
//! The paper motivates Barnes-Hut beyond cosmology with "high-dimensional
//! data visualisation in machine learning" (§I) and cites van der Maaten's
//! Barnes-Hut-SNE (§VI, [28]). This crate implements that algorithm on top
//! of `bh-octree`'s generic visitor traversal:
//!
//! 1. **Input affinities** ([`affinity`]): per-point Gaussian bandwidths
//!    calibrated to a target perplexity by binary search; conditional
//!    probabilities restricted to the k nearest neighbours (k = 3·perplexity,
//!    as in the reference implementation) and symmetrised into a sparse
//!    joint distribution `P`.
//! 2. **Gradient descent** ([`gradient`]): the attractive term is the
//!    sparse sum over `P`; the repulsive term — the `O(N²)` part — is
//!    approximated with the Barnes-Hut octree using the Student-t kernel
//!    `q = 1/(1+‖d‖²)`, at the same θ as the gravity solver. Standard
//!    momentum + per-parameter gains + early exaggeration schedule.
//!
//! The embedding is 2-D (stored on the z = 0 plane, so the octree
//! degenerates gracefully into the quadtree of the paper's Fig. 1).
//!
//! ```
//! use bh_tsne::{Tsne, TsneConfig};
//!
//! // Two tight 5-D clusters → two separated 2-D islands.
//! let mut data = Vec::new();
//! for i in 0..60 {
//!     let c = if i % 2 == 0 { 0.0 } else { 8.0 };
//!     for d in 0..5 {
//!         data.push(c + 0.01 * ((i * 5 + d) % 7) as f64);
//!     }
//! }
//! let emb = Tsne::new(TsneConfig { iters: 150, perplexity: 10.0, ..Default::default() })
//!     .run(&data, 5);
//! assert_eq!(emb.len(), 60);
//! ```

pub mod affinity;
pub mod gradient;

pub use affinity::SparseAffinities;
pub use gradient::{Tsne, TsneConfig};
