//! Steppable lock-based concurrent tree insertion — the octree BUILDTREE
//! algorithm (paper Algorithms 4 & 5) translated into virtual threads.
//!
//! The tree is a 1-D bisection tree over `[0, 1)` (the binary analogue of
//! the octree: same tag states, same lock-subdivide-publish critical
//! section), which keeps the state machine small while preserving the
//! *synchronisation structure* exactly:
//!
//! * `pc = 0` — descend / try-claim / try-lock / **spin on Locked**;
//! * `pc = 1` — critical section, step 1: allocate children, move resident;
//! * `pc = 2` — critical section, step 2: publish children, release lock.
//!
//! The lock is therefore held across at least one scheduling boundary, and
//! any thread spinning at `pc = 0` in the same warp starves the holder
//! under min-pc lockstep scheduling — the paper's non-ITS hang.

use crate::scheduler::{Step, VThread};
use std::cell::RefCell;
use std::rc::Rc;

/// Tag states of a tree slot (mirrors `bh_octree::tags`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    Empty,
    Locked,
    Body(usize),
    /// Offset of the left child; the right child is `offset + 1`.
    Node(usize),
}

/// The shared concurrent tree (single-threaded simulation ⇒ `RefCell`).
pub struct SharedTree {
    slots: RefCell<Vec<Slot>>,
}

impl SharedTree {
    pub fn new() -> Rc<Self> {
        Rc::new(SharedTree { slots: RefCell::new(vec![Slot::Empty]) })
    }

    fn load(&self, i: usize) -> Slot {
        self.slots.borrow()[i]
    }

    fn store(&self, i: usize, s: Slot) {
        self.slots.borrow_mut()[i] = s;
    }

    /// Public slot read (used by the two-stage builder).
    pub fn load_pub(&self, i: usize) -> Slot {
        self.load(i)
    }

    /// Public slot write (used by the two-stage builder).
    pub fn store_pub(&self, i: usize, s: Slot) {
        self.store(i, s)
    }

    /// Public child-pair allocation (used by the two-stage builder).
    pub fn alloc_pair_pub(&self) -> usize {
        self.alloc_pair()
    }

    fn alloc_pair(&self) -> usize {
        let mut slots = self.slots.borrow_mut();
        let c = slots.len();
        slots.push(Slot::Empty);
        slots.push(Slot::Empty);
        c
    }

    /// Bodies reachable from the root (for post-run verification).
    pub fn collect_bodies(&self) -> Vec<usize> {
        let slots = self.slots.borrow();
        let mut out = vec![];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            match slots[i] {
                Slot::Empty | Slot::Locked => {}
                Slot::Body(b) => out.push(b),
                Slot::Node(c) => {
                    stack.push(c);
                    stack.push(c + 1);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// True iff no slot is left in the `Locked` state.
    pub fn no_locks_held(&self) -> bool {
        self.slots.borrow().iter().all(|s| *s != Slot::Locked)
    }
}

enum Phase {
    Descend,
    /// Holding the lock on `node`; `resident` must be pushed down.
    CriticalAlloc { resident: usize },
    /// Children allocated at `children`; publish pending.
    CriticalPublish { children: usize },
}

/// One virtual thread inserting `value` as body `body`.
pub struct InsertThread {
    tree: Rc<SharedTree>,
    value: f64,
    body: usize,
    node: usize,
    lo: f64,
    hi: f64,
    resident_value: f64,
    phase: Phase,
    /// Values of all bodies (to route residents during subdivision).
    values: Rc<Vec<f64>>,
}

impl InsertThread {
    pub fn new(tree: Rc<SharedTree>, values: Rc<Vec<f64>>, body: usize) -> Self {
        let value = values[body];
        assert!((0.0..1.0).contains(&value), "value must be in [0,1)");
        InsertThread {
            tree,
            value,
            body,
            node: 0,
            lo: 0.0,
            hi: 1.0,
            resident_value: 0.0,
            phase: Phase::Descend,
            values,
        }
    }

    fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

impl VThread for InsertThread {
    fn pc(&self) -> u32 {
        match self.phase {
            Phase::Descend => 0,
            Phase::CriticalAlloc { .. } => 1,
            Phase::CriticalPublish { .. } => 2,
        }
    }

    fn step(&mut self) -> Step {
        match self.phase {
            Phase::Descend => match self.tree.load(self.node) {
                Slot::Node(c) => {
                    // Forward step into the half covering `value`.
                    let mid = self.mid();
                    if self.value < mid {
                        self.hi = mid;
                        self.node = c;
                    } else {
                        self.lo = mid;
                        self.node = c + 1;
                    }
                    Step::Progress
                }
                Slot::Empty => {
                    // CAS Empty → Body (single-threaded sim: always wins).
                    self.tree.store(self.node, Slot::Body(self.body));
                    Step::Done
                }
                Slot::Body(resident) => {
                    // CAS Body → Locked: enter the critical section.
                    self.tree.store(self.node, Slot::Locked);
                    self.resident_value = self.values[resident];
                    self.phase = Phase::CriticalAlloc { resident };
                    Step::Progress
                }
                Slot::Locked => Step::Spin, // wait for the sub-divider
            },
            Phase::CriticalAlloc { resident } => {
                let c = self.tree.alloc_pair();
                // Move the resident into the child covering it.
                let mid = self.mid();
                let side = if self.resident_value < mid { c } else { c + 1 };
                self.tree.store(side, Slot::Body(resident));
                self.phase = Phase::CriticalPublish { children: c };
                Step::Progress
            }
            Phase::CriticalPublish { children } => {
                // Release store: publish the children, lock released.
                self.tree.store(self.node, Slot::Node(children));
                self.phase = Phase::Descend;
                Step::Progress // next step re-descends from this node
            }
        }
    }
}

/// `n` insertion threads with values spread over `[0.3, 0.7)` — every
/// thread initially contends at the root, so any warp with ≥ 2 threads
/// exercises the lock.
pub fn contended_insertion(n: usize, center: f64) -> Vec<Box<dyn VThread>> {
    let tree = SharedTree::new();
    insertion_threads(tree, n, center).0
}

/// Like [`contended_insertion`], but also returns the tree for inspection.
pub fn insertion_threads(
    tree: Rc<SharedTree>,
    n: usize,
    center: f64,
) -> (Vec<Box<dyn VThread>>, Rc<SharedTree>) {
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let spread = 0.4 * (i as f64 + 0.5) / n as f64 - 0.2;
            (center + spread).clamp(0.0, 1.0 - 1e-9)
        })
        .collect();
    let values = Rc::new(values);
    let threads: Vec<Box<dyn VThread>> = (0..n)
        .map(|b| Box::new(InsertThread::new(tree.clone(), values.clone(), b)) as Box<dyn VThread>)
        .collect();
    (threads, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_its, run_lockstep, Outcome};

    #[test]
    fn its_completes_and_tree_is_consistent() {
        for n in [2usize, 4, 16, 64] {
            let tree = SharedTree::new();
            let (threads, tree) = insertion_threads(tree, n, 0.5);
            let out = run_its(threads, 1_000_000);
            assert!(out.completed(), "n={n}: {out:?}");
            assert_eq!(tree.collect_bodies(), (0..n).collect::<Vec<_>>());
            assert!(tree.no_locks_held());
        }
    }

    #[test]
    fn lockstep_livelocks_with_contention_in_one_warp() {
        for n in [4usize, 8, 32] {
            let out = run_lockstep(contended_insertion(n, 0.5), n, 1_000_000);
            assert!(matches!(out, Outcome::Livelock { .. }), "n={n}: {out:?}");
        }
    }

    #[test]
    fn lockstep_with_unit_warps_completes() {
        // Warp width 1 ≡ independent scheduling: completes.
        let out = run_lockstep(contended_insertion(16, 0.5), 1, 1_000_000);
        assert!(out.completed(), "{out:?}");
    }

    #[test]
    fn single_thread_never_contends() {
        // One thread per warp trivially; also one thread total under
        // lockstep with any width.
        let out = run_lockstep(contended_insertion(1, 0.5), 32, 1000);
        assert!(out.completed());
    }

    #[test]
    fn sequential_seeded_tree_then_single_inserter_completes_under_lockstep() {
        // A lone inserter in its own warp cannot be starved even in
        // lockstep mode.
        let tree = SharedTree::new();
        let values = Rc::new(vec![0.35, 0.45, 0.55, 0.9]);
        {
            let threads: Vec<Box<dyn VThread>> = (0..3)
                .map(|b| {
                    Box::new(InsertThread::new(tree.clone(), values.clone(), b))
                        as Box<dyn VThread>
                })
                .collect();
            assert!(run_its(threads, 100_000).completed());
        }
        let t = InsertThread::new(tree.clone(), values, 3);
        let out = run_lockstep(vec![Box::new(t)], 4, 100_000);
        assert!(out.completed());
        assert_eq!(tree.collect_bodies(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn livelock_is_detected_quickly() {
        // The all-spin round detector fires long before the step budget.
        let out = run_lockstep(contended_insertion(8, 0.5), 8, u64::MAX);
        match out {
            Outcome::Livelock { steps } => assert!(steps < 10_000, "steps={steps}"),
            other => panic!("expected livelock, got {other:?}"),
        }
    }
}
