//! Virtual threads and the two scheduling semantics.

/// Result of one step of a virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Did useful work (may have changed `pc`).
    Progress,
    /// Busy-waiting on another thread (pc unchanged): a spin iteration.
    Spin,
    /// Finished.
    Done,
}

/// A deterministic, steppable virtual thread.
///
/// `pc` is the *program point* used by the lockstep scheduler's divergence
/// model: threads of a warp at different `pc`s have diverged, and the warp
/// serialises one side (the minimum `pc`) until reconvergence. Real SIMT
/// hardware picks an unspecified side; picking the minimum models the
/// unlucky-but-legal choice that makes lock-based algorithms hang, which is
/// exactly what the paper observed on non-ITS GPUs.
pub trait VThread {
    fn pc(&self) -> u32;
    fn step(&mut self) -> Step;
}

/// Outcome of a scheduler run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// All threads finished after `steps` total scheduler steps.
    Completed { steps: u64 },
    /// The step budget was exhausted with at least one live thread that
    /// only spins — the scheduler-level signature of a hang.
    Livelock { steps: u64 },
}

impl Outcome {
    pub fn completed(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }
}

/// Independent Thread Scheduling: fair round-robin over all live threads.
/// Every live thread is stepped once per round, so any thread that starts
/// is eventually re-scheduled — *parallel forward progress*.
pub fn run_its(mut threads: Vec<Box<dyn VThread>>, max_steps: u64) -> Outcome {
    let mut live: Vec<bool> = vec![true; threads.len()];
    let mut remaining = threads.len();
    let mut steps = 0u64;
    while remaining > 0 {
        for (t, alive) in threads.iter_mut().zip(live.iter_mut()) {
            if !*alive {
                continue;
            }
            if steps >= max_steps {
                return Outcome::Livelock { steps };
            }
            steps += 1;
            if t.step() == Step::Done {
                *alive = false;
                remaining -= 1;
            }
        }
    }
    Outcome::Completed { steps }
}

/// Legacy SIMT lockstep: threads are grouped into warps of `warp_width`.
/// Each round, each warp steps **only its live threads at the minimum
/// program counter** — the serialised branch side. Threads at other pcs
/// wait until that side reconverges (changes pc or finishes). This provides
/// only *weakly parallel* forward progress: a spin loop pinned at a low pc
/// starves every other thread in its warp, including the lock holder it is
/// waiting for.
pub fn run_lockstep(
    mut threads: Vec<Box<dyn VThread>>,
    warp_width: usize,
    max_steps: u64,
) -> Outcome {
    assert!(warp_width >= 1);
    let n = threads.len();
    let mut live: Vec<bool> = vec![true; n];
    let mut remaining = n;
    let mut steps = 0u64;
    while remaining > 0 {
        let mut any_progress = false;
        for warp_start in (0..n).step_by(warp_width) {
            let warp = warp_start..(warp_start + warp_width).min(n);
            // Divergence: the scheduler commits to the minimum-pc side.
            let min_pc = warp
                .clone()
                .filter(|&i| live[i])
                .map(|i| threads[i].pc())
                .min();
            let Some(min_pc) = min_pc else { continue };
            for i in warp {
                if !live[i] || threads[i].pc() != min_pc {
                    continue;
                }
                if steps >= max_steps {
                    return Outcome::Livelock { steps };
                }
                steps += 1;
                match threads[i].step() {
                    Step::Done => {
                        live[i] = false;
                        remaining -= 1;
                        any_progress = true;
                    }
                    Step::Progress => any_progress = true,
                    Step::Spin => {}
                }
            }
        }
        // Fast livelock detection: a full round of pure spinning can never
        // un-stick itself (the spinners are the only threads being run).
        if !any_progress {
            return Outcome::Livelock { steps };
        }
    }
    Outcome::Completed { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A thread that counts down `k` progress steps.
    struct Countdown {
        left: u32,
    }
    impl VThread for Countdown {
        fn pc(&self) -> u32 {
            0
        }
        fn step(&mut self) -> Step {
            if self.left == 0 {
                return Step::Done;
            }
            self.left -= 1;
            Step::Progress
        }
    }

    /// Classic two-thread lock scenario: thread 0 spins (pc 0) until a flag
    /// is set; thread 1 needs `delay` progress steps at pc 1 before setting
    /// it. With min-pc lockstep in a shared warp this livelocks; split into
    /// different warps or run under ITS it completes.
    fn lock_pair(delay: u32) -> Vec<Box<dyn VThread>> {
        let flag = Rc::new(Cell::new(false));
        struct Waiter {
            flag: Rc<Cell<bool>>,
        }
        impl VThread for Waiter {
            fn pc(&self) -> u32 {
                0
            }
            fn step(&mut self) -> Step {
                if self.flag.get() {
                    Step::Done
                } else {
                    Step::Spin
                }
            }
        }
        struct Holder {
            flag: Rc<Cell<bool>>,
            left: u32,
        }
        impl VThread for Holder {
            fn pc(&self) -> u32 {
                1
            }
            fn step(&mut self) -> Step {
                if self.left > 0 {
                    self.left -= 1;
                    Step::Progress
                } else {
                    self.flag.set(true);
                    Step::Done
                }
            }
        }
        vec![
            Box::new(Waiter { flag: flag.clone() }),
            Box::new(Holder { flag, left: delay }),
        ]
    }

    #[test]
    fn countdowns_complete_under_both() {
        let mk = || -> Vec<Box<dyn VThread>> {
            (1..=5).map(|k| Box::new(Countdown { left: k }) as Box<dyn VThread>).collect()
        };
        assert!(run_its(mk(), 1000).completed());
        assert!(run_lockstep(mk(), 4, 1000).completed());
        assert!(run_lockstep(mk(), 1, 1000).completed());
    }

    #[test]
    fn its_resolves_lock_dependency() {
        assert!(run_its(lock_pair(3), 1000).completed());
    }

    #[test]
    fn lockstep_same_warp_livelocks_on_lock_dependency() {
        let out = run_lockstep(lock_pair(3), 2, 1000);
        assert!(matches!(out, Outcome::Livelock { .. }), "{out:?}");
    }

    #[test]
    fn lockstep_separate_warps_completes() {
        // warp width 1 ⇒ every thread its own warp ⇒ fair scheduling.
        assert!(run_lockstep(lock_pair(3), 1, 1000).completed());
    }

    #[test]
    fn step_budget_reports_livelock() {
        struct Forever;
        impl VThread for Forever {
            fn pc(&self) -> u32 {
                0
            }
            fn step(&mut self) -> Step {
                Step::Progress // always "working", never done
            }
        }
        let out = run_its(vec![Box::new(Forever)], 100);
        assert!(matches!(out, Outcome::Livelock { steps: 100 }));
    }

    #[test]
    fn empty_thread_set_completes_immediately() {
        assert_eq!(run_its(vec![], 10), Outcome::Completed { steps: 0 });
        assert_eq!(run_lockstep(vec![], 4, 10), Outcome::Completed { steps: 0 });
    }

    #[test]
    fn determinism() {
        let a = run_lockstep(lock_pair(3), 2, 500);
        let b = run_lockstep(lock_pair(3), 2, 500);
        assert_eq!(a, b);
        let c = run_its(lock_pair(7), 500);
        let d = run_its(lock_pair(7), 500);
        assert_eq!(c, d);
    }
}
