//! Steppable atomic accumulation — the `All-Pairs-Col` synchronisation
//! pattern (paper §V-A: "parallelize over the force-pairs with concurrent
//! accumulation via `atomic::fetch_add`").
//!
//! Lock-free `fetch_add` never *waits* on another thread, so the pattern
//! completes under lockstep scheduling too (which is why the paper could
//! measure `All-Pairs-Col` on AMD/Intel GPUs after swapping `par` for
//! `par_unseq`, even though that is formally outside the C++ contract —
//! atomics are vectorization-unsafe). The simulator captures the *forward
//! progress* half of that story: unlike the lock-based tree build, the
//! accumulation can never livelock.

use crate::scheduler::{Step, VThread};
use std::cell::Cell;
use std::rc::Rc;

/// A shared accumulator cell bank.
pub struct Accumulators {
    cells: Vec<Cell<i64>>,
}

impl Accumulators {
    pub fn new(n: usize) -> Rc<Self> {
        Rc::new(Accumulators { cells: (0..n).map(|_| Cell::new(0)).collect() })
    }

    pub fn value(&self, i: usize) -> i64 {
        self.cells[i].get()
    }
}

/// One thread performing a fixed schedule of `fetch_add`s (one per step).
pub struct AccumThread {
    acc: Rc<Accumulators>,
    ops: Vec<(usize, i64)>,
    next: usize,
}

impl AccumThread {
    pub fn new(acc: Rc<Accumulators>, ops: Vec<(usize, i64)>) -> Self {
        AccumThread { acc, ops, next: 0 }
    }
}

impl VThread for AccumThread {
    fn pc(&self) -> u32 {
        // All threads share one program point: a straight-line loop of
        // atomic adds. (Divergence would not matter anyway — no spinning.)
        0
    }

    fn step(&mut self) -> Step {
        match self.ops.get(self.next) {
            None => Step::Done,
            Some(&(i, v)) => {
                self.acc.cells[i].set(self.acc.cells[i].get() + v);
                self.next += 1;
                Step::Progress
            }
        }
    }
}

/// An all-pairs-col style workload: `threads` threads, each adding `+1`
/// into every one of `n` accumulators (expected final value: `threads`).
pub fn accumulation(threads: usize, n: usize) -> (Vec<Box<dyn VThread>>, Rc<Accumulators>) {
    let acc = Accumulators::new(n);
    let ts: Vec<Box<dyn VThread>> = (0..threads)
        .map(|t| {
            // Stagger the visit order per thread to interleave accesses.
            let ops: Vec<(usize, i64)> = (0..n).map(|k| ((k + t) % n, 1)).collect();
            Box::new(AccumThread::new(acc.clone(), ops)) as Box<dyn VThread>
        })
        .collect();
    (ts, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_its, run_lockstep};

    #[test]
    fn completes_and_sums_under_its() {
        let (threads, acc) = accumulation(16, 32);
        assert!(run_its(threads, 1_000_000).completed());
        for i in 0..32 {
            assert_eq!(acc.value(i), 16);
        }
    }

    #[test]
    fn completes_and_sums_under_lockstep() {
        // The paper's point: atomics need no parallel forward progress.
        for warp in [1usize, 4, 16] {
            let (threads, acc) = accumulation(16, 32);
            assert!(run_lockstep(threads, warp, 1_000_000).completed(), "warp={warp}");
            for i in 0..32 {
                assert_eq!(acc.value(i), 16);
            }
        }
    }

    #[test]
    fn empty_schedule_finishes_immediately() {
        let acc = Accumulators::new(4);
        let t = AccumThread::new(acc, vec![]);
        assert!(run_its(vec![Box::new(t)], 10).completed());
    }
}
