//! # progress-sim — a forward-progress scheduler simulator
//!
//! The paper's central portability finding (§II, §V-B) is about *forward
//! progress guarantees*, not about silicon: the Concurrent Octree's
//! starvation-free locking needs **parallel forward progress** ("if a
//! thread starts running it will eventually be scheduled again"), which
//! NVIDIA GPUs provide since Volta via Independent Thread Scheduling (ITS),
//! while legacy SIMT schedulers — and AMD/Intel GPUs — only provide
//! **weakly parallel** forward progress. Running the octree there
//! "reliably caused them to hang"; the Hilbert BVH, which never blocks,
//! runs everywhere.
//!
//! We cannot run on a GPU in this reproduction, so this crate simulates the
//! two scheduling semantics *exactly* and executes instrumented
//! state-machine versions of the actual algorithms under each:
//!
//! * [`scheduler::run_its`] — fair round-robin over every live virtual
//!   thread: parallel forward progress.
//! * [`scheduler::run_lockstep`] — warps of `W` threads execute in lockstep;
//!   on divergence the warp serialises one branch side until reconvergence.
//!   We model this by stepping, per warp, only the live threads at the
//!   minimum program counter — the canonical implementation choice that
//!   starves a lock *holder* (at a later pc) whenever a lock *waiter* spins
//!   at an earlier pc in the same warp.
//!
//! The workloads are steppable translations of the two BUILDTREE
//! algorithms:
//!
//! * [`tree_insert`] — lock-based concurrent tree insertion (the octree's
//!   Algorithm 4/5). Under ITS it always completes; under lockstep it
//!   **livelocks** as soon as two threads of one warp contend for a leaf.
//! * [`reduce`] — the wait-free arrival-counter tree reduction
//!   (CALCULATEMULTIPOLES) and, by extension, the whole BVH strategy: no
//!   spin states, completes under both schedulers.
//!
//! ```
//! use progress_sim::scheduler::{run_its, run_lockstep, Outcome};
//! use progress_sim::tree_insert::contended_insertion;
//!
//! // 8 threads, all inserting into the same region ⇒ heavy contention.
//! let mk = || contended_insertion(8, 0.5);
//! assert!(matches!(run_its(mk(), 100_000), Outcome::Completed { .. }));
//! assert!(matches!(run_lockstep(mk(), 8, 100_000), Outcome::Livelock { .. }));
//! ```

pub mod atomic_accum;
pub mod faults;
pub mod reduce;
pub mod scheduler;
pub mod tree_insert;
pub mod two_stage;

pub use faults::{BoundedSpin, ExhaustionFlag, SlowWorker};
pub use scheduler::{run_its, run_lockstep, Outcome, Step, VThread};
