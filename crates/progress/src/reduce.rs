//! Steppable wait-free tree reduction — CALCULATEMULTIPOLES (paper Fig. 2)
//! and, by extension, the whole Hilbert-BVH strategy.
//!
//! One virtual thread per leaf accumulates its value onto the parent and
//! bumps the parent's arrival counter; the **last** arriving thread owns the
//! parent and climbs, the others finish. There is no `Spin` state anywhere,
//! so the algorithm needs only weakly parallel forward progress and
//! completes under both schedulers — this is why the BVH "runs on all
//! evaluated systems" while the octree does not.

use crate::scheduler::{Step, VThread};
use std::cell::Cell;
use std::rc::Rc;

/// A complete binary reduction tree (heap layout: root 1, children 2i/2i+1,
/// leaves `leaves..2*leaves`).
pub struct ReduceTree {
    pub leaves: usize,
    sums: Vec<Cell<u64>>,
    arrivals: Vec<Cell<u32>>,
}

impl ReduceTree {
    pub fn new(leaves: usize) -> Rc<Self> {
        assert!(leaves.is_power_of_two());
        Rc::new(ReduceTree {
            leaves,
            sums: (0..2 * leaves).map(|_| Cell::new(0)).collect(),
            arrivals: (0..2 * leaves).map(|_| Cell::new(0)).collect(),
        })
    }

    pub fn root_sum(&self) -> u64 {
        self.sums[1].get()
    }
}

/// One reduction thread, initially owning leaf `leaf` with `value`.
pub struct ReduceThread {
    tree: Rc<ReduceTree>,
    node: usize,
    carry: u64,
    level: u32,
}

impl ReduceThread {
    pub fn new(tree: Rc<ReduceTree>, leaf: usize, value: u64) -> Self {
        let node = tree.leaves + leaf;
        ReduceThread { tree, node, carry: value, level: 0 }
    }
}

impl VThread for ReduceThread {
    fn pc(&self) -> u32 {
        // Different levels = diverged threads; still no spinning, so the
        // lockstep scheduler always finds a step to make.
        self.level
    }

    fn step(&mut self) -> Step {
        if self.node == 1 {
            // Reached the root while holding its completed sum.
            return Step::Done;
        }
        let parent = self.node / 2;
        // fetch_add-style accumulation + arrival counter.
        self.tree.sums[parent].set(self.tree.sums[parent].get() + self.carry);
        let arrived = self.tree.arrivals[parent].get() + 1;
        self.tree.arrivals[parent].set(arrived);
        if arrived < 2 {
            return Step::Done; // the sibling will finish this parent
        }
        // Last arrival: own the parent and climb with its full sum.
        self.carry = self.tree.sums[parent].get();
        self.node = parent;
        self.level += 1;
        Step::Progress
    }
}

/// A full reduction workload: `leaves` threads, thread `i` carrying value
/// `i + 1` (so the expected root sum is `leaves (leaves+1) / 2`).
pub fn reduction(leaves: usize) -> (Vec<Box<dyn VThread>>, Rc<ReduceTree>) {
    let tree = ReduceTree::new(leaves);
    let threads: Vec<Box<dyn VThread>> = (0..leaves)
        .map(|i| Box::new(ReduceThread::new(tree.clone(), i, i as u64 + 1)) as Box<dyn VThread>)
        .collect();
    (threads, tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_its, run_lockstep};

    fn expected(leaves: usize) -> u64 {
        (leaves as u64) * (leaves as u64 + 1) / 2
    }

    #[test]
    fn completes_under_its() {
        for leaves in [1usize, 2, 8, 64, 256] {
            let (threads, tree) = reduction(leaves.max(2));
            assert!(run_its(threads, 1_000_000).completed());
            assert_eq!(tree.root_sum(), expected(leaves.max(2)));
        }
    }

    #[test]
    fn completes_under_lockstep_any_warp_width() {
        // The key portability property: wait-free ⇒ weakly parallel forward
        // progress suffices ⇒ runs on non-ITS devices.
        for warp in [1usize, 2, 4, 32, 256] {
            let (threads, tree) = reduction(256);
            let out = run_lockstep(threads, warp, 10_000_000);
            assert!(out.completed(), "warp={warp}: {out:?}");
            assert_eq!(tree.root_sum(), expected(256));
        }
    }

    #[test]
    fn root_thread_terminates() {
        let (threads, tree) = reduction(2);
        assert!(run_lockstep(threads, 2, 1000).completed());
        assert_eq!(tree.root_sum(), 3);
    }
}
