//! Fault adapters for virtual threads: bounded spinning and slow workers.
//!
//! These wrap any [`VThread`] to model the *fault-tolerant* variants of the
//! paper's algorithms:
//!
//! * [`BoundedSpin`] — the scheduler-simulator twin of the octree's
//!   spin-budget (`bh_octree::DEFAULT_SPIN_BUDGET`): after `budget`
//!   consecutive spin iterations the thread **aborts** (reports `Done`) and
//!   records the exhaustion in a shared [`ExhaustionFlag`] instead of
//!   spinning forever. Crucially, a *budgeted* spin iteration is reported to
//!   the scheduler as [`Step::Progress`], not [`Step::Spin`]: a loop that is
//!   guaranteed to terminate within `budget` iterations *does* satisfy
//!   weakly-parallel forward progress — which is exactly why a bounded spin
//!   turns the paper's non-ITS hang into a detectable, recoverable build
//!   error rather than a livelock.
//! * [`SlowWorker`] — stretches every step of the inner thread by a constant
//!   factor, modelling a straggler core or a pre-empted worker. Under fair
//!   (ITS) scheduling the rest of the system is unaffected; the adapter
//!   exists so fault-injection runs can assert exactly that.

use crate::scheduler::{Step, VThread};
use std::cell::Cell;
use std::rc::Rc;

/// Shared, cloneable record of spin-budget exhaustions across a thread
/// group — the simulator analogue of `bh_octree`'s `InsertCtl` flag.
#[derive(Clone, Debug, Default)]
pub struct ExhaustionFlag(Rc<Cell<u64>>);

impl ExhaustionFlag {
    pub fn new() -> Self {
        Self::default()
    }

    /// True iff at least one wrapped thread ran out of spin budget.
    pub fn exhausted(&self) -> bool {
        self.0.get() > 0
    }

    /// How many threads ran out of spin budget.
    pub fn count(&self) -> u64 {
        self.0.get()
    }

    fn record(&self) {
        self.0.set(self.0.get() + 1);
    }
}

/// Abort after `budget` *consecutive* spins instead of spinning forever.
///
/// The consecutive counter resets whenever the inner thread makes progress,
/// mirroring the octree insert loop: only an unbroken run of `Locked`
/// observations counts toward the budget.
pub struct BoundedSpin<T: VThread> {
    inner: T,
    budget: u64,
    consecutive: u64,
    flag: ExhaustionFlag,
    aborted: bool,
}

impl<T: VThread> BoundedSpin<T> {
    pub fn new(inner: T, budget: u64, flag: ExhaustionFlag) -> Self {
        BoundedSpin { inner, budget, consecutive: 0, flag, aborted: false }
    }

    /// True iff this thread gave up (its work item was *not* completed).
    pub fn aborted(&self) -> bool {
        self.aborted
    }
}

impl<T: VThread> VThread for BoundedSpin<T> {
    fn pc(&self) -> u32 {
        self.inner.pc()
    }

    fn step(&mut self) -> Step {
        if self.aborted {
            return Step::Done;
        }
        match self.inner.step() {
            Step::Spin => {
                self.consecutive += 1;
                if self.consecutive > self.budget {
                    self.aborted = true;
                    self.flag.record();
                    return Step::Done;
                }
                // In-budget spin: guaranteed-terminating, hence progress
                // in the forward-progress-guarantee sense (see module docs).
                Step::Progress
            }
            other => {
                self.consecutive = 0;
                other
            }
        }
    }
}

/// Stretch every inner step by `factor`: `factor - 1` filler steps precede
/// each real one. `factor = 1` is a transparent wrapper.
pub struct SlowWorker<T: VThread> {
    inner: T,
    factor: u32,
    pending: u32,
}

impl<T: VThread> SlowWorker<T> {
    pub fn new(inner: T, factor: u32) -> Self {
        assert!(factor >= 1, "factor must be at least 1");
        SlowWorker { inner, factor, pending: 0 }
    }
}

impl<T: VThread> VThread for SlowWorker<T> {
    fn pc(&self) -> u32 {
        self.inner.pc()
    }

    fn step(&mut self) -> Step {
        if self.pending > 0 {
            self.pending -= 1;
            return Step::Progress;
        }
        let s = self.inner.step();
        if s != Step::Done {
            self.pending = self.factor - 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_its, run_lockstep, Outcome};
    use crate::tree_insert::{InsertThread, SharedTree, Slot};
    use std::rc::Rc;

    fn bounded_insertion(
        n: usize,
        budget: u64,
    ) -> (Vec<Box<dyn VThread>>, Rc<SharedTree>, ExhaustionFlag) {
        let tree = SharedTree::new();
        let values: Rc<Vec<f64>> =
            Rc::new((0..n).map(|i| 0.3 + 0.4 * (i as f64 + 0.5) / n as f64).collect());
        let flag = ExhaustionFlag::new();
        let threads: Vec<Box<dyn VThread>> = (0..n)
            .map(|b| {
                Box::new(BoundedSpin::new(
                    InsertThread::new(tree.clone(), values.clone(), b),
                    budget,
                    flag.clone(),
                )) as Box<dyn VThread>
            })
            .collect();
        (threads, tree, flag)
    }

    #[test]
    fn unbounded_contention_livelocks_bounded_reports_exhaustion() {
        // Baseline: plain inserters in one warp hang under min-pc lockstep.
        let raw = crate::tree_insert::contended_insertion(8, 0.5);
        assert!(matches!(run_lockstep(raw, 8, 1_000_000), Outcome::Livelock { .. }));

        // Bounded: same contention, same warp — completes, and the shared
        // flag reports what happened instead of the scheduler hanging. The
        // tree may be left dirty (locks held by aborted threads): detecting
        // and rebuilding is the caller's retry contract, exactly as in
        // `Octree::build`.
        let (threads, _tree, flag) = bounded_insertion(8, 64);
        let out = run_lockstep(threads, 8, 1_000_000);
        assert!(out.completed(), "{out:?}");
        assert!(flag.exhausted(), "expected at least one spin-budget abort");
    }

    #[test]
    fn bounded_spin_under_fair_scheduling_never_exhausts() {
        // Under ITS the holder is always rescheduled, so waiters only ever
        // spin a handful of consecutive iterations: a generous budget is
        // never hit and every body lands in the tree.
        for n in [4usize, 16, 64] {
            let (threads, tree, flag) = bounded_insertion(n, 10_000);
            let out = run_its(threads, 10_000_000);
            assert!(out.completed(), "n={n}: {out:?}");
            assert!(!flag.exhausted(), "n={n}: spurious exhaustion");
            assert_eq!(tree.collect_bodies(), (0..n).collect::<Vec<_>>());
            assert!(tree.no_locks_held());
        }
    }

    #[test]
    fn stuck_lock_aborts_all_waiters_instead_of_hanging() {
        // Adversary: a holder crashed mid-critical-section, leaving the
        // root Locked forever (the simulator twin of
        // `Octree::inject_stuck_lock`).
        let tree = SharedTree::new();
        tree.store_pub(0, Slot::Locked);
        let values: Rc<Vec<f64>> = Rc::new(vec![0.25, 0.5, 0.75]);
        let flag = ExhaustionFlag::new();
        let threads: Vec<Box<dyn VThread>> = (0..3)
            .map(|b| {
                Box::new(BoundedSpin::new(
                    InsertThread::new(tree.clone(), values.clone(), b),
                    100,
                    flag.clone(),
                )) as Box<dyn VThread>
            })
            .collect();

        // Without the budget this is an unconditional livelock under any
        // scheduler; with it, every waiter aborts and reports.
        let out = run_its(threads, 1_000_000);
        assert!(out.completed(), "{out:?}");
        assert_eq!(flag.count(), 3);
        assert_eq!(tree.collect_bodies(), Vec::<usize>::new());
    }

    #[test]
    fn bounded_spin_exhaustion_is_deterministic() {
        let run = || {
            let (threads, _, flag) = bounded_insertion(8, 64);
            let out = run_lockstep(threads, 8, 1_000_000);
            (out, flag.count())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slow_worker_is_transparent_under_fair_scheduling() {
        // One straggler (8× slower) among fast inserters: under ITS the run
        // still completes with a consistent tree.
        let tree = SharedTree::new();
        let n = 8usize;
        let values: Rc<Vec<f64>> =
            Rc::new((0..n).map(|i| 0.3 + 0.4 * (i as f64 + 0.5) / n as f64).collect());
        let threads: Vec<Box<dyn VThread>> = (0..n)
            .map(|b| {
                let t = InsertThread::new(tree.clone(), values.clone(), b);
                if b == 0 {
                    Box::new(SlowWorker::new(t, 8)) as Box<dyn VThread>
                } else {
                    Box::new(t) as Box<dyn VThread>
                }
            })
            .collect();
        let out = run_its(threads, 10_000_000);
        assert!(out.completed(), "{out:?}");
        assert_eq!(tree.collect_bodies(), (0..n).collect::<Vec<_>>());
        assert!(tree.no_locks_held());
    }

    #[test]
    fn slow_worker_factor_one_is_identity() {
        let tree = SharedTree::new();
        let values: Rc<Vec<f64>> = Rc::new(vec![0.4, 0.6]);
        let threads: Vec<Box<dyn VThread>> = (0..2)
            .map(|b| {
                Box::new(SlowWorker::new(
                    InsertThread::new(tree.clone(), values.clone(), b),
                    1,
                )) as Box<dyn VThread>
            })
            .collect();
        assert!(run_its(threads, 100_000).completed());
        assert_eq!(tree.collect_bodies(), vec![0, 1]);
    }
}
