//! Steppable two-stage tree construction — the Thüring et al. scheme from
//! the paper's related work (§VI).
//!
//! Thüring et al. avoid the forward-progress problem by splitting the
//! build: "first, building a partial tree in a single work-group; and
//! second, in a subsequent kernel, constructing the remaining independent
//! sub-trees in parallel with one work-group per sub-tree. This two-stage
//! approach is necessary due to the synchronization constraints dictated
//! by the memory and execution model of work-items and work-groups."
//!
//! The essential property is that **no thread ever waits on a thread of
//! another warp**: the top of the tree is fixed up-front (stage 1), and
//! each warp then owns a disjoint subtree that it fills without any
//! cross-warp locking (stage 2, modelled here with a per-warp leader doing
//! the subtree's insertions — sequential within the warp, parallel across
//! warps). With no `Spin` state anywhere, the algorithm completes under
//! plain lockstep scheduling — which is why Thüring et al.'s code runs on
//! GPUs where the paper's single-stage Concurrent Octree hangs, at the
//! cost of less available parallelism.

use crate::scheduler::{Step, VThread};
use crate::tree_insert::{SharedTree, Slot};
use std::rc::Rc;

/// The pieces of a two-stage workload: the leader threads, the shared
/// tree, and the body values.
pub type TwoStageWorkload = (Vec<Box<dyn VThread>>, Rc<SharedTree>, Rc<Vec<f64>>);

/// A warp leader that sequentially inserts the warp's bodies into the
/// warp's own (pre-carved) subtree. Non-leader threads finish immediately.
pub struct SubtreeBuilder {
    tree: Rc<SharedTree>,
    values: Rc<Vec<f64>>,
    /// Bodies assigned to this warp, in insertion order.
    bodies: Vec<usize>,
    next: usize,
    /// Root node of the warp's subtree and its value interval.
    sub_root: usize,
    lo: f64,
    hi: f64,
    /// Insertion state machine (same states as the single-stage build, but
    /// only this thread touches the subtree, so Locked never occurs).
    cursor: Option<(usize, f64, f64)>,
}

impl SubtreeBuilder {
    fn insert_step(&mut self) -> Step {
        let Some(body) = self.bodies.get(self.next).copied() else {
            return Step::Done;
        };
        let v = self.values[body];
        let (node, lo, hi) = self.cursor.unwrap_or((self.sub_root, self.lo, self.hi));
        match self.tree.load_pub(node) {
            Slot::Node(c) => {
                let mid = 0.5 * (lo + hi);
                self.cursor =
                    Some(if v < mid { (c, lo, mid) } else { (c + 1, mid, hi) });
                Step::Progress
            }
            Slot::Empty => {
                self.tree.store_pub(node, Slot::Body(body));
                self.next += 1;
                self.cursor = None;
                Step::Progress
            }
            Slot::Body(resident) => {
                // Sub-divide; no lock needed: this thread owns the subtree.
                let c = self.tree.alloc_pair_pub();
                let mid = 0.5 * (lo + hi);
                let rv = self.values[resident];
                let side = if rv < mid { c } else { c + 1 };
                self.tree.store_pub(side, Slot::Body(resident));
                self.tree.store_pub(node, Slot::Node(c));
                Step::Progress
            }
            Slot::Locked => unreachable!("two-stage build never locks"),
        }
    }
}

impl VThread for SubtreeBuilder {
    fn pc(&self) -> u32 {
        0 // straight-line state machine: no divergence hazards
    }

    fn step(&mut self) -> Step {
        self.insert_step()
    }
}

/// Build the stage-1 top tree (a complete binary partition of `[0,1)` into
/// `parts` equal leaves, `parts` a power of two) and return one
/// [`SubtreeBuilder`] per part covering the bodies that fall inside it.
pub fn two_stage_insertion(n: usize, parts: usize) -> TwoStageWorkload {
    assert!(parts.is_power_of_two());
    let tree = SharedTree::new();
    // Same deterministic body values as the single-stage workload.
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let spread = 0.4 * (i as f64 + 0.5) / n as f64 - 0.2;
            (0.5 + spread).clamp(0.0, 1.0 - 1e-9)
        })
        .collect();
    let values = Rc::new(values);

    // Stage 1: carve the top `log2(parts)` levels sequentially ("single
    // work-group"), recording each part's subtree root and interval.
    let mut leaves: Vec<(usize, f64, f64)> = vec![(0, 0.0, 1.0)];
    while leaves.len() < parts {
        let mut next = Vec::with_capacity(leaves.len() * 2);
        for (node, lo, hi) in leaves {
            let c = tree.alloc_pair_pub();
            tree.store_pub(node, Slot::Node(c));
            let mid = 0.5 * (lo + hi);
            next.push((c, lo, mid));
            next.push((c + 1, mid, hi));
        }
        leaves = next;
    }

    // Stage 2: one leader per part inserts that part's bodies.
    let threads: Vec<Box<dyn VThread>> = leaves
        .into_iter()
        .map(|(sub_root, lo, hi)| {
            let bodies: Vec<usize> =
                (0..n).filter(|&b| values[b] >= lo && values[b] < hi).collect();
            Box::new(SubtreeBuilder {
                tree: tree.clone(),
                values: values.clone(),
                bodies,
                next: 0,
                sub_root,
                lo,
                hi,
                cursor: None,
            }) as Box<dyn VThread>
        })
        .collect();
    (threads, tree.clone(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_its, run_lockstep};

    #[test]
    fn completes_under_its_and_lockstep() {
        for parts in [1usize, 2, 4, 8] {
            for warp in [1usize, 4, 32] {
                let (threads, tree, _) = two_stage_insertion(64, parts);
                let out = run_lockstep(threads, warp, 1_000_000);
                assert!(out.completed(), "parts={parts}, warp={warp}: {out:?}");
                assert_eq!(tree.collect_bodies(), (0..64).collect::<Vec<_>>());
                assert!(tree.no_locks_held());
            }
        }
        let (threads, tree, _) = two_stage_insertion(100, 8);
        assert!(run_its(threads, 1_000_000).completed());
        assert_eq!(tree.collect_bodies(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn contrast_with_single_stage_under_lockstep() {
        // The point of the model: same workload, same scheduler — the
        // single-stage lock-based build livelocks, the two-stage build
        // completes.
        use crate::tree_insert::contended_insertion;
        let single = run_lockstep(contended_insertion(32, 0.5), 32, 1_000_000);
        assert!(!single.completed(), "{single:?}");
        let (threads, _, _) = two_stage_insertion(32, 8);
        let two_stage = run_lockstep(threads, 32, 1_000_000);
        assert!(two_stage.completed(), "{two_stage:?}");
    }

    #[test]
    fn more_parts_means_more_parallelism() {
        // Under ITS, a finer stage-1 partition shortens the critical path
        // (steps to completion with fair round-robin stay similar, but the
        // longest single leader's work shrinks): one leader thread per part.
        let (t4, _, _) = two_stage_insertion(256, 4);
        let (t16, _, _) = two_stage_insertion(256, 16);
        assert_eq!(t4.len(), 4);
        assert_eq!(t16.len(), 16);
    }
}
