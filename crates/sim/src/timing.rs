//! Per-phase step timings (powers the paper's Fig. 8 breakdown), plus
//! per-phase heap-allocation counts (powers the zero-steady-state-allocation
//! regression; see `DESIGN.md` § Memory management).

use std::time::Duration;
use stdpar::alloc_stats::allocation_count;

/// Heap allocations performed during each phase of one step, counted by
/// the [`stdpar::alloc_stats`] allocator when a binary installs it (behind
/// its `alloc-stats` feature). All zeros when the counting allocator is
/// not installed. After warm-up every field must be zero — the workspace
/// arena owns all transient buffers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepAllocs {
    pub bbox: u64,
    pub sort: u64,
    pub build: u64,
    pub multipole: u64,
    pub force: u64,
    pub update: u64,
}

impl StepAllocs {
    /// Total allocations across all phases.
    pub fn total(&self) -> u64 {
        self.bbox + self.sort + self.build + self.multipole + self.force + self.update
    }

    /// Element-wise sum.
    pub fn accumulate(&mut self, other: &StepAllocs) {
        self.bbox += other.bbox;
        self.sort += other.sort;
        self.build += other.build;
        self.multipole += other.multipole;
        self.force += other.force;
        self.update += other.update;
    }

    /// Phase names and counts, in algorithm order.
    pub fn phases(&self) -> [(&'static str, u64); 6] {
        [
            ("bbox", self.bbox),
            ("sort", self.sort),
            ("build", self.build),
            ("multipole", self.multipole),
            ("force", self.force),
            ("update", self.update),
        ]
    }
}

/// Per-phase *busy* nanoseconds: time spent actually executing each
/// phase's work, attributed correctly even when phases overlap.
///
/// Under barrier stepping every phase runs to completion inside its own
/// caller-observed window, so busy time equals the wall durations of
/// [`StepTimings`] (filled by [`PhaseBusy::from_wall`]). Under task-graph
/// stepping ([`crate::dag::Stepping::TaskGraph`]) phases overlap freely —
/// a force tile can run while another tile is still sorting — so a
/// per-phase *wall* interval is ill-defined and naively timestamping
/// phase boundaries double-counts the overlap. Busy time is instead
/// accumulated per executed DAG node from the workers' own clocks.
///
/// Either way the attribution obeys the capacity bound
/// `Σ_phase busy ≤ workers × step wall` (asserted by the `pipeline`
/// integration test): no accounting scheme may claim more execution time
/// than the workers collectively had.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBusy {
    pub bbox: u64,
    pub sort: u64,
    pub build: u64,
    pub multipole: u64,
    pub force: u64,
    pub update: u64,
}

impl PhaseBusy {
    /// Total busy nanoseconds across all phases.
    pub fn total(&self) -> u64 {
        self.bbox + self.sort + self.build + self.multipole + self.force + self.update
    }

    /// Element-wise sum.
    pub fn accumulate(&mut self, other: &PhaseBusy) {
        self.bbox += other.bbox;
        self.sort += other.sort;
        self.build += other.build;
        self.multipole += other.multipole;
        self.force += other.force;
        self.update += other.update;
    }

    /// Phase names and busy nanoseconds, in algorithm order.
    pub fn phases(&self) -> [(&'static str, u64); 6] {
        [
            ("bbox", self.bbox),
            ("sort", self.sort),
            ("build", self.build),
            ("multipole", self.multipole),
            ("force", self.force),
            ("update", self.update),
        ]
    }

    /// Busy attribution for a barrier-stepped record: phases never
    /// overlap, so each phase's busy time is exactly its wall window.
    pub fn from_wall(t: &StepTimings) -> Self {
        PhaseBusy {
            bbox: t.bbox.as_nanos() as u64,
            sort: t.sort.as_nanos() as u64,
            build: t.build.as_nanos() as u64,
            multipole: t.multipole.as_nanos() as u64,
            force: t.force.as_nanos() as u64,
            update: t.update.as_nanos() as u64,
        }
    }
}

/// Wall-clock time of each phase of one integration step (paper Algorithm
/// 2 for the octree, Algorithm 6 for the BVH — phases not applicable to a
/// solver stay zero).
///
/// Under task-graph stepping the phase `Duration`s hold per-phase *busy*
/// time (summed node execution, see [`PhaseBusy`]) rather than disjoint
/// wall windows, so [`StepTimings::total`] may exceed the step's wall
/// clock there — whole-step comparisons should time the step call itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimings {
    /// CALCULATEBOUNDINGBOX.
    pub bbox: Duration,
    /// HILBERTSORT (BVH only).
    pub sort: Duration,
    /// BUILDTREE (octree) / BVH box-structure construction. Incremental
    /// lifecycle: the delta update of the persistent structure.
    pub build: Duration,
    /// CALCULATEMULTIPOLES (octree) / ACCUMULATEMASS (BVH moment
    /// reduction). Incremental lifecycle: the dirty-path recompute.
    pub multipole: Duration,
    /// CALCULATEFORCE.
    pub force: Duration,
    /// UPDATEPOSITION (filled by the integrator).
    pub update: Duration,
    /// Heap allocations per phase (zeros unless the counting allocator is
    /// installed; see [`StepAllocs`]).
    pub allocs: StepAllocs,
    /// Overlap-correct per-phase busy nanoseconds (see [`PhaseBusy`]).
    /// Filled by [`crate::Simulation::step_into`] for barrier steps and by
    /// the task-graph stepper for DAG steps; zero for raw
    /// [`crate::ForceSolver::try_compute_into`] calls.
    pub busy: PhaseBusy,
}

impl StepTimings {
    /// Total step time.
    pub fn total(&self) -> Duration {
        self.bbox + self.sort + self.build + self.multipole + self.force + self.update
    }

    /// Everything except the force phase (the paper's Fig. 8 plots the
    /// relative cost of the non-force components).
    pub fn non_force(&self) -> Duration {
        self.total() - self.force
    }

    /// Element-wise sum (for averaging over steps).
    pub fn accumulate(&mut self, other: &StepTimings) {
        self.bbox += other.bbox;
        self.sort += other.sort;
        self.build += other.build;
        self.multipole += other.multipole;
        self.force += other.force;
        self.update += other.update;
        self.allocs.accumulate(&other.allocs);
        self.busy.accumulate(&other.busy);
    }

    /// Phase names and durations, in algorithm order.
    pub fn phases(&self) -> [(&'static str, Duration); 6] {
        [
            ("bbox", self.bbox),
            ("sort", self.sort),
            ("build", self.build),
            ("multipole", self.multipole),
            ("force", self.force),
            ("update", self.update),
        ]
    }
}

/// Time a closure, adding the elapsed time into `slot`.
#[inline]
pub fn timed<R>(slot: &mut Duration, f: impl FnOnce() -> R) -> R {
    let start = std::time::Instant::now();
    let r = f();
    *slot += start.elapsed();
    r
}

/// [`timed`] that also adds the number of heap allocations the closure
/// performed into `allocs` (a delta of the process-wide
/// [`allocation_count`]; zero when the counting allocator is not
/// installed). The count is process-wide, so concurrent allocations on
/// other application threads would be attributed here too — the phases of
/// a step run on the calling thread (workers it spawns are part of the
/// phase), so in practice the delta is the phase's own. The delta
/// saturates at zero: if `stdpar::alloc_stats::reset_allocation_count`
/// runs during the closure the second read is smaller than the first, and
/// a plain subtraction would wrap to a near-`u64::MAX` phantom count.
#[inline]
pub fn timed_counted<R>(slot: &mut Duration, allocs: &mut u64, f: impl FnOnce() -> R) -> R {
    let before = allocation_count();
    let r = timed(slot, f);
    *allocs += allocation_count().saturating_sub(before);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulate() {
        let mut a = StepTimings {
            bbox: Duration::from_millis(1),
            force: Duration::from_millis(10),
            ..StepTimings::default()
        };
        assert_eq!(a.total(), Duration::from_millis(11));
        assert_eq!(a.non_force(), Duration::from_millis(1));

        let b = StepTimings {
            force: Duration::from_millis(5),
            update: Duration::from_millis(2),
            ..StepTimings::default()
        };
        a.accumulate(&b);
        assert_eq!(a.total(), Duration::from_millis(18));
    }

    #[test]
    fn timed_measures_and_returns() {
        let mut slot = Duration::ZERO;
        let out = timed(&mut slot, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(slot >= Duration::from_millis(4));
    }

    #[test]
    fn phases_are_ordered() {
        let t = StepTimings::default();
        let names: Vec<&str> = t.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["bbox", "sort", "build", "multipole", "force", "update"]);
        let a = StepAllocs::default();
        let alloc_names: Vec<&str> = a.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, alloc_names, "timing and alloc phases must stay aligned");
        let b = PhaseBusy::default();
        let busy_names: Vec<&str> = b.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, busy_names, "timing and busy phases must stay aligned");
    }

    #[test]
    fn busy_from_wall_mirrors_durations() {
        let mut t = StepTimings {
            bbox: Duration::from_nanos(7),
            sort: Duration::from_nanos(11),
            force: Duration::from_nanos(100),
            ..StepTimings::default()
        };
        let busy = PhaseBusy::from_wall(&t);
        assert_eq!(busy.bbox, 7);
        assert_eq!(busy.sort, 11);
        assert_eq!(busy.force, 100);
        assert_eq!(busy.total(), 118);
        // Accumulation flows through StepTimings::accumulate.
        t.busy = busy;
        let mut sum = StepTimings::default();
        sum.accumulate(&t);
        sum.accumulate(&t);
        assert_eq!(sum.busy.total(), 236);
    }

    #[test]
    fn alloc_counts_total_and_accumulate() {
        let mut a = StepAllocs { build: 3, force: 2, ..StepAllocs::default() };
        assert_eq!(a.total(), 5);
        a.accumulate(&StepAllocs { force: 1, update: 4, ..StepAllocs::default() });
        assert_eq!(a.total(), 10);
        // And through StepTimings::accumulate.
        let mut t = StepTimings { allocs: a, ..StepTimings::default() };
        t.accumulate(&StepTimings { allocs: a, ..StepTimings::default() });
        assert_eq!(t.allocs.total(), 20);
    }

    #[test]
    fn timed_counted_returns_and_does_not_underflow() {
        // Without the counting allocator installed the delta is 0 - 0;
        // with it, allocations inside the closure must not *decrease* the
        // tally. Either way the closure's value passes through.
        let mut slot = Duration::ZERO;
        let mut allocs = 0u64;
        let v = timed_counted(&mut slot, &mut allocs, || vec![1u8; 4096].len());
        assert_eq!(v, 4096);
        let before = allocs;
        timed_counted(&mut slot, &mut allocs, || ());
        assert_eq!(allocs, before, "empty closure must add zero allocations");

        // Regression: a counter reset *inside* the timed window used to
        // wrap the delta to near u64::MAX (allocation_count() went
        // backwards and the subtraction underflowed). One test fn owns all
        // counter mutation — the counter is process-wide and the harness
        // runs tests concurrently. `CountingAlloc` counts even when not
        // installed as the global allocator, which lets us move the
        // counter off zero without depending on the test binary's
        // allocator configuration.
        use std::alloc::GlobalAlloc;
        use stdpar::alloc_stats::{reset_allocation_count, CountingAlloc};
        let layout = std::alloc::Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            CountingAlloc.dealloc(p, layout);
        }
        assert!(allocation_count() > 0);
        let mut allocs = 0u64;
        timed_counted(&mut slot, &mut allocs, reset_allocation_count);
        assert_eq!(allocs, 0, "reset during the window must saturate, not wrap");
    }
}
