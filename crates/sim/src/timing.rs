//! Per-phase step timings (powers the paper's Fig. 8 breakdown).

use std::time::Duration;

/// Wall-clock time of each phase of one integration step (paper Algorithm
/// 2 for the octree, Algorithm 6 for the BVH — phases not applicable to a
/// solver stay zero).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTimings {
    /// CALCULATEBOUNDINGBOX.
    pub bbox: Duration,
    /// HILBERTSORT (BVH only).
    pub sort: Duration,
    /// BUILDTREE (octree) / BVH level construction.
    pub build: Duration,
    /// CALCULATEMULTIPOLES (octree; folded into `build` for the BVH, which
    /// accumulates masses during construction).
    pub multipole: Duration,
    /// CALCULATEFORCE.
    pub force: Duration,
    /// UPDATEPOSITION (filled by the integrator).
    pub update: Duration,
}

impl StepTimings {
    /// Total step time.
    pub fn total(&self) -> Duration {
        self.bbox + self.sort + self.build + self.multipole + self.force + self.update
    }

    /// Everything except the force phase (the paper's Fig. 8 plots the
    /// relative cost of the non-force components).
    pub fn non_force(&self) -> Duration {
        self.total() - self.force
    }

    /// Element-wise sum (for averaging over steps).
    pub fn accumulate(&mut self, other: &StepTimings) {
        self.bbox += other.bbox;
        self.sort += other.sort;
        self.build += other.build;
        self.multipole += other.multipole;
        self.force += other.force;
        self.update += other.update;
    }

    /// Phase names and durations, in algorithm order.
    pub fn phases(&self) -> [(&'static str, Duration); 6] {
        [
            ("bbox", self.bbox),
            ("sort", self.sort),
            ("build", self.build),
            ("multipole", self.multipole),
            ("force", self.force),
            ("update", self.update),
        ]
    }
}

/// Time a closure, adding the elapsed time into `slot`.
#[inline]
pub fn timed<R>(slot: &mut Duration, f: impl FnOnce() -> R) -> R {
    let start = std::time::Instant::now();
    let r = f();
    *slot += start.elapsed();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulate() {
        let mut a = StepTimings {
            bbox: Duration::from_millis(1),
            force: Duration::from_millis(10),
            ..StepTimings::default()
        };
        assert_eq!(a.total(), Duration::from_millis(11));
        assert_eq!(a.non_force(), Duration::from_millis(1));

        let b = StepTimings {
            force: Duration::from_millis(5),
            update: Duration::from_millis(2),
            ..StepTimings::default()
        };
        a.accumulate(&b);
        assert_eq!(a.total(), Duration::from_millis(18));
    }

    #[test]
    fn timed_measures_and_returns() {
        let mut slot = Duration::ZERO;
        let out = timed(&mut slot, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(slot >= Duration::from_millis(4));
    }

    #[test]
    fn phases_are_ordered() {
        let t = StepTimings::default();
        let names: Vec<&str> = t.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["bbox", "sort", "build", "multipole", "force", "update"]);
    }
}
