//! The simulation-wide scratch arena: every transient buffer a step needs.
//!
//! [`SimWorkspace`] owns the per-solver scratch spaces — the BVH's
//! key/sort/permutation buffers and interaction-list pool, and the octree's
//! DFS-order buffers and interaction-list pool — so a steady-state
//! simulation performs **zero heap allocations per step** once the buffers
//! have warmed up (enforced by the `alloc_regression` integration test
//! under the `alloc-stats` feature).
//!
//! Construction is allocation-free: all buffers start empty and grow on
//! first use. A workspace can be shared across solvers and across
//! simulations; buffers are sized to the high-water mark of whatever used
//! them, and each phase fully overwrites what it reads, so reuse across
//! changing body counts is safe (covered by the `workspace_reuse` test).
//!
//! Two ways to use it:
//!
//! * implicit — [`crate::Simulation::step`] draws from a workspace owned by
//!   the simulation; nothing to manage.
//! * explicit — [`crate::Simulation::step_into`] borrows a caller-owned
//!   workspace, letting several short-lived simulations share one arena, or
//!   callers drop/inspect it between runs.

use bh_bvh::BvhScratch;
use bh_octree::TraversalScratch;
use nbody_math::Aabb;
use stdpar::scan::ScanScratch;
use stdpar::taskgraph::TaskGraph;

/// Arena for barrier-free task-graph stepping ([`crate::dag`]): the step
/// DAG's node/edge/deque storage plus the per-tile bounding-box partials
/// the caller thread joins between executor runs. All buffers grow to a
/// high-water mark on the first task-graph step and are reused verbatim
/// after — warm DAG steps allocate nothing.
pub(crate) struct DagScratch {
    /// The step graph, cleared and re-wired per executor run.
    pub(crate) graph: TaskGraph,
    /// One bounding-box partial per kick-drift tile.
    pub(crate) bbox_parts: Vec<Aabb>,
}

impl Default for DagScratch {
    fn default() -> Self {
        DagScratch { graph: TaskGraph::new(), bbox_parts: Vec::new() }
    }
}

/// Scratch arena threaded through sort, build, traversal and integration.
/// `Default` construction allocates nothing.
#[derive(Default)]
pub struct SimWorkspace {
    /// Hilbert key/sort/permutation buffers + blocked-traversal lists.
    pub(crate) bvh: BvhScratch,
    /// DFS order/stack buffers + blocked-traversal lists.
    pub(crate) octree: TraversalScratch,
    /// Task-graph stepping arena ([`crate::dag`]).
    pub(crate) dag: DagScratch,
    /// Prefix-scan intermediates for offset computations (`usize` counts:
    /// bucket offsets, compaction indices) run through
    /// [`stdpar::scan::exclusive_scan_into`] by analysis passes that share
    /// the simulation's arena.
    scan: ScanScratch<usize>,
}

impl SimWorkspace {
    /// An empty workspace (no allocations until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared prefix-scan scratch, for callers running offset scans
    /// (`exclusive_scan_into` / `inclusive_scan_into`) against this arena.
    pub fn scan_scratch(&mut self) -> &mut ScanScratch<usize> {
        &mut self.scan
    }
}
