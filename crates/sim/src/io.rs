//! Snapshot I/O: save and restore [`SystemState`]s.
//!
//! The paper's artifact generates workloads on the fly; a reusable library
//! additionally needs snapshots so long runs can be checkpointed and
//! externally-produced initial conditions (e.g. a real JPL SBDB export)
//! can be loaded. Two formats:
//!
//! * **CSV** — `x,y,z,vx,vy,vz,m` per line, interoperable with plotting
//!   tools;
//! * **binary** — `NBSNAP01` magic, little-endian `u64` count, then the
//!   three arrays; lossless `f64` round-trip and ~3× smaller than CSV.

use crate::system::SystemState;
use nbody_math::Vec3;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"NBSNAP01";

/// Write a CSV snapshot (`x,y,z,vx,vy,vz,m` per body, with header).
pub fn write_csv<W: Write>(state: &SystemState, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "x,y,z,vx,vy,vz,m")?;
    for i in 0..state.len() {
        let p = state.positions[i];
        let v = state.velocities[i];
        // {:e} keeps full f64 precision in a compact, parseable form.
        writeln!(
            w,
            "{:e},{:e},{:e},{:e},{:e},{:e},{:e}",
            p.x, p.y, p.z, v.x, v.y, v.z, state.masses[i]
        )?;
    }
    w.flush()
}

/// Read a CSV snapshot produced by [`write_csv`] (header required).
pub fn read_csv<R: Read>(r: R) -> io::Result<SystemState> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))??;
    if header.trim() != "x,y,z,vx,vy,vz,m" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected csv header"));
    }
    let mut state = SystemState::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<f64> = line
            .split(',')
            .map(|f| f.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 2))
            })?;
        if fields.len() != 7 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: expected 7 fields, got {}", lineno + 2, fields.len()),
            ));
        }
        state.push(
            Vec3::new(fields[0], fields[1], fields[2]),
            Vec3::new(fields[3], fields[4], fields[5]),
            fields[6],
        );
    }
    Ok(state)
}

/// Write the lossless binary snapshot format.
pub fn write_binary<W: Write>(state: &SystemState, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&(state.len() as u64).to_le_bytes())?;
    for p in &state.positions {
        for c in [p.x, p.y, p.z] {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for v in &state.velocities {
        for c in [v.x, v.y, v.z] {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for &m in &state.masses {
        w.write_all(&m.to_le_bytes())?;
    }
    w.flush()
}

/// Read the binary snapshot format.
pub fn read_binary<R: Read>(r: R) -> io::Result<SystemState> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad snapshot magic"));
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let n = u64::from_le_bytes(len) as usize;
    // Guard against absurd headers before allocating.
    if n > (1 << 33) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible body count"));
    }
    let read_f64 = |r: &mut BufReader<R>| -> io::Result<f64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    };
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        positions.push(Vec3::new(read_f64(&mut r)?, read_f64(&mut r)?, read_f64(&mut r)?));
    }
    let mut velocities = Vec::with_capacity(n);
    for _ in 0..n {
        velocities.push(Vec3::new(read_f64(&mut r)?, read_f64(&mut r)?, read_f64(&mut r)?));
    }
    let mut masses = Vec::with_capacity(n);
    for _ in 0..n {
        masses.push(read_f64(&mut r)?);
    }
    Ok(SystemState::from_parts(positions, velocities, masses))
}

/// Convenience wrappers over file paths (format chosen by extension:
/// `.csv` → CSV, anything else → binary).
pub fn save(state: &SystemState, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let f = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        write_csv(state, f)
    } else {
        write_binary(state, f)
    }
}

/// See [`save`].
pub fn load(path: impl AsRef<Path>) -> io::Result<SystemState> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        read_csv(f)
    } else {
        read_binary(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;

    #[test]
    fn binary_round_trip_is_lossless() {
        let state = galaxy_collision(500, 21);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(state.positions, back.positions);
        assert_eq!(state.velocities, back.velocities);
        assert_eq!(state.masses, back.masses);
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        // `{:e}` prints enough digits for exact f64 round-trip.
        let state = galaxy_collision(200, 22);
        let mut buf = Vec::new();
        write_csv(&state, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(state.positions, back.positions);
        assert_eq!(state.velocities, back.velocities);
        assert_eq!(state.masses, back.masses);
    }

    #[test]
    fn empty_state_round_trips() {
        let state = SystemState::new();
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap().len(), 0);
        let mut csv = Vec::new();
        write_csv(&state, &mut csv).unwrap();
        assert_eq!(read_csv(&csv[..]).unwrap().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOTASNAP\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_binary_rejected() {
        let state = galaxy_collision(10, 23);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(read_csv(&b"wrong,header\n"[..]).is_err());
        assert!(read_csv(&b"x,y,z,vx,vy,vz,m\n1,2,3\n"[..]).is_err());
        assert!(read_csv(&b"x,y,z,vx,vy,vz,m\n1,2,3,4,5,6,abc\n"[..]).is_err());
        assert!(read_csv(&b""[..]).is_err());
    }

    #[test]
    fn file_save_load_by_extension() {
        let state = galaxy_collision(50, 24);
        let dir = std::env::temp_dir();
        let bin = dir.join("nbsnap_test.bin");
        let csv = dir.join("nbsnap_test.csv");
        save(&state, &bin).unwrap();
        save(&state, &csv).unwrap();
        assert_eq!(load(&bin).unwrap().positions, state.positions);
        assert_eq!(load(&csv).unwrap().positions, state.positions);
        let _ = std::fs::remove_file(bin);
        let _ = std::fs::remove_file(csv);
    }
}
