//! Snapshot I/O: save and restore [`SystemState`]s.
//!
//! The paper's artifact generates workloads on the fly; a reusable library
//! additionally needs snapshots so long runs can be checkpointed and
//! externally-produced initial conditions (e.g. a real JPL SBDB export)
//! can be loaded. Two formats:
//!
//! * **CSV** — `x,y,z,vx,vy,vz,m` per line, interoperable with plotting
//!   tools;
//! * **binary** — versioned `NBSNAPxx` magic, little-endian `u64` count,
//!   the three arrays, and (v2+) a trailing CRC-32 of everything before
//!   it; lossless `f64` round-trip and ~3× smaller than CSV.
//!
//! ## Binary format (v2, written by [`write_binary`])
//!
//! | offset        | bytes  | contents                                    |
//! |---------------|--------|---------------------------------------------|
//! | 0             | 8      | magic `NBSNAP02` (`NBSNAP` + version digits)|
//! | 8             | 8      | `u64` LE body count `n`                     |
//! | 16            | 24·n   | positions (`f64` LE x,y,z per body)         |
//! | 16 + 24n      | 24·n   | velocities                                  |
//! | 16 + 48n      | 8·n    | masses                                      |
//! | 16 + 56n      | 4      | `u32` LE CRC-32 (IEEE) of bytes `0..16+56n` |
//!
//! The checksum makes a truncated or bit-flipped checkpoint *detectably*
//! invalid instead of silently wrong: the self-healing layer
//! ([`crate::guard`]) relies on load-time rejection to fall back to an
//! older checkpoint. Headerless v1 snapshots (`NBSNAP01`, no trailer) are
//! still read transparently — the magic is sniffed and the legacy path
//! taken — so archives written by earlier builds stay loadable.
//!
//! Readers are strict: a truncated file, a malformed record, a checksum
//! mismatch, or any non-finite value is rejected with a descriptive
//! [`SnapshotError`] *before* the state reaches a solver — a NaN that
//! slips in here would otherwise surface steps later as a mysteriously
//! invalid tree. The `io::Result` entry points ([`read_csv`],
//! [`read_binary`], [`load`]) lower the typed error into an `io::Error`
//! that **preserves it as the source** (kind mapped per variant, e.g.
//! `UnexpectedEof` for truncation), so callers can still downcast to
//! recover the section/offset detail.
//!
//! For durable checkpoints use [`save_atomic`]: it writes to a sibling
//! temporary file and atomically renames it into place, so a crash
//! mid-write leaves either the previous complete checkpoint or a stray
//! `.tmp` — never a half-written file under the real name.

use crate::system::SystemState;
use nbody_math::{Crc32, Vec3};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Shared magic prefix of every binary snapshot version.
const MAGIC_PREFIX: &[u8; 6] = b"NBSNAP";
/// The legacy (v1) magic: no checksum trailer.
const MAGIC_V1: &[u8; 8] = b"NBSNAP01";
/// The current (v2) magic: CRC-32 trailer.
const MAGIC_V2: &[u8; 8] = b"NBSNAP02";
/// Highest version this build can read.
const MAX_VERSION: u8 = 2;

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure (not a format problem).
    Io(io::Error),
    /// The binary magic did not match `NBSNAPxx`.
    BadMagic,
    /// The magic was well-formed but names a version this build cannot
    /// read (`found` > [`MAX_VERSION`] or 0).
    UnsupportedVersion { found: u8, max_supported: u8 },
    /// The file ended before the promised payload: `n` bodies declared,
    /// data ran out in `section` at body `body`.
    Truncated { n: u64, section: &'static str, body: u64 },
    /// The stored CRC-32 disagrees with the digest of the bytes actually
    /// read — a bit-flip or partial overwrite inside the payload.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// The declared body count exceeds any plausible snapshot.
    ImplausibleCount(u64),
    /// The CSV header line was missing or wrong.
    BadHeader,
    /// A CSV record failed to parse (`line` is 1-based, counting the header).
    Malformed { line: usize, reason: String },
    /// A value was NaN/infinite, or a mass was negative: `what` names the
    /// offending field, `body` the 0-based record.
    NonFinite { body: usize, what: &'static str },
    /// The snapshot is well-formed but holds zero bodies. Empty states
    /// round-trip fine at the io layer; *resuming a simulation* from one is
    /// rejected here ([`crate::guard::resume_state_from_disk`]) because an
    /// empty system cannot be stepped ([`crate::solver::SolverError::EmptySystem`]).
    EmptyBody,
}

impl SnapshotError {
    /// The `io::ErrorKind` this error lowers to: truncation is
    /// `UnexpectedEof` (the bytes end early), everything else a format
    /// problem (`InvalidData`), and wrapped I/O errors keep their own kind.
    pub fn io_kind(&self) -> io::ErrorKind {
        match self {
            SnapshotError::Io(e) => e.kind(),
            SnapshotError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic (want NBSNAPxx)"),
            SnapshotError::UnsupportedVersion { found, max_supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads up to v{max_supported})"
            ),
            SnapshotError::Truncated { n, section, body } => write!(
                f,
                "truncated snapshot: header promises {n} bodies but {section} data ends at body {body}"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::ImplausibleCount(n) => write!(f, "implausible body count {n}"),
            SnapshotError::BadHeader => write!(f, "missing or unexpected csv header"),
            SnapshotError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            SnapshotError::NonFinite { body, what } => {
                write!(f, "body {body}: non-finite or negative {what}")
            }
            SnapshotError::EmptyBody => {
                write!(f, "snapshot holds zero bodies; a simulation cannot resume from it")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<SnapshotError> for io::Error {
    fn from(e: SnapshotError) -> Self {
        match e {
            // A raw I/O failure passes through untouched.
            SnapshotError::Io(inner) => inner,
            // Format errors keep the typed value as the error *source*
            // (not just its rendered string), so `io::Error::get_ref` +
            // downcast recovers the full kind/offset/line detail.
            other => io::Error::new(other.io_kind(), other),
        }
    }
}

/// Reject snapshots whose values no solver can consume.
fn validate_state(state: &SystemState) -> Result<(), SnapshotError> {
    for (i, p) in state.positions.iter().enumerate() {
        if !p.is_finite() {
            return Err(SnapshotError::NonFinite { body: i, what: "position" });
        }
    }
    for (i, v) in state.velocities.iter().enumerate() {
        if !v.is_finite() {
            return Err(SnapshotError::NonFinite { body: i, what: "velocity" });
        }
    }
    for (i, &m) in state.masses.iter().enumerate() {
        if !m.is_finite() || m < 0.0 {
            return Err(SnapshotError::NonFinite { body: i, what: "mass" });
        }
    }
    Ok(())
}

/// Write a CSV snapshot (`x,y,z,vx,vy,vz,m` per body, with header).
pub fn write_csv<W: Write>(state: &SystemState, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "x,y,z,vx,vy,vz,m")?;
    for i in 0..state.len() {
        let p = state.positions[i];
        let v = state.velocities[i];
        // {:e} keeps full f64 precision in a compact, parseable form.
        writeln!(
            w,
            "{:e},{:e},{:e},{:e},{:e},{:e},{:e}",
            p.x, p.y, p.z, v.x, v.y, v.z, state.masses[i]
        )?;
    }
    w.flush()
}

/// Read a CSV snapshot produced by [`write_csv`] (header required), with
/// typed failure reporting. See [`SnapshotError`].
pub fn try_read_csv<R: Read>(r: R) -> Result<SystemState, SnapshotError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or(SnapshotError::BadHeader)??;
    if header.trim() != "x,y,z,vx,vy,vz,m" {
        return Err(SnapshotError::BadHeader);
    }
    let mut state = SystemState::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<f64> = line
            .split(',')
            .map(|f| f.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| SnapshotError::Malformed { line: lineno + 2, reason: e.to_string() })?;
        if fields.len() != 7 {
            return Err(SnapshotError::Malformed {
                line: lineno + 2,
                reason: format!("expected 7 fields, got {}", fields.len()),
            });
        }
        state.push(
            Vec3::new(fields[0], fields[1], fields[2]),
            Vec3::new(fields[3], fields[4], fields[5]),
            fields[6],
        );
    }
    validate_state(&state)?;
    Ok(state)
}

/// [`try_read_csv`] with the error lowered into `io::Error` (the typed
/// [`SnapshotError`] is preserved as the error source).
pub fn read_csv<R: Read>(r: R) -> io::Result<SystemState> {
    try_read_csv(r).map_err(io::Error::from)
}

/// A `Write` adapter that folds every written byte into a CRC-32 digest.
struct Crc32Writer<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Write the current (v2) binary snapshot format: versioned magic, body
/// count, payload, trailing CRC-32 of everything before it.
pub fn write_binary<W: Write>(state: &SystemState, w: W) -> io::Result<()> {
    let mut w = Crc32Writer { inner: BufWriter::new(w), crc: Crc32::new() };
    write_payload(state, &mut w, MAGIC_V2)?;
    let digest = w.crc.finalize();
    // The digest itself is written past the checksummed region.
    w.inner.write_all(&digest.to_le_bytes())?;
    w.inner.flush()
}

/// Write the legacy (v1) headerless-trailer format — `NBSNAP01`, no
/// checksum. Kept so the backward-compatible read path stays covered by
/// round-trip tests against real v1 bytes, and for interchange with tools
/// pinned to the old layout.
pub fn write_binary_v1<W: Write>(state: &SystemState, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    write_payload(state, &mut w, MAGIC_V1)?;
    w.flush()
}

/// Magic + count + the three arrays (shared by both format versions).
fn write_payload<W: Write>(state: &SystemState, w: &mut W, magic: &[u8; 8]) -> io::Result<()> {
    w.write_all(magic)?;
    w.write_all(&(state.len() as u64).to_le_bytes())?;
    for p in &state.positions {
        for c in [p.x, p.y, p.z] {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for v in &state.velocities {
        for c in [v.x, v.y, v.z] {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for &m in &state.masses {
        w.write_all(&m.to_le_bytes())?;
    }
    Ok(())
}

/// A `Read` adapter that folds every consumed byte into a CRC-32 digest.
struct Crc32Reader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// Read any supported binary snapshot version (v2 with checksum
/// verification, v1 transparently), with typed failure reporting. See
/// [`SnapshotError`].
pub fn try_read_binary<R: Read>(r: R) -> Result<SystemState, SnapshotError> {
    let mut r = Crc32Reader { inner: BufReader::new(r), crc: Crc32::new() };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            // Includes the empty file: too short to even carry a magic.
            SnapshotError::BadMagic
        } else {
            SnapshotError::Io(e)
        }
    })?;
    let version = sniff_version(&magic)?;
    let state = read_arrays(&mut r)?;
    if version >= 2 {
        // The digest covers exactly the bytes parsed so far; the stored
        // trailer is read outside the checksummed stream.
        let computed = r.crc.finalize();
        let mut trailer = [0u8; 4];
        r.inner.read_exact(&mut trailer).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                SnapshotError::Truncated {
                    n: state.len() as u64,
                    section: "checksum",
                    body: state.len() as u64,
                }
            } else {
                SnapshotError::Io(e)
            }
        })?;
        let stored = u32::from_le_bytes(trailer);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
    }
    validate_state(&state)?;
    Ok(state)
}

/// Decode the 8-byte magic: `NBSNAP` + two ASCII version digits.
fn sniff_version(magic: &[u8; 8]) -> Result<u8, SnapshotError> {
    if &magic[..6] != MAGIC_PREFIX
        || !magic[6].is_ascii_digit()
        || !magic[7].is_ascii_digit()
    {
        return Err(SnapshotError::BadMagic);
    }
    let version = (magic[6] - b'0') * 10 + (magic[7] - b'0');
    if version == 0 || version > MAX_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            max_supported: MAX_VERSION,
        });
    }
    Ok(version)
}

/// Count + the three arrays (shared by both format versions).
fn read_arrays<R: Read>(r: &mut R) -> Result<SystemState, SnapshotError> {
    let mut len = [0u8; 8];
    r.read_exact(&mut len).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated { n: 0, section: "count", body: 0 }
        } else {
            SnapshotError::Io(e)
        }
    })?;
    let n = u64::from_le_bytes(len);
    // Guard against absurd headers before allocating.
    if n > (1 << 33) {
        return Err(SnapshotError::ImplausibleCount(n));
    }
    let n = n as usize;
    // Distinguish "file ended mid-payload" from a raw EOF error: the header
    // made a promise the data does not keep.
    let read_f64 = |r: &mut R, section: &'static str, body: usize| -> Result<f64, SnapshotError> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                SnapshotError::Truncated { n: n as u64, section, body: body as u64 }
            } else {
                SnapshotError::Io(e)
            }
        })?;
        Ok(f64::from_le_bytes(b))
    };
    let mut positions = Vec::with_capacity(n);
    for i in 0..n {
        positions.push(Vec3::new(
            read_f64(r, "position", i)?,
            read_f64(r, "position", i)?,
            read_f64(r, "position", i)?,
        ));
    }
    let mut velocities = Vec::with_capacity(n);
    for i in 0..n {
        velocities.push(Vec3::new(
            read_f64(r, "velocity", i)?,
            read_f64(r, "velocity", i)?,
            read_f64(r, "velocity", i)?,
        ));
    }
    let mut masses = Vec::with_capacity(n);
    for i in 0..n {
        masses.push(read_f64(r, "mass", i)?);
    }
    Ok(SystemState::from_parts(positions, velocities, masses))
}

/// [`try_read_binary`] with the error lowered into `io::Error` (the typed
/// [`SnapshotError`] is preserved as the error source).
pub fn read_binary<R: Read>(r: R) -> io::Result<SystemState> {
    try_read_binary(r).map_err(io::Error::from)
}

/// Save with typed failure reporting (format chosen by extension:
/// `.csv` → CSV, anything else → v2 binary).
pub fn try_save(state: &SystemState, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let f = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        write_csv(state, f)?;
    } else {
        write_binary(state, f)?;
    }
    Ok(())
}

/// Load with typed failure reporting. See [`try_save`].
pub fn try_load(path: impl AsRef<Path>) -> Result<SystemState, SnapshotError> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        try_read_csv(f)
    } else {
        try_read_binary(f)
    }
}

/// Convenience wrappers over file paths (format chosen by extension:
/// `.csv` → CSV, anything else → binary).
pub fn save(state: &SystemState, path: impl AsRef<Path>) -> io::Result<()> {
    try_save(state, path).map_err(io::Error::from)
}

/// See [`save`].
pub fn load(path: impl AsRef<Path>) -> io::Result<SystemState> {
    try_load(path).map_err(io::Error::from)
}

/// Durably checkpoint `state` to `path` (v2 binary, CRC-32-sealed) via a
/// sibling temporary file and an atomic rename, so a crash at any point
/// leaves either the previous complete file or nothing — never a torn
/// checkpoint under the real name. The data is fsynced before the rename;
/// a stray `<name>.tmp` from an interrupted earlier attempt is simply
/// overwritten.
pub fn save_atomic(state: &SystemState, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            SnapshotError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint path has no file name",
            ))
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let f = std::fs::File::create(&tmp)?;
        write_binary(state, &f)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;

    #[test]
    fn binary_round_trip_is_lossless() {
        let state = galaxy_collision(500, 21);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(state.positions, back.positions);
        assert_eq!(state.velocities, back.velocities);
        assert_eq!(state.masses, back.masses);
    }

    #[test]
    fn legacy_v1_round_trip_is_lossless() {
        // The modern reader must sniff the v1 magic and take the
        // trailer-less path transparently.
        let state = galaxy_collision(300, 27);
        let mut buf = Vec::new();
        write_binary_v1(&state, &mut buf).unwrap();
        assert_eq!(&buf[..8], MAGIC_V1);
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(state.positions, back.positions);
        assert_eq!(state.velocities, back.velocities);
        assert_eq!(state.masses, back.masses);
    }

    #[test]
    fn v2_is_v1_plus_versioned_magic_and_trailer() {
        let state = galaxy_collision(64, 28);
        let mut v1 = Vec::new();
        let mut v2 = Vec::new();
        write_binary_v1(&state, &mut v1).unwrap();
        write_binary(&state, &mut v2).unwrap();
        assert_eq!(&v2[..8], MAGIC_V2);
        assert_eq!(v2.len(), v1.len() + 4, "v2 adds exactly the 4-byte CRC trailer");
        // Identical payload after the magic.
        assert_eq!(&v1[8..], &v2[8..v2.len() - 4]);
        // And the trailer is the CRC of everything before it.
        let stored = u32::from_le_bytes(v2[v2.len() - 4..].try_into().unwrap());
        assert_eq!(stored, nbody_math::crc32(&v2[..v2.len() - 4]));
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        // `{:e}` prints enough digits for exact f64 round-trip.
        let state = galaxy_collision(200, 22);
        let mut buf = Vec::new();
        write_csv(&state, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(state.positions, back.positions);
        assert_eq!(state.velocities, back.velocities);
        assert_eq!(state.masses, back.masses);
    }

    #[test]
    fn empty_state_round_trips() {
        let state = SystemState::new();
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap().len(), 0);
        let mut csv = Vec::new();
        write_csv(&state, &mut csv).unwrap();
        assert_eq!(read_csv(&csv[..]).unwrap().len(), 0);
        let mut v1 = Vec::new();
        write_binary_v1(&state, &mut v1).unwrap();
        assert_eq!(read_binary(&v1[..]).unwrap().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOTASNAP\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The typed error survives the io::Error lowering as the source.
        let inner = err.get_ref().and_then(|e| e.downcast_ref::<SnapshotError>());
        assert!(matches!(inner, Some(SnapshotError::BadMagic)), "{inner:?}");
    }

    #[test]
    fn unsupported_version_rejected_with_detail() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"NBSNAP07");
        buf.extend_from_slice(&0u64.to_le_bytes());
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::UnsupportedVersion { found: 7, max_supported }) => {
                assert_eq!(max_supported, MAX_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Version 00 is reserved/invalid, not "older than v1".
        let mut buf = Vec::new();
        buf.extend_from_slice(b"NBSNAP00");
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            try_read_binary(&buf[..]),
            Err(SnapshotError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn truncated_binary_rejected() {
        let state = galaxy_collision(10, 23);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        buf.truncate(buf.len() - 4 - 4); // into the mass section
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let state = galaxy_collision(20, 29);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        // Flip one payload bit: parses fine, digest disagrees.
        buf[40] ^= 0x10;
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_trailer_reported_as_truncated_checksum() {
        let state = galaxy_collision(5, 30);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        buf.truncate(buf.len() - 2); // half the CRC trailer survives
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::Truncated { section: "checksum", .. }) => {}
            other => panic!("expected Truncated checksum, got {other:?}"),
        }
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(read_csv(&b"wrong,header\n"[..]).is_err());
        assert!(read_csv(&b"x,y,z,vx,vy,vz,m\n1,2,3\n"[..]).is_err());
        assert!(read_csv(&b"x,y,z,vx,vy,vz,m\n1,2,3,4,5,6,abc\n"[..]).is_err());
        assert!(read_csv(&b""[..]).is_err());
    }

    #[test]
    fn truncated_binary_names_section_and_body() {
        let state = galaxy_collision(10, 25);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        // Cut inside the velocity block: header + positions + 2.5 velocities.
        buf.truncate(8 + 8 + 10 * 24 + 2 * 24 + 12);
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::Truncated { n, section, body }) => {
                assert_eq!(n, 10);
                assert_eq!(section, "velocity");
                assert_eq!(body, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // The io::Result wrapper keeps both the kind and the typed detail.
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("velocity"), "got: {err}");
        match err.get_ref().and_then(|e| e.downcast_ref::<SnapshotError>()) {
            Some(SnapshotError::Truncated { n: 10, section: "velocity", body: 2 }) => {}
            other => panic!("typed source lost in conversion: {other:?}"),
        }
    }

    #[test]
    fn csv_malformed_line_detail_survives_io_lowering() {
        let err = read_csv(&b"x,y,z,vx,vy,vz,m\n1,2,3,4,5,6,abc\n"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        match err.get_ref().and_then(|e| e.downcast_ref::<SnapshotError>()) {
            Some(SnapshotError::Malformed { line: 2, .. }) => {}
            other => panic!("typed source lost in conversion: {other:?}"),
        }
    }

    #[test]
    fn nan_snapshots_rejected_with_descriptive_error() {
        // Binary: corrupt one position, one velocity, one mass in turn.
        let mut state = galaxy_collision(5, 26);
        state.positions[3].y = f64::NAN;
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::NonFinite { body: 3, what: "position" }) => {}
            other => panic!("expected NonFinite position, got {other:?}"),
        }

        let mut state = galaxy_collision(5, 26);
        state.velocities[1].z = f64::INFINITY;
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::NonFinite { body: 1, what: "velocity" }) => {}
            other => panic!("expected NonFinite velocity, got {other:?}"),
        }

        let mut state = galaxy_collision(5, 26);
        state.masses[4] = -1.0;
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::NonFinite { body: 4, what: "mass" }) => {}
            other => panic!("expected NonFinite mass, got {other:?}"),
        }

        // CSV path rejects the same corruption ("NaN" parses as f64::NAN).
        let mut state = galaxy_collision(5, 26);
        state.positions[0].x = f64::NAN;
        let mut csv = Vec::new();
        write_csv(&state, &mut csv).unwrap();
        let err = read_csv(&csv[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("position"), "got: {err}");
    }

    #[test]
    fn implausible_count_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V2);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::ImplausibleCount(n)) => assert_eq!(n, u64::MAX),
            other => panic!("expected ImplausibleCount, got {other:?}"),
        }
    }

    #[test]
    fn file_save_load_by_extension() {
        let state = galaxy_collision(50, 24);
        let dir = std::env::temp_dir();
        let bin = dir.join("nbsnap_test.bin");
        let csv = dir.join("nbsnap_test.csv");
        save(&state, &bin).unwrap();
        save(&state, &csv).unwrap();
        assert_eq!(load(&bin).unwrap().positions, state.positions);
        assert_eq!(load(&csv).unwrap().positions, state.positions);
        let _ = std::fs::remove_file(bin);
        let _ = std::fs::remove_file(csv);
    }

    #[test]
    fn atomic_save_replaces_and_leaves_no_tmp() {
        let state = galaxy_collision(40, 31);
        let dir = std::env::temp_dir();
        let path = dir.join("nbsnap_atomic_test.bin");
        save_atomic(&state, &path).unwrap();
        // Overwrite with a different state: the rename replaces in place.
        let state2 = galaxy_collision(40, 32);
        save_atomic(&state2, &path).unwrap();
        assert_eq!(try_load(&path).unwrap().positions, state2.positions);
        assert!(
            !dir.join("nbsnap_atomic_test.bin.tmp").exists(),
            "temporary file must not survive a successful save"
        );
        let _ = std::fs::remove_file(path);
    }
}
