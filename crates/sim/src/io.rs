//! Snapshot I/O: save and restore [`SystemState`]s.
//!
//! The paper's artifact generates workloads on the fly; a reusable library
//! additionally needs snapshots so long runs can be checkpointed and
//! externally-produced initial conditions (e.g. a real JPL SBDB export)
//! can be loaded. Two formats:
//!
//! * **CSV** — `x,y,z,vx,vy,vz,m` per line, interoperable with plotting
//!   tools;
//! * **binary** — `NBSNAP01` magic, little-endian `u64` count, then the
//!   three arrays; lossless `f64` round-trip and ~3× smaller than CSV.
//!
//! Readers are strict: a truncated file, a malformed record, or any
//! non-finite value is rejected with a descriptive [`SnapshotError`]
//! *before* the state reaches a solver — a NaN that slips in here would
//! otherwise surface steps later as a mysteriously invalid tree. The
//! `io::Result` entry points ([`read_csv`], [`read_binary`], [`load`])
//! convert the typed error into `io::ErrorKind::InvalidData`.

use crate::system::SystemState;
use nbody_math::Vec3;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"NBSNAP01";

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure (not a format problem).
    Io(io::Error),
    /// The binary magic did not match `NBSNAP01`.
    BadMagic,
    /// The file ended before the promised payload: `n` bodies declared,
    /// data ran out in `section` at body `body`.
    Truncated { n: u64, section: &'static str, body: u64 },
    /// The declared body count exceeds any plausible snapshot.
    ImplausibleCount(u64),
    /// The CSV header line was missing or wrong.
    BadHeader,
    /// A CSV record failed to parse (`line` is 1-based, counting the header).
    Malformed { line: usize, reason: String },
    /// A value was NaN/infinite, or a mass was negative: `what` names the
    /// offending field, `body` the 0-based record.
    NonFinite { body: usize, what: &'static str },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic (want NBSNAP01)"),
            SnapshotError::Truncated { n, section, body } => write!(
                f,
                "truncated snapshot: header promises {n} bodies but {section} data ends at body {body}"
            ),
            SnapshotError::ImplausibleCount(n) => write!(f, "implausible body count {n}"),
            SnapshotError::BadHeader => write!(f, "missing or unexpected csv header"),
            SnapshotError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            SnapshotError::NonFinite { body, what } => {
                write!(f, "body {body}: non-finite or negative {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<SnapshotError> for io::Error {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Reject snapshots whose values no solver can consume.
fn validate_state(state: &SystemState) -> Result<(), SnapshotError> {
    for (i, p) in state.positions.iter().enumerate() {
        if !p.is_finite() {
            return Err(SnapshotError::NonFinite { body: i, what: "position" });
        }
    }
    for (i, v) in state.velocities.iter().enumerate() {
        if !v.is_finite() {
            return Err(SnapshotError::NonFinite { body: i, what: "velocity" });
        }
    }
    for (i, &m) in state.masses.iter().enumerate() {
        if !m.is_finite() || m < 0.0 {
            return Err(SnapshotError::NonFinite { body: i, what: "mass" });
        }
    }
    Ok(())
}

/// Write a CSV snapshot (`x,y,z,vx,vy,vz,m` per body, with header).
pub fn write_csv<W: Write>(state: &SystemState, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "x,y,z,vx,vy,vz,m")?;
    for i in 0..state.len() {
        let p = state.positions[i];
        let v = state.velocities[i];
        // {:e} keeps full f64 precision in a compact, parseable form.
        writeln!(
            w,
            "{:e},{:e},{:e},{:e},{:e},{:e},{:e}",
            p.x, p.y, p.z, v.x, v.y, v.z, state.masses[i]
        )?;
    }
    w.flush()
}

/// Read a CSV snapshot produced by [`write_csv`] (header required), with
/// typed failure reporting. See [`SnapshotError`].
pub fn try_read_csv<R: Read>(r: R) -> Result<SystemState, SnapshotError> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or(SnapshotError::BadHeader)??;
    if header.trim() != "x,y,z,vx,vy,vz,m" {
        return Err(SnapshotError::BadHeader);
    }
    let mut state = SystemState::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<f64> = line
            .split(',')
            .map(|f| f.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| SnapshotError::Malformed { line: lineno + 2, reason: e.to_string() })?;
        if fields.len() != 7 {
            return Err(SnapshotError::Malformed {
                line: lineno + 2,
                reason: format!("expected 7 fields, got {}", fields.len()),
            });
        }
        state.push(
            Vec3::new(fields[0], fields[1], fields[2]),
            Vec3::new(fields[3], fields[4], fields[5]),
            fields[6],
        );
    }
    validate_state(&state)?;
    Ok(state)
}

/// [`try_read_csv`] with the error lowered into `io::Error` (InvalidData).
pub fn read_csv<R: Read>(r: R) -> io::Result<SystemState> {
    try_read_csv(r).map_err(io::Error::from)
}

/// Write the lossless binary snapshot format.
pub fn write_binary<W: Write>(state: &SystemState, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&(state.len() as u64).to_le_bytes())?;
    for p in &state.positions {
        for c in [p.x, p.y, p.z] {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for v in &state.velocities {
        for c in [v.x, v.y, v.z] {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for &m in &state.masses {
        w.write_all(&m.to_le_bytes())?;
    }
    w.flush()
}

/// Read the binary snapshot format, with typed failure reporting. See
/// [`SnapshotError`].
pub fn try_read_binary<R: Read>(r: R) -> Result<SystemState, SnapshotError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let n = u64::from_le_bytes(len);
    // Guard against absurd headers before allocating.
    if n > (1 << 33) {
        return Err(SnapshotError::ImplausibleCount(n));
    }
    let n = n as usize;
    // Distinguish "file ended mid-payload" from a raw EOF error: the header
    // made a promise the data does not keep.
    let read_f64 =
        |r: &mut BufReader<R>, section: &'static str, body: usize| -> Result<f64, SnapshotError> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    SnapshotError::Truncated { n: n as u64, section, body: body as u64 }
                } else {
                    SnapshotError::Io(e)
                }
            })?;
            Ok(f64::from_le_bytes(b))
        };
    let mut positions = Vec::with_capacity(n);
    for i in 0..n {
        positions.push(Vec3::new(
            read_f64(&mut r, "position", i)?,
            read_f64(&mut r, "position", i)?,
            read_f64(&mut r, "position", i)?,
        ));
    }
    let mut velocities = Vec::with_capacity(n);
    for i in 0..n {
        velocities.push(Vec3::new(
            read_f64(&mut r, "velocity", i)?,
            read_f64(&mut r, "velocity", i)?,
            read_f64(&mut r, "velocity", i)?,
        ));
    }
    let mut masses = Vec::with_capacity(n);
    for i in 0..n {
        masses.push(read_f64(&mut r, "mass", i)?);
    }
    let state = SystemState::from_parts(positions, velocities, masses);
    validate_state(&state)?;
    Ok(state)
}

/// [`try_read_binary`] with the error lowered into `io::Error` (InvalidData).
pub fn read_binary<R: Read>(r: R) -> io::Result<SystemState> {
    try_read_binary(r).map_err(io::Error::from)
}

/// Convenience wrappers over file paths (format chosen by extension:
/// `.csv` → CSV, anything else → binary).
pub fn save(state: &SystemState, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let f = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        write_csv(state, f)
    } else {
        write_binary(state, f)
    }
}

/// See [`save`].
pub fn load(path: impl AsRef<Path>) -> io::Result<SystemState> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        read_csv(f)
    } else {
        read_binary(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;

    #[test]
    fn binary_round_trip_is_lossless() {
        let state = galaxy_collision(500, 21);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(state.positions, back.positions);
        assert_eq!(state.velocities, back.velocities);
        assert_eq!(state.masses, back.masses);
    }

    #[test]
    fn csv_round_trip_is_lossless() {
        // `{:e}` prints enough digits for exact f64 round-trip.
        let state = galaxy_collision(200, 22);
        let mut buf = Vec::new();
        write_csv(&state, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(state.positions, back.positions);
        assert_eq!(state.velocities, back.velocities);
        assert_eq!(state.masses, back.masses);
    }

    #[test]
    fn empty_state_round_trips() {
        let state = SystemState::new();
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap().len(), 0);
        let mut csv = Vec::new();
        write_csv(&state, &mut csv).unwrap();
        assert_eq!(read_csv(&csv[..]).unwrap().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_binary(&b"NOTASNAP\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_binary_rejected() {
        let state = galaxy_collision(10, 23);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(read_csv(&b"wrong,header\n"[..]).is_err());
        assert!(read_csv(&b"x,y,z,vx,vy,vz,m\n1,2,3\n"[..]).is_err());
        assert!(read_csv(&b"x,y,z,vx,vy,vz,m\n1,2,3,4,5,6,abc\n"[..]).is_err());
        assert!(read_csv(&b""[..]).is_err());
    }

    #[test]
    fn truncated_binary_names_section_and_body() {
        let state = galaxy_collision(10, 25);
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        // Cut inside the velocity block: header + positions + 2.5 velocities.
        buf.truncate(8 + 8 + 10 * 24 + 2 * 24 + 12);
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::Truncated { n, section, body }) => {
                assert_eq!(n, 10);
                assert_eq!(section, "velocity");
                assert_eq!(body, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // The io::Result wrapper keeps the description.
        let err = read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("velocity"), "got: {err}");
    }

    #[test]
    fn nan_snapshots_rejected_with_descriptive_error() {
        // Binary: corrupt one position, one velocity, one mass in turn.
        let mut state = galaxy_collision(5, 26);
        state.positions[3].y = f64::NAN;
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::NonFinite { body: 3, what: "position" }) => {}
            other => panic!("expected NonFinite position, got {other:?}"),
        }

        let mut state = galaxy_collision(5, 26);
        state.velocities[1].z = f64::INFINITY;
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::NonFinite { body: 1, what: "velocity" }) => {}
            other => panic!("expected NonFinite velocity, got {other:?}"),
        }

        let mut state = galaxy_collision(5, 26);
        state.masses[4] = -1.0;
        let mut buf = Vec::new();
        write_binary(&state, &mut buf).unwrap();
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::NonFinite { body: 4, what: "mass" }) => {}
            other => panic!("expected NonFinite mass, got {other:?}"),
        }

        // CSV path rejects the same corruption ("NaN" parses as f64::NAN).
        let mut state = galaxy_collision(5, 26);
        state.positions[0].x = f64::NAN;
        let mut csv = Vec::new();
        write_csv(&state, &mut csv).unwrap();
        let err = read_csv(&csv[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("position"), "got: {err}");
    }

    #[test]
    fn implausible_count_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        match try_read_binary(&buf[..]) {
            Err(SnapshotError::ImplausibleCount(n)) => assert_eq!(n, u64::MAX),
            other => panic!("expected ImplausibleCount, got {other:?}"),
        }
    }

    #[test]
    fn file_save_load_by_extension() {
        let state = galaxy_collision(50, 24);
        let dir = std::env::temp_dir();
        let bin = dir.join("nbsnap_test.bin");
        let csv = dir.join("nbsnap_test.csv");
        save(&state, &bin).unwrap();
        save(&state, &csv).unwrap();
        assert_eq!(load(&bin).unwrap().positions, state.positions);
        assert_eq!(load(&csv).unwrap().positions, state.positions);
        let _ = std::fs::remove_file(bin);
        let _ = std::fs::remove_file(csv);
    }
}
