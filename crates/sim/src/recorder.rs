//! Time-series recording of diagnostics and per-phase timings over a run —
//! the data behind conservation plots and the Fig. 8-style breakdowns.

use crate::diagnostics::Diagnostics;
use crate::integrator::Simulation;
use crate::timing::StepTimings;
use std::io::{self, Write};

/// One recorded sample.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    pub step: usize,
    pub time: f64,
    pub diagnostics: Diagnostics,
    pub timings: StepTimings,
}

/// Records diagnostics every `every` steps while driving a [`Simulation`].
pub struct Recorder {
    every: usize,
    /// Number of bodies sampled for the potential estimate (0 = exact).
    potential_samples: usize,
    samples: Vec<Sample>,
}

impl Recorder {
    pub fn new(every: usize) -> Self {
        Recorder { every: every.max(1), potential_samples: 1000, samples: Vec::new() }
    }

    /// Use the exact `O(N²)` potential (small systems only).
    pub fn exact_potential(mut self) -> Self {
        self.potential_samples = 0;
        self
    }

    /// Advance the simulation `steps` steps, recording as configured.
    /// Always records the state *before* the first step and after the last.
    pub fn run(&mut self, sim: &mut Simulation, steps: usize) {
        let (g, softening) = (1.0, 0.0); // diagnostics in workload units
        let measure = |s: &crate::system::SystemState, k: usize| {
            if k == 0 {
                Diagnostics::measure(s, g, softening)
            } else {
                Diagnostics::measure_sampled(s, g, softening, k)
            }
        };
        if self.samples.is_empty() {
            self.samples.push(Sample {
                step: sim.steps_done(),
                time: sim.time(),
                diagnostics: measure(sim.state(), self.potential_samples),
                timings: StepTimings::default(),
            });
        }
        for s in 0..steps {
            let t = sim.step();
            if (s + 1) % self.every == 0 || s + 1 == steps {
                self.samples.push(Sample {
                    step: sim.steps_done(),
                    time: sim.time(),
                    diagnostics: measure(sim.state(), self.potential_samples),
                    timings: t,
                });
            }
        }
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Relative energy drift between the first and last sample.
    pub fn energy_drift(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) if a.diagnostics.total_energy != 0.0 => {
                ((b.diagnostics.total_energy - a.diagnostics.total_energy)
                    / a.diagnostics.total_energy)
                    .abs()
            }
            _ => 0.0,
        }
    }

    /// Dump the series as CSV (`step,time,energy,kinetic,potential,px,py,pz,force_s,build_s`).
    pub fn write_csv<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = io::BufWriter::new(w);
        writeln!(w, "step,time,energy,kinetic,potential,px,py,pz,force_s,build_s")?;
        for s in &self.samples {
            let d = s.diagnostics;
            writeln!(
                w,
                "{},{:e},{:e},{:e},{:e},{:e},{:e},{:e},{:e},{:e}",
                s.step,
                s.time,
                d.total_energy,
                d.kinetic_energy,
                d.potential_energy,
                d.momentum.x,
                d.momentum.y,
                d.momentum.z,
                s.timings.force.as_secs_f64(),
                (s.timings.build + s.timings.sort + s.timings.multipole).as_secs_f64(),
            )?;
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::SimOptions;
    use crate::solver::SolverKind;
    use crate::workload::galaxy_collision;

    #[test]
    fn records_expected_sample_count() {
        let state = galaxy_collision(300, 31);
        let mut sim = Simulation::new(state, SolverKind::Bvh, SimOptions::default()).unwrap();
        let mut rec = Recorder::new(5).exact_potential();
        rec.run(&mut sim, 20);
        // Initial + one per 5 steps (the final step coincides with a period).
        assert_eq!(rec.samples().len(), 1 + 4);
        assert_eq!(rec.samples().last().unwrap().step, 20);
        assert!(rec.energy_drift() < 1e-2);
    }

    #[test]
    fn csv_output_has_header_and_rows() {
        let state = galaxy_collision(100, 32);
        let mut sim = Simulation::new(state, SolverKind::Octree, SimOptions::default()).unwrap();
        let mut rec = Recorder::new(2).exact_potential();
        rec.run(&mut sim, 4);
        let mut buf = Vec::new();
        rec.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("step,time,energy"));
        assert_eq!(lines.len(), 1 + rec.samples().len());
    }

    #[test]
    fn final_step_always_recorded_even_off_period() {
        let state = galaxy_collision(100, 33);
        let mut sim = Simulation::new(state, SolverKind::Bvh, SimOptions::default()).unwrap();
        let mut rec = Recorder::new(10).exact_potential();
        rec.run(&mut sim, 7); // 7 < every
        assert_eq!(rec.samples().last().unwrap().step, 7);
    }
}
