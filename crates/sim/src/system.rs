//! Body state in structure-of-arrays layout.

use nbody_math::{Aabb, Vec3};
use stdpar::prelude::*;

/// The state of an N-body system: positions, velocities, masses.
///
/// Stored as separate arrays (SoA) exactly like the paper's implementation,
/// so each kernel touches only the fields it needs.
#[derive(Clone, Debug, Default)]
pub struct SystemState {
    pub positions: Vec<Vec3>,
    pub velocities: Vec<Vec3>,
    pub masses: Vec<f64>,
}

impl SystemState {
    /// An empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from parallel arrays.
    ///
    /// # Panics
    /// Panics if the array lengths differ.
    pub fn from_parts(positions: Vec<Vec3>, velocities: Vec<Vec3>, masses: Vec<f64>) -> Self {
        assert_eq!(positions.len(), velocities.len(), "positions/velocities length mismatch");
        assert_eq!(positions.len(), masses.len(), "positions/masses length mismatch");
        SystemState { positions, velocities, masses }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Append one body.
    pub fn push(&mut self, pos: Vec3, vel: Vec3, mass: f64) {
        self.positions.push(pos);
        self.velocities.push(vel);
        self.masses.push(mass);
    }

    /// Append all bodies of `other`.
    pub fn extend(&mut self, other: &SystemState) {
        self.positions.extend_from_slice(&other.positions);
        self.velocities.extend_from_slice(&other.velocities);
        self.masses.extend_from_slice(&other.masses);
    }

    /// CALCULATEBOUNDINGBOX (paper Algorithm 3): parallel reduction over
    /// body positions to the smallest box containing all bodies.
    pub fn bounding_box<P: ExecutionPolicy>(&self, policy: P) -> Aabb {
        let pos = &self.positions;
        transform_reduce(
            policy,
            0..pos.len(),
            Aabb::EMPTY,
            |a, b| a.union(b),
            |i| Aabb::from_point(pos[i]),
        )
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        nbody_math::kahan::kahan_sum(&self.masses)
    }

    /// Total linear momentum `Σ m v`.
    pub fn momentum(&self) -> Vec3 {
        let mut p = Vec3::ZERO;
        for (v, m) in self.velocities.iter().zip(&self.masses) {
            p += *v * *m;
        }
        p
    }

    /// Total angular momentum about the origin `Σ m (x × v)`.
    pub fn angular_momentum(&self) -> Vec3 {
        let mut l = Vec3::ZERO;
        for ((x, v), m) in self.positions.iter().zip(&self.velocities).zip(&self.masses) {
            l += x.cross(*v) * *m;
        }
        l
    }

    /// Centre of mass.
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        if m <= 0.0 {
            return Vec3::ZERO;
        }
        let mut c = Vec3::ZERO;
        for (x, w) in self.positions.iter().zip(&self.masses) {
            c += *x * *w;
        }
        c / m
    }

    /// Shift into the centre-of-momentum frame (zero net momentum, COM at
    /// the origin). Workload generators call this so the galaxy collision
    /// stays centred in the box.
    pub fn to_com_frame(&mut self) {
        let m = self.total_mass();
        if m <= 0.0 {
            return;
        }
        let com = self.center_of_mass();
        let v_com = self.momentum() / m;
        for x in &mut self.positions {
            *x -= com;
        }
        for v in &mut self.velocities {
            *v -= v_com;
        }
    }

    /// True iff all fields are finite and masses non-negative.
    pub fn is_valid(&self) -> bool {
        self.positions.iter().all(|p| p.is_finite())
            && self.velocities.iter().all(|v| v.is_finite())
            && self.masses.iter().all(|&m| m.is_finite() && m >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SystemState {
        SystemState::from_parts(
            vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(-1.0, 0.0, 0.0)],
            vec![Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, -1.0, 0.0)],
            vec![2.0, 2.0],
        )
    }

    #[test]
    fn totals() {
        let s = sample();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_mass(), 4.0);
        assert_eq!(s.momentum(), Vec3::ZERO);
        assert_eq!(s.center_of_mass(), Vec3::ZERO);
        // L = Σ m (x × v): both bodies orbit counter-clockwise in z.
        assert_eq!(s.angular_momentum(), Vec3::new(0.0, 0.0, 4.0));
    }

    #[test]
    fn bounding_box_policies_agree() {
        let mut s = SystemState::new();
        let mut r = nbody_math::SplitMix64::new(5);
        for _ in 0..10_000 {
            s.push(
                Vec3::new(r.uniform(-5.0, 7.0), r.uniform(0.0, 1.0), r.uniform(-2.0, 2.0)),
                Vec3::ZERO,
                1.0,
            );
        }
        let b_seq = s.bounding_box(Seq);
        let b_par = s.bounding_box(Par);
        let b_unseq = s.bounding_box(ParUnseq);
        assert_eq!(b_seq, b_par);
        assert_eq!(b_seq, b_unseq);
        for &p in &s.positions {
            assert!(b_seq.contains(p));
        }
    }

    #[test]
    fn com_frame_zeroes_momentum() {
        let mut s = sample();
        s.velocities[0] = Vec3::new(3.0, 1.0, 0.5);
        s.positions[1] = Vec3::new(4.0, 4.0, 4.0);
        s.to_com_frame();
        assert!(s.momentum().norm() < 1e-12);
        assert!(s.center_of_mass().norm() < 1e-12);
    }

    #[test]
    fn extend_and_push() {
        let mut s = sample();
        let t = sample();
        s.extend(&t);
        assert_eq!(s.len(), 4);
        s.push(Vec3::ZERO, Vec3::ZERO, 1.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.total_mass(), 9.0);
    }

    #[test]
    fn validity_checks() {
        let mut s = sample();
        assert!(s.is_valid());
        s.masses[0] = -1.0;
        assert!(!s.is_valid());
        s.masses[0] = 1.0;
        s.positions[0].x = f64::NAN;
        assert!(!s.is_valid());
    }

    #[test]
    #[should_panic]
    fn mismatched_parts_panic() {
        let _ = SystemState::from_parts(vec![Vec3::ZERO], vec![], vec![1.0]);
    }

    #[test]
    fn empty_bounding_box() {
        let s = SystemState::new();
        assert!(s.bounding_box(Par).is_empty());
        assert_eq!(s.total_mass(), 0.0);
        assert_eq!(s.center_of_mass(), Vec3::ZERO);
    }
}
