//! Conservation and accuracy diagnostics.
//!
//! The paper validates by (a) conserving mass and energy across systems and
//! (b) comparing "the L2 error norm of the final body positions" between
//! implementations (< 1e-6 for the solar-system run). Both live here.

use crate::system::SystemState;
use nbody_math::{KahanSum, Vec3};
use stdpar::prelude::*;

/// Snapshot of the conserved quantities of a system.
#[derive(Clone, Copy, Debug)]
pub struct Diagnostics {
    pub total_mass: f64,
    pub kinetic_energy: f64,
    pub potential_energy: f64,
    pub total_energy: f64,
    pub momentum: Vec3,
    pub angular_momentum: Vec3,
    pub center_of_mass: Vec3,
}

impl Diagnostics {
    /// Measure all quantities. The potential is the exact `O(N²)` softened
    /// pairwise sum with compensated accumulation — intended for
    /// validation-sized systems (use [`Diagnostics::measure_sampled`] for
    /// millions of bodies).
    pub fn measure(state: &SystemState, g: f64, softening: f64) -> Diagnostics {
        let kinetic = kinetic_energy(state);
        let potential = potential_energy_exact(state, g, softening);
        Diagnostics {
            total_mass: state.total_mass(),
            kinetic_energy: kinetic,
            potential_energy: potential,
            total_energy: kinetic + potential,
            momentum: state.momentum(),
            angular_momentum: state.angular_momentum(),
            center_of_mass: state.center_of_mass(),
        }
    }

    /// Like [`Diagnostics::measure`], but estimate the potential from a
    /// deterministic sample of `samples` bodies (unbiased up to sampling
    /// error; fine for drift *monitoring* at large N).
    pub fn measure_sampled(state: &SystemState, g: f64, softening: f64, samples: usize) -> Diagnostics {
        let kinetic = kinetic_energy(state);
        let potential = potential_energy_sampled(state, g, softening, samples);
        Diagnostics {
            total_mass: state.total_mass(),
            kinetic_energy: kinetic,
            potential_energy: potential,
            total_energy: kinetic + potential,
            momentum: state.momentum(),
            angular_momentum: state.angular_momentum(),
            center_of_mass: state.center_of_mass(),
        }
    }
}

/// `Σ ½ m v²` with compensated summation.
pub fn kinetic_energy(state: &SystemState) -> f64 {
    state
        .velocities
        .iter()
        .zip(&state.masses)
        .map(|(v, m)| 0.5 * m * v.norm2())
        .collect::<KahanSum>()
        .value()
}

/// Exact softened potential `−G Σ_{i<j} m_i m_j / √(r² + ε²)`, parallel
/// over rows with per-row compensated sums.
pub fn potential_energy_exact(state: &SystemState, g: f64, softening: f64) -> f64 {
    let n = state.len();
    let eps2 = softening * softening;
    let pos = &state.positions;
    let mass = &state.masses;
    let row = |i: usize| -> f64 {
        let mut s = KahanSum::new();
        for j in (i + 1)..n {
            let r2 = pos[i].distance2(pos[j]) + eps2;
            if r2 > 0.0 {
                s.add(-g * mass[i] * mass[j] / r2.sqrt());
            }
        }
        s.value()
    };
    transform_reduce(Par, 0..n, KahanSum::new(), |a, b| a.merge(b), |i| {
        let mut s = KahanSum::new();
        s.add(row(i));
        s
    })
    .value()
}

/// Sampled potential estimate: exact field of `k` deterministic probe
/// bodies, scaled to the full population.
pub fn potential_energy_sampled(state: &SystemState, g: f64, softening: f64, k: usize) -> f64 {
    let n = state.len();
    if n < 2 {
        return 0.0;
    }
    let k = k.max(1).min(n);
    let stride = (n / k).max(1);
    let eps2 = softening * softening;
    let pos = &state.positions;
    let mass = &state.masses;
    // Σ over sampled i of m_i φ_i, then ×(n / #samples) / 2. Probe indices
    // are pure index math (i = pi·stride) rather than a materialised list:
    // the health watchdog calls this every sampled step inside the
    // zero-steady-state-allocation envelope.
    let n_probes = n.div_ceil(stride);
    let total = transform_reduce(
        Par,
        0..n_probes,
        0.0f64,
        |a, b| a + b,
        |pi| {
            let i = pi * stride;
            let mut phi = 0.0;
            for j in 0..n {
                if j != i {
                    let r2 = pos[i].distance2(pos[j]) + eps2;
                    phi -= g * mass[j] / r2.sqrt();
                }
            }
            mass[i] * phi
        },
    );
    0.5 * total * (n as f64 / n_probes as f64)
}

/// The paper's validation metric: the L2 norm of the difference between two
/// position arrays, `‖a − b‖₂ = √(Σ_i |a_i − b_i|²)`.
pub fn l2_error(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2_error length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x.distance2(*y))
        .collect::<KahanSum>()
        .value()
        .sqrt()
}

/// Relative L2 error, normalised by `‖b‖₂` (scale-free variant for SI-unit
/// systems where absolute positions are ~1e11 m).
pub fn l2_error_relative(a: &[Vec3], b: &[Vec3]) -> f64 {
    let denom = b.iter().map(|y| y.norm2()).collect::<KahanSum>().value().sqrt();
    if denom == 0.0 {
        l2_error(a, b)
    } else {
        l2_error(a, b) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{galaxy_collision, plummer};

    #[test]
    fn two_body_energies() {
        let s = crate::system::SystemState::from_parts(
            vec![Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)],
            vec![Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)],
            vec![3.0, 1.0],
        );
        let d = Diagnostics::measure(&s, 1.0, 0.0);
        assert_eq!(d.total_mass, 4.0);
        assert_eq!(d.kinetic_energy, 0.5);
        assert!((d.potential_energy - (-1.5)).abs() < 1e-15);
        assert!((d.total_energy - (-1.0)).abs() < 1e-15);
    }

    #[test]
    fn sampled_potential_tracks_exact() {
        let s = plummer(3000, 41);
        let exact = potential_energy_exact(&s, 1.0, 0.0);
        let sampled = potential_energy_sampled(&s, 1.0, 0.0, 600);
        assert!(
            (sampled - exact).abs() < 0.1 * exact.abs(),
            "sampled {sampled} vs exact {exact}"
        );
        // Full sampling equals the exact computation (up to reassociation).
        let full = potential_energy_sampled(&s, 1.0, 0.0, s.len());
        assert!((full - exact).abs() < 1e-9 * exact.abs());
    }

    #[test]
    fn l2_error_basics() {
        let a = vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)];
        let b = vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)];
        assert_eq!(l2_error(&a, &b), 0.0);
        let c = vec![Vec3::new(3.0, 0.0, 0.0), Vec3::new(1.0, 4.0, 0.0)];
        assert_eq!(l2_error(&a, &c), 5.0);
        assert!(l2_error_relative(&a, &c) > 0.0);
    }

    #[test]
    #[should_panic]
    fn l2_error_length_mismatch_panics() {
        let _ = l2_error(&[Vec3::ZERO], &[]);
    }

    #[test]
    fn plummer_total_energy_is_negative_and_bound() {
        let s = galaxy_collision(2000, 42);
        let d = Diagnostics::measure(&s, 1.0, 0.0);
        assert!(d.total_energy < 0.0, "collision system should be bound: {}", d.total_energy);
        assert!(d.kinetic_energy > 0.0);
        assert!(d.momentum.norm() < 1e-9);
    }
}
