//! Barrier-free task-graph stepping: one leapfrog step as a static DAG
//! over body-range tiles, executed by [`stdpar::taskgraph::TaskGraph`]'s
//! work-stealing continuation scheduler instead of phase-by-phase
//! parallel regions with global barriers between them.
//!
//! # Step shape (three executor runs)
//!
//! The paper's step is bbox → sort → build → moments → force around the
//! integrator's two kicks, with a full barrier after every phase. The
//! task-graph step keeps the *data* dependences and drops the barriers:
//!
//! 1. **Run A1** — `KickDrift(t)` tiles (the opening kick + drift) with a
//!    `Bbox(t)` partial-reduction tile hanging off each one, so bounding
//!    of a tile starts the moment that tile's bodies have moved. Joining
//!    the box partials is an inherent global reduction, so the join runs
//!    on the caller thread (min/max are exact, any join order is bitwise
//!    identical to the barrier's `transform_reduce`).
//! 2. **Run A2** (BVH rebuild steps) — exactly the rebuild DAG laid out
//!    by [`bh_bvh::RebuildTasks::wire`]: per-tile key+sort nodes, a
//!    binary merge tree, sorted gathers, and per-subtree build/moment
//!    reductions whose edges are *per-subtree*, not a global barrier —
//!    moments for one subtree start while another subtree's gathers are
//!    still running. The concurrent octree's lock-mediated insertion
//!    build does not tile (see `bh_octree::tasks`); it stays a
//!    caller-thread parallel region between runs.
//! 3. **Run B** — `Force(t)` tiles with a 1:1 `Force(t) → Kick2(t)` edge
//!    each: a tile's closing kick starts the moment its forces land,
//!    instead of after a global force barrier. Kick2 tiles walk exactly
//!    the body set their force tile wrote
//!    ([`bh_bvh::ForceTasks::tile_bodies`]), so the single edge orders
//!    every read after its write and slots stay disjoint across tiles.
//!
//! # Bitwise equivalence with the barrier oracle
//!
//! Every node body replicates the corresponding barrier loop body
//! verbatim (see the tree crates' `tasks` modules), kick arithmetic is
//! per-body, box/drift reductions are exact min/max folds, and the BVH
//! sort's distinct `(key, index)` pairs have a unique ascending order —
//! so a task-graph step produces bit-identical state to a barrier step
//! for the BVH under *any* backend and schedule, and for the octree
//! under the deterministic `Backend::DetPar` (whose node-granular trace
//! records and replays entire DAG executions). The `schedule_fuzz`
//! integration suite and the in-module tests pin this down.
//!
//! # Timing attribution
//!
//! Phases overlap here, so per-phase wall windows are ill-defined; each
//! node's execution time is accumulated into a per-phase busy table
//! instead and surfaced through [`StepTimings::busy`] (see
//! [`PhaseBusy`]). Caller-thread sections between runs (bbox join,
//! rebuild layout, octree build) are timed the classic way — they are
//! exclusive, so wall equals busy there.

use crate::resilient::ComputeError;
use crate::solver::{max_drift, BvhSolver, OctreeSolver};
use crate::system::SystemState;
use crate::timing::{timed_counted, PhaseBusy, StepTimings};
use crate::workspace::{DagScratch, SimWorkspace};
use bh_bvh::RebuildPhase;
use nbody_math::gravity::TreeLifecycle;
use nbody_math::{Aabb, Vec3};
use nbody_telemetry::record;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use stdpar::alloc_stats::allocation_count;
use stdpar::backend::{par_grain, thread_count};
use stdpar::prelude::*;
use stdpar::taskgraph::TaskGraph;

/// How one integration step is executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stepping {
    /// Phase-by-phase parallel regions with a global barrier between
    /// phases — the paper's structure, and the bitwise oracle the
    /// task-graph mode is checked against.
    #[default]
    Barrier,
    /// One static DAG over body-range tiles per step (this module):
    /// barrier-free, work-stealing, deterministic under
    /// `Backend::DetPar`'s node-granular trace replay.
    TaskGraph,
}

impl Stepping {
    pub const ALL: [Stepping; 2] = [Stepping::Barrier, Stepping::TaskGraph];

    pub fn name(self) -> &'static str {
        match self {
            Stepping::Barrier => "barrier",
            Stepping::TaskGraph => "task-graph",
        }
    }
}

/// Sort/gather tiles per worker handed to the BVH rebuild DAG: enough
/// slack that the merge tree's narrowing rounds keep stealing targets
/// available without making tiles too small to amortise node dispatch.
const REBUILD_TILES_PER_WORKER: usize = 4;

/// Per-phase busy-nanosecond tallies, accumulated by node bodies across
/// workers and folded into [`StepTimings`] after the last run joined.
#[derive(Default)]
struct BusyTable {
    bbox: AtomicU64,
    sort: AtomicU64,
    build: AtomicU64,
    multipole: AtomicU64,
    force: AtomicU64,
    update: AtomicU64,
}

impl BusyTable {
    /// Run `f`, adding its execution time to `slot`.
    #[inline]
    fn timed<R>(slot: &AtomicU64, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        // relaxed-ok: independent tallies; read only after the executor's
        // thread-scope join publishes every add.
        slot.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    /// Fold the tallies into the timing record: node busy time adds onto
    /// whatever the caller-thread sections already timed, and the
    /// combined per-phase figures become both the `Duration` slots and
    /// the [`PhaseBusy`] attribution.
    fn fold_into(&self, t: &mut StepTimings) {
        // relaxed-ok (whole method): all worker scopes joined before this.
        t.bbox += Duration::from_nanos(self.bbox.load(Ordering::Relaxed));
        t.sort += Duration::from_nanos(self.sort.load(Ordering::Relaxed));
        t.build += Duration::from_nanos(self.build.load(Ordering::Relaxed));
        t.multipole += Duration::from_nanos(self.multipole.load(Ordering::Relaxed));
        t.force += Duration::from_nanos(self.force.load(Ordering::Relaxed));
        t.update += Duration::from_nanos(self.update.load(Ordering::Relaxed));
        t.busy = PhaseBusy::from_wall(t);
    }
}

/// Count heap allocations of `f` into `slot` (the saturating-delta rule
/// of [`timed_counted`], without the wall timer — node bodies feed the
/// busy table themselves).
#[inline]
fn alloc_counted<R>(slot: &mut u64, f: impl FnOnce() -> R) -> R {
    let before = allocation_count();
    let r = f();
    *slot += allocation_count().saturating_sub(before);
    r
}

/// Tree-maintenance shape of one step, decided up front (none of the
/// decisions depend on the drifted positions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Maint {
    /// Full rebuild after the drift (Run A2 / the octree build region).
    Rebuild,
    /// Traverse the previous step's tree as-is (the `tree_rebuild_every`
    /// reuse ablation — no drift scan, no MAC pad).
    Reuse,
    /// Incremental lifecycle stale serve: drift-scan for the MAC pad,
    /// then traverse the persistent tree.
    ServeStale,
}

/// Bodies covered by kick/bbox tile `t` at grain `chunk`.
#[inline]
fn tile_range(t: usize, chunk: usize, n: usize) -> std::ops::Range<usize> {
    (t * chunk).min(n)..((t + 1) * chunk).min(n)
}

/// **Run A1**: `KickDrift(t)` tiles, each with a dependent `Bbox(t)`
/// partial when `bbox_parts` is given. Returns nothing; the caller joins
/// the partials. Kick arithmetic is per-body and identical to the
/// barrier integrator's loop, so any schedule is bitwise equivalent.
fn run_kick_drift(
    g: &mut TaskGraph,
    bbox_parts: Option<&mut Vec<Aabb>>,
    state: &mut SystemState,
    accel: &[Vec3],
    dt: f64,
    busy: &BusyTable,
) {
    let n = state.len();
    let half = 0.5 * dt;
    let chunk = par_grain(n).max(1);
    let tiles = n.div_ceil(chunk);
    g.clear();
    let parts = bbox_parts.map(|p| {
        p.clear();
        p.resize(tiles, Aabb::EMPTY);
        SyncSlice::new(&mut p[..])
    });
    g.add_nodes(if parts.is_some() { 2 * tiles } else { tiles });
    if parts.is_some() {
        for t in 0..tiles {
            g.add_edge(t as u32, (tiles + t) as u32);
        }
    }
    let vel = SyncSlice::new(&mut state.velocities);
    let pos = SyncSlice::new(&mut state.positions);
    g.run(|node, _| {
        let id = node as usize;
        if id < tiles {
            BusyTable::timed(&busy.update, || {
                for i in tile_range(id, chunk, n) {
                    // SAFETY: kick-drift tiles partition 0..n.
                    unsafe {
                        let v = vel.get_mut(i);
                        *v += accel[i] * half;
                        *pos.get_mut(i) += *v * dt;
                    }
                }
            });
        } else {
            BusyTable::timed(&busy.bbox, || {
                let t = id - tiles;
                let r = tile_range(t, chunk, n);
                // SAFETY: the KickDrift(t) → Bbox(t) edge ordered every
                // write to this range before these reads.
                let drifted = unsafe { pos.slice(r) };
                let mut b = Aabb::EMPTY;
                for p in drifted {
                    b.expand(*p);
                }
                // unwrap-ok: bbox nodes are only added to the graph when
                // `bbox_parts` was provided (`parts` is Some on this arm by
                // construction of the node layout above).
                // SAFETY: one partial slot per bbox tile.
                unsafe { parts.expect("bbox tile without partials").write(t, b) };
            });
        }
    });
}

/// The piece of a tree force-task view that **Run B** drives: both
/// [`bh_bvh::ForceTasks`] and [`bh_octree::OctreeForceTasks`] have this
/// shape.
trait ForceTiles: Sync {
    fn tile_count(&self) -> usize;
    fn run_tile(&self, t: usize, worker: usize, out: SyncSlice<'_, Vec3>);
    fn for_each_body(&self, t: usize, f: impl FnMut(usize));
}

impl ForceTiles for bh_bvh::ForceTasks<'_> {
    fn tile_count(&self) -> usize {
        bh_bvh::ForceTasks::tile_count(self)
    }
    fn run_tile(&self, t: usize, worker: usize, out: SyncSlice<'_, Vec3>) {
        bh_bvh::ForceTasks::run_tile(self, t, worker, out)
    }
    fn for_each_body(&self, t: usize, mut f: impl FnMut(usize)) {
        for b in self.tile_bodies(t) {
            f(b);
        }
    }
}

impl ForceTiles for bh_octree::OctreeForceTasks<'_> {
    fn tile_count(&self) -> usize {
        bh_octree::OctreeForceTasks::tile_count(self)
    }
    fn run_tile(&self, t: usize, worker: usize, out: SyncSlice<'_, Vec3>) {
        bh_octree::OctreeForceTasks::run_tile(self, t, worker, out)
    }
    fn for_each_body(&self, t: usize, mut f: impl FnMut(usize)) {
        for b in self.tile_bodies(t) {
            f(b);
        }
    }
}

/// **Run B**: force tiles with 1:1 `Force(t) → Kick2(t)` edges. A kick
/// tile walks exactly the bodies its force tile wrote, so the one edge
/// orders all its acceleration reads and velocity slots stay disjoint
/// across tiles (tile body sets partition `0..n`).
fn run_force_kick(
    g: &mut TaskGraph,
    ft: &impl ForceTiles,
    accel: &mut [Vec3],
    velocities: &mut [Vec3],
    half: f64,
    busy: &BusyTable,
) {
    let tiles = ft.tile_count();
    g.clear();
    g.add_nodes(2 * tiles);
    for t in 0..tiles {
        g.add_edge(t as u32, (tiles + t) as u32);
    }
    let out = SyncSlice::new(accel);
    let vel = SyncSlice::new(velocities);
    g.run(|node, w| {
        let id = node as usize;
        if id < tiles {
            BusyTable::timed(&busy.force, || ft.run_tile(id, w, out));
        } else {
            BusyTable::timed(&busy.update, || {
                ft.for_each_body(id - tiles, |b| {
                    // SAFETY: the Force(t) → Kick2(t) edge ordered this
                    // tile's acceleration writes before these reads, and
                    // tile body sets partition 0..n so the velocity slots
                    // are exclusive.
                    unsafe { *vel.get_mut(b) += *out.get_mut(b) * half };
                });
            });
        }
    });
}

/// One barrier-free leapfrog step of the BVH solver, or `None` when the
/// configuration rules it out (sequential policy, `Stepping::Barrier`).
pub(crate) fn bvh_step_dag<P: ExecutionPolicy>(
    s: &mut BvhSolver<P>,
    state: &mut SystemState,
    accel: &mut [Vec3],
    dt: f64,
    reuse: bool,
    ws: &mut SimWorkspace,
) -> Option<Result<StepTimings, ComputeError>> {
    if s.params.stepping != Stepping::TaskGraph || !P::IS_PARALLEL {
        return None;
    }
    Some(step_bvh(s, state, accel, dt, reuse, ws))
}

fn step_bvh<P: ExecutionPolicy>(
    s: &mut BvhSolver<P>,
    state: &mut SystemState,
    accel: &mut [Vec3],
    dt: f64,
    reuse: bool,
    ws: &mut SimWorkspace,
) -> Result<StepTimings, ComputeError> {
    let n = state.len();
    assert_eq!(accel.len(), n, "accel length mismatch");
    let mut t = StepTimings::default();
    let busy = BusyTable::default();

    let maint = match s.params.lifecycle {
        TreeLifecycle::Incremental { max_stale_steps } if n > 0 => {
            let ready = s.built && s.bvh.n_bodies() == n && s.ref_pos.len() == n;
            if ready && s.stale_steps < max_stale_steps as usize {
                Maint::ServeStale
            } else {
                Maint::Rebuild
            }
        }
        _ if reuse && s.built && s.bvh.n_bodies() == n => Maint::Reuse,
        _ => Maint::Rebuild,
    };

    // Run A1: opening kick + drift, with bbox partials on rebuild steps.
    {
        let DagScratch { graph, bbox_parts } = &mut ws.dag;
        let parts = (maint == Maint::Rebuild).then_some(bbox_parts);
        alloc_counted(&mut t.allocs.update, || {
            run_kick_drift(graph, parts, state, accel, dt, &busy)
        });
    }

    // Between runs: tree maintenance.
    let mut fp = s.params.force_params();
    match maint {
        Maint::Rebuild => {
            s.built = false;
            let bbox = BusyTable::timed(&busy.bbox, || {
                ws.dag.bbox_parts.iter().fold(Aabb::EMPTY, |a, b| a.union(*b))
            });
            let tiles_hint = thread_count() * REBUILD_TILES_PER_WORKER;
            // Run A2: the rebuild DAG, exactly as `RebuildTasks::wire`
            // lays it out. Layout/validation (the sequential prefix the
            // barrier sort also runs on the caller thread) is timed into
            // the sort slot, where the barrier path carries it too.
            let begun = timed_counted(&mut t.sort, &mut t.allocs.sort, || {
                s.bvh.begin_rebuild_tasks(
                    &state.positions,
                    &state.masses,
                    bbox,
                    tiles_hint,
                    &mut ws.bvh,
                )
            });
            let tasks = match begun {
                Ok(tasks) => tasks,
                Err(e) => return Err(ComputeError::Build(e)),
            };
            let graph = &mut ws.dag.graph;
            graph.clear();
            tasks.wire(graph);
            alloc_counted(&mut t.allocs.build, || {
                graph.run(|node, _| {
                    let slot = match tasks.node_phase(node) {
                        RebuildPhase::Sort => &busy.sort,
                        RebuildPhase::Build => &busy.build,
                        RebuildPhase::Moments => &busy.multipole,
                    };
                    BusyTable::timed(slot, || tasks.run_node(node));
                })
            });
            s.bvh.finish_rebuild_tasks();
            s.built = true;
            if matches!(s.params.lifecycle, TreeLifecycle::Incremental { .. }) {
                s.ref_pos.clear();
                s.ref_pos.extend_from_slice(&state.positions);
                s.stale_steps = 0;
            }
        }
        Maint::ServeStale => {
            // Drift scan — the bounding-box phase's analogue, exactly as
            // the barrier serve path computes it (sequential exact fold).
            let pad = timed_counted(&mut t.bbox, &mut t.allocs.bbox, || {
                max_drift(&s.ref_pos, &state.positions)
            });
            s.stale_steps += 1;
            fp.mac_pad = pad;
            record!(counter TREE_REUSE_STEPS, 1);
        }
        Maint::Reuse => {}
    }

    // Run B: forces + closing kick.
    {
        let ft = timed_counted(&mut t.force, &mut t.allocs.force, || {
            s.bvh.begin_force_tasks(&state.positions, &fp, &mut ws.bvh)
        });
        alloc_counted(&mut t.allocs.force, || {
            run_force_kick(&mut ws.dag.graph, &ft, accel, &mut state.velocities, 0.5 * dt, &busy)
        });
    }

    busy.fold_into(&mut t);
    Ok(t)
}

/// One barrier-free leapfrog step of the octree solver, or `None` when
/// the configuration rules it out. The lock-mediated insertion build
/// (and the incremental delta machinery) stays a caller-thread region
/// between the runs; kick/drift/bbox and force/kick tiles run on the
/// graph executor.
pub(crate) fn octree_step_dag<P: ParallelForwardProgress>(
    s: &mut OctreeSolver<P>,
    state: &mut SystemState,
    accel: &mut [Vec3],
    dt: f64,
    reuse: bool,
    ws: &mut SimWorkspace,
) -> Option<Result<StepTimings, ComputeError>> {
    if s.params.stepping != Stepping::TaskGraph || !P::IS_PARALLEL {
        return None;
    }
    Some(step_octree(s, state, accel, dt, reuse, ws))
}

fn step_octree<P: ParallelForwardProgress>(
    s: &mut OctreeSolver<P>,
    state: &mut SystemState,
    accel: &mut [Vec3],
    dt: f64,
    reuse: bool,
    ws: &mut SimWorkspace,
) -> Result<StepTimings, ComputeError> {
    let n = state.len();
    assert_eq!(accel.len(), n, "accel length mismatch");
    let mut t = StepTimings::default();
    let busy = BusyTable::default();

    let incremental = match s.params.lifecycle {
        TreeLifecycle::Incremental { max_stale_steps } if n > 0 => Some(max_stale_steps as usize),
        _ => None,
    };
    let rebuild =
        incremental.is_none() && !(reuse && s.built && s.tree.n_bodies() == n);

    // Run A1: opening kick + drift (+ bbox partials when rebuilding).
    {
        let DagScratch { graph, bbox_parts } = &mut ws.dag;
        let parts = rebuild.then_some(bbox_parts);
        alloc_counted(&mut t.allocs.update, || {
            run_kick_drift(graph, parts, state, accel, dt, &busy)
        });
    }

    // Between runs: tree maintenance — the octree build is lock-mediated
    // insertion and runs as its own caller-thread parallel region.
    let mut fp = s.params.force_params();
    if let Some(max_stale) = incremental {
        s.advance_incremental(state, max_stale, &mut fp, &mut t)?;
    } else if rebuild {
        s.built = false;
        let bbox = BusyTable::timed(&busy.bbox, || {
            ws.dag.bbox_parts.iter().fold(Aabb::EMPTY, |a, b| a.union(*b))
        });
        let built = timed_counted(&mut t.build, &mut t.allocs.build, || {
            s.tree.build(s.policy, &state.positions, bbox)
        });
        built.map_err(ComputeError::Build)?;
        timed_counted(&mut t.multipole, &mut t.allocs.multipole, || {
            s.tree.compute_multipoles(s.policy, &state.positions, &state.masses)
        });
        s.built = true;
    }

    // Run B: forces + closing kick.
    {
        let ft = timed_counted(&mut t.force, &mut t.allocs.force, || {
            s.tree.begin_force_tasks(&state.positions, &state.masses, &fp, &mut ws.octree)
        });
        alloc_counted(&mut t.allocs.force, || {
            run_force_kick(&mut ws.dag.graph, &ft, accel, &mut state.velocities, 0.5 * dt, &busy)
        });
    }

    busy.fold_into(&mut t);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{SimOptions, Simulation};
    use crate::solver::SolverKind;
    use crate::workload::galaxy_collision;
    use nbody_math::gravity::{ForceEval, ForceKernel};
    use stdpar::backend::{with_backend, with_threads, Backend};
    use stdpar::detpar::{with_schedule, ScheduleMode};
    use stdpar::policy::DynPolicy;

    fn run_steps(kind: SolverKind, opts: SimOptions, n: usize, seed: u64, steps: usize) -> Simulation {
        let state = galaxy_collision(n, seed);
        let mut sim = Simulation::new(state, kind, opts).unwrap();
        sim.run(steps);
        sim
    }

    fn assert_states_identical(a: &Simulation, b: &Simulation, what: &str) {
        assert_eq!(a.state().positions, b.state().positions, "{what}: positions diverged");
        assert_eq!(a.state().velocities, b.state().velocities, "{what}: velocities diverged");
        assert_eq!(a.accelerations(), b.accelerations(), "{what}: accelerations diverged");
    }

    #[test]
    fn bvh_taskgraph_step_matches_barrier_bitwise() {
        for (eval, kernel) in [
            (ForceEval::PerBody, ForceKernel::Scalar),
            (ForceEval::blocked(), ForceKernel::Scalar),
            (ForceEval::blocked(), ForceKernel::Simd),
        ] {
            for lifecycle in
                [TreeLifecycle::Rebuild, TreeLifecycle::Incremental { max_stale_steps: 2 }]
            {
                let opts = SimOptions {
                    dt: 1e-3,
                    policy: DynPolicy::ParUnseq,
                    eval,
                    kernel,
                    lifecycle,
                    ..SimOptions::default()
                };
                let barrier = run_steps(SolverKind::Bvh, opts, 400, 90, 6);
                let dag = run_steps(
                    SolverKind::Bvh,
                    SimOptions { stepping: Stepping::TaskGraph, ..opts },
                    400,
                    90,
                    6,
                );
                assert_states_identical(&barrier, &dag, &format!("{eval:?}/{kernel:?}/{lifecycle:?}"));
                assert!(dag.last_timings().busy.total() > 0, "busy table must be populated");
            }
        }
    }

    #[test]
    fn bvh_taskgraph_reuse_ablation_matches_barrier() {
        let opts = SimOptions { dt: 1e-3, tree_rebuild_every: 3, ..SimOptions::default() };
        let barrier = run_steps(SolverKind::Bvh, opts, 300, 91, 7);
        let dag = run_steps(
            SolverKind::Bvh,
            SimOptions { stepping: Stepping::TaskGraph, ..opts },
            300,
            91,
            7,
        );
        assert_states_identical(&barrier, &dag, "tree_rebuild_every=3");
    }

    #[test]
    fn bvh_taskgraph_identical_across_backends_and_schedules() {
        let opts = SimOptions {
            dt: 1e-3,
            stepping: Stepping::TaskGraph,
            eval: ForceEval::blocked(),
            ..SimOptions::default()
        };
        let reference = run_steps(SolverKind::Bvh, opts, 300, 92, 4);
        for backend in Backend::ALL {
            with_backend(backend, || {
                let sim = run_steps(SolverKind::Bvh, opts, 300, 92, 4);
                assert_states_identical(&reference, &sim, &format!("{backend:?}"));
            });
        }
        with_backend(Backend::DetPar, || {
            for mode in ScheduleMode::ALL {
                with_schedule(17, mode, || {
                    let sim = run_steps(SolverKind::Bvh, opts, 300, 92, 4);
                    assert_states_identical(&reference, &sim, &format!("{mode:?}"));
                });
            }
        });
        with_threads(1, || {
            let sim = run_steps(SolverKind::Bvh, opts, 300, 92, 4);
            assert_states_identical(&reference, &sim, "single worker");
        });
    }

    #[test]
    fn octree_taskgraph_step_matches_barrier_under_detpar() {
        // The lock-mediated octree build is schedule-dependent, so the
        // barrier/task-graph comparison pins the deterministic backend
        // (which makes the build region reproducible given the inputs).
        with_backend(Backend::DetPar, || {
            with_schedule(23, ScheduleMode::RoundRobin, || {
                for lifecycle in
                    [TreeLifecycle::Rebuild, TreeLifecycle::Incremental { max_stale_steps: 2 }]
                {
                    let opts = SimOptions { dt: 1e-3, lifecycle, ..SimOptions::default() };
                    let barrier = run_steps(SolverKind::Octree, opts, 350, 93, 6);
                    let dag = run_steps(
                        SolverKind::Octree,
                        SimOptions { stepping: Stepping::TaskGraph, ..opts },
                        350,
                        93,
                        6,
                    );
                    assert_states_identical(&barrier, &dag, &format!("{lifecycle:?}"));
                }
            });
        });
    }

    #[test]
    fn taskgraph_falls_back_for_sequential_and_non_tree_solvers() {
        // Seq policy and all-pairs solvers must silently use the barrier
        // path (and still advance correctly).
        for kind in [SolverKind::AllPairs, SolverKind::Bvh] {
            let opts = SimOptions {
                dt: 1e-3,
                policy: DynPolicy::Seq,
                stepping: Stepping::TaskGraph,
                ..SimOptions::default()
            };
            let a = run_steps(kind, opts, 120, 94, 3);
            let b = run_steps(
                kind,
                SimOptions { stepping: Stepping::Barrier, ..opts },
                120,
                94,
                3,
            );
            assert_states_identical(&a, &b, kind.name());
        }
    }

    #[test]
    fn taskgraph_handles_single_body_and_rejects_empty_systems() {
        let single = SystemState::from_parts(
            vec![Vec3::new(0.4, -0.1, 0.8)],
            vec![Vec3::new(0.1, 0.0, 0.0)],
            vec![2.0],
        );
        for kind in [SolverKind::Bvh, SolverKind::Octree] {
            let opts =
                SimOptions { dt: 1e-3, stepping: Stepping::TaskGraph, ..SimOptions::default() };
            // N == 0 is a typed construction error, not a panic deep in the
            // bbox/tree code on the first step.
            assert_eq!(
                Simulation::new(SystemState::new(), kind, opts).err(),
                Some(crate::solver::SolverError::EmptySystem),
                "{}",
                kind.name()
            );
            let mut sim = Simulation::new(single.clone(), kind, opts).unwrap();
            sim.run(3);
            assert_eq!(sim.steps_done(), 3, "{} n=1", kind.name());
            assert_eq!(sim.accelerations()[0], Vec3::ZERO);
        }
    }

    #[test]
    fn stepping_names_are_stable() {
        assert_eq!(Stepping::Barrier.name(), "barrier");
        assert_eq!(Stepping::TaskGraph.name(), "task-graph");
        assert_eq!(Stepping::default(), Stepping::Barrier);
    }
}
