//! Workload generators.
//!
//! All generators are deterministic functions of `(n, seed)` via SplitMix64
//! streams, matching the paper's requirement that "the experiments simulate
//! a deterministic collision between two neighboring galaxies" so identical
//! initial conditions run on every algorithm and configuration.
//!
//! * [`galaxy_collision`] — the paper's benchmark workload: two Plummer
//!   spheres on an approach orbit (natural units, `G = 1`).
//! * [`plummer`] — a single virialised Plummer (1911) sphere.
//! * [`uniform_cube`] — uniform density cube (stress test for the trees).
//! * [`spinning_disk`] — exponential disk with circular velocities.
//! * [`solar_system`] — the synthetic stand-in for NASA's JPL Small-Body
//!   Database used in the paper's validation experiment (§V-A): a solar
//!   mass at the origin plus `n` massless-scale bodies on Keplerian orbits
//!   with belt-like element distributions, in SI units.

use crate::system::SystemState;
use nbody_math::{SplitMix64, Vec3, AU, G_SI, M_SUN};

/// A named, reproducible workload (used by the benchmark harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    GalaxyCollision { n: usize, seed: u64 },
    Plummer { n: usize, seed: u64 },
    UniformCube { n: usize, seed: u64 },
    SpinningDisk { n: usize, seed: u64 },
    SolarSystem { n: usize, seed: u64 },
}

impl WorkloadSpec {
    pub fn generate(self) -> SystemState {
        match self {
            WorkloadSpec::GalaxyCollision { n, seed } => galaxy_collision(n, seed),
            WorkloadSpec::Plummer { n, seed } => plummer(n, seed),
            WorkloadSpec::UniformCube { n, seed } => uniform_cube(n, seed),
            WorkloadSpec::SpinningDisk { n, seed } => spinning_disk(n, seed),
            WorkloadSpec::SolarSystem { n, seed } => solar_system(n, seed),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            WorkloadSpec::GalaxyCollision { .. } => "galaxy",
            WorkloadSpec::Plummer { .. } => "plummer",
            WorkloadSpec::UniformCube { .. } => "uniform",
            WorkloadSpec::SpinningDisk { .. } => "disk",
            WorkloadSpec::SolarSystem { .. } => "solar",
        }
    }
}

/// A virialised Plummer sphere with `n` bodies, total mass 1, scale radius
/// 1, in `G = 1` units (Aarseth–Hénon–Wielen sampling).
pub fn plummer(n: usize, seed: u64) -> SystemState {
    let mut state = SystemState::new();
    if n == 0 {
        return state;
    }
    let root = SplitMix64::new(seed);
    let m = 1.0 / n as f64;
    for i in 0..n {
        let mut r = root.fork(i as u64);
        // Radius from the cumulative mass profile: M(r) = r³/(1+r²)^{3/2}.
        let u = loop {
            let u = r.next_f64();
            if u > 1e-10 {
                break u;
            }
        };
        let radius = 1.0 / (u.powf(-2.0 / 3.0) - 1.0).sqrt();
        // Clamp the rare far-out tail so the bounding cube stays sane.
        let radius = radius.min(20.0);
        let dir = Vec3::from(r.unit_sphere());
        let pos = dir * radius;

        // Speed via von Neumann rejection on g(q) = q²(1−q²)^{7/2}.
        let q = loop {
            let q = r.next_f64();
            let g = q * q * (1.0 - q * q).powf(3.5);
            if r.next_f64() * 0.1 < g {
                break q;
            }
        };
        let v_esc = std::f64::consts::SQRT_2 * (1.0 + radius * radius).powf(-0.25);
        let vdir = Vec3::from(r.unit_sphere());
        state.push(pos, vdir * (q * v_esc), m);
    }
    state.to_com_frame();
    state
}

/// The paper's benchmark workload: a deterministic collision between two
/// neighbouring galaxies. Two Plummer spheres of `n/2` bodies each, offset
/// and set on an approaching, slightly off-axis orbit (so the encounter
/// has angular momentum), total mass 1, `G = 1`.
pub fn galaxy_collision(n: usize, seed: u64) -> SystemState {
    let n_a = n / 2;
    let n_b = n - n_a;
    let mut a = plummer(n_a, seed ^ 0xA11CE);
    let b = plummer(n_b, seed ^ 0xB0B);

    let offset = Vec3::new(3.0, 0.8, 0.0);
    let approach = Vec3::new(0.35, 0.0, 0.0);
    for p in &mut a.positions {
        *p -= offset * 0.5;
    }
    for v in &mut a.velocities {
        *v += approach * 0.5;
    }
    let mut combined = a;
    let mut b = b;
    for p in &mut b.positions {
        *p += offset * 0.5;
    }
    for v in &mut b.velocities {
        *v -= approach * 0.5;
    }
    // Halve per-body mass so the total stays 1.
    for m in combined.masses.iter_mut().chain(b.masses.iter_mut()) {
        *m *= 0.5;
    }
    combined.extend(&b);
    combined.to_com_frame();
    combined
}

/// Uniform-density cube `[-1, 1]³` with small random velocities — the
/// best case for the octree (shallow, balanced subdivision).
pub fn uniform_cube(n: usize, seed: u64) -> SystemState {
    let mut state = SystemState::new();
    let root = SplitMix64::new(seed);
    let m = 1.0 / n.max(1) as f64;
    for i in 0..n {
        let mut r = root.fork(i as u64);
        let pos = Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0));
        let vel = Vec3::new(r.normal(), r.normal(), r.normal()) * 0.05;
        state.push(pos, vel, m);
    }
    state.to_com_frame();
    state
}

/// Exponential disk (scale length 1, aspect 0.05) with approximately
/// circular orbits around the collective centre — a rotation-dominated
/// workload with strong clustering in z.
pub fn spinning_disk(n: usize, seed: u64) -> SystemState {
    let mut state = SystemState::new();
    if n == 0 {
        return state;
    }
    let root = SplitMix64::new(seed);
    let m = 1.0 / n as f64;
    for i in 0..n {
        let mut r = root.fork(i as u64);
        // Radial CDF of an exponential disk is 1-(1+x)e^{-x}, i.e. a
        // Gamma(2,1) law — sampled exactly as the sum of two Exp(1) draws.
        let radius = -(r.next_f64().max(1e-12)).ln() - (r.next_f64().max(1e-12)).ln();
        let radius = radius.clamp(0.02, 8.0);
        let phi = r.uniform(0.0, 2.0 * std::f64::consts::PI);
        let z = r.normal() * 0.05;
        let pos = Vec3::new(radius * phi.cos(), radius * phi.sin(), z);
        // Circular speed for the enclosed mass of an exponential disk,
        // roughly M(<r) ≈ 1 − (1+r)e^{-r} in G = M = 1 units.
        let enclosed = 1.0 - (1.0 + radius) * (-radius).exp();
        let v_circ = (enclosed / radius.max(0.05)).sqrt();
        let vel = Vec3::new(-phi.sin(), phi.cos(), 0.0) * v_circ;
        state.push(pos, vel, m);
    }
    state.to_com_frame();
    state
}

/// Synthetic solar-system ensemble: the validation stand-in for the JPL
/// Small-Body Database (paper §V-A simulates 1,039,551 small bodies for one
/// day at one-hour steps). SI units (metres, seconds, kilograms).
///
/// One solar-mass body sits at index 0; bodies `1..n+1` are asteroids with
/// main-belt-like orbital elements (`a` mostly 2.1–3.3 au, low `e`, a few
/// degrees of inclination), each given a tiny mass so the dynamics are
/// heliocentric but mass bookkeeping stays non-trivial.
///
/// Returns `n + 1` bodies. Use [`nbody_math::G_SI`] as the gravitational
/// constant and seconds as the time unit.
pub fn solar_system(n: usize, seed: u64) -> SystemState {
    let mut state = SystemState::new();
    state.push(Vec3::ZERO, Vec3::ZERO, M_SUN);
    let root = SplitMix64::new(seed);
    let mu = G_SI * M_SUN;
    for i in 0..n {
        let mut r = root.fork(i as u64);
        // Semi-major axis: 85% main belt, 15% scattered 0.5–30 au.
        let a_au = if r.next_f64() < 0.85 {
            r.uniform(2.1, 3.3)
        } else {
            0.5 * (60.0f64).powf(r.next_f64()) // log-uniform 0.5..30
        };
        let a = a_au * AU;
        let e = r.uniform(0.0, 0.25);
        let inc = (r.normal() * 0.05).abs().min(0.5); // radians, Rayleigh-ish
        let raan = r.uniform(0.0, 2.0 * std::f64::consts::PI);
        let argp = r.uniform(0.0, 2.0 * std::f64::consts::PI);
        let mean_anom = r.uniform(0.0, 2.0 * std::f64::consts::PI);
        let (pos, vel) = kepler_to_state(a, e, inc, raan, argp, mean_anom, mu);
        state.push(pos, vel, 1.0e12); // ~large-asteroid mass; dynamically tiny
    }
    state
}

/// Convert Keplerian elements to Cartesian state (standard perifocal →
/// inertial rotation). `mu = G·M` of the central body.
pub fn kepler_to_state(
    a: f64,
    e: f64,
    inc: f64,
    raan: f64,
    argp: f64,
    mean_anom: f64,
    mu: f64,
) -> (Vec3, Vec3) {
    let ecc_anom = solve_kepler(mean_anom, e);
    let (sin_e, cos_e) = ecc_anom.sin_cos();
    // Perifocal coordinates.
    let x_p = a * (cos_e - e);
    let y_p = a * (1.0 - e * e).sqrt() * sin_e;
    let radius = a * (1.0 - e * cos_e);
    let speed_factor = (mu * a).sqrt() / radius;
    let vx_p = -speed_factor * sin_e;
    let vy_p = speed_factor * (1.0 - e * e).sqrt() * cos_e;

    // Rotation perifocal → inertial: Rz(raan) Rx(inc) Rz(argp).
    let (so, co) = raan.sin_cos();
    let (si, ci) = inc.sin_cos();
    let (sw, cw) = argp.sin_cos();
    let r11 = co * cw - so * sw * ci;
    let r12 = -co * sw - so * cw * ci;
    let r21 = so * cw + co * sw * ci;
    let r22 = -so * sw + co * cw * ci;
    let r31 = sw * si;
    let r32 = cw * si;

    let pos = Vec3::new(r11 * x_p + r12 * y_p, r21 * x_p + r22 * y_p, r31 * x_p + r32 * y_p);
    let vel = Vec3::new(r11 * vx_p + r12 * vy_p, r21 * vx_p + r22 * vy_p, r31 * vx_p + r32 * vy_p);
    (pos, vel)
}

/// Solve Kepler's equation `M = E − e sin E` by Newton iteration.
pub fn solve_kepler(mean_anom: f64, e: f64) -> f64 {
    let mut ecc = if e > 0.8 { std::f64::consts::PI } else { mean_anom };
    for _ in 0..32 {
        let f = ecc - e * ecc.sin() - mean_anom;
        let fp = 1.0 - e * ecc.cos();
        let step = f / fp;
        ecc -= step;
        if step.abs() < 1e-14 {
            break;
        }
    }
    ecc
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::gravity::direct_accel;

    #[test]
    fn generators_are_deterministic() {
        for spec in [
            WorkloadSpec::GalaxyCollision { n: 100, seed: 1 },
            WorkloadSpec::Plummer { n: 100, seed: 1 },
            WorkloadSpec::UniformCube { n: 100, seed: 1 },
            WorkloadSpec::SpinningDisk { n: 100, seed: 1 },
            WorkloadSpec::SolarSystem { n: 100, seed: 1 },
        ] {
            let a = spec.generate();
            let b = spec.generate();
            assert_eq!(a.positions, b.positions, "{}", spec.name());
            assert_eq!(a.velocities, b.velocities);
            assert_eq!(a.masses, b.masses);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = galaxy_collision(100, 1);
        let b = galaxy_collision(100, 2);
        assert_ne!(a.positions, b.positions);
    }

    #[test]
    fn plummer_is_centred_and_unit_mass() {
        let s = plummer(5000, 3);
        assert_eq!(s.len(), 5000);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
        assert!(s.center_of_mass().norm() < 1e-10);
        assert!(s.momentum().norm() < 1e-10);
        assert!(s.is_valid());
        // Half-mass radius of a Plummer sphere ≈ 1.3 a.
        let mut radii: Vec<f64> = s.positions.iter().map(|p| p.norm()).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let half_mass_r = radii[2500];
        assert!((0.8..2.0).contains(&half_mass_r), "half-mass radius {half_mass_r}");
    }

    #[test]
    fn plummer_is_roughly_virialised() {
        // 2K + U ≈ 0 for a self-gravitating equilibrium (within sampling noise).
        let s = plummer(4000, 4);
        let mut kinetic = 0.0;
        for (v, m) in s.velocities.iter().zip(&s.masses) {
            kinetic += 0.5 * m * v.norm2();
        }
        let mut potential = 0.0;
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                let r = s.positions[i].distance(s.positions[j]);
                if r > 0.0 {
                    potential -= s.masses[i] * s.masses[j] / r;
                }
            }
        }
        let virial = 2.0 * kinetic / (-potential);
        assert!((0.7..1.3).contains(&virial), "virial ratio {virial}");
    }

    #[test]
    fn galaxy_collision_has_two_clusters_approaching() {
        let s = galaxy_collision(2000, 5);
        assert_eq!(s.len(), 2000);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
        assert!(s.momentum().norm() < 1e-10);
        // The two halves should have clearly separated centres along x.
        let com_a: Vec3 =
            s.positions[..1000].iter().fold(Vec3::ZERO, |a, &p| a + p) / 1000.0;
        let com_b: Vec3 =
            s.positions[1000..].iter().fold(Vec3::ZERO, |a, &p| a + p) / 1000.0;
        assert!((com_a - com_b).norm() > 2.0, "separation {}", (com_a - com_b).norm());
        // And they approach each other.
        let v_a: Vec3 = s.velocities[..1000].iter().fold(Vec3::ZERO, |a, &v| a + v) / 1000.0;
        let v_b: Vec3 = s.velocities[1000..].iter().fold(Vec3::ZERO, |a, &v| a + v) / 1000.0;
        let closing = (v_b - v_a).dot((com_a - com_b).normalized());
        assert!(closing > 0.1, "closing speed {closing}");
    }

    #[test]
    fn odd_body_counts_split_correctly() {
        let s = galaxy_collision(101, 6);
        assert_eq!(s.len(), 101);
    }

    #[test]
    fn uniform_cube_fills_the_box() {
        let s = uniform_cube(8000, 7);
        let b = s.bounding_box(stdpar::policy::Seq);
        assert!(b.extent().min_component() > 1.8); // nearly the full [-1,1]³
        assert!(s.is_valid());
    }

    #[test]
    fn disk_is_flat_and_rotating() {
        let s = spinning_disk(4000, 8);
        let mean_abs_z: f64 =
            s.positions.iter().map(|p| p.z.abs()).sum::<f64>() / s.len() as f64;
        let mean_r: f64 = s.positions.iter().map(|p| (p.x * p.x + p.y * p.y).sqrt()).sum::<f64>()
            / s.len() as f64;
        assert!(mean_abs_z < mean_r * 0.2, "z {mean_abs_z} vs r {mean_r}");
        assert!(s.angular_momentum().z > 0.1); // net spin
    }

    #[test]
    fn solve_kepler_known_values() {
        assert!((solve_kepler(0.0, 0.5)).abs() < 1e-14);
        assert!((solve_kepler(std::f64::consts::PI, 0.3) - std::f64::consts::PI).abs() < 1e-12);
        // Residual check across the range.
        for e in [0.0, 0.1, 0.5, 0.9, 0.99] {
            for k in 0..20 {
                let m = k as f64 * 0.314;
                let ecc = solve_kepler(m, e);
                assert!((ecc - e * ecc.sin() - m).abs() < 1e-10, "e={e}, M={m}");
            }
        }
    }

    #[test]
    fn kepler_state_respects_vis_viva() {
        let mu = G_SI * M_SUN;
        let a = 2.5 * AU;
        for e in [0.0, 0.1, 0.3] {
            let (pos, vel) = kepler_to_state(a, e, 0.2, 1.0, 2.0, 0.7, mu);
            let r = pos.norm();
            let v2 = vel.norm2();
            let vis_viva = mu * (2.0 / r - 1.0 / a);
            assert!((v2 - vis_viva).abs() < 1e-6 * vis_viva, "e={e}");
            // r must be between perihelion and aphelion.
            assert!(r >= a * (1.0 - e) * 0.999 && r <= a * (1.0 + e) * 1.001);
        }
    }

    #[test]
    fn solar_system_orbits_are_bound_and_heliocentric() {
        let s = solar_system(500, 9);
        assert_eq!(s.len(), 501);
        assert_eq!(s.masses[0], M_SUN);
        let mu = G_SI * M_SUN;
        for i in 1..s.len() {
            let r = s.positions[i].norm();
            let v2 = s.velocities[i].norm2();
            let energy = 0.5 * v2 - mu / r;
            assert!(energy < 0.0, "body {i} unbound");
            assert!(r > 0.3 * AU && r < 40.0 * AU, "body {i} at {} au", r / AU);
        }
    }

    #[test]
    fn solar_system_sun_dominates_field() {
        let s = solar_system(200, 10);
        // At any asteroid, acceleration ≈ heliocentric two-body value.
        let probe = 5;
        let a = direct_accel(s.positions[probe], Some(probe as u32), &s.positions, &s.masses, G_SI, 0.0);
        let r = s.positions[probe].norm();
        let kepler = G_SI * M_SUN / (r * r);
        assert!((a.norm() - kepler).abs() < 1e-3 * kepler);
    }
}
