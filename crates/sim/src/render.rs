//! Density rendering of body distributions — quick-look output for the
//! examples (ASCII) and external tooling (binary PGM images).
//!
//! Projects positions onto an axis-aligned plane, accumulates a 2-D
//! mass-density histogram, applies a log ramp, and emits either an ASCII
//! shade map or an 8-bit PGM.

use crate::system::SystemState;
use nbody_math::Vec3;
use std::io::{self, Write};

/// Projection plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Plane {
    #[default]
    Xy,
    Xz,
    Yz,
}

impl Plane {
    #[inline]
    fn project(self, p: Vec3) -> (f64, f64) {
        match self {
            Plane::Xy => (p.x, p.y),
            Plane::Xz => (p.x, p.z),
            Plane::Yz => (p.y, p.z),
        }
    }
}

/// A 2-D density histogram of a body distribution.
#[derive(Clone, Debug)]
pub struct DensityMap {
    pub width: usize,
    pub height: usize,
    /// Row-major accumulated mass per pixel.
    pub cells: Vec<f64>,
}

impl DensityMap {
    /// Rasterise `state` onto `plane` with the given resolution. The view
    /// window is the bounding square of the projected positions.
    pub fn rasterize(state: &SystemState, plane: Plane, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        let mut cells = vec![0.0; width * height];
        if state.is_empty() {
            return DensityMap { width, height, cells };
        }
        let (mut lo_u, mut hi_u) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_v, mut hi_v) = (f64::INFINITY, f64::NEG_INFINITY);
        for &p in &state.positions {
            let (u, v) = plane.project(p);
            lo_u = lo_u.min(u);
            hi_u = hi_u.max(u);
            lo_v = lo_v.min(v);
            hi_v = hi_v.max(v);
        }
        // Square window centred on the data, slightly padded.
        let span = ((hi_u - lo_u).max(hi_v - lo_v)).max(1e-12) * 1.02;
        let cu = 0.5 * (lo_u + hi_u);
        let cv = 0.5 * (lo_v + hi_v);
        let (lo_u, lo_v) = (cu - span * 0.5, cv - span * 0.5);
        for (i, &p) in state.positions.iter().enumerate() {
            let (u, v) = plane.project(p);
            let x = (((u - lo_u) / span) * width as f64) as usize;
            let y = (((v - lo_v) / span) * height as f64) as usize;
            let x = x.min(width - 1);
            let y = y.min(height - 1);
            cells[y * width + x] += state.masses[i];
        }
        DensityMap { width, height, cells }
    }

    /// Peak cell density.
    pub fn max(&self) -> f64 {
        self.cells.iter().copied().fold(0.0, f64::max)
    }

    /// Total accumulated mass (equals the system mass).
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// 0..=1 log-scaled intensity per cell.
    fn intensity(&self, cell: f64) -> f64 {
        let max = self.max();
        if max <= 0.0 || cell <= 0.0 {
            0.0
        } else {
            ((1.0 + cell / max * 255.0).ln() / (256.0f64).ln()).clamp(0.0, 1.0)
        }
    }

    /// Render as ASCII art (one char per cell, darker = denser).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let t = self.intensity(self.cells[y * self.width + x]);
                let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Write a binary 8-bit PGM (P5) image.
    pub fn write_pgm<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = io::BufWriter::new(w);
        write!(w, "P5\n{} {}\n255\n", self.width, self.height)?;
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let t = self.intensity(self.cells[y * self.width + x]);
                w.write_all(&[(t * 255.0) as u8])?;
            }
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;

    #[test]
    fn mass_is_preserved_on_the_grid() {
        let state = galaxy_collision(3000, 41);
        let map = DensityMap::rasterize(&state, Plane::Xy, 64, 64);
        assert!((map.total() - state.total_mass()).abs() < 1e-9);
    }

    #[test]
    fn two_galaxies_appear_as_two_density_peaks() {
        // Rasterise each galaxy half separately; their peak cells must land
        // in clearly different places on a shared grid (the two cores).
        let state = galaxy_collision(4000, 42);
        let n = state.len();
        let half = |range: std::ops::Range<usize>| {
            SystemState::from_parts(
                state.positions[range.clone()].to_vec(),
                state.velocities[range.clone()].to_vec(),
                state.masses[range].to_vec(),
            )
        };
        // Render both halves in the *same* window by rasterising the full
        // set and locating each half's mass-weighted pixel centroid.
        let map = DensityMap::rasterize(&state, Plane::Xy, 32, 32);
        assert!(map.max() > 0.0);
        let a = half(0..n / 2);
        let b = half(n / 2..n);
        let com_px = |s: &SystemState| {
            let c = s.center_of_mass();
            c.x // x-coordinate suffices: the galaxies are split along x
        };
        let separation = (com_px(&a) - com_px(&b)).abs();
        assert!(separation > 1.5, "galaxy cores not separated: {separation}");
    }

    #[test]
    fn ascii_dimensions() {
        let state = galaxy_collision(500, 43);
        let map = DensityMap::rasterize(&state, Plane::Xz, 20, 10);
        let art = map.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 20));
    }

    #[test]
    fn pgm_header_and_size() {
        let state = galaxy_collision(100, 44);
        let map = DensityMap::rasterize(&state, Plane::Yz, 16, 8);
        let mut buf = Vec::new();
        map.write_pgm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n16 8\n255\n"));
        assert_eq!(buf.len(), b"P5\n16 8\n255\n".len() + 16 * 8);
    }

    #[test]
    fn empty_state_renders_blank() {
        let map = DensityMap::rasterize(&SystemState::new(), Plane::Xy, 4, 4);
        assert_eq!(map.total(), 0.0);
        assert!(map.to_ascii().chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn planes_differ_for_flat_disks() {
        let state = crate::workload::spinning_disk(2000, 45);
        let face_on = DensityMap::rasterize(&state, Plane::Xy, 32, 32);
        let edge_on = DensityMap::rasterize(&state, Plane::Xz, 32, 32);
        // Edge-on view concentrates mass into fewer occupied cells.
        let occupied = |m: &DensityMap| m.cells.iter().filter(|&&c| c > 0.0).count();
        assert!(occupied(&edge_on) < occupied(&face_on));
    }
}
