//! Self-healing stepping: watchdog + checkpoints + an escalating recovery
//! ladder.
//!
//! [`GuardedSimulation`] wraps a [`Simulation`] so that *state* corruption
//! — a NaN seeded by a torn write, a position teleported by a flipped bit,
//! damage the solver-level [`crate::resilient::ResilientSolver`] chain
//! cannot see because its inputs are rebuilt from the (already corrupted)
//! state every step — is detected within a step and repaired by rollback
//! instead of poisoning the rest of the run.
//!
//! Per logical step (one `base_dt` of physical time):
//!
//! 1. advance the inner simulation, apply any scheduled state-level
//!    faults ([`FaultKind::STATE_LEVEL`]), then judge the resulting state
//!    with the [`HealthMonitor`];
//! 2. `Healthy` → accept; on the configured cadence, record an in-memory
//!    rollback point ([`CheckpointRing`]) and/or a durable CRC-sealed
//!    on-disk checkpoint ([`crate::io::save_atomic`]);
//! 3. `Suspect` → retry via the ladder, but *accept* after
//!    [`GuardConfig::suspect_amnesty`] consecutive suspect verdicts —
//!    violent-but-honest physics (a close encounter) must not rollback-loop;
//! 4. `Corrupt` (hard evidence: non-finite state) → always the ladder.
//!
//! The **recovery ladder** escalates per incident, each rung starting with
//! a rollback to the newest checksum-valid checkpoint:
//!
//! | rung | action |
//! |------|--------|
//! | 0 | plain replay (transient corruption does not recur) |
//! | 1 | replay at `dt/2` for a bounded window (fragile dynamics) |
//! | 2 | additionally escalate the solver fallback chain ([`crate::solver::ForceSolver::escalate_fallback`]) |
//! | 3+ | reach for progressively older ring checkpoints |
//!
//! Every rung consumes one unit of the whole-run
//! [`GuardConfig::max_recoveries`] budget; exhausting it yields a typed
//! [`GuardError`] — the guard degrades loudly, never silently. Once a
//! healthy step lands and the recovery window has passed, dt and the
//! solver chain are restored.
//!
//! Fault scheduling is keyed by a monotone **execution counter** that
//! advances on every attempted micro-step, *including replays*. A scripted
//! fault therefore fires once — its replay runs under fresh counter values
//! — while a rate-driven schedule keeps firing with the configured
//! probability even during replays. Everything stays a pure function of
//! the seed, so any recovery history reproduces exactly (and under
//! `Backend::DetPar`, bit-for-bit).
//!
//! The healthy path is engineered to be cheap and allocation-free: one
//! fused O(N) reduction per step, an O(N) grow-only copy per checkpoint —
//! measured by the `guard_soak` bench and enforced by the
//! `alloc_regression` gate.

use crate::checkpoint::{CheckpointError, CheckpointRing};
use crate::health::{HealthConfig, HealthMonitor, HealthVerdict};
use crate::integrator::{SimOptions, Simulation};
use crate::io::{self, SnapshotError};
use crate::solver::{SolverError, SolverKind};
use crate::system::SystemState;
use crate::timing::StepTimings;
use crate::workspace::SimWorkspace;
use nbody_resilience::{FaultInjector, FaultKind};
use nbody_telemetry::record;
use std::path::{Path, PathBuf};

/// Policy knobs for the self-healing layer.
#[derive(Clone, Debug)]
pub struct GuardConfig {
    /// Record an in-memory rollback point every this many accepted
    /// micro-steps (≥ 1).
    pub checkpoint_every: u64,
    /// In-memory rollback points kept (≥ 1).
    pub ring_capacity: usize,
    /// Whole-run recovery budget: total ladder rungs before the guard
    /// gives up with [`GuardError::RecoveryBudgetExhausted`].
    pub max_recoveries: u32,
    /// Consecutive `Suspect` verdicts tolerated (each triggering a
    /// rollback-retry) before the suspect state is accepted as honest
    /// physics.
    pub suspect_amnesty: u32,
    /// After a dt-halving rung, stay at `dt/2` for this many `base_dt`s of
    /// physical time past the restore point.
    pub recovery_window: u64,
    /// Watchdog thresholds.
    pub health: HealthConfig,
    /// Durable checkpoint file (`None` = in-memory only). The previous
    /// durable checkpoint is rotated to `<path>.prev`, so one corrupted
    /// write never strands a restart.
    pub disk_path: Option<PathBuf>,
    /// Write a durable checkpoint every this many accepted micro-steps
    /// (0 = never).
    pub disk_every: u64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            checkpoint_every: 4,
            ring_capacity: 3,
            max_recoveries: 32,
            suspect_amnesty: 2,
            recovery_window: 4,
            health: HealthConfig::default(),
            disk_path: None,
            disk_every: 0,
        }
    }
}

/// Terminal guard failure (recoverable failures never surface — they are
/// the guard's job).
#[derive(Debug)]
pub enum GuardError {
    /// The initial state failed the health check before any step ran.
    CorruptInitialState { reason: &'static str },
    /// The recovery budget ran out while the watchdog still objected.
    RecoveryBudgetExhausted {
        budget: u32,
        /// Inner-simulation step count when the budget died.
        steps_done: usize,
        /// The last verdict's detector.
        reason: &'static str,
    },
    /// Every in-memory checkpoint was exhausted or failed its checksum.
    NoUsableCheckpoint { steps_done: usize },
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::CorruptInitialState { reason } => {
                write!(f, "initial state failed health check: {reason}")
            }
            GuardError::RecoveryBudgetExhausted { budget, steps_done, reason } => write!(
                f,
                "recovery budget ({budget}) exhausted at step {steps_done}; last verdict: {reason}"
            ),
            GuardError::NoUsableCheckpoint { steps_done } => {
                write!(f, "no usable in-memory checkpoint at step {steps_done}")
            }
        }
    }
}

impl std::error::Error for GuardError {}

/// Tally of everything the guard did (mirrored into the telemetry
/// registry's `guard.*` counters as it happens).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Logical steps completed (each `base_dt` of physical time).
    pub steps: u64,
    /// Micro-steps attempted, including discarded and replayed ones.
    pub micro_steps: u64,
    /// `Suspect` verdicts seen.
    pub suspects: u64,
    /// `Corrupt` verdicts seen.
    pub corrupts: u64,
    /// Rollbacks performed (= ladder rungs climbed).
    pub rollbacks: u64,
    /// Replays begun after a rollback.
    pub retries: u64,
    /// Rungs that halved dt.
    pub dt_halvings: u64,
    /// Rungs that escalated the solver fallback chain.
    pub chain_escalations: u64,
    /// In-memory checkpoints recorded.
    pub checkpoint_records: u64,
    /// In-memory checkpoints rejected by their digest during restore.
    pub checkpoint_rejects: u64,
    /// Suspect verdicts accepted under amnesty.
    pub suspects_accepted: u64,
    /// Durable checkpoints written.
    pub disk_checkpoints: u64,
    /// Durable checkpoint writes that failed (best-effort: counted, not
    /// fatal).
    pub disk_write_failures: u64,
}

impl GuardStats {
    /// Total recovery actions (the budget-consuming ones).
    pub fn total_recoveries(&self) -> u64 {
        self.rollbacks
    }
}

/// A [`Simulation`] wrapped in the self-healing layer. See the module docs.
pub struct GuardedSimulation {
    sim: Simulation,
    monitor: HealthMonitor,
    ring: CheckpointRing,
    cfg: GuardConfig,
    injector: Option<FaultInjector>,
    /// Monotone execution counter keying the fault schedule (advances on
    /// every attempted micro-step, including replays).
    exec: u64,
    /// Accepted micro-steps (drives checkpoint cadences).
    accepted: u64,
    recoveries: u32,
    /// Ladder rung of the incident in progress (0 = none yet this incident).
    incident_rung: u32,
    suspect_streak: u32,
    /// Physical time until which dt stays halved (and the chain escalated).
    recovery_until: Option<f64>,
    base_dt: f64,
    started: bool,
    stats: GuardStats,
    ws: SimWorkspace,
}

impl GuardedSimulation {
    /// Guard a new simulation.
    pub fn new(
        state: SystemState,
        kind: SolverKind,
        opts: SimOptions,
        cfg: GuardConfig,
    ) -> Result<Self, SolverError> {
        Ok(Self::from_simulation(Simulation::new(state, kind, opts)?, cfg))
    }

    /// Guard an existing simulation (e.g. one built around a
    /// [`crate::resilient::ResilientSolver`], which rung 2 of the ladder
    /// can escalate).
    pub fn from_simulation(sim: Simulation, cfg: GuardConfig) -> Self {
        assert!(cfg.checkpoint_every >= 1, "checkpoint_every must be at least 1");
        // unwrap-ok: a zero ring_capacity is a config-construction bug on a
        // par with checkpoint_every == 0, asserted just above — this
        // constructor's contract is "panic on nonsense config", not a
        // runtime fallible path (SessionManager::try_admit is the typed one).
        let mut ring = CheckpointRing::with_capacity(cfg.ring_capacity)
            .expect("GuardConfig::ring_capacity must be at least 1");
        // Pre-size every slot now so steady-state checkpointing allocates
        // nothing (the alloc gate measures warm steps).
        ring.warm(sim.state().len());
        let monitor = HealthMonitor::new(cfg.health);
        let base_dt = sim.options().dt;
        GuardedSimulation {
            sim,
            monitor,
            ring,
            cfg,
            injector: None,
            exec: 0,
            accepted: 0,
            recoveries: 0,
            incident_rung: 0,
            suspect_streak: 0,
            recovery_until: None,
            base_dt,
            started: false,
            stats: GuardStats::default(),
            ws: SimWorkspace::new(),
        }
    }

    /// Attach a deterministic fault schedule. Only the state-level kinds
    /// ([`FaultKind::STATE_LEVEL`]) are applied here; solver-level kinds
    /// belong to a [`crate::resilient::ResilientSolver`]'s own injector.
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Builder-style [`GuardedSimulation::set_injector`].
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    #[inline]
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    #[inline]
    pub fn state(&self) -> &SystemState {
        self.sim.state()
    }

    /// Unwrap into the inner simulation.
    pub fn into_simulation(self) -> Simulation {
        self.sim
    }

    #[inline]
    pub fn stats(&self) -> GuardStats {
        self.stats
    }

    /// Recovery budget consumed so far.
    #[inline]
    pub fn recoveries_used(&self) -> u32 {
        self.recoveries
    }

    /// The watchdog (read-only introspection).
    #[inline]
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// One-time startup: judge the *initial* state (corrupt input is an
    /// error, not something to roll back from — there is nothing behind
    /// it), then record the baseline rollback point.
    fn start(&mut self) -> Result<(), GuardError> {
        let report =
            self.monitor.check(self.sim.state(), self.base_dt, self.sim.options().policy);
        if report.verdict == HealthVerdict::Corrupt {
            return Err(GuardError::CorruptInitialState {
                reason: report.reason.unwrap_or("unknown"),
            });
        }
        self.ring.record(&self.sim, &self.monitor);
        self.stats.checkpoint_records += 1;
        record!(counter GUARD_CHECKPOINTS, 1);
        self.started = true;
        Ok(())
    }

    /// Advance one **logical** step (`base_dt` of physical time), drawing
    /// scratch from the guard's own workspace.
    pub fn step(&mut self) -> Result<StepTimings, GuardError> {
        let mut ws = std::mem::take(&mut self.ws);
        let r = self.step_into(&mut ws);
        self.ws = ws;
        r
    }

    /// Advance `n` logical steps.
    pub fn run(&mut self, n: usize) -> Result<StepTimings, GuardError> {
        let mut total = StepTimings::default();
        for _ in 0..n {
            let t = self.step()?;
            total.accumulate(&t);
        }
        Ok(total)
    }

    /// [`GuardedSimulation::step`] with a caller-owned workspace — the
    /// zero-steady-state-allocation entry point. During a recovery window
    /// the logical step internally runs several `dt/2` micro-steps; the
    /// returned timings sum every *accepted* micro-step.
    pub fn step_into(&mut self, ws: &mut SimWorkspace) -> Result<StepTimings, GuardError> {
        if !self.started {
            self.start()?;
        }
        self.maybe_close_recovery_window();
        // Slightly-early target so fp rounding of dt/2 micro-steps cannot
        // manufacture an extra step. (With dt = 0 — a valid "evaluate in
        // place" configuration — the time target is degenerate and one
        // accepted micro-step completes the logical step.)
        let target_time = self.sim.time() + self.base_dt * (1.0 - 1e-9);
        let mut total = StepTimings::default();

        loop {
            let exec = self.exec;
            self.exec += 1;
            self.stats.micro_steps += 1;
            let t = self.sim.step_into(ws);
            self.apply_state_faults(exec);
            let dt_used = self.sim.options().dt;
            // Overlap the watchdog's O(N) health reduction with sealing the
            // checkpoint the previous accepted micro-step recorded: the
            // reduction reads the simulation state, the seal reads only the
            // ring slot's private copy — disjoint, so overlapping changes
            // nothing observable (and under `Backend::DetPar` or one worker
            // the pair degenerates to sequential execution for replay).
            let (report, ()) = {
                let monitor = &mut self.monitor;
                let ring = &mut self.ring;
                let sim = &self.sim;
                stdpar::taskgraph::run_pair(
                    || monitor.check(sim.state(), dt_used, sim.options().policy),
                    || ring.seal_pending(),
                )
            };
            match report.verdict {
                HealthVerdict::Healthy => {
                    self.suspect_streak = 0;
                }
                HealthVerdict::Suspect => {
                    self.stats.suspects += 1;
                    record!(counter GUARD_SUSPECTS, 1);
                    self.suspect_streak = self.suspect_streak.saturating_add(1);
                    if self.suspect_streak <= self.cfg.suspect_amnesty {
                        self.recover(report.reason.unwrap_or("suspect"))?;
                        continue;
                    }
                    // Persistent suspicion with no hard evidence: accept it
                    // as honest physics rather than rollback-looping. The
                    // streak stays saturated so the *same* episode is not
                    // re-litigated every step; a healthy verdict resets it.
                    self.stats.suspects_accepted += 1;
                    record!(counter GUARD_SUSPECTS_ACCEPTED, 1);
                }
                HealthVerdict::Corrupt => {
                    self.stats.corrupts += 1;
                    record!(counter GUARD_CORRUPTS, 1);
                    self.recover(report.reason.unwrap_or("corrupt"))?;
                    continue;
                }
            }
            // Accepted.
            total.accumulate(&t);
            self.accepted += 1;
            if self.incident_rung > 0 && self.recovery_until.is_none() {
                self.close_incident();
            }
            if self.accepted.is_multiple_of(self.cfg.checkpoint_every) {
                // Copy the payload now; the digest seal overlaps the next
                // micro-step's health check (or is forced before any
                // restore / at the next record).
                self.ring.record_deferred(&self.sim, &self.monitor);
                self.stats.checkpoint_records += 1;
                record!(counter GUARD_CHECKPOINTS, 1);
            }
            if self.cfg.disk_every > 0 && self.accepted.is_multiple_of(self.cfg.disk_every) {
                self.write_disk_checkpoint(exec);
            }
            if self.base_dt <= 0.0 || self.sim.time() >= target_time {
                break;
            }
        }

        self.stats.steps += 1;
        record!(counter GUARD_STEPS, 1);
        Ok(total)
    }

    /// Did the recovery window (halved dt / escalated chain) expire?
    fn maybe_close_recovery_window(&mut self) {
        if let Some(until) = self.recovery_until {
            if self.sim.time() >= until - 1e-9 * self.base_dt {
                self.recovery_until = None;
                if self.incident_rung > 0 {
                    self.close_incident();
                }
            }
        }
    }

    /// Restore normal operation after an incident has healed.
    fn close_incident(&mut self) {
        self.incident_rung = 0;
        self.sim.set_dt(self.base_dt);
        // Lift a chain escalation if one is in place (no-op for plain
        // solvers).
        let _ = self.sim.solver_mut().escalate_fallback(0);
    }

    /// One rung of the recovery ladder: consume budget, roll back to the
    /// newest checksum-valid checkpoint (older for deep rungs), arm the
    /// rung's mitigation.
    fn recover(&mut self, reason: &'static str) -> Result<(), GuardError> {
        if self.recoveries >= self.cfg.max_recoveries {
            return Err(GuardError::RecoveryBudgetExhausted {
                budget: self.cfg.max_recoveries,
                steps_done: self.sim.steps_done(),
                reason,
            });
        }
        self.recoveries += 1;
        self.stats.rollbacks += 1;
        record!(counter GUARD_ROLLBACKS, 1);

        let rung = self.incident_rung;
        self.incident_rung = self.incident_rung.saturating_add(1);

        // Rungs 0-2 retry from the newest point; deeper rungs assume the
        // newest checkpoint itself captured the (undetected) damage and
        // reach further back — clamped to what the ring actually holds,
        // and falling back to newer digest-valid slots rather than dying
        // if the preferred depth is rotted or absent.
        // A deferred seal may still be outstanding (the verdict that got us
        // here overlapped it, or the fault landed before the next check
        // ran); force it so the newest slot's checksum is valid to inspect.
        self.ring.seal_pending();
        let stored = self.ring.len();
        if stored == 0 {
            return Err(GuardError::NoUsableCheckpoint { steps_done: self.sim.steps_done() });
        }
        let start = (rung as usize).saturating_sub(2).min(stored - 1);
        let mut restored = None;
        for age in (start..stored).chain((0..start).rev()) {
            match self.ring.restore(age, &mut self.sim, &mut self.monitor) {
                Ok(p) => {
                    restored = Some(p);
                    break;
                }
                Err(CheckpointError::ChecksumMismatch { .. }) => {
                    self.stats.checkpoint_rejects += 1;
                    record!(counter GUARD_CHECKPOINT_REJECTS, 1);
                }
                // ZeroCapacity is construction-only; a live ring cannot
                // report it, so both terminal arms just stop the scan.
                Err(CheckpointError::OutOfRange { .. })
                | Err(CheckpointError::ZeroCapacity) => break,
            }
        }
        let Some(restored) = restored else {
            return Err(GuardError::NoUsableCheckpoint { steps_done: self.sim.steps_done() });
        };
        record!(hist GUARD_ROLLBACK_AGE, restored.age as u64);
        self.stats.retries += 1;
        record!(counter GUARD_RETRIES, 1);

        match rung {
            0 => {
                // Plain replay: transient corruption does not recur (the
                // execution counter has moved on).
            }
            _ => {
                // Fragile dynamics or repeat offender: replay gently.
                self.sim.set_dt(0.5 * self.base_dt);
                self.stats.dt_halvings += 1;
                record!(counter GUARD_DT_HALVINGS, 1);
                self.recovery_until = Some(
                    restored.time + self.cfg.recovery_window as f64 * self.base_dt,
                );
                if rung >= 2 && self.sim.solver_mut().escalate_fallback(1) {
                    self.stats.chain_escalations += 1;
                    record!(counter GUARD_CHAIN_ESCALATIONS, 1);
                }
            }
        }
        Ok(())
    }

    /// Apply the state-level faults scheduled for execution index `exec`
    /// to the freshly stepped state. (Checkpoint-file faults are applied
    /// at write time instead; see
    /// [`GuardedSimulation::write_disk_checkpoint`].)
    fn apply_state_faults(&mut self, exec: u64) {
        let Some(inj) = &self.injector else { return };
        let faults = inj.faults_at(exec);
        if faults.is_empty() {
            return;
        }
        let mut rng = inj.param_stream(exec);
        let state = self.sim.state_mut();
        let n = state.len() as u64;
        if n == 0 {
            return;
        }
        for kind in faults {
            match kind {
                FaultKind::NanInject => {
                    // A torn/omitted write: one component becomes NaN.
                    let body = rng.next_below(n) as usize;
                    let comp = rng.next_below(3);
                    let p = &mut state.positions[body];
                    match comp {
                        0 => p.x = f64::NAN,
                        1 => p.y = f64::NAN,
                        _ => p.z = f64::NAN,
                    }
                }
                FaultKind::PositionBitFlip => {
                    // A single-event upset in the top exponent bit of the
                    // body's largest-magnitude coordinate — the worst-case
                    // *quiet* corruption: the value either explodes
                    // (radius detector) or collapses to ~1e-154 of itself
                    // while staying finite (teleport detector).
                    let body = rng.next_below(n) as usize;
                    let p = &mut state.positions[body];
                    let comp = if p.x.abs() >= p.y.abs() && p.x.abs() >= p.z.abs() {
                        &mut p.x
                    } else if p.y.abs() >= p.z.abs() {
                        &mut p.y
                    } else {
                        &mut p.z
                    };
                    *comp = f64::from_bits(comp.to_bits() ^ (1u64 << 62));
                }
                // Applied at checkpoint-write time, not here.
                FaultKind::CheckpointTruncation | FaultKind::CheckpointBitFlip => {}
                // Solver-level kinds belong to the ResilientSolver layer.
                _ => {}
            }
        }
    }

    /// Write the durable checkpoint, rotating the previous one to
    /// `<path>.prev` first; then apply any scheduled checkpoint-file
    /// faults to the file just written (storage corruption strikes data
    /// at rest — the *next* load must detect it).
    fn write_disk_checkpoint(&mut self, exec: u64) {
        let Some(path) = self.cfg.disk_path.clone() else { return };
        if path.exists() {
            let _ = std::fs::rename(&path, prev_path(&path));
        }
        match io::save_atomic(self.sim.state(), &path) {
            Ok(()) => {
                self.stats.disk_checkpoints += 1;
                record!(counter GUARD_DISK_CHECKPOINTS, 1);
            }
            Err(_) => {
                // Durability is best-effort: a full disk must not kill a
                // healthy simulation.
                self.stats.disk_write_failures += 1;
                return;
            }
        }
        let Some(inj) = &self.injector else { return };
        let faults = inj.faults_at(exec);
        let mut rng = inj.param_stream(exec ^ 0x5EED);
        if faults.contains(&FaultKind::CheckpointTruncation) {
            let _ = truncate_file(&path, rng.next_f64());
        }
        if faults.contains(&FaultKind::CheckpointBitFlip) {
            let _ = flip_file_bit(&path, rng.next_u64());
        }
    }
}

fn prev_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".prev");
    path.with_file_name(name)
}

/// Keep only `fraction` of the file (a crash mid-flush).
fn truncate_file(path: &Path, fraction: f64) -> std::io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let keep = (len as f64 * fraction.clamp(0.0, 0.999)) as u64;
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    Ok(())
}

/// Flip one pseudo-randomly chosen bit in place (storage rot).
fn flip_file_bit(path: &Path, r: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let len = std::fs::metadata(path)?.len();
    if len == 0 {
        return Ok(());
    }
    let offset = r % len;
    let bit = (r >> 32) % 8;
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte)?;
    byte[0] ^= 1 << bit;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)?;
    Ok(())
}

/// Load the most recent durable checkpoint written by a
/// [`GuardedSimulation`] with [`GuardConfig::disk_path`] set: try `path`,
/// and if it is missing or fails validation (truncated, bit-flipped,
/// checksum mismatch — all detected by the v2 snapshot format), fall back
/// to the rotated `<path>.prev`. Returns the state and whether the
/// fallback was used; if both fail, the *primary* file's error.
pub fn resume_state_from_disk(path: impl AsRef<Path>) -> Result<(SystemState, bool), SnapshotError> {
    // Empty snapshots round-trip at the io layer (that is a feature: a
    // workload can legitimately serialize an empty staging state), but a
    // *resume* needs something steppable — treat zero bodies like any
    // other validation failure and fall back to the rotated file.
    fn load_resumable(path: &Path) -> Result<SystemState, SnapshotError> {
        let state = io::try_load(path)?;
        if state.is_empty() {
            return Err(SnapshotError::EmptyBody);
        }
        Ok(state)
    }
    let path = path.as_ref();
    match load_resumable(path) {
        Ok(state) => Ok((state, false)),
        Err(primary) => match load_resumable(&prev_path(path)) {
            Ok(state) => Ok((state, true)),
            Err(_) => Err(primary),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;
    use nbody_math::Vec3;

    fn opts() -> SimOptions {
        SimOptions { dt: 1e-3, ..SimOptions::default() }
    }

    fn guarded(n: usize, seed: u64, cfg: GuardConfig) -> GuardedSimulation {
        GuardedSimulation::new(galaxy_collision(n, seed), SolverKind::Bvh, opts(), cfg).unwrap()
    }

    #[test]
    fn healthy_run_matches_unguarded_exactly() {
        let state = galaxy_collision(300, 71);
        let mut plain = Simulation::new(state.clone(), SolverKind::Bvh, opts()).unwrap();
        let mut guard = guarded(300, 71, GuardConfig::default());
        plain.run(10);
        guard.run(10).unwrap();
        assert_eq!(plain.state().positions, guard.state().positions);
        assert_eq!(plain.state().velocities, guard.state().velocities);
        let s = guard.stats();
        assert_eq!(s.steps, 10);
        assert_eq!(s.rollbacks, 0);
        assert_eq!(s.suspects, 0);
        assert!(s.checkpoint_records >= 2);
    }

    #[test]
    fn transient_nan_recovers_bit_identically() {
        // A scripted NaN injection fires once; the replay sees fresh
        // execution indices, so the accepted trajectory equals the
        // uninjected one exactly.
        let mut clean = guarded(250, 72, GuardConfig::default());
        clean.run(20).unwrap();
        let mut faulty = guarded(250, 72, GuardConfig::default())
            .with_injector(FaultInjector::new(7).at_step(5, FaultKind::NanInject));
        faulty.run(20).unwrap();
        let s = faulty.stats();
        assert_eq!(s.corrupts, 1, "{s:?}");
        assert_eq!(s.rollbacks, 1, "{s:?}");
        assert_eq!(clean.state().positions, faulty.state().positions);
        assert_eq!(clean.state().velocities, faulty.state().velocities);
    }

    #[test]
    fn bit_flip_is_detected_and_recovered() {
        let mut clean = guarded(400, 73, GuardConfig::default());
        clean.run(15).unwrap();
        let mut faulty = guarded(400, 73, GuardConfig::default())
            .with_injector(FaultInjector::new(11).at_step(4, FaultKind::PositionBitFlip));
        faulty.run(15).unwrap();
        let s = faulty.stats();
        assert!(s.suspects + s.corrupts >= 1, "bit flip went unnoticed: {s:?}");
        assert!(s.rollbacks >= 1, "{s:?}");
        assert_eq!(clean.state().positions, faulty.state().positions);
    }

    #[test]
    fn repeated_faults_climb_to_dt_halving() {
        // Faults at consecutive execution indices: the plain replay of the
        // first incident is itself hit, forcing rung 1 (halved dt).
        let inj = FaultInjector::new(13)
            .at_step(6, FaultKind::NanInject)
            .at_step(7, FaultKind::NanInject)
            .at_step(8, FaultKind::NanInject);
        let mut guard = guarded(200, 74, GuardConfig::default()).with_injector(inj);
        guard.run(20).unwrap();
        let s = guard.stats();
        assert!(s.dt_halvings >= 1, "ladder never escalated: {s:?}");
        assert!(guard.state().is_valid());
        // Window closed: dt is back at base once the run is healthy again.
        assert_eq!(guard.sim().options().dt, 1e-3);
    }

    #[test]
    fn persistent_corruption_exhausts_budget_with_typed_error() {
        let cfg = GuardConfig { max_recoveries: 5, ..GuardConfig::default() };
        let mut guard = guarded(150, 75, cfg)
            .with_injector(FaultInjector::new(17).with_rate(FaultKind::NanInject, 1.0));
        let err = guard.run(50).unwrap_err();
        match err {
            GuardError::RecoveryBudgetExhausted { budget: 5, .. } => {}
            other => panic!("expected RecoveryBudgetExhausted, got {other:?}"),
        }
        assert_eq!(guard.recoveries_used(), 5);
    }

    #[test]
    fn corrupt_initial_state_is_a_typed_error() {
        let mut state = galaxy_collision(50, 76);
        state.positions[3].x = f64::NAN;
        let mut guard =
            GuardedSimulation::new(state, SolverKind::Bvh, opts(), GuardConfig::default()).unwrap();
        match guard.step() {
            Err(GuardError::CorruptInitialState { .. }) => {}
            other => panic!("expected CorruptInitialState, got {other:?}"),
        }
    }

    #[test]
    fn recovery_history_is_reproducible() {
        let run = || {
            let mut guard = guarded(200, 77, GuardConfig::default()).with_injector(
                FaultInjector::new(0xABCD)
                    .with_rate(FaultKind::NanInject, 0.05)
                    .with_rate(FaultKind::PositionBitFlip, 0.05),
            );
            guard.run(30).unwrap();
            (guard.stats(), guard.state().positions.clone())
        };
        let (s1, p1) = run();
        let (s2, p2) = run();
        assert_eq!(s1, s2, "recovery history must be a pure function of the seed");
        assert_eq!(p1, p2);
        assert!(s1.rollbacks > 0, "schedule should have fired: {s1:?}");
    }

    #[test]
    fn suspect_amnesty_accepts_honest_violence() {
        // Manufacture a persistent "suspect" source: an absurdly tight
        // KE-jump threshold makes every step of an evolving system suspect.
        let cfg = GuardConfig {
            health: HealthConfig { ke_jump_factor: 1.0 + 1e-15, ..HealthConfig::default() },
            suspect_amnesty: 2,
            ..GuardConfig::default()
        };
        let mut guard = guarded(200, 78, cfg);
        guard.run(6).unwrap();
        let s = guard.stats();
        assert!(s.suspects_accepted > 0, "amnesty never kicked in: {s:?}");
        assert!(
            guard.recoveries_used() < guard.cfg.max_recoveries,
            "amnesty should spare the budget: {s:?}"
        );
    }

    #[test]
    fn guarded_step_timings_are_populated() {
        let mut guard = guarded(100, 79, GuardConfig::default());
        let t = guard.step().unwrap();
        assert!(t.force.as_nanos() > 0);
    }

    #[test]
    fn disk_checkpoints_rotate_and_resume() {
        let dir = std::env::temp_dir();
        let path = dir.join("guard_disk_ckpt_test.bin");
        let prev = dir.join("guard_disk_ckpt_test.bin.prev");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev);
        let cfg = GuardConfig {
            disk_path: Some(path.clone()),
            disk_every: 3,
            ..GuardConfig::default()
        };
        let mut guard = guarded(120, 80, cfg);
        guard.run(8).unwrap();
        assert!(guard.stats().disk_checkpoints >= 2);
        assert!(path.exists() && prev.exists());
        let (resumed, used_prev) = resume_state_from_disk(&path).unwrap();
        assert!(!used_prev);
        assert_eq!(resumed.len(), 120);
        // Corrupt the newest: resume falls back to the rotated previous.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.write_all(b"garbage").unwrap();
        }
        let (resumed, used_prev) = resume_state_from_disk(&path).unwrap();
        assert!(used_prev, "should have fallen back to .prev");
        assert_eq!(resumed.len(), 120);
        // Both gone: the primary error surfaces.
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev);
        assert!(resume_state_from_disk(&path).is_err());
    }

    #[test]
    fn injected_checkpoint_corruption_is_detected_at_load() {
        let dir = std::env::temp_dir();
        let path = dir.join("guard_disk_fault_test.bin");
        let prev = dir.join("guard_disk_fault_test.bin.prev");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev);
        let cfg = GuardConfig {
            disk_path: Some(path.clone()),
            disk_every: 2,
            ..GuardConfig::default()
        };
        // Corrupt every written checkpoint file.
        let mut guard = guarded(80, 81, cfg)
            .with_injector(FaultInjector::new(23).with_rate(FaultKind::CheckpointBitFlip, 1.0));
        guard.run(6).unwrap();
        assert!(guard.stats().disk_checkpoints >= 2);
        // The newest file is bit-flipped → typed load failure → the loader
        // falls back to .prev, which is *also* corrupt here → typed error,
        // never a silently wrong state.
        let err = io::try_load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::NonFinite { .. }
            ),
            "bit-flip must be caught by the format: {err:?}"
        );
        assert!(resume_state_from_disk(&path).is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev);
    }

    #[test]
    fn disk_write_failure_degrades_without_panic() {
        // Best-effort durability: an unwritable disk path must not kill a
        // healthy run (no unwrap on the write path) — the failures are
        // counted and the simulation keeps stepping.
        let cfg = GuardConfig {
            disk_path: Some(PathBuf::from("/nonexistent-dir-for-guard-test/ckpt.bin")),
            disk_every: 1,
            ..GuardConfig::default()
        };
        let mut guard = guarded(60, 83, cfg);
        guard.run(4).unwrap();
        let s = guard.stats();
        assert_eq!(s.steps, 4);
        assert_eq!(s.disk_checkpoints, 0);
        assert!(s.disk_write_failures >= 4, "{s:?}");
    }

    #[test]
    fn missing_resume_file_is_a_typed_error() {
        let err =
            resume_state_from_disk("/nonexistent-dir-for-guard-test/nope.bin").unwrap_err();
        assert_eq!(err.io_kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn empty_snapshot_resume_is_a_typed_error_with_prev_fallback() {
        // Regression: an N == 0 snapshot is valid at the io layer (empty
        // states round-trip), but resuming from one used to sail through
        // here and panic later in `Simulation::new`'s bbox path. The resume
        // loader now rejects it like any other validation failure, falling
        // back to the rotated `.prev` when that one is steppable.
        let dir = std::env::temp_dir();
        let path = dir.join("guard_empty_resume_test.bin");
        let prev = dir.join("guard_empty_resume_test.bin.prev");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev);
        io::try_save(&SystemState::new(), &path).unwrap();
        let err = resume_state_from_disk(&path).unwrap_err();
        assert!(matches!(err, SnapshotError::EmptyBody), "{err:?}");
        // With a non-empty rotated sibling, resume uses the fallback.
        io::try_save(&galaxy_collision(40, 84), &prev).unwrap();
        let (resumed, used_prev) = resume_state_from_disk(&path).unwrap();
        assert!(used_prev, "empty primary must fall back to .prev");
        assert_eq!(resumed.len(), 40);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&prev);
    }

    #[test]
    fn taskgraph_stepping_recovers_like_barrier() {
        // The guard's watchdog/rollback machinery is stepping-agnostic: a
        // scripted fault under task-graph stepping recovers to the same
        // bit-exact trajectory as the clean task-graph run.
        let opts = SimOptions {
            dt: 1e-3,
            stepping: crate::dag::Stepping::TaskGraph,
            ..SimOptions::default()
        };
        let mk = || {
            GuardedSimulation::new(
                galaxy_collision(200, 84),
                SolverKind::Bvh,
                opts,
                GuardConfig::default(),
            )
            .unwrap()
        };
        let mut clean = mk();
        clean.run(12).unwrap();
        let mut faulty = mk()
            .with_injector(FaultInjector::new(29).at_step(5, FaultKind::NanInject));
        faulty.run(12).unwrap();
        assert!(faulty.stats().rollbacks >= 1, "{:?}", faulty.stats());
        assert_eq!(clean.state().positions, faulty.state().positions);
        assert_eq!(clean.state().velocities, faulty.state().velocities);
    }

    #[test]
    fn accessors_cover_the_surface() {
        let mut guard = guarded(60, 82, GuardConfig::default());
        guard.run(2).unwrap();
        assert_eq!(guard.sim().steps_done(), 2);
        assert_eq!(guard.state().len(), 60);
        assert!(guard.monitor().checks() >= 2);
        let sim = guard.into_simulation();
        assert_eq!(sim.steps_done(), 2);
        let _ = Vec3::ZERO; // keep the import honest under cfg(test) pruning
    }
}
