//! In-memory rollback points: a fixed-capacity ring of checkpoints.
//!
//! The recovery ladder ([`crate::guard`]) needs somewhere cheap to roll
//! back *to*. Disk checkpoints are durable but slow; [`CheckpointRing`]
//! keeps the last few known-good states in memory, in grow-only buffers:
//! each slot's vectors are sized on first use (or pre-warmed via
//! [`CheckpointRing::warm`]) and only ever overwritten afterwards, so
//! steady-state checkpointing performs **zero heap allocations** — the
//! same contract as [`crate::workspace::SimWorkspace`], enforced by the
//! same `alloc_regression` gate.
//!
//! Memory is not trusted blindly: every slot carries an FNV-1a digest of
//! its payload, recomputed and compared on restore. A slot that rotted in
//! place (or was scribbled over) is reported as
//! [`CheckpointError::ChecksumMismatch`] so the caller can fall back to an
//! older slot instead of resuming from garbage — the in-memory analogue of
//! the CRC-32 trailer on disk snapshots ([`crate::io`]).
//!
//! Each slot also embeds a copy of the [`HealthMonitor`] (it is `Copy`),
//! so a rollback restores the watchdog's baselines alongside the state:
//! replayed steps are judged against the memory the watchdog had when the
//! checkpoint was taken, not against baselines polluted by the corrupt
//! excursion.

use crate::health::HealthMonitor;
use crate::integrator::Simulation;
use nbody_math::Vec3;

/// Why a ring operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The ring was configured with zero slots — a degenerate ring that
    /// could never record a rollback point (`record` would underflow its
    /// slot index). Rejected at construction so callers taking arbitrary
    /// session configs (the multi-tenant server) get a typed error
    /// instead of a panic on the first checkpoint.
    ZeroCapacity,
    /// No checkpoint recorded yet (or `nth` exceeds the stored count).
    OutOfRange { requested: usize, stored: usize },
    /// The slot's payload no longer matches its digest.
    ChecksumMismatch { slot: usize },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::ZeroCapacity => {
                write!(f, "checkpoint ring needs at least one slot")
            }
            CheckpointError::OutOfRange { requested, stored } => {
                write!(f, "checkpoint {requested} requested but only {stored} stored")
            }
            CheckpointError::ChecksumMismatch { slot } => {
                write!(f, "in-memory checkpoint slot {slot} failed its checksum")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What a successful restore rolled back to.
#[derive(Clone, Copy, Debug)]
pub struct RestorePoint {
    /// Simulation time of the restored state.
    pub time: f64,
    /// Steps completed at the restored state.
    pub steps_done: usize,
    /// How many ring entries back the restore reached (0 = newest).
    pub age: usize,
}

#[derive(Default)]
struct Slot {
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    masses: Vec<f64>,
    accel: Vec<Vec3>,
    time: f64,
    steps_done: usize,
    accel_fresh: bool,
    monitor: Option<HealthMonitor>,
    checksum: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

#[inline]
fn fnv_word(h: u64, w: u64) -> u64 {
    // Word-at-a-time FNV-1a: we need tamper *detection*, not a
    // cryptographic bound, and hashing 8 bytes per multiply keeps the
    // checkpoint path O(N) with a tiny constant.
    (h ^ w).wrapping_mul(FNV_PRIME)
}

impl Slot {
    fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_word(h, self.positions.len() as u64);
        for p in &self.positions {
            h = fnv_word(h, p.x.to_bits());
            h = fnv_word(h, p.y.to_bits());
            h = fnv_word(h, p.z.to_bits());
        }
        for v in &self.velocities {
            h = fnv_word(h, v.x.to_bits());
            h = fnv_word(h, v.y.to_bits());
            h = fnv_word(h, v.z.to_bits());
        }
        for m in &self.masses {
            h = fnv_word(h, m.to_bits());
        }
        for a in &self.accel {
            h = fnv_word(h, a.x.to_bits());
            h = fnv_word(h, a.y.to_bits());
            h = fnv_word(h, a.z.to_bits());
        }
        h = fnv_word(h, self.time.to_bits());
        h = fnv_word(h, self.steps_done as u64);
        h = fnv_word(h, self.accel_fresh as u64);
        h
    }

    /// Copy the payload without sealing it — the digest (the expensive
    /// O(N) part) can run later, off the critical path, because it reads
    /// only the slot's own private buffers.
    fn record_payload(&mut self, sim: &Simulation, monitor: &HealthMonitor) {
        let state = sim.state();
        self.positions.clear();
        self.positions.extend_from_slice(&state.positions);
        self.velocities.clear();
        self.velocities.extend_from_slice(&state.velocities);
        self.masses.clear();
        self.masses.extend_from_slice(&state.masses);
        self.accel.clear();
        self.accel.extend_from_slice(sim.accelerations());
        let (time, steps_done, accel_fresh) = sim.clock();
        self.time = time;
        self.steps_done = steps_done;
        self.accel_fresh = accel_fresh;
        self.monitor = Some(*monitor);
    }

    fn record(&mut self, sim: &Simulation, monitor: &HealthMonitor) {
        self.record_payload(sim, monitor);
        self.checksum = self.digest();
    }
}

/// A fixed-capacity ring of in-memory rollback points. See the module docs.
pub struct CheckpointRing {
    slots: Vec<Slot>,
    /// Index of the slot the *next* record will overwrite.
    next: usize,
    /// Number of slots holding a recorded checkpoint (≤ capacity).
    stored: usize,
    records: u64,
    /// Slot recorded via [`CheckpointRing::record_deferred`] whose digest
    /// has not been computed yet. Sealed by [`CheckpointRing::seal_pending`]
    /// before anything can observe the slot's checksum.
    pending_seal: Option<usize>,
}

impl CheckpointRing {
    /// A ring of `capacity` slots. Slot buffers are empty until the
    /// first record (or [`CheckpointRing::warm`]).
    ///
    /// `capacity == 0` is a configuration error
    /// ([`CheckpointError::ZeroCapacity`]): a zero-slot ring has no slot
    /// for `record` to write and its newest-first index arithmetic would
    /// reduce modulo zero.
    pub fn with_capacity(capacity: usize) -> Result<Self, CheckpointError> {
        if capacity == 0 {
            return Err(CheckpointError::ZeroCapacity);
        }
        Ok(CheckpointRing {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            next: 0,
            stored: 0,
            records: 0,
            pending_seal: None,
        })
    }

    /// Forget every recorded checkpoint, keeping the slot buffers (and
    /// their capacity) intact — the recycling path for a ring that outlives
    /// its tenant, mirroring [`crate::workspace::SimWorkspace`] reuse.
    pub fn clear(&mut self) {
        self.next = 0;
        self.stored = 0;
        self.records = 0;
        self.pending_seal = None;
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Checkpoints currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.stored
    }

    pub fn is_empty(&self) -> bool {
        self.stored == 0
    }

    /// Total records ever made (monotone; exceeds `len` once wrapping).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Pre-size every slot for `n` bodies so later records allocate
    /// nothing — call once at guard construction, before the steady state
    /// the alloc gate measures.
    pub fn warm(&mut self, n: usize) {
        for s in &mut self.slots {
            s.positions.reserve(n);
            s.velocities.reserve(n);
            s.masses.reserve(n);
            s.accel.reserve(n);
        }
    }

    /// Record the simulation's current state (and the watchdog's baselines)
    /// into the oldest slot, sealing it immediately.
    pub fn record(&mut self, sim: &Simulation, monitor: &HealthMonitor) {
        self.seal_pending();
        let cap = self.slots.len();
        self.slots[self.next].record(sim, monitor);
        self.next = (self.next + 1) % cap;
        self.stored = (self.stored + 1).min(cap);
        self.records += 1;
    }

    /// [`CheckpointRing::record`] minus the digest: copies the payload now
    /// and leaves the seal for a later [`CheckpointRing::seal_pending`].
    /// The seal reads only the slot's private buffers, so the guard runs it
    /// concurrently with the next micro-step's health reduction
    /// ([`crate::guard`]) — checkpoint sealing comes off the accept path's
    /// critical section. Restores before the seal lands are handled:
    /// sealing is forced before any checksum is inspected.
    pub fn record_deferred(&mut self, sim: &Simulation, monitor: &HealthMonitor) {
        self.seal_pending();
        let cap = self.slots.len();
        self.slots[self.next].record_payload(sim, monitor);
        self.pending_seal = Some(self.next);
        self.next = (self.next + 1) % cap;
        self.stored = (self.stored + 1).min(cap);
        self.records += 1;
    }

    /// Compute and store the digest of the slot a
    /// [`CheckpointRing::record_deferred`] left unsealed (no-op otherwise).
    /// Touches only ring-owned memory — safe to overlap with anything that
    /// does not mutate the ring.
    pub fn seal_pending(&mut self) {
        if let Some(idx) = self.pending_seal.take() {
            self.slots[idx].checksum = self.slots[idx].digest();
        }
    }

    /// Index (into `slots`) of the `nth`-newest checkpoint.
    fn nth_newest(&self, nth: usize) -> Result<usize, CheckpointError> {
        if nth >= self.stored {
            return Err(CheckpointError::OutOfRange { requested: nth, stored: self.stored });
        }
        let cap = self.slots.len();
        Ok((self.next + cap - 1 - nth) % cap)
    }

    /// `steps_done` recorded in the `nth`-newest checkpoint (0 = newest) —
    /// lets the recovery policy see how far back a rollback would reach
    /// before committing to it.
    pub fn peek_steps(&self, nth: usize) -> Result<usize, CheckpointError> {
        Ok(self.slots[self.nth_newest(nth)?].steps_done)
    }

    /// Roll `sim` (and `monitor`) back to the `nth`-newest checkpoint
    /// (0 = newest), verifying the slot's digest first. On checksum
    /// mismatch nothing is restored — the caller should try `nth + 1`.
    pub fn restore(
        &self,
        nth: usize,
        sim: &mut Simulation,
        monitor: &mut HealthMonitor,
    ) -> Result<RestorePoint, CheckpointError> {
        let idx = self.nth_newest(nth)?;
        let slot = &self.slots[idx];
        if slot.digest() != slot.checksum {
            return Err(CheckpointError::ChecksumMismatch { slot: idx });
        }
        sim.restore_from_parts(
            &slot.positions,
            &slot.velocities,
            &slot.masses,
            &slot.accel,
            slot.time,
            slot.steps_done,
            slot.accel_fresh,
        );
        if let Some(m) = slot.monitor {
            *monitor = m;
        }
        Ok(RestorePoint { time: slot.time, steps_done: slot.steps_done, age: nth })
    }

    /// Flip one bit of the newest slot's payload *without* refreshing its
    /// digest — simulates in-memory rot for tests of the checksum path.
    #[doc(hidden)]
    pub fn corrupt_newest_for_test(&mut self) {
        if let Ok(idx) = self.nth_newest(0) {
            if let Some(p) = self.slots[idx].positions.first_mut() {
                p.x = f64::from_bits(p.x.to_bits() ^ 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::integrator::{SimOptions, Simulation};
    use crate::solver::SolverKind;
    use crate::workload::galaxy_collision;

    fn sim(n: usize, seed: u64) -> Simulation {
        Simulation::new(galaxy_collision(n, seed), SolverKind::Bvh, SimOptions::default()).unwrap()
    }

    #[test]
    fn record_and_restore_round_trips_exactly() {
        let mut s = sim(200, 61);
        let mut mon = HealthMonitor::new(HealthConfig::default());
        s.run(3);
        let reference = s.state().clone();
        let (t0, n0, _) = s.clock();
        let mut ring = CheckpointRing::with_capacity(2).unwrap();
        ring.record(&s, &mon);
        s.run(5);
        assert_ne!(s.state().positions, reference.positions);
        let p = ring.restore(0, &mut s, &mut mon).unwrap();
        assert_eq!(p.steps_done, n0);
        assert_eq!(s.state().positions, reference.positions);
        assert_eq!(s.state().velocities, reference.velocities);
        assert_eq!(s.clock().0, t0);
    }

    #[test]
    fn replay_after_restore_is_identical() {
        // Restoring state + accel + clock and re-running must reproduce the
        // original trajectory exactly (no faults in the window).
        let mut s = sim(150, 62);
        let mut mon = HealthMonitor::new(HealthConfig::default());
        s.run(2);
        let mut ring = CheckpointRing::with_capacity(1).unwrap();
        ring.record(&s, &mon);
        s.run(4);
        let first = s.state().clone();
        ring.restore(0, &mut s, &mut mon).unwrap();
        s.run(4);
        assert_eq!(s.state().positions, first.positions, "replay diverged");
        assert_eq!(s.state().velocities, first.velocities);
    }

    #[test]
    fn ring_wraps_and_orders_newest_first() {
        let mut s = sim(50, 63);
        let mon = HealthMonitor::new(HealthConfig::default());
        let mut ring = CheckpointRing::with_capacity(3).unwrap();
        for _ in 0..5 {
            s.run(1);
            ring.record(&s, &mon);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.records(), 5);
        // Records were taken after steps 1..=5; the ring keeps 3, 4, 5.
        assert_eq!(ring.peek_steps(0).unwrap(), 5);
        assert_eq!(ring.peek_steps(1).unwrap(), 4);
        assert_eq!(ring.peek_steps(2).unwrap(), 3);
        assert!(matches!(ring.peek_steps(3), Err(CheckpointError::OutOfRange { .. })));
    }

    #[test]
    fn zero_capacity_is_a_typed_config_error() {
        // Regression: this used to be an assert (panic); the server admits
        // arbitrary session configs and needs a value-level rejection.
        assert!(matches!(CheckpointRing::with_capacity(0), Err(CheckpointError::ZeroCapacity)));
    }

    #[test]
    fn single_slot_ring_records_wraps_and_restores() {
        // Regression companion to the zero-capacity fix: the smallest legal
        // ring must survive repeated wrap-around records and still restore.
        let mut s = sim(60, 68);
        let mut mon = HealthMonitor::new(HealthConfig::default());
        let mut ring = CheckpointRing::with_capacity(1).unwrap();
        for step in 1..=4 {
            s.run(1);
            ring.record(&s, &mon);
            assert_eq!(ring.len(), 1);
            assert_eq!(ring.peek_steps(0).unwrap(), step);
        }
        let last = s.state().clone();
        s.run(2);
        ring.restore(0, &mut s, &mut mon).unwrap();
        assert_eq!(s.state().positions, last.positions);
        assert!(matches!(ring.peek_steps(1), Err(CheckpointError::OutOfRange { .. })));
    }

    #[test]
    fn clear_forgets_records_but_keeps_capacity() {
        let mut s = sim(90, 69);
        let mut mon = HealthMonitor::new(HealthConfig::default());
        let mut ring = CheckpointRing::with_capacity(2).unwrap();
        ring.warm(s.state().len());
        let caps: Vec<usize> = ring.slots.iter().map(|sl| sl.positions.capacity()).collect();
        s.run(1);
        ring.record(&s, &mon);
        ring.record_deferred(&s, &mon);
        ring.clear();
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.records(), 0);
        assert!(matches!(
            ring.restore(0, &mut s, &mut mon),
            Err(CheckpointError::OutOfRange { requested: 0, stored: 0 })
        ));
        // Buffers survive the clear: the next tenant records allocation-free.
        for (sl, cap) in ring.slots.iter().zip(caps) {
            assert_eq!(sl.positions.capacity(), cap, "clear dropped a warmed buffer");
        }
    }

    #[test]
    fn empty_ring_reports_out_of_range() {
        let ring = CheckpointRing::with_capacity(2).unwrap();
        let mut s = sim(10, 64);
        let mut mon = HealthMonitor::new(HealthConfig::default());
        assert!(matches!(
            ring.restore(0, &mut s, &mut mon),
            Err(CheckpointError::OutOfRange { requested: 0, stored: 0 })
        ));
    }

    #[test]
    fn rotted_slot_is_rejected_and_older_slot_still_restores() {
        let mut s = sim(100, 65);
        let mut mon = HealthMonitor::new(HealthConfig::default());
        let mut ring = CheckpointRing::with_capacity(2).unwrap();
        s.run(1);
        let older = s.state().clone();
        ring.record(&s, &mon);
        s.run(1);
        ring.record(&s, &mon);
        ring.corrupt_newest_for_test();
        assert!(matches!(
            ring.restore(0, &mut s, &mut mon),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // The older slot is intact; the ladder falls back to it.
        ring.restore(1, &mut s, &mut mon).unwrap();
        assert_eq!(s.state().positions, older.positions);
    }

    #[test]
    fn deferred_record_seals_before_restore() {
        let mut s = sim(80, 67);
        let mut mon = HealthMonitor::new(HealthConfig::default());
        let mut ring = CheckpointRing::with_capacity(2).unwrap();
        s.run(1);
        let reference = s.state().clone();
        ring.record_deferred(&s, &mon);
        s.run(2);
        // The guard forces the seal before inspecting any checksum; an
        // explicit seal_pending models that (and is idempotent).
        ring.seal_pending();
        ring.seal_pending();
        ring.restore(0, &mut s, &mut mon).unwrap();
        assert_eq!(s.state().positions, reference.positions);
        // A follow-up record seals the outstanding slot implicitly, so
        // back-to-back deferred records never leave two unsealed slots.
        ring.record_deferred(&s, &mon);
        s.run(1);
        ring.record_deferred(&s, &mon);
        ring.seal_pending();
        ring.restore(1, &mut s, &mut mon).unwrap();
        assert_eq!(s.state().positions, reference.positions);
    }

    #[test]
    fn steady_state_records_do_not_allocate_after_warm() {
        // Structural proxy for the alloc gate: after warm(), recording
        // must not grow any slot buffer's capacity.
        let mut s = sim(120, 66);
        let mon = HealthMonitor::new(HealthConfig::default());
        let mut ring = CheckpointRing::with_capacity(3).unwrap();
        ring.warm(s.state().len());
        let caps: Vec<usize> = ring.slots.iter().map(|sl| sl.positions.capacity()).collect();
        for _ in 0..7 {
            s.run(1);
            ring.record(&s, &mon);
        }
        for (sl, cap) in ring.slots.iter().zip(caps) {
            assert_eq!(sl.positions.capacity(), cap, "record grew a warmed buffer");
        }
    }
}
