//! Störmer-Verlet time integration (paper §III, Algorithm 2).
//!
//! The system of coupled ODEs is discretised with the kick-drift-kick
//! leapfrog form of Störmer-Verlet [Verlet 1967] — symplectic and
//! time-reversible, so energy oscillates instead of drifting for stable
//! step sizes (tested in the diagnostics suite).

use crate::dag::Stepping;
use crate::solver::{make_solver, ForceSolver, SolverError, SolverKind, SolverParams};
use crate::system::SystemState;
use crate::timing::{timed_counted, PhaseBusy, StepTimings};
use crate::workspace::SimWorkspace;
use nbody_math::gravity::{ForceEval, ForceKernel, KernelPrecision, TreeLifecycle};
use nbody_math::Vec3;
use nbody_telemetry::record;
use stdpar::policy::DynPolicy;
use stdpar::prelude::*;

/// Mirror one step's phase timings into the global telemetry counters
/// (seven relaxed adds per step; recording never allocates, so the
/// zero-steady-state-allocation invariant is unaffected).
pub(crate) fn record_step_telemetry(timings: &StepTimings) {
    record!(counter SIM_STEPS, 1);
    record!(counter SIM_BBOX_NANOS, timings.bbox.as_nanos() as u64);
    record!(counter SIM_SORT_NANOS, timings.sort.as_nanos() as u64);
    record!(counter SIM_BUILD_NANOS, timings.build.as_nanos() as u64);
    record!(counter SIM_MULTIPOLE_NANOS, timings.multipole.as_nanos() as u64);
    record!(counter SIM_FORCE_NANOS, timings.force.as_nanos() as u64);
    record!(counter SIM_UPDATE_NANOS, timings.update.as_nanos() as u64);
}

/// Time integration scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IntegratorKind {
    /// Kick-drift-kick leapfrog — the paper's Störmer-Verlet scheme:
    /// symplectic, time-reversible, second order. One force evaluation
    /// per step (the closing kick reuses the opening kick of the next).
    #[default]
    LeapfrogKdk,
    /// Semi-implicit (symplectic) Euler: first order but non-drifting
    /// energy behaviour; cheap baseline.
    SymplecticEuler,
    /// Explicit Euler: first order and energy-divergent; included as the
    /// canonical "what goes wrong" comparator for tests and docs.
    ExplicitEuler,
}

impl IntegratorKind {
    pub fn name(self) -> &'static str {
        match self {
            IntegratorKind::LeapfrogKdk => "leapfrog-kdk",
            IntegratorKind::SymplecticEuler => "symplectic-euler",
            IntegratorKind::ExplicitEuler => "explicit-euler",
        }
    }
}

/// Simulation-wide options.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Time step.
    pub dt: f64,
    /// Multipole acceptance threshold θ (paper uses 0.5).
    pub theta: f64,
    /// Plummer softening length ε.
    pub softening: f64,
    /// Gravitational constant (1 for the galaxy units, [`nbody_math::G_SI`]
    /// for the solar-system validation).
    pub g: f64,
    /// Execution policy for all phases (force phases internally follow the
    /// paper's per-phase choices; see [`crate::solver`]).
    pub policy: DynPolicy,
    /// Rebuild the tree every `tree_rebuild_every` steps (1 = every step,
    /// the paper's configuration; >1 = Iwasawa-style tree reuse ablation).
    pub tree_rebuild_every: usize,
    /// Quadrupole extension.
    pub quadrupole: bool,
    /// Force-evaluation strategy for the tree solvers (per-body traversal
    /// or blocked traversal with shared interaction lists).
    pub eval: ForceEval,
    /// Kernel consuming the blocked interaction lists (scalar oracle or
    /// tiled SIMD).
    pub kernel: ForceKernel,
    /// Precision mode of the SIMD kernel.
    pub precision: KernelPrecision,
    /// Hilbert grid bits (BVH).
    pub hilbert_bits: u32,
    /// Time integration scheme (paper: Störmer-Verlet leapfrog).
    pub integrator: IntegratorKind,
    /// Tree maintenance across steps (tree solvers): rebuild per step, or
    /// a persistent delta-updated tree. `Incremental` supersedes
    /// `tree_rebuild_every` — the lifecycle manages its own reuse cadence.
    pub lifecycle: TreeLifecycle,
    /// Step execution mode (tree solvers, leapfrog, parallel policies):
    /// barrier-separated phases, or one barrier-free task DAG per step
    /// ([`crate::dag`]). Configurations the task graph does not cover fall
    /// back to the barrier path silently — the two are bitwise-equivalent.
    pub stepping: Stepping,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            dt: 1e-3,
            theta: 0.5,
            softening: 1e-3,
            g: 1.0,
            policy: DynPolicy::Par,
            tree_rebuild_every: 1,
            quadrupole: false,
            eval: ForceEval::PerBody,
            kernel: ForceKernel::Scalar,
            precision: KernelPrecision::F64,
            hilbert_bits: 16,
            integrator: IntegratorKind::LeapfrogKdk,
            lifecycle: TreeLifecycle::Rebuild,
            stepping: Stepping::Barrier,
        }
    }
}

impl SimOptions {
    fn solver_params(&self) -> SolverParams {
        SolverParams {
            theta: self.theta,
            softening: self.softening,
            g: self.g,
            quadrupole: self.quadrupole,
            eval: self.eval,
            kernel: self.kernel,
            precision: self.precision,
            hilbert_bits: self.hilbert_bits,
            lifecycle: self.lifecycle,
            stepping: self.stepping,
        }
    }
}

/// A running N-body simulation: state + solver + leapfrog integrator.
pub struct Simulation {
    state: SystemState,
    solver: Box<dyn ForceSolver>,
    accel: Vec<Vec3>,
    opts: SimOptions,
    time: f64,
    steps_done: usize,
    accel_fresh: bool,
    last_timings: StepTimings,
    /// Scratch arena for [`Simulation::step`]; [`Simulation::step_into`]
    /// borrows a caller-owned one instead.
    ws: SimWorkspace,
}

impl Simulation {
    /// Create a simulation with a solver of the given kind.
    ///
    /// An empty state is rejected as [`SolverError::EmptySystem`] rather
    /// than deferred to a bbox/tree panic on the first step.
    pub fn new(state: SystemState, kind: SolverKind, opts: SimOptions) -> Result<Self, SolverError> {
        if state.is_empty() {
            return Err(SolverError::EmptySystem);
        }
        let solver = make_solver(kind, opts.policy, opts.solver_params())?;
        Ok(Self::with_solver(state, solver, opts))
    }

    /// Create a simulation with a caller-provided solver.
    pub fn with_solver(state: SystemState, solver: Box<dyn ForceSolver>, opts: SimOptions) -> Self {
        let n = state.len();
        Simulation {
            state,
            solver,
            accel: vec![Vec3::ZERO; n],
            opts,
            time: 0.0,
            steps_done: 0,
            accel_fresh: false,
            last_timings: StepTimings::default(),
            ws: SimWorkspace::new(),
        }
    }

    #[inline]
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Mutable state access. Intended for the fault-injection and recovery
    /// layers ([`crate::guard`]); mutating positions invalidates the cached
    /// accelerations only in ways the health watchdog is designed to catch.
    #[inline]
    pub fn state_mut(&mut self) -> &mut SystemState {
        &mut self.state
    }

    /// Consume the simulation and return the final state.
    pub fn into_state(self) -> SystemState {
        self.state
    }

    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    #[inline]
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    #[inline]
    pub fn solver(&self) -> &dyn ForceSolver {
        self.solver.as_ref()
    }

    /// Mutable solver access (fault arming, recovery escalation).
    #[inline]
    pub fn solver_mut(&mut self) -> &mut dyn ForceSolver {
        self.solver.as_mut()
    }

    /// The simulation options.
    #[inline]
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    /// Change the time step mid-run (the recovery ladder replays suspect
    /// windows at `dt/2`). Takes effect from the next step.
    #[inline]
    pub fn set_dt(&mut self, dt: f64) {
        self.opts.dt = dt;
    }

    /// The integrator's internal clock: `(time, steps_done, accel_fresh)` —
    /// everything beyond [`Simulation::state`] and
    /// [`Simulation::accelerations`] that a rollback point must capture.
    #[inline]
    pub fn clock(&self) -> (f64, usize, bool) {
        (self.time, self.steps_done, self.accel_fresh)
    }

    /// Restore the simulation to a previously captured rollback point:
    /// state arrays, cached accelerations, and internal clock. Copies into
    /// the existing buffers, so restoring to the same body count allocates
    /// nothing.
    ///
    /// # Panics
    /// Panics if the array lengths disagree with each other.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_from_parts(
        &mut self,
        positions: &[Vec3],
        velocities: &[Vec3],
        masses: &[f64],
        accel: &[Vec3],
        time: f64,
        steps_done: usize,
        accel_fresh: bool,
    ) {
        assert_eq!(positions.len(), velocities.len(), "positions/velocities length mismatch");
        assert_eq!(positions.len(), masses.len(), "positions/masses length mismatch");
        assert_eq!(positions.len(), accel.len(), "positions/accel length mismatch");
        self.state.positions.clear();
        self.state.positions.extend_from_slice(positions);
        self.state.velocities.clear();
        self.state.velocities.extend_from_slice(velocities);
        self.state.masses.clear();
        self.state.masses.extend_from_slice(masses);
        self.accel.clear();
        self.accel.extend_from_slice(accel);
        self.time = time;
        self.steps_done = steps_done;
        self.accel_fresh = accel_fresh;
    }

    /// Timings of the most recent step.
    #[inline]
    pub fn last_timings(&self) -> StepTimings {
        self.last_timings
    }

    /// Current accelerations (valid after the first step).
    #[inline]
    pub fn accelerations(&self) -> &[Vec3] {
        &self.accel
    }

    fn policy_update(&self) -> DynPolicy {
        self.opts.policy
    }

    /// Advance one time step with the configured integrator, drawing
    /// scratch from the simulation's own workspace. Returns the phase
    /// timings of this step (force timings + position update).
    pub fn step(&mut self) -> StepTimings {
        // Detach the owned workspace so `step_into` can borrow both it and
        // `self` — `SimWorkspace::default()` allocates nothing.
        let mut ws = std::mem::take(&mut self.ws);
        let timings = self.step_into(&mut ws);
        self.ws = ws;
        timings
    }

    /// [`Simulation::step`] drawing every transient buffer from a
    /// caller-owned [`SimWorkspace`] — the zero-steady-state-allocation
    /// entry point. The workspace may be shared across simulations and
    /// across changing body counts; buffers grow to the high-water mark
    /// and are never shrunk.
    pub fn step_into(&mut self, ws: &mut SimWorkspace) -> StepTimings {
        let mut timings = match self.opts.integrator {
            IntegratorKind::LeapfrogKdk => match self.try_step_dag(ws) {
                Some(t) => t,
                None => self.step_leapfrog(ws),
            },
            IntegratorKind::SymplecticEuler => self.step_euler(true, ws),
            IntegratorKind::ExplicitEuler => self.step_euler(false, ws),
        };
        // Barrier steps time phases as exclusive wall windows; derive the
        // busy attribution from them so `StepTimings::busy` is populated in
        // both stepping modes (task-graph steps filled it from the node
        // busy table already).
        if timings.busy.total() == 0 {
            timings.busy = PhaseBusy::from_wall(&timings);
        }
        self.time += self.opts.dt;
        self.steps_done += 1;
        self.last_timings = timings;
        record_step_telemetry(&timings);
        timings
    }

    /// Attempt a barrier-free task-graph step ([`crate::dag`]). `None`
    /// when the configuration is not covered (barrier stepping selected,
    /// sequential policy, or a solver without a DAG step) — the caller
    /// falls back to the bitwise-equivalent barrier path.
    fn try_step_dag(&mut self, ws: &mut SimWorkspace) -> Option<StepTimings> {
        if self.opts.stepping != Stepping::TaskGraph {
            return None;
        }
        // The DAG step folds the opening kick into its first run, so it
        // needs fresh accelerations — the first step seeds them with a
        // barrier force evaluation, exactly as `step_leapfrog` does.
        if !self.accel_fresh {
            let t = self.solver.compute_into(&self.state, &mut self.accel, false, ws);
            self.last_timings = t;
            self.accel_fresh = true;
        }
        let reuse = self.reuse_this_step();
        let dt = self.opts.dt;
        match self.solver.step_dag(&mut self.state, &mut self.accel, dt, reuse, ws)? {
            Ok(t) => Some(t),
            // Parity with `compute_into`'s contract: barrier solvers panic
            // on unrecoverable build failures; the resilient wrapper is the
            // layer that converts these into recovery.
            Err(e) => panic!("{} task-graph step failed: {e}", self.solver.name()),
        }
    }

    fn reuse_this_step(&self) -> bool {
        self.opts.tree_rebuild_every > 1
            && !(self.steps_done + 1).is_multiple_of(self.opts.tree_rebuild_every)
    }

    /// Kick-drift-kick Störmer-Verlet (paper Algorithm 2's UPDATEPOSITION
    /// around the force phases).
    fn step_leapfrog(&mut self, ws: &mut SimWorkspace) -> StepTimings {
        let dt = self.opts.dt;
        let half = 0.5 * dt;

        // Initial force evaluation (first step only).
        if !self.accel_fresh {
            let t = self.solver.compute_into(&self.state, &mut self.accel, false, ws);
            self.last_timings = t;
            self.accel_fresh = true;
        }
        let mut timings = StepTimings::default();

        // Kick + drift (UPDATEPOSITION, part 1).
        let policy = self.policy_update();
        timed_counted(&mut timings.update, &mut timings.allocs.update, || {
            let vel = SyncSlice::new(&mut self.state.velocities);
            let pos = SyncSlice::new(&mut self.state.positions);
            let acc = &self.accel;
            dispatch_update(policy, vel.len(), |i| unsafe {
                let v = vel.get_mut(i);
                *v += acc[i] * half;
                *pos.get_mut(i) += *v * dt;
            });
        });

        // New forces at the drifted positions.
        let reuse = self.reuse_this_step();
        let force_t = self.solver.compute_into(&self.state, &mut self.accel, reuse, ws);
        timings.bbox = force_t.bbox;
        timings.sort = force_t.sort;
        timings.build = force_t.build;
        timings.multipole = force_t.multipole;
        timings.force = force_t.force;
        let update_allocs = timings.allocs.update;
        timings.allocs = force_t.allocs;
        timings.allocs.update += update_allocs;

        // Kick (UPDATEPOSITION, part 2).
        timed_counted(&mut timings.update, &mut timings.allocs.update, || {
            let vel = SyncSlice::new(&mut self.state.velocities);
            let acc = &self.accel;
            dispatch_update(policy, vel.len(), |i| unsafe {
                *vel.get_mut(i) += acc[i] * half;
            });
        });
        timings
    }

    /// First-order Euler steps: `symplectic` updates velocities first
    /// (semi-implicit), otherwise positions first (explicit).
    fn step_euler(&mut self, symplectic: bool, ws: &mut SimWorkspace) -> StepTimings {
        let dt = self.opts.dt;
        let reuse = self.reuse_this_step();
        let mut timings = self.solver.compute_into(&self.state, &mut self.accel, reuse, ws);
        self.accel_fresh = false; // accel is stale after the position move
        let policy = self.policy_update();
        timed_counted(&mut timings.update, &mut timings.allocs.update, || {
            let vel = SyncSlice::new(&mut self.state.velocities);
            let pos = SyncSlice::new(&mut self.state.positions);
            let acc = &self.accel;
            dispatch_update(policy, vel.len(), |i| unsafe {
                if symplectic {
                    let v = vel.get_mut(i);
                    *v += acc[i] * dt;
                    *pos.get_mut(i) += *v * dt;
                } else {
                    let v = vel.get_mut(i);
                    *pos.get_mut(i) += *v * dt;
                    *v += acc[i] * dt;
                }
            });
        });
        timings
    }

    /// Advance `n` steps, returning the summed timings.
    pub fn run(&mut self, n: usize) -> StepTimings {
        let mut total = StepTimings::default();
        for _ in 0..n {
            let t = self.step();
            total.accumulate(&t);
        }
        total
    }
}

fn dispatch_update(policy: DynPolicy, n: usize, f: impl Fn(usize) + Sync + Send) {
    match policy {
        DynPolicy::Seq => for_each_index(Seq, 0..n, f),
        DynPolicy::Par => for_each_index(Par, 0..n, f),
        DynPolicy::ParUnseq => for_each_index(ParUnseq, 0..n, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Diagnostics;
    use crate::workload::galaxy_collision;

    #[test]
    fn two_body_circular_orbit_conserves_energy_and_returns() {
        // Two equal masses in mutual circular orbit: period T = 2π for
        // m = 0.5 each, separation 1, G = 1 (ω² r³ = GM_total with r the
        // separation ⇒ ω = 1).
        let state = SystemState::from_parts(
            vec![Vec3::new(0.5, 0.0, 0.0), Vec3::new(-0.5, 0.0, 0.0)],
            vec![Vec3::new(0.0, 0.5, 0.0), Vec3::new(0.0, -0.5, 0.0)],
            vec![0.5, 0.5],
        );
        let dt = 1e-3;
        let steps = (2.0 * std::f64::consts::PI / dt) as usize;
        let opts = SimOptions { dt, softening: 0.0, theta: 0.0, ..SimOptions::default() };
        let mut sim = Simulation::new(state, SolverKind::AllPairs, opts).unwrap();
        let e0 = Diagnostics::measure(sim.state(), 1.0, 0.0).total_energy;
        sim.run(steps);
        let e1 = Diagnostics::measure(sim.state(), 1.0, 0.0).total_energy;
        assert!((e1 - e0).abs() < 1e-6 * e0.abs(), "energy drift {e0} -> {e1}");
        // One full period returns to the start.
        assert!((sim.state().positions[0] - Vec3::new(0.5, 0.0, 0.0)).norm() < 5e-3);
    }

    #[test]
    fn leapfrog_is_second_order() {
        // Halving dt must reduce the position error ~4x on a Kepler orbit.
        let make = |dt: f64| {
            let state = SystemState::from_parts(
                vec![Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO],
                vec![Vec3::new(0.0, 1.0, 0.0), Vec3::ZERO],
                vec![1e-12, 1.0],
            );
            let opts = SimOptions { dt, softening: 0.0, theta: 0.0, ..SimOptions::default() };
            let steps = (1.0 / dt).round() as usize; // integrate to t = 1
            let mut sim = Simulation::new(state, SolverKind::AllPairs, opts).unwrap();
            sim.run(steps);
            sim.state().positions[0]
        };
        // Exact: circular orbit of radius 1, ω = 1 → angle 1 rad at t = 1.
        let exact = Vec3::new(1.0f64.cos(), 1.0f64.sin(), 0.0);
        let err_a = (make(2e-3) - exact).norm();
        let err_b = (make(1e-3) - exact).norm();
        let order = (err_a / err_b).log2();
        assert!(order > 1.6, "convergence order {order} (errors {err_a}, {err_b})");
    }

    #[test]
    fn all_solvers_agree_over_a_few_steps() {
        let state = galaxy_collision(300, 17);
        let opts = SimOptions { dt: 1e-3, theta: 0.0, ..SimOptions::default() };
        let mut finals = vec![];
        for kind in SolverKind::ALL {
            let mut sim = Simulation::new(state.clone(), kind, opts).unwrap();
            sim.run(5);
            finals.push((kind, sim.into_state()));
        }
        let (_, reference) = &finals[0];
        for (kind, s) in &finals[1..] {
            let err = crate::diagnostics::l2_error(&reference.positions, &s.positions);
            assert!(err < 1e-9, "{} diverged: L2 {err}", kind.name());
        }
    }

    #[test]
    fn momentum_is_conserved() {
        let state = galaxy_collision(500, 18);
        let opts = SimOptions::default();
        let mut sim = Simulation::new(state, SolverKind::Octree, opts).unwrap();
        sim.run(10);
        // Tree approximation breaks exact symmetry, but softened leapfrog
        // with θ=0.5 keeps net momentum tiny relative to |p| scale Σm|v|.
        let p = sim.state().momentum().norm();
        let scale: f64 = sim
            .state()
            .masses
            .iter()
            .zip(&sim.state().velocities)
            .map(|(m, v)| m * v.norm())
            .sum();
        assert!(p < 1e-3 * scale, "momentum {p} vs scale {scale}");
    }

    #[test]
    fn tree_reuse_runs_and_stays_close() {
        let state = galaxy_collision(400, 19);
        let exact_opts = SimOptions { dt: 5e-4, ..SimOptions::default() };
        let reuse_opts = SimOptions { dt: 5e-4, tree_rebuild_every: 4, ..SimOptions::default() };
        let mut a = Simulation::new(state.clone(), SolverKind::Octree, exact_opts).unwrap();
        let mut b = Simulation::new(state, SolverKind::Octree, reuse_opts).unwrap();
        a.run(8);
        b.run(8);
        let err = crate::diagnostics::l2_error(&a.state().positions, &b.state().positions);
        // Reuse is an approximation: small but nonzero deviation.
        assert!(err < 1e-2, "tree reuse error {err}");
        assert!(b.state().is_valid());
    }

    #[test]
    fn integrator_energy_hierarchy() {
        // Explicit Euler gains energy, symplectic Euler bounds it, leapfrog
        // keeps it tightest — the textbook hierarchy on a two-body orbit.
        let orbit = || {
            SystemState::from_parts(
                vec![Vec3::new(0.5, 0.0, 0.0), Vec3::new(-0.5, 0.0, 0.0)],
                vec![Vec3::new(0.0, 0.5, 0.0), Vec3::new(0.0, -0.5, 0.0)],
                vec![0.5, 0.5],
            )
        };
        let drift = |integrator: IntegratorKind| {
            let opts = SimOptions {
                dt: 5e-3,
                theta: 0.0,
                softening: 0.0,
                integrator,
                ..SimOptions::default()
            };
            let mut sim = Simulation::new(orbit(), SolverKind::AllPairs, opts).unwrap();
            let e0 = Diagnostics::measure(sim.state(), 1.0, 0.0).total_energy;
            sim.run(2000);
            let e1 = Diagnostics::measure(sim.state(), 1.0, 0.0).total_energy;
            ((e1 - e0) / e0).abs()
        };
        let leapfrog = drift(IntegratorKind::LeapfrogKdk);
        let sympl = drift(IntegratorKind::SymplecticEuler);
        let explicit = drift(IntegratorKind::ExplicitEuler);
        assert!(leapfrog < sympl, "leapfrog {leapfrog} vs symplectic {sympl}");
        assert!(sympl < explicit, "symplectic {sympl} vs explicit {explicit}");
        assert!(leapfrog < 1e-4, "leapfrog drift {leapfrog}");
        assert!(explicit > 1e-3, "explicit Euler should visibly gain energy: {explicit}");
    }

    #[test]
    fn alternative_integrators_advance_state() {
        for integrator in [IntegratorKind::SymplecticEuler, IntegratorKind::ExplicitEuler] {
            let state = galaxy_collision(200, 21);
            let opts = SimOptions { dt: 1e-3, integrator, ..SimOptions::default() };
            let mut sim = Simulation::new(state, SolverKind::Bvh, opts).unwrap();
            sim.run(5);
            assert_eq!(sim.steps_done(), 5);
            assert!(sim.state().is_valid());
            assert!(!integrator.name().is_empty());
        }
    }

    #[test]
    fn step_counts_and_time_advance() {
        let state = galaxy_collision(100, 20);
        let mut sim = Simulation::new(
            state,
            SolverKind::Bvh,
            SimOptions { dt: 0.25, ..SimOptions::default() },
        )
        .unwrap();
        sim.run(4);
        assert_eq!(sim.steps_done(), 4);
        assert!((sim.time() - 1.0).abs() < 1e-12);
        assert!(sim.last_timings().force.as_nanos() > 0);
    }
}
