//! The resilient solver wrapper: typed step failures, per-step retry, and a
//! configurable fallback chain.
//!
//! The paper's solvers assume a healthy substrate: locks release, node
//! pools suffice, positions are finite. [`ResilientSolver`] drops that
//! assumption. Each step it runs the preferred solver's fallible path
//! ([`crate::solver::ForceSolver::try_compute`]), checks the inputs and the
//! produced accelerations, and on failure retries — first on the same
//! solver (transient faults: a stuck lock or an injected allocation cap is
//! gone after a rebuild), then by degrading down a fallback chain, by
//! default Octree → BVH → All-Pairs, trading speed for unconditional
//! progress (the `O(N²)` baseline has no tree to corrupt).
//!
//! When no fault occurs the wrapper adds only read-only checks, so its
//! output is **bit-for-bit identical** to the wrapped solver's.
//!
//! Fault injection for tests is deterministic: a seeded
//! [`FaultInjector`] decides per step which faults fire, and every
//! recovery is tallied in [`RecoveryCounters`].

use crate::solver::{make_solver, ForceSolver, SolverKind, SolverParams};
use crate::system::SystemState;
use crate::timing::StepTimings;
use crate::workspace::SimWorkspace;
use nbody_math::Vec3;
use nbody_resilience::{BuildError, FaultInjector, FaultKind, RecoveryCounters};
use nbody_telemetry::record;
use stdpar::policy::DynPolicy;

/// Mirror a [`RecoveryCounters`] delta into the global telemetry counters,
/// so snapshots re-export the recovery story without `nbody-resilience`
/// depending on the telemetry crate. Computing the delta from the solver's
/// own counters (rather than double-recording at each site) keeps the two
/// tallies in lock-step by construction.
fn record_recovery_delta(before: &RecoveryCounters, after: &RecoveryCounters) {
    use nbody_telemetry::metrics as m;
    let pairs = [
        (&m::RESILIENT_BUILD_RETRIES, after.build_retries - before.build_retries),
        (&m::RESILIENT_FALLBACKS, after.fallbacks - before.fallbacks),
        (&m::RESILIENT_INVALID_STATES, after.invalid_states - before.invalid_states),
        (&m::RESILIENT_NONFINITE_ACCELS, after.nonfinite_accels - before.nonfinite_accels),
        (&m::RESILIENT_SPIN_EXHAUSTIONS, after.spin_exhaustions - before.spin_exhaustions),
        (&m::RESILIENT_POOL_EXHAUSTIONS, after.pool_exhaustions - before.pool_exhaustions),
        (&m::RESILIENT_SLOW_WORKERS, after.slow_workers - before.slow_workers),
    ];
    for (counter, delta) in pairs {
        if delta > 0 {
            counter.add(delta);
        }
    }
}

/// A step-level failure: either the acceleration structure could not be
/// built, or the physics it produced is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComputeError {
    /// Tree construction failed (see [`BuildError`]).
    Build(BuildError),
    /// An output acceleration was NaN/infinite.
    NonFiniteAccel {
        /// Index of the first offending body.
        body: usize,
    },
    /// Post-build validation found a structural violation.
    InvariantViolation(String),
}

impl std::fmt::Display for ComputeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeError::Build(e) => write!(f, "build failed: {e}"),
            ComputeError::NonFiniteAccel { body } => {
                write!(f, "non-finite acceleration for body {body}")
            }
            ComputeError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for ComputeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComputeError::Build(e) => Some(e),
            _ => None,
        }
    }
}

/// Configuration of [`ResilientSolver`].
#[derive(Clone, Debug)]
pub struct ResilientConfig {
    /// Solvers to try, most preferred first. Must be non-empty.
    pub chain: Vec<SolverKind>,
    /// Execution policy for every solver in the chain. Solvers whose policy
    /// requirement rejects it (e.g. Octree under `ParUnseq`) are skipped.
    pub policy: DynPolicy,
    /// Physics/accuracy parameters shared by the whole chain.
    pub params: SolverParams,
    /// Attempts per solver per step before falling back (≥ 1). The retry
    /// matters: one-shot faults (a stuck lock, an exhausted pool) clear on
    /// rebuild, so the preferred solver usually recovers without degrading.
    pub max_attempts_per_solver: u32,
    /// Run the solver's structural validation after each successful
    /// compute (costly; intended for tests and debugging runs).
    pub validate_builds: bool,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            chain: vec![SolverKind::Octree, SolverKind::Bvh, SolverKind::AllPairs],
            policy: DynPolicy::Par,
            params: SolverParams::default(),
            max_attempts_per_solver: 2,
            validate_builds: false,
        }
    }
}

/// A [`ForceSolver`] that survives build failures, livelocks, and corrupted
/// state by retrying and degrading down a fallback chain. See the module
/// docs for the recovery policy.
pub struct ResilientSolver {
    config: ResilientConfig,
    /// Lazily constructed chain members (index-aligned with `config.chain`).
    solvers: Vec<Option<Box<dyn ForceSolver>>>,
    injector: Option<FaultInjector>,
    counters: RecoveryCounters,
    /// Monotone step counter driving the injector schedule.
    step: u64,
    /// Chain level that served the most recent step (diagnostics).
    last_level: usize,
    /// Floor on the chain level: levels below this are skipped. Raised by
    /// [`ForceSolver::escalate_fallback`] when an outer recovery layer has
    /// lost confidence in the preferred solver; 0 = unrestricted.
    min_level: usize,
}

impl ResilientSolver {
    /// Wrap the default chain (Octree → BVH → All-Pairs) under `Par`.
    pub fn new(params: SolverParams) -> Self {
        Self::with_config(ResilientConfig { params, ..ResilientConfig::default() })
    }

    /// Wrap an explicit configuration.
    ///
    /// # Panics
    /// If the chain is empty or every attempt limit is zero.
    pub fn with_config(config: ResilientConfig) -> Self {
        assert!(!config.chain.is_empty(), "fallback chain must name at least one solver");
        assert!(config.max_attempts_per_solver >= 1, "need at least one attempt per solver");
        let n = config.chain.len();
        ResilientSolver {
            config,
            solvers: (0..n).map(|_| None).collect(),
            injector: None,
            counters: RecoveryCounters::new(),
            step: 0,
            last_level: 0,
            min_level: 0,
        }
    }

    /// Attach a deterministic fault schedule (tests/chaos runs).
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Builder-style variant of [`ResilientSolver::set_injector`].
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Recovery actions taken so far.
    pub fn counters(&self) -> &RecoveryCounters {
        &self.counters
    }

    /// Zero the recovery counters.
    pub fn reset_counters(&mut self) {
        self.counters = RecoveryCounters::new();
    }

    /// Chain level (0 = most preferred) that served the last step.
    pub fn last_level(&self) -> usize {
        self.last_level
    }

    /// Current floor on the chain level (see
    /// [`ForceSolver::escalate_fallback`]).
    pub fn min_level(&self) -> usize {
        self.min_level
    }

    /// Solver kind that served the last step.
    pub fn last_kind(&self) -> SolverKind {
        self.config.chain[self.last_level]
    }

    /// Get (constructing on first use) the solver at chain position
    /// `level`; `None` when the configured policy is rejected by that
    /// solver's forward-progress requirement. Takes the fields apart so the
    /// caller keeps access to the counters while holding the solver.
    fn solver_at<'a>(
        solvers: &'a mut [Option<Box<dyn ForceSolver>>],
        config: &ResilientConfig,
        level: usize,
    ) -> Option<&'a mut Box<dyn ForceSolver>> {
        if solvers[level].is_none() {
            let kind = config.chain[level];
            match make_solver(kind, config.policy, config.params) {
                Ok(s) => solvers[level] = Some(s),
                Err(_) => return None,
            }
        }
        solvers[level].as_mut()
    }

    /// Corrupt a copy of `state` the way the NaN-positions fault does: one
    /// poisoned coordinate, deterministically placed.
    fn corrupt_state(state: &SystemState) -> SystemState {
        let mut bad = state.clone();
        if let Some(p) = bad.positions.first_mut() {
            p.x = f64::NAN;
        }
        bad
    }
}

impl ForceSolver for ResilientSolver {
    fn kind(&self) -> SolverKind {
        self.config.chain[self.last_level]
    }

    fn name(&self) -> &'static str {
        "resilient"
    }

    fn try_compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        reuse: bool,
        ws: &mut SimWorkspace,
    ) -> Result<StepTimings, ComputeError> {
        let step = self.step;
        self.step += 1;
        let counters_at_entry = self.counters;
        let faults =
            self.injector.as_ref().map(|i| i.faults_at(step)).unwrap_or_default();
        if faults.contains(&FaultKind::SlowWorker) {
            // A slow worker harms latency, not correctness; the scheduler
            // harness in `progress-sim` exercises it. Here it is tallied so
            // chaos runs can report complete schedules.
            self.counters.slow_workers += 1;
        }
        // The corrupted state exists only while its fault is live: the
        // first attempt sees it, every retry sees the pristine input.
        let corrupted = faults
            .contains(&FaultKind::NanPositions)
            .then(|| Self::corrupt_state(state));

        let chain_len = self.config.chain.len();
        let attempts = self.config.max_attempts_per_solver;
        let start_level = self.min_level.min(chain_len - 1);
        let mut last_err: Option<ComputeError> = None;
        for level in start_level..chain_len {
            let validate = self.config.validate_builds;
            let Some(solver) = Self::solver_at(&mut self.solvers, &self.config, level) else {
                continue; // policy rejected at this level; not a fallback
            };
            for attempt in 0..attempts {
                let first = level == start_level && attempt == 0;
                if first {
                    for &f in &faults {
                        if matches!(f, FaultKind::StuckLock | FaultKind::AllocExhaustion) {
                            solver.inject_fault(f);
                        }
                    }
                }
                let input: &SystemState = match (&corrupted, first) {
                    (Some(bad), true) => bad,
                    _ => state,
                };
                if !input.is_valid() {
                    self.counters.invalid_states += 1;
                    last_err = Some(ComputeError::Build(BuildError::InvalidPositions));
                    continue;
                }
                // The whole chain draws from the one shared workspace:
                // scratch shapes are solver-keyed (ws.octree / ws.bvh), so
                // a fallback step warms the fallback's buffers once and
                // reuses them on every later degradation.
                match solver.try_compute_into(input, accel, reuse, ws) {
                    Ok(t) => {
                        if let Some(body) = accel.iter().position(|a| !a.is_finite()) {
                            self.counters.nonfinite_accels += 1;
                            last_err = Some(ComputeError::NonFiniteAccel { body });
                            continue;
                        }
                        if validate {
                            if let Err(e) = solver.validate(input) {
                                last_err = Some(e);
                                continue;
                            }
                        }
                        if attempt > 0 || level > 0 {
                            self.counters.build_retries += u64::from(attempt > 0);
                        }
                        self.last_level = level;
                        record!(counter RESILIENT_STEPS, 1);
                        record!(hist RESILIENT_FALLBACK_LEVEL, level as u64);
                        record_recovery_delta(&counters_at_entry, &self.counters);
                        return Ok(t);
                    }
                    Err(e) => {
                        if let ComputeError::Build(be) = e {
                            self.counters.record_build_error(be);
                        }
                        last_err = Some(e);
                    }
                }
            }
            if level + 1 < chain_len {
                self.counters.fallbacks += 1;
            }
        }
        record_recovery_delta(&counters_at_entry, &self.counters);
        Err(last_err.unwrap_or_else(|| {
            ComputeError::InvariantViolation("no usable solver in the fallback chain".into())
        }))
    }

    fn escalate_fallback(&mut self, min_level: usize) -> bool {
        // Clamp so an over-eager escalation still leaves the last-resort
        // solver reachable rather than emptying the chain.
        self.min_level = min_level.min(self.config.chain.len() - 1);
        min_level < self.config.chain.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;

    fn params() -> SolverParams {
        SolverParams { softening: 1e-3, ..SolverParams::default() }
    }

    #[test]
    fn no_fault_is_bit_for_bit_identical_to_plain_solver() {
        // Seq is fully deterministic, so equality must be exact.
        let state = galaxy_collision(300, 41);
        let cfg = ResilientConfig {
            policy: DynPolicy::Seq,
            params: params(),
            ..ResilientConfig::default()
        };
        let mut plain = make_solver(SolverKind::Octree, DynPolicy::Seq, params()).unwrap();
        let mut wrapped = ResilientSolver::with_config(cfg);
        let mut a = vec![Vec3::ZERO; state.len()];
        let mut b = vec![Vec3::ZERO; state.len()];
        plain.compute(&state, &mut a, false);
        wrapped.compute(&state, &mut b, false);
        assert_eq!(a, b, "wrapper must not perturb a healthy step");
        assert_eq!(wrapped.counters().total_recoveries(), 0);
        assert_eq!(wrapped.last_kind(), SolverKind::Octree);
    }

    #[test]
    fn stuck_lock_recovers_on_retry() {
        let state = galaxy_collision(200, 42);
        let mut solver = ResilientSolver::with_config(ResilientConfig {
            policy: DynPolicy::Par,
            params: params(),
            ..ResilientConfig::default()
        });
        solver.set_injector(FaultInjector::new(7).at_step(0, FaultKind::StuckLock));
        // Budget must be small or the test spins 2^24 times first.
        // (Injected via the solver: arm, then shrink through a rebuild.)
        let mut acc = vec![Vec3::ZERO; state.len()];
        solver.try_compute(&state, &mut acc, false).unwrap();
        let c = solver.counters();
        assert_eq!(c.spin_exhaustions, 1, "{c}");
        assert_eq!(c.build_retries, 1, "{c}");
        assert_eq!(c.fallbacks, 0, "recovered without degrading: {c}");
        assert_eq!(solver.last_kind(), SolverKind::Octree);
        assert!(acc.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn alloc_exhaustion_recovers_on_retry() {
        let state = galaxy_collision(200, 43);
        let mut solver = ResilientSolver::new(params())
            .with_injector(FaultInjector::new(8).at_step(0, FaultKind::AllocExhaustion));
        let mut acc = vec![Vec3::ZERO; state.len()];
        solver.try_compute(&state, &mut acc, false).unwrap();
        let c = solver.counters();
        assert_eq!(c.pool_exhaustions, 1, "{c}");
        assert_eq!(c.build_retries, 1, "{c}");
        assert_eq!(c.fallbacks, 0, "{c}");
    }

    #[test]
    fn nan_positions_detected_and_recovered() {
        let state = galaxy_collision(150, 44);
        let mut solver = ResilientSolver::new(params())
            .with_injector(FaultInjector::new(9).at_step(0, FaultKind::NanPositions));
        let mut acc = vec![Vec3::ZERO; state.len()];
        solver.try_compute(&state, &mut acc, false).unwrap();
        let c = solver.counters();
        assert_eq!(c.invalid_states, 1, "{c}");
        assert!(acc.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn single_attempt_forces_fallback_to_bvh() {
        let state = galaxy_collision(200, 45);
        let mut solver = ResilientSolver::with_config(ResilientConfig {
            params: params(),
            max_attempts_per_solver: 1,
            ..ResilientConfig::default()
        });
        solver.set_injector(FaultInjector::new(10).at_step(0, FaultKind::AllocExhaustion));
        let mut acc = vec![Vec3::ZERO; state.len()];
        solver.try_compute(&state, &mut acc, false).unwrap();
        let c = solver.counters();
        assert_eq!(c.fallbacks, 1, "{c}");
        assert_eq!(solver.last_kind(), SolverKind::Bvh);
        // The next, fault-free step goes straight back to the octree.
        solver.try_compute(&state, &mut acc, false).unwrap();
        assert_eq!(solver.last_kind(), SolverKind::Octree);
    }

    #[test]
    fn same_seed_reproduces_recovery_history() {
        let state = galaxy_collision(150, 46);
        let run = || {
            let mut solver = ResilientSolver::new(params()).with_injector(
                FaultInjector::new(0xFA_17)
                    .with_rate(FaultKind::AllocExhaustion, 0.3)
                    .with_rate(FaultKind::NanPositions, 0.2),
            );
            let mut acc = vec![Vec3::ZERO; state.len()];
            for _ in 0..20 {
                solver.try_compute(&state, &mut acc, false).unwrap();
            }
            *solver.counters()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "recovery history must be a pure function of the seed");
        assert!(a.total_recoveries() > 0, "schedule should have fired at least once: {a}");
    }

    #[test]
    fn empty_and_single_body_states() {
        for n in [0usize, 1] {
            let state = if n == 0 {
                SystemState::new()
            } else {
                SystemState::from_parts(vec![Vec3::ONE], vec![Vec3::ZERO], vec![1.0])
            };
            let mut solver = ResilientSolver::new(params());
            let mut acc = vec![Vec3::ZERO; n];
            solver.try_compute(&state, &mut acc, false).unwrap();
            assert!(acc.iter().all(|a| *a == Vec3::ZERO));
        }
    }

    #[test]
    fn escalation_floor_skips_preferred_levels() {
        let state = galaxy_collision(150, 47);
        let mut solver = ResilientSolver::new(params());
        let mut acc = vec![Vec3::ZERO; state.len()];
        use crate::solver::ForceSolver as _;
        assert!(solver.escalate_fallback(1));
        solver.try_compute(&state, &mut acc, false).unwrap();
        assert_eq!(solver.last_kind(), SolverKind::Bvh);
        assert_eq!(solver.min_level(), 1);
        // An out-of-range request clamps to the last resort (and reports
        // that the requested level itself was unreachable).
        assert!(!solver.escalate_fallback(99));
        solver.try_compute(&state, &mut acc, false).unwrap();
        assert_eq!(solver.last_kind(), SolverKind::AllPairs);
        // Lifting the floor restores the preferred solver.
        assert!(solver.escalate_fallback(0));
        solver.try_compute(&state, &mut acc, false).unwrap();
        assert_eq!(solver.last_kind(), SolverKind::Octree);
    }

    #[test]
    #[should_panic(expected = "fallback chain must name at least one solver")]
    fn empty_chain_rejected() {
        let _ = ResilientSolver::with_config(ResilientConfig {
            chain: vec![],
            ..ResilientConfig::default()
        });
    }

    #[test]
    fn compute_error_display_and_source() {
        let e = ComputeError::Build(BuildError::PoolExhausted { requested_nodes: 8 });
        assert!(e.to_string().contains("build failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ComputeError::NonFiniteAccel { body: 3 };
        assert!(e.to_string().contains("body 3"));
    }
}
