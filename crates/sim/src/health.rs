//! Numerical-health watchdog: cheap, tiered per-step verdicts.
//!
//! Long N-body runs fail in two distinct ways. *Loud* corruption — a NaN
//! seeded by a torn write, an infinity from a division blow-up — propagates
//! to every body within a step or two and is trivially detectable if
//! anyone looks. *Quiet* corruption — a single position teleported by a
//! flipped exponent bit — keeps every value finite while silently breaking
//! the physics. [`HealthMonitor`] looks for both, every step, for the cost
//! of **one fused O(N) reduction** (cheap next to the O(N log N) force
//! pass):
//!
//! * `Σ|r|²` and `Σm|v|²` — NaN/Inf *catchers*: NaN propagates through a
//!   sum (but not through `f64::max`), so a single poisoned component
//!   poisons the aggregate. Non-finite aggregates ⇒ [`HealthVerdict::Corrupt`].
//! * `max|r|²` — bounding-radius blow-up: a body flung to 1e300 by an
//!   exponent bit flipped *up*.
//! * `Σm·r` and `Σm·v` — teleport detector: `d(Σm·r)/dt = Σm·v` exactly,
//!   so the mass-weighted position sum is *predictable* one step ahead
//!   from the momentum. A single coordinate collapsed toward zero by an
//!   exponent bit flipped *down* moves `Σm·r` by `m_i·|Δr_i|` — orders of
//!   magnitude above the integrator's own O(dt²) prediction error — while
//!   leaving radius and kinetic energy untouched.
//! * `Σm|v|²` doubles as a kinetic-energy jump detector between steps.
//! * every [`HealthConfig::energy_check_every`] checks, a sampled total
//!   energy (reusing [`crate::diagnostics::potential_energy_sampled`],
//!   allocation-free) is compared against the first measurement — the slow
//!   drift detector for damage the per-step deltas are too coarse to see.
//!
//! Heuristic detectors yield [`HealthVerdict::Suspect`], not `Corrupt`: a
//! genuine close encounter can spike kinetic energy, so the recovery layer
//! ([`crate::guard`]) retries suspects but *accepts* them after a bounded
//! streak rather than looping forever on honest physics.
//!
//! The monitor is `Copy` and holds only O(1) baselines, so a checkpoint
//! slot stores the whole monitor and a rollback restores the watchdog's
//! memory along with the state — replayed steps are judged against the
//! baselines that were current when the checkpoint was taken.

use crate::diagnostics::potential_energy_sampled;
use crate::system::SystemState;
use nbody_math::Vec3;
use stdpar::policy::DynPolicy;
use stdpar::prelude::*;

/// Tiered per-step health verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthVerdict {
    /// All checks passed.
    Healthy,
    /// A heuristic tripped (energy jump, radius blow-up, teleport, drift):
    /// probably corruption, possibly violent-but-honest physics. The
    /// recovery policy retries a bounded number of times, then accepts.
    Suspect,
    /// Hard evidence of corruption (non-finite state). Never accepted.
    Corrupt,
}

/// Thresholds for the heuristic detectors. Defaults are deliberately loose:
/// a watchdog that cries wolf on honest close encounters costs more
/// (rollback storms) than one that waits a step for the NaN to appear.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Gravitational constant (for the sampled energy check).
    pub g: f64,
    /// Softening length (for the sampled energy check).
    pub softening: f64,
    /// Suspect if kinetic energy changes by more than this factor in one
    /// step (checked both ways: growth and collapse).
    pub ke_jump_factor: f64,
    /// Suspect if the bounding radius grows by more than this factor in
    /// one step.
    pub radius_blowup_factor: f64,
    /// Suspect if `Σm·r` deviates from its momentum-predicted value by
    /// more than this fraction of `M·L` (total mass × bounding radius).
    /// The integrator's own prediction error is O(dt²) — many orders
    /// below this — while a single teleported body contributes `~m_i/M`.
    pub com_drift_tol: f64,
    /// Run the sampled total-energy check every this many checks
    /// (0 disables it).
    pub energy_check_every: u64,
    /// Probe count for the sampled potential.
    pub energy_samples: usize,
    /// Suspect if sampled total energy drifts from the first measurement
    /// by more than this relative fraction.
    pub energy_drift_tol: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            g: 1.0,
            softening: 1e-3,
            ke_jump_factor: 8.0,
            radius_blowup_factor: 4.0,
            com_drift_tol: 1e-5,
            energy_check_every: 32,
            energy_samples: 64,
            energy_drift_tol: 0.1,
        }
    }
}

/// Per-step baselines carried between checks.
#[derive(Clone, Copy, Debug)]
struct Baseline {
    /// `Σ m|v|²` (twice the kinetic energy).
    ke2: f64,
    /// `max |r|²`.
    max_r2: f64,
    /// `Σ m·r`.
    mr: Vec3,
    /// `Σ m·v`.
    mv: Vec3,
}

/// What one check concluded.
#[derive(Clone, Copy, Debug)]
pub struct HealthReport {
    pub verdict: HealthVerdict,
    /// Which detector fired (`None` when healthy).
    pub reason: Option<&'static str>,
    /// Kinetic energy of the checked state.
    pub kinetic_energy: f64,
    /// Bounding radius of the checked state.
    pub max_radius: f64,
    /// Relative energy drift, when the sampled check ran this step.
    pub energy_drift: Option<f64>,
}

/// Fused single-pass aggregate; see the module docs for what each field
/// detects.
#[derive(Clone, Copy)]
struct Accum {
    sum_r2: f64,
    ke2: f64,
    max_r2: f64,
    mr: Vec3,
    mv: Vec3,
}

impl Accum {
    const IDENTITY: Accum =
        Accum { sum_r2: 0.0, ke2: 0.0, max_r2: 0.0, mr: Vec3::ZERO, mv: Vec3::ZERO };

    fn merge(self, o: Accum) -> Accum {
        Accum {
            sum_r2: self.sum_r2 + o.sum_r2,
            ke2: self.ke2 + o.ke2,
            // `max` does NOT propagate NaN — that is sum_r2's job.
            max_r2: self.max_r2.max(o.max_r2),
            mr: self.mr + o.mr,
            mv: self.mv + o.mv,
        }
    }

    fn is_finite(&self) -> bool {
        self.sum_r2.is_finite() && self.ke2.is_finite() && self.mr.is_finite() && self.mv.is_finite()
    }
}

fn fused_scan(state: &SystemState, policy: DynPolicy) -> Accum {
    let pos = &state.positions;
    let vel = &state.velocities;
    let mass = &state.masses;
    let body = |i: usize| -> Accum {
        let (p, v, m) = (pos[i], vel[i], mass[i]);
        let r2 = p.norm2();
        Accum { sum_r2: r2, ke2: m * v.norm2(), max_r2: r2, mr: p * m, mv: v * m }
    };
    match policy {
        DynPolicy::Seq => {
            transform_reduce(Seq, 0..pos.len(), Accum::IDENTITY, Accum::merge, body)
        }
        DynPolicy::Par => {
            transform_reduce(Par, 0..pos.len(), Accum::IDENTITY, Accum::merge, body)
        }
        DynPolicy::ParUnseq => {
            transform_reduce(ParUnseq, 0..pos.len(), Accum::IDENTITY, Accum::merge, body)
        }
    }
}

/// The watchdog. `Copy` on purpose: checkpoint slots embed it so rollback
/// restores the baselines too (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    prev: Option<Baseline>,
    energy_baseline: Option<f64>,
    /// Total checks performed (drives the energy-check cadence).
    checks: u64,
}

impl HealthMonitor {
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor { cfg, prev: None, energy_baseline: None, checks: 0 }
    }

    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Checks performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Judge `state`, advancing the internal baselines. `dt` is the time
    /// step that produced this state from the previous one (used to
    /// predict `Σm·r` from the momentum).
    ///
    /// The first check only establishes baselines (verdict `Healthy`
    /// unless the state is non-finite).
    pub fn check(&mut self, state: &SystemState, dt: f64, policy: DynPolicy) -> HealthReport {
        self.checks += 1;
        let a = fused_scan(state, policy);
        let kinetic = 0.5 * a.ke2;
        let max_radius = a.max_r2.sqrt();

        if !a.is_finite() {
            // Do not advance baselines from a corrupt state: after the
            // rollback, the next check compares against the last good ones.
            return HealthReport {
                verdict: HealthVerdict::Corrupt,
                reason: Some("non-finite position or velocity"),
                kinetic_energy: kinetic,
                max_radius,
                energy_drift: None,
            };
        }

        let now = Baseline { ke2: a.ke2, max_r2: a.max_r2, mr: a.mr, mv: a.mv };
        let mut reason: Option<&'static str> = None;

        if let Some(prev) = self.prev {
            let c = &self.cfg;
            // Kinetic-energy jump, either direction.
            if prev.ke2 > 0.0 && a.ke2 > 0.0 {
                let ratio = a.ke2 / prev.ke2;
                if !(1.0 / c.ke_jump_factor..=c.ke_jump_factor).contains(&ratio) {
                    reason = Some("kinetic-energy jump");
                }
            }
            // Bounding-radius blow-up.
            let blow2 = c.radius_blowup_factor * c.radius_blowup_factor;
            if reason.is_none() && prev.max_r2 > 0.0 && a.max_r2 > blow2 * prev.max_r2 {
                reason = Some("bounding-radius blowup");
            }
            // Teleport: Σm·r must track its momentum prediction. Midpoint
            // momentum halves the O(dt) truncation of either endpoint.
            if reason.is_none() {
                let predicted = prev.mr + (prev.mv + a.mv) * (0.5 * dt);
                let total_mass: f64 = state.masses.iter().sum();
                let scale = total_mass * max_radius.max(1e-300);
                if scale > 0.0 && (a.mr - predicted).norm() > c.com_drift_tol * scale {
                    reason = Some("mass-weighted position teleport");
                }
            }
        }

        // Slow-drift detector on the sampled cadence.
        let mut energy_drift = None;
        let c = self.cfg;
        if c.energy_check_every > 0 && self.checks.is_multiple_of(c.energy_check_every) {
            let pe = potential_energy_sampled(state, c.g, c.softening, c.energy_samples);
            let e = kinetic + pe;
            match self.energy_baseline {
                None => self.energy_baseline = Some(e),
                Some(e0) => {
                    let drift = if e0 != 0.0 { ((e - e0) / e0).abs() } else { (e - e0).abs() };
                    energy_drift = Some(drift);
                    if reason.is_none() && drift > c.energy_drift_tol {
                        reason = Some("sampled energy drift");
                    }
                }
            }
        }

        self.prev = Some(now);
        HealthReport {
            verdict: if reason.is_some() { HealthVerdict::Suspect } else { HealthVerdict::Healthy },
            reason,
            kinetic_energy: kinetic,
            max_radius,
            energy_drift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    #[test]
    fn healthy_steps_stay_healthy() {
        let state = galaxy_collision(500, 51);
        let mut mon = HealthMonitor::new(cfg());
        for _ in 0..5 {
            let r = mon.check(&state, 1e-3, DynPolicy::Par);
            assert_eq!(r.verdict, HealthVerdict::Healthy, "{:?}", r.reason);
        }
        assert_eq!(mon.checks(), 5);
    }

    #[test]
    fn nan_position_is_corrupt_not_suspect() {
        let mut state = galaxy_collision(300, 52);
        let mut mon = HealthMonitor::new(cfg());
        mon.check(&state, 1e-3, DynPolicy::Par);
        state.positions[137].y = f64::NAN;
        let r = mon.check(&state, 1e-3, DynPolicy::Par);
        assert_eq!(r.verdict, HealthVerdict::Corrupt);
    }

    #[test]
    fn infinite_velocity_is_corrupt() {
        let mut state = galaxy_collision(300, 53);
        let mut mon = HealthMonitor::new(cfg());
        mon.check(&state, 1e-3, DynPolicy::Par);
        state.velocities[9].x = f64::INFINITY;
        let r = mon.check(&state, 1e-3, DynPolicy::Par);
        assert_eq!(r.verdict, HealthVerdict::Corrupt);
    }

    #[test]
    fn radius_blowup_is_suspect() {
        let mut state = galaxy_collision(300, 54);
        let mut mon = HealthMonitor::new(cfg());
        mon.check(&state, 1e-3, DynPolicy::Par);
        // A finite but absurd excursion whose square still fits in an f64.
        state.positions[7].x = 1e100;
        let r = mon.check(&state, 1e-3, DynPolicy::Par);
        assert_eq!(r.verdict, HealthVerdict::Suspect);
        assert_eq!(r.reason, Some("bounding-radius blowup"));
    }

    #[test]
    fn radius_overflow_escalates_to_corrupt() {
        // Beyond ~1e154 the fused |r|² aggregate overflows to infinity —
        // the NaN/Inf catcher then reports hard corruption, which is an
        // even stronger (and still correct) verdict for a bit-flip that
        // far up.
        let mut state = galaxy_collision(300, 60);
        let mut mon = HealthMonitor::new(cfg());
        mon.check(&state, 1e-3, DynPolicy::Par);
        state.positions[7].x = 1e200;
        let r = mon.check(&state, 1e-3, DynPolicy::Par);
        assert_eq!(r.verdict, HealthVerdict::Corrupt);
    }

    #[test]
    fn ke_jump_is_suspect() {
        let mut state = galaxy_collision(300, 55);
        let mut mon = HealthMonitor::new(cfg());
        mon.check(&state, 1e-3, DynPolicy::Par);
        for v in &mut state.velocities {
            *v *= 100.0;
        }
        let r = mon.check(&state, 1e-3, DynPolicy::Par);
        assert_eq!(r.verdict, HealthVerdict::Suspect);
        assert_eq!(r.reason, Some("kinetic-energy jump"));
    }

    #[test]
    fn exponent_collapse_is_caught_by_teleport_detector() {
        // Flip the top exponent bit of a large-ish coordinate *down*: the
        // value collapses to ~1e-154 of itself — still finite, radius and
        // kinetic energy unchanged. Only the mass-weighted sum moves.
        let mut state = galaxy_collision(1000, 56);
        let mut mon = HealthMonitor::new(cfg());
        mon.check(&state, 1e-3, DynPolicy::Par);
        // Pick the body with the largest |x| so the collapse is the
        // worst-case quiet teleport.
        let i = (0..state.len())
            .max_by(|&a, &b| {
                state.positions[a].x.abs().partial_cmp(&state.positions[b].x.abs()).unwrap()
            })
            .unwrap();
        let bits = state.positions[i].x.to_bits() ^ (1u64 << 62);
        state.positions[i].x = f64::from_bits(bits);
        assert!(state.positions[i].is_finite(), "collapse must stay finite for this test");
        let r = mon.check(&state, 1e-3, DynPolicy::Par);
        assert_eq!(r.verdict, HealthVerdict::Suspect, "quiet teleport missed");
        assert_eq!(r.reason, Some("mass-weighted position teleport"));
    }

    #[test]
    fn energy_drift_fires_on_cadence() {
        let state = galaxy_collision(400, 57);
        let mut mon = HealthMonitor::new(HealthConfig {
            energy_check_every: 2,
            energy_drift_tol: 0.01,
            ..cfg()
        });
        mon.check(&state, 1e-3, DynPolicy::Par); // 1: no cadence hit
        mon.check(&state, 1e-3, DynPolicy::Par); // 2: sets the baseline
        // Heat the system ~uniformly but mildly: per-step KE ratio stays
        // inside the jump factor while total energy leaves the band.
        let mut heated = state.clone();
        for v in &mut heated.velocities {
            *v *= 2.0;
        }
        mon.check(&heated, 1e-3, DynPolicy::Par); // 3: off-cadence
        let r = mon.check(&heated, 1e-3, DynPolicy::Par); // 4: cadence hit
        assert_eq!(r.verdict, HealthVerdict::Suspect, "{:?}", r.reason);
        assert_eq!(r.reason, Some("sampled energy drift"));
        assert!(r.energy_drift.unwrap() > 0.01);
    }

    #[test]
    fn policies_agree_on_verdicts() {
        let mut state = galaxy_collision(200, 58);
        state.positions[50].z = f64::NAN;
        for policy in [DynPolicy::Seq, DynPolicy::Par, DynPolicy::ParUnseq] {
            let mut mon = HealthMonitor::new(cfg());
            let r = mon.check(&state, 1e-3, policy);
            assert_eq!(r.verdict, HealthVerdict::Corrupt, "{policy:?}");
        }
    }

    #[test]
    fn monitor_is_copy_and_rollback_restores_baselines() {
        let state = galaxy_collision(200, 59);
        let mut mon = HealthMonitor::new(cfg());
        mon.check(&state, 1e-3, DynPolicy::Par);
        let snap = mon; // plain Copy
        mon.check(&state, 1e-3, DynPolicy::Par);
        assert_eq!(mon.checks(), 2);
        mon = snap;
        assert_eq!(mon.checks(), 1, "rollback must restore the watchdog's memory");
    }
}
