//! # nbody-sim — the N-body simulation layer (paper §III, §V)
//!
//! Everything around the tree algorithms: the body state (structure of
//! arrays), workload generators (including the deterministic two-galaxy
//! collision the paper benchmarks and a synthetic stand-in for the JPL
//! Small-Body Database validation), the Störmer-Verlet time integration
//! loop (paper Algorithm 2 / 6), both `O(N²)` all-pairs baselines, and
//! energy/momentum/accuracy diagnostics.
//!
//! ```
//! use nbody_sim::prelude::*;
//!
//! let state = galaxy_collision(512, 42);
//! let opts = SimOptions { dt: 1e-3, ..SimOptions::default() };
//! let mut sim = Simulation::new(state, SolverKind::Octree, opts).unwrap();
//! let t = sim.step();
//! assert!(t.force.as_nanos() > 0);
//! ```

pub mod checkpoint;
pub mod dag;
pub mod diagnostics;
pub mod guard;
pub mod health;
pub mod integrator;
pub mod io;
pub mod recorder;
pub mod render;
pub mod resilient;
pub mod solver;
pub mod system;
pub mod timing;
pub mod workload;
pub mod workspace;

pub use checkpoint::{CheckpointError, CheckpointRing, RestorePoint};
pub use dag::Stepping;
pub use guard::{resume_state_from_disk, GuardConfig, GuardError, GuardStats, GuardedSimulation};
pub use health::{HealthConfig, HealthMonitor, HealthReport, HealthVerdict};
pub use integrator::{IntegratorKind, SimOptions, Simulation};
pub use io::SnapshotError;
pub use resilient::{ComputeError, ResilientConfig, ResilientSolver};
pub use solver::{make_solver, ForceSolver, SolverError, SolverKind, SolverParams};
pub use recorder::Recorder;
pub use timing::{PhaseBusy, StepAllocs, StepTimings};
pub use workspace::SimWorkspace;

pub mod prelude {
    pub use crate::checkpoint::{CheckpointError, CheckpointRing};
    pub use crate::dag::Stepping;
    pub use crate::diagnostics::{l2_error, Diagnostics};
    pub use crate::guard::{
        resume_state_from_disk, GuardConfig, GuardError, GuardStats, GuardedSimulation,
    };
    pub use crate::health::{HealthConfig, HealthMonitor, HealthReport, HealthVerdict};
    pub use crate::integrator::{IntegratorKind, SimOptions, Simulation};
    pub use crate::resilient::{ComputeError, ResilientConfig, ResilientSolver};
    pub use crate::solver::{make_solver, ForceSolver, SolverKind, SolverParams};
    pub use crate::system::SystemState;
    pub use crate::timing::{PhaseBusy, StepAllocs, StepTimings};
    pub use crate::workspace::SimWorkspace;
    pub use crate::workload::{
        galaxy_collision, plummer, solar_system, spinning_disk, uniform_cube, WorkloadSpec,
    };
    pub use nbody_math::{Aabb, ForceParams, Vec3};
    pub use stdpar::policy::DynPolicy;
}
