//! Force solvers: the two tree strategies plus the two `O(N²)` all-pairs
//! baselines evaluated in the paper (§V-A "Algorithms").
//!
//! | solver | parallelised over | policy requirement |
//! |---|---|---|
//! | `All-Pairs` | bodies | any (paper: `par_unseq`) |
//! | `All-Pairs-Col` | force-pairs, atomic accumulation | parallel forward progress (`par`) |
//! | `Octree` | bodies / nodes | build+multipoles: `par`; force: `par_unseq` |
//! | `BVH` | bodies / nodes | any (`par_unseq` throughout) |
//!
//! The policy requirements are enforced twice: at compile time through the
//! [`ParallelForwardProgress`] bounds on the generic solver types, and at
//! run time in [`make_solver`] for the dynamic-dispatch path used by the
//! benchmark harness (where requesting `Octree` under `par_unseq` returns
//! [`SolverError::RequiresForwardProgress`] — the paper's "reliably caused
//! them to hang" case, §V-B).

use crate::dag::Stepping;
use crate::resilient::ComputeError;
use crate::system::SystemState;
use crate::timing::{timed_counted, StepTimings};
use crate::workspace::SimWorkspace;
use bh_bvh::{Bvh, BvhParams};
use bh_octree::Octree;
use nbody_math::atomic_f64::atomic_f64_vec;
use nbody_math::gravity::{
    pair_accel, ForceEval, ForceKernel, ForceParams, KernelPrecision, TreeLifecycle,
};
use nbody_math::{Aabb, Vec3};
use nbody_resilience::FaultKind;
use std::sync::atomic::Ordering;
use stdpar::policy::DynPolicy;
use stdpar::prelude::*;

/// Physics and accuracy parameters shared by all solvers.
#[derive(Clone, Copy, Debug)]
pub struct SolverParams {
    pub theta: f64,
    pub softening: f64,
    pub g: f64,
    /// Quadrupole extension (both trees).
    pub quadrupole: bool,
    /// Force-evaluation strategy (both trees): one traversal per body, or
    /// one traversal per group with shared SoA interaction lists.
    pub eval: ForceEval,
    /// Kernel consuming the blocked interaction lists (both trees; the
    /// scalar oracle or the tiled SIMD microkernel).
    pub kernel: ForceKernel,
    /// Precision mode of the SIMD kernel (f64 or mixed f32 far-field).
    pub precision: KernelPrecision,
    /// Hilbert grid resolution (BVH only).
    pub hilbert_bits: u32,
    /// Tree maintenance across steps (both trees): from-scratch rebuild
    /// per step, or a persistent delta-updated tree that is refreshed
    /// every `max_stale_steps + 1` steps and served stale in between with
    /// a drift-inflated MAC. `Incremental` manages its own reuse cadence
    /// and therefore ignores the `reuse_tree` flag of
    /// [`ForceSolver::try_compute_into`].
    pub lifecycle: TreeLifecycle,
    /// Step execution shape (tree solvers under the leapfrog integrator):
    /// phase-by-phase barriers, or one task-graph DAG per step
    /// ([`crate::dag`]). Consulted by [`ForceSolver::step_dag`]; plain
    /// `try_compute_into` calls always run the barrier phases.
    pub stepping: Stepping,
}

impl Default for SolverParams {
    fn default() -> Self {
        SolverParams {
            theta: 0.5,
            softening: 0.0,
            g: 1.0,
            quadrupole: false,
            eval: ForceEval::PerBody,
            kernel: ForceKernel::Scalar,
            precision: KernelPrecision::F64,
            hilbert_bits: 16,
            lifecycle: TreeLifecycle::Rebuild,
            stepping: Stepping::Barrier,
        }
    }
}

impl SolverParams {
    pub(crate) fn force_params(&self) -> ForceParams {
        ForceParams {
            theta: self.theta,
            softening: self.softening,
            g: self.g,
            use_quadrupole: self.quadrupole,
            eval: self.eval,
            kernel: self.kernel,
            precision: self.precision,
            lifecycle: self.lifecycle,
            mac_pad: 0.0,
        }
    }
}

/// Inflation factor applied to the root cube when entering the incremental
/// lifecycle: the persistent octree must absorb a few steps of drift before
/// any body escapes its fixed cube and forces a from-scratch rebuild.
const INC_ROOT_INFLATE: f64 = 1.25;

/// Largest body displacement between the reference snapshot (positions at
/// the last tree refresh) and the current positions — the MAC pad for
/// stale-tree steps.
pub(crate) fn max_drift(reference: &[Vec3], positions: &[Vec3]) -> f64 {
    debug_assert_eq!(reference.len(), positions.len());
    reference
        .iter()
        .zip(positions)
        .map(|(a, b)| (*b - *a).norm())
        .fold(0.0, f64::max)
}

/// The four algorithms of the paper's evaluation, plus the tiled all-pairs
/// extension (Nyland et al., GPU Gems 3 — cited in the paper's related
/// work as the classic all-pairs optimisation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    AllPairs,
    AllPairsCol,
    Octree,
    Bvh,
    /// Cache-blocked all-pairs (not part of the paper's evaluated set;
    /// excluded from [`SolverKind::ALL`]).
    AllPairsTiled,
}

impl SolverKind {
    pub const ALL: [SolverKind; 4] =
        [SolverKind::AllPairs, SolverKind::AllPairsCol, SolverKind::Octree, SolverKind::Bvh];

    pub fn name(self) -> &'static str {
        match self {
            SolverKind::AllPairs => "all-pairs",
            SolverKind::AllPairsCol => "all-pairs-col",
            SolverKind::Octree => "octree",
            SolverKind::Bvh => "bvh",
            SolverKind::AllPairsTiled => "all-pairs-tiled",
        }
    }

    /// `O(N log N)` tree algorithms vs `O(N²)` baselines.
    pub fn is_tree(self) -> bool {
        matches!(self, SolverKind::Octree | SolverKind::Bvh)
    }
}

/// Solver construction failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// The algorithm takes locks / uses vectorization-unsafe atomics and
    /// therefore needs parallel forward progress; `par_unseq` was requested.
    RequiresForwardProgress(SolverKind),
    /// The system has zero bodies. Rejected at construction: an empty
    /// system has no bounding box, so letting it through only defers the
    /// failure to a panic deep in the tree build — callers that accept
    /// arbitrary configs (the session server) need the typed error here.
    EmptySystem,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::RequiresForwardProgress(k) => write!(
                f,
                "{} requires parallel forward progress (par); par_unseq lacks it \
                 — on real GPUs without Independent Thread Scheduling this hangs",
                k.name()
            ),
            SolverError::EmptySystem => {
                write!(f, "simulation needs at least one body (the system is empty)")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// A force solver that fills accelerations for the integrator.
///
/// The one required method is [`ForceSolver::try_compute_into`], which
/// draws every transient buffer from a caller-owned [`SimWorkspace`] —
/// the zero-steady-state-allocation contract (see `DESIGN.md` § Memory
/// management). The convenience entry points (`compute`, `try_compute`,
/// `compute_into`) are provided on top; the workspace-less ones build a
/// throwaway arena per call, trading allocations for ergonomics.
pub trait ForceSolver: Send {
    fn kind(&self) -> SolverKind;
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Compute `accel[i] = a_i` for the given state, drawing scratch
    /// buffers from `ws` and surfacing structural failures (tree build
    /// errors) as [`ComputeError`] values so a wrapper (see
    /// [`crate::resilient::ResilientSolver`]) can retry or degrade.
    ///
    /// With `reuse_tree = true`, tree solvers skip the bounding-box, sort,
    /// build and multipole phases and traverse the *previous* step's tree
    /// (the Iwasawa et al. amortisation discussed in the paper's related
    /// work — an extra approximation, useful as an ablation).
    fn try_compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        reuse_tree: bool,
        ws: &mut SimWorkspace,
    ) -> Result<StepTimings, ComputeError>;

    /// Infallible [`ForceSolver::try_compute_into`]: panics on structural
    /// failure (the all-pairs baselines never fail).
    fn compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        reuse_tree: bool,
        ws: &mut SimWorkspace,
    ) -> StepTimings {
        match self.try_compute_into(state, accel, reuse_tree, ws) {
            Ok(t) => t,
            Err(e) => panic!("{} force computation failed: {e}", self.name()),
        }
    }

    /// [`ForceSolver::compute_into`] with a throwaway workspace
    /// (per-call allocations; prefer `compute_into` in steady-state loops).
    fn compute(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        reuse_tree: bool,
    ) -> StepTimings {
        self.compute_into(state, accel, reuse_tree, &mut SimWorkspace::new())
    }

    /// [`ForceSolver::try_compute_into`] with a throwaway workspace.
    fn try_compute(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        reuse_tree: bool,
    ) -> Result<StepTimings, ComputeError> {
        self.try_compute_into(state, accel, reuse_tree, &mut SimWorkspace::new())
    }

    /// Check the solver's internal acceleration structure against `state`
    /// (tree invariants: every body reachable, boxes nested, no stale
    /// locks). Solvers without internal structure trivially pass.
    fn validate(&self, _state: &SystemState) -> Result<(), ComputeError> {
        Ok(())
    }

    /// Arm a one-shot injected fault for the next `try_compute`. Returns
    /// `true` if this solver supports injecting `kind`; the all-pairs
    /// baselines (and faults handled at the state level, like NaN
    /// positions) return `false`.
    fn inject_fault(&mut self, _kind: FaultKind) -> bool {
        false
    }

    /// Advance one fused kick-drift-maintain-force-kick leapfrog step as
    /// barrier-free task-graph runs ([`crate::dag`]), if this solver
    /// supports it under its current configuration. `accel` must hold the
    /// accelerations at the current positions (the leapfrog invariant the
    /// integrator maintains); on success it holds the accelerations at
    /// the drifted positions and `state` has advanced by `dt`.
    ///
    /// Returns `None` when barrier-free stepping does not apply (the
    /// all-pairs baselines, sequential policies, or
    /// [`Stepping::Barrier`]), in which case the integrator runs the
    /// barrier path. The two paths are bitwise-equivalent per step; the
    /// `schedule_fuzz` integration suite pins that down.
    fn step_dag(
        &mut self,
        state: &mut SystemState,
        accel: &mut [Vec3],
        dt: f64,
        reuse_tree: bool,
        ws: &mut SimWorkspace,
    ) -> Option<Result<StepTimings, ComputeError>> {
        let _ = (state, accel, dt, reuse_tree, ws);
        None
    }

    /// Restrict a chained solver to fallback levels ≥ `min_level` for
    /// subsequent steps — the recovery ladder's "drop through the chain"
    /// rung ([`crate::guard`]); call with 0 to lift the restriction.
    /// Returns `true` if this solver has a chain to escalate; plain
    /// solvers return `false`.
    fn escalate_fallback(&mut self, _min_level: usize) -> bool {
        false
    }
}

/// Construct a solver for a runtime-selected policy.
pub fn make_solver(
    kind: SolverKind,
    policy: DynPolicy,
    params: SolverParams,
) -> Result<Box<dyn ForceSolver>, SolverError> {
    Ok(match (kind, policy) {
        (SolverKind::AllPairs, DynPolicy::Seq) => Box::new(AllPairsSolver { policy: Seq, params }),
        (SolverKind::AllPairs, DynPolicy::Par) => Box::new(AllPairsSolver { policy: Par, params }),
        (SolverKind::AllPairs, DynPolicy::ParUnseq) => {
            Box::new(AllPairsSolver { policy: ParUnseq, params })
        }
        (SolverKind::AllPairsCol, DynPolicy::Seq) => {
            Box::new(AllPairsColSolver::new(Seq, params))
        }
        (SolverKind::AllPairsCol, DynPolicy::Par) => {
            Box::new(AllPairsColSolver::new(Par, params))
        }
        (SolverKind::AllPairsCol, DynPolicy::ParUnseq) => {
            return Err(SolverError::RequiresForwardProgress(kind))
        }
        (SolverKind::Octree, DynPolicy::Seq) => Box::new(OctreeSolver::new(Seq, params)),
        (SolverKind::Octree, DynPolicy::Par) => Box::new(OctreeSolver::new(Par, params)),
        (SolverKind::Octree, DynPolicy::ParUnseq) => {
            return Err(SolverError::RequiresForwardProgress(kind))
        }
        (SolverKind::Bvh, DynPolicy::Seq) => Box::new(BvhSolver::new(Seq, params)),
        (SolverKind::Bvh, DynPolicy::Par) => Box::new(BvhSolver::new(Par, params)),
        (SolverKind::Bvh, DynPolicy::ParUnseq) => Box::new(BvhSolver::new(ParUnseq, params)),
        (SolverKind::AllPairsTiled, DynPolicy::Seq) => {
            Box::new(AllPairsTiledSolver { policy: Seq, params })
        }
        (SolverKind::AllPairsTiled, DynPolicy::Par) => {
            Box::new(AllPairsTiledSolver { policy: Par, params })
        }
        (SolverKind::AllPairsTiled, DynPolicy::ParUnseq) => {
            Box::new(AllPairsTiledSolver { policy: ParUnseq, params })
        }
    })
}

// ---------------------------------------------------------------------------
// All-Pairs (classical): parallel over bodies, no synchronization.
// ---------------------------------------------------------------------------

/// The classical brute-force baseline: each body sums over all others.
pub struct AllPairsSolver<P: ExecutionPolicy> {
    pub policy: P,
    pub params: SolverParams,
}

impl<P: ExecutionPolicy> ForceSolver for AllPairsSolver<P> {
    fn kind(&self) -> SolverKind {
        SolverKind::AllPairs
    }

    fn try_compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        _reuse: bool,
        _ws: &mut SimWorkspace,
    ) -> Result<StepTimings, ComputeError> {
        let mut t = StepTimings::default();
        let eps2 = self.params.softening * self.params.softening;
        let g = self.params.g;
        let pos = &state.positions;
        let mass = &state.masses;
        timed_counted(&mut t.force, &mut t.allocs.force, || {
            let out = SyncSlice::new(accel);
            for_each_index(self.policy, 0..pos.len(), |i| {
                let pi = pos[i];
                let mut a = Vec3::ZERO;
                for j in 0..pos.len() {
                    if j != i {
                        a += pair_accel(pos[j] - pi, mass[j], g, eps2);
                    }
                }
                unsafe { out.write(i, a) };
            });
        });
        Ok(t)
    }
}

// ---------------------------------------------------------------------------
// All-Pairs tiled: cache-blocked brute force (Nyland et al., GPU Gems 3).
// ---------------------------------------------------------------------------

/// Tile edge for the blocked all-pairs kernel: small enough that a j-tile
/// of positions+masses (32 B each) stays resident in L1 while a block of
/// i-rows streams over it.
const TILE: usize = 64;

/// Cache-blocked brute-force baseline: i-rows are processed in blocks, and
/// for each block the j-loop runs tile by tile so source data is reused
/// from cache TILE times — the CPU analogue of the shared-memory tiling of
/// Nyland et al.'s GPU kernel.
pub struct AllPairsTiledSolver<P: ExecutionPolicy> {
    pub policy: P,
    pub params: SolverParams,
}

impl<P: ExecutionPolicy> ForceSolver for AllPairsTiledSolver<P> {
    fn kind(&self) -> SolverKind {
        SolverKind::AllPairsTiled
    }

    fn try_compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        _reuse: bool,
        _ws: &mut SimWorkspace,
    ) -> Result<StepTimings, ComputeError> {
        let mut t = StepTimings::default();
        let n = state.len();
        let eps2 = self.params.softening * self.params.softening;
        let g = self.params.g;
        let pos = &state.positions;
        let mass = &state.masses;
        timed_counted(&mut t.force, &mut t.allocs.force, || {
            let out = SyncSlice::new(accel);
            for_each_chunk(self.policy, 0..n, TILE, |rows| {
                let mut local = [Vec3::ZERO; TILE];
                let rlen = rows.len();
                let mut j0 = 0;
                while j0 < n {
                    let j1 = (j0 + TILE).min(n);
                    for (li, i) in rows.clone().enumerate() {
                        let pi = pos[i];
                        let mut a = local[li];
                        for j in j0..j1 {
                            if j != i {
                                a += pair_accel(pos[j] - pi, mass[j], g, eps2);
                            }
                        }
                        local[li] = a;
                    }
                    j0 = j1;
                }
                for (li, i) in rows.enumerate() {
                    if li < rlen {
                        unsafe { out.write(i, local[li]) };
                    }
                }
            });
        });
        Ok(t)
    }
}

// ---------------------------------------------------------------------------
// All-Pairs-Col: parallel over unordered force pairs, exploiting Newton's
// third law with concurrent atomic accumulation (paper: par + fetch_add).
// ---------------------------------------------------------------------------

/// The collision-style baseline: one element per unordered pair `(i, j)`;
/// each pair's force is accumulated into *both* bodies with relaxed
/// `AtomicF64::fetch_add`. Atomics are vectorization-unsafe, hence the
/// [`ParallelForwardProgress`] bound.
pub struct AllPairsColSolver<P: ParallelForwardProgress> {
    policy: P,
    params: SolverParams,
    acc: [Vec<nbody_math::AtomicF64>; 3],
}

impl<P: ParallelForwardProgress> AllPairsColSolver<P> {
    pub fn new(policy: P, params: SolverParams) -> Self {
        AllPairsColSolver { policy, params, acc: [Vec::new(), Vec::new(), Vec::new()] }
    }
}

/// `k`-th unordered pair `(i, j)` with `0 ≤ j < i < n`, enumerating row by
/// row: pairs `T(i) .. T(i+1)` have first index `i`, `T(i) = i(i−1)/2`.
#[inline]
pub fn pair_of(k: usize) -> (usize, usize) {
    #[inline]
    fn tri(i: usize) -> usize {
        i * (i - 1) / 2
    }
    let mut i = ((1.0 + (1.0 + 8.0 * k as f64).sqrt()) * 0.5) as usize;
    while tri(i) > k {
        i -= 1;
    }
    while tri(i + 1) <= k {
        i += 1;
    }
    (i, k - tri(i))
}

impl<P: ParallelForwardProgress> ForceSolver for AllPairsColSolver<P> {
    fn kind(&self) -> SolverKind {
        SolverKind::AllPairsCol
    }

    fn try_compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        _reuse: bool,
        _ws: &mut SimWorkspace,
    ) -> Result<StepTimings, ComputeError> {
        let mut t = StepTimings::default();
        let n = state.len();
        let eps2 = self.params.softening * self.params.softening;
        let g = self.params.g;
        // Accumulator vectors are solver-owned and grow-only: steady-state
        // steps at constant (or shrinking) N reallocate nothing.
        for c in &mut self.acc {
            if c.len() < n {
                *c = atomic_f64_vec(n, 0.0);
            }
        }
        timed_counted(&mut t.force, &mut t.allocs.force, || {
            let acc = &self.acc;
            for_each_index(self.policy, 0..n, |i| {
                acc[0][i].store(0.0, Ordering::Relaxed);
                acc[1][i].store(0.0, Ordering::Relaxed);
                acc[2][i].store(0.0, Ordering::Relaxed);
            });
            let pos = &state.positions;
            let mass = &state.masses;
            let pairs = n * n.saturating_sub(1) / 2;
            for_each_index(self.policy, 0..pairs, |k| {
                let (i, j) = pair_of(k);
                let d = pos[j] - pos[i];
                let r2 = d.norm2() + eps2;
                if r2 > 0.0 {
                    let f = d * (g / (r2 * r2.sqrt()));
                    // a_i += m_j f;  a_j -= m_i f  (Newton's third law).
                    let (mi, mj) = (mass[i], mass[j]);
                    acc[0][i].fetch_add(mj * f.x, Ordering::Relaxed);
                    acc[1][i].fetch_add(mj * f.y, Ordering::Relaxed);
                    acc[2][i].fetch_add(mj * f.z, Ordering::Relaxed);
                    acc[0][j].fetch_add(-mi * f.x, Ordering::Relaxed);
                    acc[1][j].fetch_add(-mi * f.y, Ordering::Relaxed);
                    acc[2][j].fetch_add(-mi * f.z, Ordering::Relaxed);
                }
            });
            let out = SyncSlice::new(accel);
            for_each_index(self.policy, 0..n, |i| {
                let a = Vec3::new(
                    acc[0][i].load(Ordering::Relaxed),
                    acc[1][i].load(Ordering::Relaxed),
                    acc[2][i].load(Ordering::Relaxed),
                );
                unsafe { out.write(i, a) };
            });
        });
        Ok(t)
    }
}

// ---------------------------------------------------------------------------
// Concurrent Octree (paper §IV-A).
// ---------------------------------------------------------------------------

/// The Concurrent Octree strategy: Algorithm 2's five phases per step.
pub struct OctreeSolver<P: ParallelForwardProgress> {
    pub(crate) policy: P,
    pub(crate) params: SolverParams,
    pub(crate) tree: Octree,
    pub(crate) built: bool,
    /// Positions at the last tree refresh (incremental lifecycle): the
    /// reference of the per-step drift scan. Grow-only.
    pub(crate) ref_pos: Vec<Vec3>,
    /// Steps served from the stale tree since the last refresh.
    pub(crate) stale_steps: usize,
}

impl<P: ParallelForwardProgress> OctreeSolver<P> {
    pub fn new(policy: P, params: SolverParams) -> Self {
        let mut tree = Octree::new();
        tree.set_quadrupole(params.quadrupole);
        OctreeSolver { policy, params, tree, built: false, ref_pos: Vec::new(), stale_steps: 0 }
    }

    /// Access the tree (post-`compute` introspection for tests/benches).
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// Full (re)entry into the incremental lifecycle: from-scratch build on
    /// an inflated root cube, sequential DFS moments, free-list/caches init.
    fn init_incremental_tree(
        &mut self,
        state: &SystemState,
        t: &mut StepTimings,
    ) -> Result<(), ComputeError> {
        self.built = false;
        let bbox =
            timed_counted(&mut t.bbox, &mut t.allocs.bbox, || state.bounding_box(self.policy));
        let c = bbox.center();
        let he = bbox.extent() * (0.5 * INC_ROOT_INFLATE);
        let inflated = Aabb::new(c - he, c + he);
        let mut built = Ok(Default::default());
        timed_counted(&mut t.build, &mut t.allocs.build, || {
            built = self.tree.build(self.policy, &state.positions, inflated);
            if built.is_ok() {
                self.tree.init_incremental(&state.positions);
            }
        });
        let _stats: bh_octree::BuildStats = built.map_err(ComputeError::Build)?;
        timed_counted(&mut t.multipole, &mut t.allocs.multipole, || {
            // Sequential DFS moments, not the parallel bottom-up pass: the
            // incremental refresh recomputes dirty paths with the same DFS
            // combination order, so stored and recomputed moments stay
            // bitwise-consistent (the DetPar moment probes check exactly
            // that).
            self.tree.compute_multipoles_dfs(&state.positions, &state.masses);
        });
        self.built = true;
        self.ref_pos.clear();
        self.ref_pos.extend_from_slice(&state.positions);
        self.stale_steps = 0;
        Ok(())
    }

    /// One step of the incremental lifecycle: serve stale with a padded
    /// MAC, or delta-refresh the persistent tree (falling back to a full
    /// rebuild when the delta update reports it cannot apply).
    pub(crate) fn advance_incremental(
        &mut self,
        state: &SystemState,
        max_stale: usize,
        fp: &mut ForceParams,
        t: &mut StepTimings,
    ) -> Result<(), ComputeError> {
        let n = state.len();
        let ready = self.built
            && self.tree.incremental_ready()
            && self.tree.n_bodies() == n
            && self.ref_pos.len() == n;
        if !ready {
            return self.init_incremental_tree(state, t);
        }
        // Drift scan — the bounding-box phase's analogue, timed into its
        // slot: how far any body moved since the tree last refreshed.
        let pad = timed_counted(&mut t.bbox, &mut t.allocs.bbox, || {
            max_drift(&self.ref_pos, &state.positions)
        });
        if self.stale_steps < max_stale {
            self.stale_steps += 1;
            fp.mac_pad = pad;
            nbody_telemetry::record!(counter TREE_REUSE_STEPS, 1);
            return Ok(());
        }
        // Refresh: delta-update the structure, recompute dirty moments.
        let mut updated = Ok(Default::default());
        timed_counted(&mut t.build, &mut t.allocs.build, || {
            updated = self.tree.update_incremental(&state.positions);
        });
        match updated {
            Ok(_stats) => {
                timed_counted(&mut t.multipole, &mut t.allocs.multipole, || {
                    self.tree.refresh_moments_incremental(&state.positions, &state.masses);
                });
                self.ref_pos.clear();
                self.ref_pos.extend_from_slice(&state.positions);
                self.stale_steps = 0;
                Ok(())
            }
            Err(_fallback) => self.init_incremental_tree(state, t),
        }
    }
}

impl<P: ParallelForwardProgress> ForceSolver for OctreeSolver<P> {
    fn kind(&self) -> SolverKind {
        SolverKind::Octree
    }

    fn try_compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        reuse: bool,
        ws: &mut SimWorkspace,
    ) -> Result<StepTimings, ComputeError> {
        let mut t = StepTimings::default();
        let mut fp = self.params.force_params();
        match self.params.lifecycle {
            TreeLifecycle::Incremental { max_stale_steps } if !state.is_empty() => {
                self.advance_incremental(state, max_stale_steps as usize, &mut fp, &mut t)?;
            }
            _ => {
                let can_reuse = reuse && self.built && self.tree.n_bodies() == state.len();
                if !can_reuse {
                    self.built = false;
                    let bbox = timed_counted(&mut t.bbox, &mut t.allocs.bbox, || {
                        state.bounding_box(self.policy)
                    });
                    let mut built = Ok(Default::default());
                    timed_counted(&mut t.build, &mut t.allocs.build, || {
                        built = self.tree.build(self.policy, &state.positions, bbox);
                    });
                    let _stats: bh_octree::BuildStats = built.map_err(ComputeError::Build)?;
                    timed_counted(&mut t.multipole, &mut t.allocs.multipole, || {
                        self.tree.compute_multipoles(self.policy, &state.positions, &state.masses)
                    });
                    self.built = true;
                }
            }
        }
        timed_counted(&mut t.force, &mut t.allocs.force, || {
            // Paper: CALCULATEFORCE runs under par_unseq (independent,
            // lock-free elements); sequential solvers stay sequential.
            if P::IS_PARALLEL {
                self.tree.compute_forces_with(
                    ParUnseq,
                    &state.positions,
                    &state.masses,
                    accel,
                    &fp,
                    &mut ws.octree,
                );
            } else {
                self.tree.compute_forces_with(
                    Seq,
                    &state.positions,
                    &state.masses,
                    accel,
                    &fp,
                    &mut ws.octree,
                );
            }
        });
        Ok(t)
    }

    fn validate(&self, state: &SystemState) -> Result<(), ComputeError> {
        // An incrementally maintained tree recycles free-list groups, so
        // the stackless-DFS child ordering no longer holds; the relaxed
        // check enforces acyclicity by visited set instead.
        let res = if self.tree.incremental_ready() {
            bh_octree::TreeInvariants::check_relaxed(&self.tree, &state.positions)
        } else {
            bh_octree::TreeInvariants::check(&self.tree, &state.positions)
        };
        res.map(|_| ()).map_err(ComputeError::InvariantViolation)
    }

    fn step_dag(
        &mut self,
        state: &mut SystemState,
        accel: &mut [Vec3],
        dt: f64,
        reuse_tree: bool,
        ws: &mut SimWorkspace,
    ) -> Option<Result<StepTimings, ComputeError>> {
        crate::dag::octree_step_dag(self, state, accel, dt, reuse_tree, ws)
    }

    fn inject_fault(&mut self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::StuckLock => {
                self.tree.inject_stuck_lock();
                true
            }
            FaultKind::AllocExhaustion => {
                self.tree.inject_pool_exhaustion();
                true
            }
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Hilbert-sorted BVH (paper §IV-B).
// ---------------------------------------------------------------------------

/// The Hilbert-sorted BVH strategy: Algorithm 6's phases per step.
pub struct BvhSolver<P: ExecutionPolicy> {
    pub(crate) policy: P,
    pub(crate) params: SolverParams,
    pub(crate) bvh: Bvh,
    pub(crate) built: bool,
    /// Positions at the last tree refresh (incremental lifecycle). Grow-only.
    pub(crate) ref_pos: Vec<Vec3>,
    /// Steps served from the stale tree since the last refresh.
    pub(crate) stale_steps: usize,
}

impl<P: ExecutionPolicy> BvhSolver<P> {
    pub fn new(policy: P, params: SolverParams) -> Self {
        let bvh = Bvh::with_params(BvhParams {
            hilbert_bits: params.hilbert_bits,
            quadrupole: params.quadrupole,
            ..BvhParams::default()
        });
        BvhSolver { policy, params, bvh, built: false, ref_pos: Vec::new(), stale_steps: 0 }
    }

    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// Refresh the persistent BVH: lazy Hilbert re-sort against the
    /// previous permutation (full-sort fallback inside), then the
    /// structure and moment passes. Also the first-build path — the lazy
    /// re-sort degrades to a full sort when no previous sort is reusable.
    fn refresh_bvh(
        &mut self,
        state: &SystemState,
        t: &mut StepTimings,
        ws: &mut SimWorkspace,
    ) -> Result<(), ComputeError> {
        self.built = false;
        let bbox =
            timed_counted(&mut t.bbox, &mut t.allocs.bbox, || state.bounding_box(self.policy));
        let mut sorted = Ok(());
        timed_counted(&mut t.sort, &mut t.allocs.sort, || {
            sorted = self.bvh.try_hilbert_resort_with(
                self.policy,
                &state.positions,
                &state.masses,
                bbox,
                &mut ws.bvh,
            );
        });
        sorted.map_err(ComputeError::Build)?;
        let mut built = Ok(());
        timed_counted(&mut t.build, &mut t.allocs.build, || {
            built = self.bvh.try_build_structure(self.policy)
        });
        built.map_err(ComputeError::Build)?;
        timed_counted(&mut t.multipole, &mut t.allocs.multipole, || {
            self.bvh.accumulate_moments(self.policy)
        });
        self.built = true;
        self.ref_pos.clear();
        self.ref_pos.extend_from_slice(&state.positions);
        self.stale_steps = 0;
        Ok(())
    }
}

impl<P: ExecutionPolicy> ForceSolver for BvhSolver<P> {
    fn kind(&self) -> SolverKind {
        SolverKind::Bvh
    }

    fn try_compute_into(
        &mut self,
        state: &SystemState,
        accel: &mut [Vec3],
        reuse: bool,
        ws: &mut SimWorkspace,
    ) -> Result<StepTimings, ComputeError> {
        let mut t = StepTimings::default();
        let mut fp = self.params.force_params();
        let n = state.len();
        match self.params.lifecycle {
            TreeLifecycle::Incremental { max_stale_steps } if n > 0 => {
                let ready = self.built && self.bvh.n_bodies() == n && self.ref_pos.len() == n;
                if ready && self.stale_steps < max_stale_steps as usize {
                    // Serve from the stale tree with a drift-inflated MAC.
                    let pad = timed_counted(&mut t.bbox, &mut t.allocs.bbox, || {
                        max_drift(&self.ref_pos, &state.positions)
                    });
                    self.stale_steps += 1;
                    fp.mac_pad = pad;
                    nbody_telemetry::record!(counter TREE_REUSE_STEPS, 1);
                } else {
                    self.refresh_bvh(state, &mut t, ws)?;
                }
            }
            _ => {
                let can_reuse = reuse && self.built && self.bvh.n_bodies() == n;
                if !can_reuse {
                    self.built = false;
                    let bbox = timed_counted(&mut t.bbox, &mut t.allocs.bbox, || {
                        state.bounding_box(self.policy)
                    });
                    let mut sorted = Ok(());
                    timed_counted(&mut t.sort, &mut t.allocs.sort, || {
                        sorted = self.bvh.try_hilbert_sort_with(
                            self.policy,
                            &state.positions,
                            &state.masses,
                            bbox,
                            &mut ws.bvh,
                        );
                    });
                    sorted.map_err(ComputeError::Build)?;
                    let mut built = Ok(());
                    timed_counted(&mut t.build, &mut t.allocs.build, || {
                        built = self.bvh.try_build_structure(self.policy)
                    });
                    built.map_err(ComputeError::Build)?;
                    timed_counted(&mut t.multipole, &mut t.allocs.multipole, || {
                        self.bvh.accumulate_moments(self.policy)
                    });
                    self.built = true;
                }
            }
        }
        timed_counted(&mut t.force, &mut t.allocs.force, || {
            self.bvh.compute_forces_with(self.policy, &state.positions, accel, &fp, &mut ws.bvh);
        });
        Ok(t)
    }

    fn step_dag(
        &mut self,
        state: &mut SystemState,
        accel: &mut [Vec3],
        dt: f64,
        reuse_tree: bool,
        ws: &mut SimWorkspace,
    ) -> Option<Result<StepTimings, ComputeError>> {
        crate::dag::bvh_step_dag(self, state, accel, dt, reuse_tree, ws)
    }

    fn validate(&self, _state: &SystemState) -> Result<(), ComputeError> {
        bh_bvh::validate::BvhInvariants::check(&self.bvh)
            .map(|_| ())
            .map_err(ComputeError::InvariantViolation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::galaxy_collision;
    use nbody_math::gravity::direct_accel;

    fn compare_to_direct(kind: SolverKind, policy: DynPolicy, theta: f64, tol: f64) {
        let state = galaxy_collision(400, 11);
        let params = SolverParams { theta, softening: 1e-3, ..SolverParams::default() };
        let mut solver = make_solver(kind, policy, params).unwrap();
        let mut acc = vec![Vec3::ZERO; state.len()];
        solver.compute(&state, &mut acc, false);
        let mut mean = 0.0;
        for (i, &a) in acc.iter().enumerate() {
            let exact = direct_accel(
                state.positions[i],
                Some(i as u32),
                &state.positions,
                &state.masses,
                1.0,
                1e-3,
            );
            mean += (a - exact).norm() / (1e-12 + exact.norm());
        }
        mean /= state.len() as f64;
        assert!(mean < tol, "{} {:?}: mean rel err {mean}", kind.name(), policy);
    }

    #[test]
    fn all_pairs_is_exact() {
        compare_to_direct(SolverKind::AllPairs, DynPolicy::ParUnseq, 0.5, 1e-12);
        compare_to_direct(SolverKind::AllPairs, DynPolicy::Seq, 0.5, 1e-12);
    }

    #[test]
    fn tiled_all_pairs_matches_classic() {
        let state = galaxy_collision(777, 15);
        let params = SolverParams { softening: 1e-3, ..SolverParams::default() };
        let mut a = vec![Vec3::ZERO; state.len()];
        let mut b = vec![Vec3::ZERO; state.len()];
        make_solver(SolverKind::AllPairs, DynPolicy::ParUnseq, params)
            .unwrap()
            .compute(&state, &mut a, false);
        make_solver(SolverKind::AllPairsTiled, DynPolicy::ParUnseq, params)
            .unwrap()
            .compute(&state, &mut b, false);
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).norm() < 1e-12 * (1.0 + x.norm()));
        }
        // And under Seq + a non-multiple-of-TILE size.
        let mut c = vec![Vec3::ZERO; state.len()];
        make_solver(SolverKind::AllPairsTiled, DynPolicy::Seq, params)
            .unwrap()
            .compute(&state, &mut c, false);
        for (x, y) in b.iter().zip(&c) {
            assert!((*x - *y).norm() < 1e-12 * (1.0 + x.norm()));
        }
    }

    #[test]
    fn all_pairs_col_is_exact_up_to_reassociation() {
        compare_to_direct(SolverKind::AllPairsCol, DynPolicy::Par, 0.5, 1e-9);
        compare_to_direct(SolverKind::AllPairsCol, DynPolicy::Seq, 0.5, 1e-9);
    }

    #[test]
    fn octree_theta_half_is_accurate() {
        compare_to_direct(SolverKind::Octree, DynPolicy::Par, 0.5, 0.01);
        compare_to_direct(SolverKind::Octree, DynPolicy::Seq, 0.5, 0.01);
    }

    #[test]
    fn bvh_theta_half_is_accurate() {
        compare_to_direct(SolverKind::Bvh, DynPolicy::ParUnseq, 0.5, 0.01);
        compare_to_direct(SolverKind::Bvh, DynPolicy::Seq, 0.5, 0.01);
    }

    #[test]
    fn forward_progress_requirements_enforced_at_runtime() {
        assert_eq!(
            make_solver(SolverKind::Octree, DynPolicy::ParUnseq, SolverParams::default())
                .err()
                .unwrap(),
            SolverError::RequiresForwardProgress(SolverKind::Octree)
        );
        assert_eq!(
            make_solver(SolverKind::AllPairsCol, DynPolicy::ParUnseq, SolverParams::default())
                .err()
                .unwrap(),
            SolverError::RequiresForwardProgress(SolverKind::AllPairsCol)
        );
        // BVH runs everywhere (the paper's portability result).
        assert!(make_solver(SolverKind::Bvh, DynPolicy::ParUnseq, SolverParams::default()).is_ok());
    }

    #[test]
    fn empty_and_single_body_systems_never_panic() {
        // Degenerate systems through every solver kind and policy: no
        // bodies at all, then a single body (zero net force).
        use crate::system::SystemState;
        let empty = SystemState::new();
        let single =
            SystemState::from_parts(vec![Vec3::new(0.3, -0.2, 0.9)], vec![Vec3::ZERO], vec![2.5]);
        let kinds = [
            SolverKind::AllPairs,
            SolverKind::AllPairsCol,
            SolverKind::Octree,
            SolverKind::Bvh,
            SolverKind::AllPairsTiled,
        ];
        for kind in kinds {
            for policy in [DynPolicy::Seq, DynPolicy::Par, DynPolicy::ParUnseq] {
                let Ok(mut solver) = make_solver(kind, policy, SolverParams::default()) else {
                    continue; // forward-progress rejection, covered elsewhere
                };
                let mut none: Vec<Vec3> = vec![];
                solver.compute(&empty, &mut none, false);
                let mut one = vec![Vec3::splat(99.0)];
                solver.compute(&single, &mut one, false);
                assert_eq!(one[0], Vec3::ZERO, "{} {:?}", kind.name(), policy);
            }
        }
    }

    #[test]
    fn try_compute_surfaces_octree_build_errors() {
        let state = galaxy_collision(100, 16);
        let mut solver = OctreeSolver::new(Par, SolverParams::default());
        assert!(solver.inject_fault(nbody_resilience::FaultKind::AllocExhaustion));
        let mut acc = vec![Vec3::ZERO; state.len()];
        let err = solver.try_compute(&state, &mut acc, false).unwrap_err();
        assert!(
            matches!(
                err,
                crate::resilient::ComputeError::Build(
                    nbody_resilience::BuildError::PoolExhausted { .. }
                )
            ),
            "{err:?}"
        );
        // The failure is transient: the next call succeeds and validates.
        solver.try_compute(&state, &mut acc, false).unwrap();
        solver.validate(&state).unwrap();
    }

    #[test]
    fn pair_of_enumerates_all_pairs_exactly_once() {
        let n = 50usize;
        let mut seen = std::collections::HashSet::new();
        for k in 0..n * (n - 1) / 2 {
            let (i, j) = pair_of(k);
            assert!(j < i && i < n, "k={k} -> ({i},{j})");
            assert!(seen.insert((i, j)), "duplicate pair ({i},{j})");
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn solvers_agree_with_each_other() {
        let state = galaxy_collision(600, 12);
        let params = SolverParams { theta: 0.3, softening: 1e-3, ..SolverParams::default() };
        let mut reference = vec![Vec3::ZERO; state.len()];
        make_solver(SolverKind::AllPairs, DynPolicy::Par, params)
            .unwrap()
            .compute(&state, &mut reference, false);
        for kind in [SolverKind::AllPairsCol, SolverKind::Octree, SolverKind::Bvh] {
            let mut acc = vec![Vec3::ZERO; state.len()];
            make_solver(kind, DynPolicy::Par, params).unwrap().compute(&state, &mut acc, false);
            let mut mean = 0.0;
            for i in 0..state.len() {
                mean += (acc[i] - reference[i]).norm() / (1e-12 + reference[i].norm());
            }
            mean /= state.len() as f64;
            assert!(mean < 5e-3, "{}: {mean}", kind.name());
        }
    }

    #[test]
    fn tree_reuse_skips_build_phases() {
        let state = galaxy_collision(500, 13);
        let mut solver =
            make_solver(SolverKind::Octree, DynPolicy::Par, SolverParams::default()).unwrap();
        let mut acc = vec![Vec3::ZERO; state.len()];
        let t0 = solver.compute(&state, &mut acc, false);
        assert!(t0.build.as_nanos() > 0);
        let t1 = solver.compute(&state, &mut acc, true);
        assert_eq!(t1.build.as_nanos(), 0);
        assert_eq!(t1.multipole.as_nanos(), 0);
        assert!(t1.force.as_nanos() > 0);
        // Same positions → identical forces from the reused tree.
        let mut acc2 = vec![Vec3::ZERO; state.len()];
        solver.compute(&state, &mut acc2, true);
        assert_eq!(acc, acc2);
    }

    #[test]
    fn incremental_lifecycle_serves_stale_then_refreshes() {
        // State machine cadence for Incremental{2}: init, two stale serves
        // (no build/multipole time), then a delta refresh (build time, no
        // full re-init), repeating.
        let mut state = galaxy_collision(400, 22);
        let params = SolverParams {
            lifecycle: TreeLifecycle::Incremental { max_stale_steps: 2 },
            softening: 1e-3,
            ..SolverParams::default()
        };
        for kind in [SolverKind::Octree, SolverKind::Bvh] {
            let mut solver = make_solver(kind, DynPolicy::Par, params).unwrap();
            let mut acc = vec![Vec3::ZERO; state.len()];
            let t0 = solver.compute(&state, &mut acc, false);
            assert!(t0.build.as_nanos() > 0, "{}: init must build", kind.name());
            assert!(t0.multipole.as_nanos() > 0, "{}: init must compute moments", kind.name());
            for step in 0..2 {
                // Drift slightly so the stale steps are non-trivial.
                for p in &mut state.positions {
                    *p += Vec3::splat(1e-5);
                }
                let t = solver.compute(&state, &mut acc, false);
                assert_eq!(t.build.as_nanos(), 0, "{} step {step}: stale serve", kind.name());
                assert_eq!(t.multipole.as_nanos(), 0, "{} step {step}", kind.name());
            }
            for p in &mut state.positions {
                *p += Vec3::splat(1e-5);
            }
            let t = solver.compute(&state, &mut acc, false);
            assert!(t.build.as_nanos() > 0, "{}: refresh must update structure", kind.name());
            assert!(t.multipole.as_nanos() > 0, "{}: refresh must update moments", kind.name());
            solver.validate(&state).unwrap();
        }
    }

    #[test]
    fn incremental_lifecycle_is_as_accurate_as_rebuild() {
        // Fresh incremental trees (different root volume for the octree,
        // identical pipeline for the BVH) must stay within the same error
        // budget against the exact direct sum as the rebuild trees.
        let state = galaxy_collision(400, 23);
        let params = SolverParams {
            theta: 0.5,
            softening: 1e-3,
            lifecycle: TreeLifecycle::Incremental { max_stale_steps: 0 },
            ..SolverParams::default()
        };
        for kind in [SolverKind::Octree, SolverKind::Bvh] {
            let mut solver = make_solver(kind, DynPolicy::Par, params).unwrap();
            let mut acc = vec![Vec3::ZERO; state.len()];
            solver.compute(&state, &mut acc, false);
            let mut mean = 0.0;
            for (i, &a) in acc.iter().enumerate() {
                let exact = direct_accel(
                    state.positions[i],
                    Some(i as u32),
                    &state.positions,
                    &state.masses,
                    1.0,
                    1e-3,
                );
                mean += (a - exact).norm() / (1e-12 + exact.norm());
            }
            mean /= state.len() as f64;
            assert!(mean < 0.01, "{}: mean rel err {mean}", kind.name());
        }
    }

    #[test]
    fn timings_are_populated_per_kind() {
        let state = galaxy_collision(300, 14);
        let mut acc = vec![Vec3::ZERO; state.len()];
        let t = make_solver(SolverKind::Bvh, DynPolicy::Par, SolverParams::default())
            .unwrap()
            .compute(&state, &mut acc, false);
        assert!(t.sort.as_nanos() > 0, "BVH must time the Hilbert sort");
        assert!(t.build.as_nanos() > 0);
        assert!(t.multipole.as_nanos() > 0, "BVH must time moment accumulation separately");
        let t = make_solver(SolverKind::Octree, DynPolicy::Par, SolverParams::default())
            .unwrap()
            .compute(&state, &mut acc, false);
        assert_eq!(t.sort.as_nanos(), 0, "octree has no sort phase");
        assert!(t.multipole.as_nanos() > 0);
    }
}
