//! Generic Barnes-Hut traversal on the BVH (visitor API) — the BVH
//! counterpart of `bh_octree::traverse`, using the skip-list stackless
//! walk and the box-distance acceptance criterion.

use crate::build::Bvh;
use nbody_math::{Aabb, Vec3};

/// A far node accepted by the acceptance criterion.
#[derive(Clone, Copy, Debug)]
pub struct NodeView {
    pub index: usize,
    /// Total mass/weight of the subtree (unit masses ⇒ body count).
    pub mass: f64,
    pub com: Vec3,
    /// Node bounding box.
    pub bounds: Aabb,
}

impl Bvh {
    /// Stackless skip-list traversal from `p`: far nodes (box diagonal `s`,
    /// distance-to-box `d`, `s/d < theta`) go to `far`; individual bodies
    /// (original ids) go to `near`.
    pub fn traverse(&self, p: Vec3, theta: f64, mut far: impl FnMut(NodeView), mut near: impl FnMut(u32)) {
        if self.n_bodies() == 0 {
            return;
        }
        let theta2 = theta * theta;
        let mut i: usize = 1;
        loop {
            let m = self.mass[i];
            let mut descend = false;
            if m > 0.0 {
                if self.is_leaf(i) {
                    let j = i - self.leaves;
                    near(self.perm[j]);
                } else {
                    let d2 = self.boxes[i].distance2_to_point(p);
                    let s2 = self.boxes[i].extent().norm2();
                    if s2 < theta2 * d2 {
                        far(NodeView { index: i, mass: m, com: self.com[i], bounds: self.boxes[i] });
                    } else {
                        i *= 2;
                        descend = true;
                    }
                }
            }
            if descend {
                continue;
            }
            loop {
                if i == 1 {
                    return;
                }
                if i & 1 == 0 {
                    i += 1;
                    break;
                }
                i >>= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;
    use std::cell::Cell;
    use stdpar::prelude::*;

    fn build(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>, Bvh) {
        let mut r = SplitMix64::new(seed);
        let pos: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass: Vec<f64> = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &pos, &mass, Aabb::from_points(&pos));
        b.build_and_accumulate(ParUnseq);
        (pos, mass, b)
    }

    #[test]
    fn theta_zero_visits_every_body_exactly_once() {
        let (pos, _, b) = build(300, 131);
        let mut seen = vec![0u32; pos.len()];
        b.traverse(Vec3::ZERO, 0.0, |_| panic!("θ=0 must never approximate"), |id| {
            seen[id as usize] += 1
        });
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn mass_is_fully_accounted() {
        let (pos, mass, b) = build(700, 132);
        let total: f64 = mass.iter().sum();
        let seen = Cell::new(0.0f64);
        b.traverse(
            pos[0],
            0.7,
            |node| seen.set(seen.get() + node.mass),
            |id| seen.set(seen.get() + mass[id as usize]),
        );
        assert!((seen.get() - total).abs() < 1e-9 * total);
    }

    #[test]
    fn gravity_via_visitor_matches_builtin() {
        let (pos, mass, b) = build(500, 133);
        let params = nbody_math::ForceParams { theta: 0.6, ..Default::default() };
        let sorted_mass: Vec<f64> = b.permutation().iter().map(|&i| mass[i as usize]).collect();
        let _ = sorted_mass;
        for probe in (0..pos.len()).step_by(41) {
            let builtin = b.accel_at(pos[probe], Some(probe as u32), &params);
            let acc = Cell::new(Vec3::ZERO);
            b.traverse(
                pos[probe],
                0.6,
                |node| {
                    acc.set(
                        acc.get()
                            + nbody_math::gravity::pair_accel(node.com - pos[probe], node.mass, 1.0, 0.0),
                    )
                },
                |id| {
                    if id != probe as u32 {
                        acc.set(
                            acc.get()
                                + nbody_math::gravity::pair_accel(
                                    pos[id as usize] - pos[probe],
                                    mass[id as usize],
                                    1.0,
                                    0.0,
                                ),
                        );
                    }
                },
            );
            assert!(
                (acc.get() - builtin).norm() < 1e-12 * (1.0 + builtin.norm()),
                "probe {probe}"
            );
        }
    }
}
