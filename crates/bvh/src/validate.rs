//! Structural validation of the BVH (test and debugging support).

use crate::build::Bvh;

/// Summary of a successful BVH invariant check.
#[derive(Clone, Copy, Debug, Default)]
pub struct BvhInvariants {
    pub bodies: usize,
    pub levels: u32,
    /// Mean leaf-pair box overlap ratio at the first aggregation level —
    /// diagnostic for the Hilbert sort quality (lower = tighter boxes).
    pub level1_mean_diagonal: f64,
}

impl BvhInvariants {
    /// Verify the heap-structure invariants:
    /// 1. parent boxes contain child boxes;
    /// 2. parent mass equals the sum of child masses;
    /// 3. parent COM is the mass-weighted child COM;
    /// 4. every body appears in exactly one leaf;
    /// 5. a θ=0 traversal visits every non-empty leaf exactly once.
    pub fn check(bvh: &Bvh) -> Result<BvhInvariants, String> {
        let n = bvh.n_bodies();
        if n == 0 {
            return Ok(BvhInvariants::default());
        }
        let leaves = bvh.leaf_count();
        // 1–3: node consistency.
        for i in 1..leaves {
            let (l, r) = (2 * i, 2 * i + 1);
            if !bvh.node_box(i).contains_box(bvh.node_box(l))
                || !bvh.node_box(i).contains_box(bvh.node_box(r))
            {
                return Err(format!("node {i} box does not contain its children"));
            }
            let m = bvh.node_mass(l) + bvh.node_mass(r);
            if (bvh.node_mass(i) - m).abs() > 1e-9 * m.max(1.0) {
                return Err(format!("node {i} mass {} != children {m}", bvh.node_mass(i)));
            }
            if m > 0.0 {
                let c = (bvh.node_com(l) * bvh.node_mass(l) + bvh.node_com(r) * bvh.node_mass(r)) / m;
                if (bvh.node_com(i) - c).norm() > 1e-9 * (1.0 + c.norm()) {
                    return Err(format!("node {i} com mismatch"));
                }
            }
        }
        // 4: leaf coverage.
        let mut seen = vec![false; n];
        for i in leaves..2 * leaves {
            if let Some(b) = bvh.leaf_body(i) {
                let b = b as usize;
                if b >= n {
                    return Err(format!("leaf {i} holds out-of-range body {b}"));
                }
                if seen[b] {
                    return Err(format!("body {b} in two leaves"));
                }
                seen[b] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err("not all bodies are in leaves".into());
        }
        // 5: θ=0 stackless traversal coverage.
        let mut visited = 0usize;
        let mut i = 1usize;
        loop {
            let mut descend = false;
            if bvh.node_mass(i) > 0.0 {
                if bvh.is_leaf(i) {
                    visited += 1;
                } else {
                    i *= 2;
                    descend = true;
                }
            }
            if !descend {
                loop {
                    if i == 1 {
                        // done
                        if visited != count_nonempty_leaves(bvh) {
                            return Err(format!(
                                "traversal visited {visited} leaves, expected {}",
                                count_nonempty_leaves(bvh)
                            ));
                        }
                        let d1 = level1_mean_diagonal(bvh);
                        return Ok(BvhInvariants {
                            bodies: n,
                            levels: bvh.levels(),
                            level1_mean_diagonal: d1,
                        });
                    }
                    if i & 1 == 0 {
                        i += 1;
                        break;
                    }
                    i >>= 1;
                }
            }
        }
    }
}

fn count_nonempty_leaves(bvh: &Bvh) -> usize {
    let leaves = bvh.leaf_count();
    (leaves..2 * leaves).filter(|&i| bvh.node_mass(i) > 0.0).count()
}

fn level1_mean_diagonal(bvh: &Bvh) -> f64 {
    let leaves = bvh.leaf_count();
    if leaves < 2 {
        return 0.0;
    }
    let lo = leaves / 2;
    let hi = leaves;
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for i in lo..hi {
        let b = bvh.node_box(i);
        if !b.is_empty() {
            sum += b.diagonal();
            cnt += 1;
        }
    }
    if cnt == 0 {
        0.0
    } else {
        sum / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::{Aabb, SplitMix64, Vec3};
    use stdpar::prelude::*;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.1, 3.0)).collect();
        (pos, mass)
    }

    #[test]
    fn invariants_hold_for_random_builds() {
        for seed in 90..95 {
            let n = 100 + (seed as usize * 137) % 2000;
            let (pos, mass) = random_system(n, seed);
            let mut b = Bvh::new();
            b.hilbert_sort(ParUnseq, &pos, &mass, Aabb::from_points(&pos));
            b.build_and_accumulate(ParUnseq);
            let inv = BvhInvariants::check(&b).unwrap();
            assert_eq!(inv.bodies, n);
        }
    }

    #[test]
    fn hilbert_sort_shrinks_level1_boxes() {
        // Compare Hilbert-sorted BVH against an identity-"sorted" one:
        // the sorted version must produce much tighter first-level boxes.
        let (pos, mass) = random_system(8192, 96);
        let bounds = Aabb::from_points(&pos);

        let mut sorted = Bvh::new();
        sorted.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        sorted.build_and_accumulate(ParUnseq);
        let d_sorted = BvhInvariants::check(&sorted).unwrap().level1_mean_diagonal;

        // Unsorted baseline: 1-bit grid keys collapse almost everything
        // into equal keys, so the index tie-break keeps original order.
        let mut unsorted = Bvh::with_params(crate::BvhParams { hilbert_bits: 1, ..Default::default() });
        unsorted.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        unsorted.build_and_accumulate(ParUnseq);
        let d_unsorted = BvhInvariants::check(&unsorted).unwrap().level1_mean_diagonal;

        assert!(
            d_sorted < d_unsorted * 0.2,
            "sorted diag {d_sorted} vs unsorted {d_unsorted}"
        );
    }

    #[test]
    fn empty_tree_checks_out() {
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &[], &[], Aabb::EMPTY);
        b.build_and_accumulate(ParUnseq);
        let inv = BvhInvariants::check(&b).unwrap();
        assert_eq!(inv.bodies, 0);
    }
}
