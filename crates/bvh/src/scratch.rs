//! Reusable scratch buffers for the BVH pipeline.
//!
//! Every transient buffer a steady-state BVH step needs lives here: the
//! `(hilbert, index)` pair buffer the sort keys are built in, the parallel
//! merge sort's ping-pong scratch, and the per-worker interaction-list pool
//! of the blocked traversal. Threading one [`BvhScratch`] through
//! [`crate::Bvh::try_hilbert_sort_with`] and
//! [`crate::Bvh::compute_forces_with`] makes the whole
//! sort → build → force cycle allocation-free after warm-up; the tree's own
//! node storage (`boxes`, `diag2`, moments) is already grow-only.
//!
//! The plain entry points (`try_hilbert_sort`, `compute_forces`) construct
//! a throwaway scratch per call — same results, per-call allocations —
//! so existing callers are unaffected.

use stdpar::sort::SortScratch;

/// Scratch arena for one BVH pipeline. Construction is allocation-free;
/// buffers grow on first use and are retained across steps.
#[derive(Default)]
pub struct BvhScratch {
    /// `(key, original index)` pairs for HILBERTSORT.
    pub(crate) pairs: Vec<(u64, u32)>,
    /// Merge-sort ping-pong buffer and run lists.
    pub(crate) sort: SortScratch<(u64, u32)>,
    /// Second pair buffer: ping-pong storage for the lazy re-sort's
    /// natural merge ([`crate::Bvh::try_hilbert_resort_with`]).
    pub(crate) pairs2: Vec<(u64, u32)>,
    /// Ascending-run boundaries `(start, end)` found by the lazy re-sort,
    /// and the merged run list of the next natural-merge round.
    pub(crate) runs: Vec<(u32, u32)>,
    pub(crate) runs2: Vec<(u32, u32)>,
    /// Per-worker interaction lists for the blocked traversal.
    pub(crate) lists: nbody_math::ListsPool,
}

impl BvhScratch {
    pub fn new() -> Self {
        Self::default()
    }
}
