//! # bh-bvh — the Hilbert-sorted BVH strategy (paper §IV-B)
//!
//! A *balanced* binary bounding-volume hierarchy over bodies sorted along a
//! Hilbert space-filling curve. Unlike the concurrent octree, every phase
//! needs only **weakly parallel forward progress**: no locks, no spinning,
//! no inter-element waiting — all algorithms run under `par_unseq` and would
//! run on GPUs without Independent Thread Scheduling. The approach follows
//! Alpay's Teralens / SpatialCL lineage cited by the paper.
//!
//! Phases (paper Algorithm 6):
//!
//! 1. **HILBERTSORT** — bodies are binned in the coarsest equidistant
//!    Cartesian grid holding them all; each body's grid cell is mapped to a
//!    Hilbert index with Skilling's algorithm; `(key, index)` pairs are
//!    sorted with `std::sort(par, …)` and applied as a permutation (the
//!    paper's §V-A fallback for toolchains without `views::zip`).
//! 2. **BUILDTREE + ACCUMULATEMASS** — the BVH is a complete binary tree in
//!    implicit heap layout (node `i` has children `2i`, `2i+1`; leaves are
//!    `leaves..2·leaves`). Leaves take one body each (in Hilbert order);
//!    each coarser level is produced by one `par_unseq` pass that unions
//!    child boxes and reduces child moments — writes are disjoint, no
//!    atomics needed.
//! 3. **CALCULATEFORCE** — the same stackless DFS as the octree, but the
//!    skip-list nature of the complete tree lets a backward step jump
//!    across multiple levels at once (`while i is a right child: i ← i/2`).
//!    The acceptance criterion uses the node **box diagonal** since BVH
//!    boxes may be elongated and overlap — the θ interpretation therefore
//!    differs from the octree, exactly as §IV-B.3 discusses.
//!
//! ```
//! use bh_bvh::Bvh;
//! use nbody_math::{Aabb, ForceParams, Vec3};
//! use stdpar::prelude::*;
//!
//! let pos = vec![Vec3::new(0.1, 0.2, 0.3), Vec3::new(0.8, 0.1, 0.9)];
//! let mass = vec![1.0, 2.0];
//! let mut bvh = Bvh::new();
//! bvh.hilbert_sort(ParUnseq, &pos, &mass, Aabb::from_points(&pos));
//! bvh.build_and_accumulate(ParUnseq);
//! let mut acc = vec![Vec3::ZERO; 2];
//! bvh.compute_forces(ParUnseq, &pos, &mut acc, &ForceParams::default());
//! assert!(acc[0].x > 0.0 && acc[1].x < 0.0);
//! ```

pub mod blocked;
pub mod build;
pub mod force;
pub mod query;
pub mod scratch;
pub mod sort;
pub mod tasks;
pub mod traverse;
pub mod validate;

pub use build::{Bvh, BvhParams, Curve};
pub use scratch::BvhScratch;
pub use tasks::{ForceTasks, RebuildPhase, RebuildTasks};
pub use nbody_math::gravity::ForceParams;
pub use nbody_resilience::BuildError;
