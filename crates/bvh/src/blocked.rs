//! Blocked CALCULATEFORCE for the BVH: one traversal per body *group*.
//!
//! Hilbert sorting already places spatially adjacent bodies in adjacent
//! leaves, so a contiguous run of `G` sorted bodies occupies a small box.
//! Instead of walking the tree once per body, the blocked path walks it
//! once per run, testing the acceptance criterion against the run's AABB
//! with the conservative box-to-box distance
//! [`Aabb::distance2_to_box`]: a node accepted for the whole group box is
//! accepted for every member (each member's distance to the node box is at
//! least the box-to-box distance), so the shared interaction lists are a
//! valid — only slightly larger — source set for every member. Opened
//! leaves and accepted multipoles land in flat SoA [`InteractionLists`]
//! and every member is evaluated with tight branch-free loops
//! ([`InteractionLists::eval_at`]), amortising the traversal over `G`
//! bodies and giving the compiler all-pairs-style inner loops to
//! vectorize (Tokuue & Ishiyama's interaction-list batching).
//!
//! Groups are fixed, contiguous chunks of the sorted order, so the work
//! decomposition is identical across execution policies and backends and
//! the results are bitwise reproducible. Each group owns disjoint output
//! slots and its own scratch lists — no locks, no waiting — so the path
//! is valid under `par_unseq` like the rest of the BVH pipeline.

use crate::build::Bvh;
use nbody_math::gravity::{ForceKernel, ForceParams};
use nbody_math::simd::simd_level;
use nbody_math::{Aabb, InteractionLists, KernelStats, ListsPool, Vec3};
use nbody_telemetry::{metrics, record, MacCounts};
use stdpar::backend::max_workers;
use stdpar::prelude::*;

impl Bvh {
    /// Default blocked group size: the measured optimum for the BVH's tight
    /// Hilbert-run boxes (group = 32 → 4.11x over per-body at N = 1e5,
    /// θ = 0.5; see `BENCH_blocked.json`). Resolved from the
    /// `ForceEval::Blocked { group: 0 }` auto sentinel by
    /// [`nbody_math::gravity::ForceEval::resolve_group`].
    pub const DEFAULT_BLOCK_GROUP: usize = 32;

    /// Blocked force evaluation: one traversal per contiguous group of
    /// `group` Hilbert-sorted bodies. Called from
    /// [`Bvh::compute_forces`] when `params.eval` selects
    /// [`nbody_math::gravity::ForceEval::Blocked`]; output is indexed in
    /// *original* body order like the per-body path.
    ///
    /// `pool` supplies the per-worker interaction lists: each group clears
    /// and refills its worker's slot, so no allocation happens once the
    /// lists have warmed up. `UnsafeCell` slots instead of locks keep the
    /// path valid under `par_unseq` (weakly parallel forward progress).
    pub(crate) fn compute_forces_blocked<P: ExecutionPolicy>(
        &self,
        policy: P,
        accel: &mut [Vec3],
        params: &ForceParams,
        group: usize,
        pool: &mut ListsPool,
    ) {
        let n = self.n_bodies();
        pool.prepare(max_workers(), params.use_quadrupole);
        let pool = &*pool;
        let out = SyncSlice::new(accel);
        let this = self;
        let theta2 = params.theta * params.theta;
        let eps2 = params.softening * params.softening;
        if params.kernel == ForceKernel::Simd {
            record!(gauge SIMD_DISPATCH_LEVEL, simd_level() as u64);
        }
        for_each_chunk_worker(policy, 0..n, group, |w, r| {
            let mut gbox = Aabb::EMPTY;
            for j in r.clone() {
                gbox.expand(this.sorted_pos[j]);
            }
            // SAFETY: `w` is the executor's worker index — never observed
            // concurrently by two threads — and the pool was prepared for
            // `max_workers()` workers above.
            let state = unsafe { pool.slot(w) };
            let lists: &mut InteractionLists = &mut state.lists;
            lists.clear();
            let mut mac = MacCounts::default();
            this.gather_group(gbox, theta2, params.mac_pad, params.use_quadrupole, lists, &mut mac);
            // One flush and two histogram samples per *group*, amortised
            // over every member body.
            mac.flush(&metrics::BVH_MAC_ACCEPTS, &metrics::BVH_MAC_OPENS);
            record!(hist BVH_LIST_BODIES, lists.n_bodies() as u64);
            record!(hist BVH_LIST_NODES, lists.n_nodes() as u64);
            match params.kernel {
                ForceKernel::Scalar => {
                    for j in r {
                        let a = lists.eval_at(this.sorted_pos[j], params.g, eps2);
                        // Disjoint slots: perm is a permutation and groups
                        // partition it.
                        unsafe { out.write(this.perm[j] as usize, a) };
                    }
                }
                ForceKernel::Simd => {
                    let scratch = &mut state.scratch;
                    scratch.clear_targets();
                    for j in r.clone() {
                        scratch.push_target(this.sorted_pos[j]);
                    }
                    let mut ks = KernelStats::default();
                    lists.eval_group(scratch, params.g, eps2, params.precision, &mut ks);
                    record!(counter SIMD_GROUPS, ks.groups);
                    record!(counter SIMD_TILES, ks.tiles);
                    record!(counter SIMD_LANE_SLOTS, ks.lane_slots);
                    record!(counter SIMD_ACTIVE_LANES, ks.active_lanes);
                    for (t, j) in r.enumerate() {
                        unsafe { out.write(this.perm[j] as usize, scratch.accel(t)) };
                    }
                }
            }
        });
    }

    /// Stackless skip-list walk collecting the interaction lists of one
    /// group box. Same DFS as [`Bvh::accel_at`], with the point-to-box
    /// distance replaced by the conservative box-to-box distance.
    /// `pub(crate)`: the task-graph force tiles ([`crate::tasks`]) run the
    /// same walk.
    pub(crate) fn gather_group(
        &self,
        gbox: Aabb,
        theta2: f64,
        pad: f64,
        want_quad: bool,
        lists: &mut InteractionLists,
        mac: &mut MacCounts,
    ) {
        if self.n_bodies() == 0 {
            return;
        }
        let quad = if want_quad { self.quad.as_deref() } else { None };
        let mut i: usize = 1; // root
        loop {
            let m = self.mass[i];
            let mut descend = false;
            if m > 0.0 {
                if self.is_leaf(i) {
                    // Group members meet themselves here; the evaluation
                    // kernel's zero-distance guard makes self terms vanish,
                    // matching the per-body path's explicit exclusion.
                    let j = i - self.leaves;
                    lists.push_body(self.sorted_pos[j], self.sorted_mass[j]);
                } else {
                    let d2 = self.boxes[i].distance2_to_box(gbox);
                    if nbody_math::mac_accepts(self.diag2[i], d2, theta2, pad) {
                        mac.accepts += 1;
                        lists.push_node(self.com[i], m, quad.map(|q| q[i]));
                    } else {
                        mac.opens += 1;
                        i *= 2; // forward step: descend into the left child
                        descend = true;
                    }
                }
            }
            if descend {
                continue;
            }
            // Backward step: skip-list jump to the next DFS node.
            loop {
                if i == 1 {
                    return;
                }
                if i & 1 == 0 {
                    i += 1; // right sibling
                    break;
                }
                i >>= 1; // climb (possibly several times: the multi-level jump)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::gravity::{direct_accel, ForceEval};
    use nbody_math::SplitMix64;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        (pos, mass)
    }

    fn built(pos: &[Vec3], mass: &[f64], quad: bool) -> Bvh {
        let mut b = Bvh::with_params(crate::BvhParams { quadrupole: quad, ..Default::default() });
        b.hilbert_sort(ParUnseq, pos, mass, Aabb::from_points(pos));
        b.build_and_accumulate(ParUnseq);
        b
    }

    fn forces(b: &Bvh, pos: &[Vec3], params: &ForceParams) -> Vec<Vec3> {
        let mut acc = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(ParUnseq, pos, &mut acc, params);
        acc
    }

    #[test]
    fn theta_zero_blocked_matches_direct_sum() {
        let (pos, mass) = random_system(257, 91);
        let b = built(&pos, &mass, false);
        let params =
            ForceParams { theta: 0.0, eval: ForceEval::blocked(), ..ForceParams::default() };
        let acc = forces(&b, &pos, &params);
        for (i, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[i], Some(i as u32), &pos, &mass, 1.0, 0.0);
            assert!(
                (a - exact).norm() <= 1e-10 * (1.0 + exact.norm()),
                "body {i}: {a:?} vs {exact:?}"
            );
        }
    }

    #[test]
    fn blocked_error_within_per_body_budget() {
        let (pos, mass) = random_system(1000, 92);
        let b = built(&pos, &mass, false);
        let per_body = ForceParams { theta: 0.5, ..ForceParams::default() };
        let blocked = ForceParams { eval: ForceEval::blocked(), ..per_body };
        let (ap, ab) = (forces(&b, &pos, &per_body), forces(&b, &pos, &blocked));
        let (mut mp, mut mb) = (0.0f64, 0.0f64);
        for i in 0..pos.len() {
            let exact = direct_accel(pos[i], Some(i as u32), &pos, &mass, 1.0, 0.0);
            let d = 1e-12 + exact.norm();
            mp += (ap[i] - exact).norm() / d;
            mb += (ab[i] - exact).norm() / d;
        }
        mp /= pos.len() as f64;
        mb /= pos.len() as f64;
        // The group MAC is strictly more conservative than the per-body MAC
        // (box distance ≤ member distance), so the blocked answer must not
        // be less accurate.
        assert!(mb <= mp + 1e-12, "blocked mean rel err {mb} vs per-body {mp}");
        assert!(mb < 0.01, "blocked mean rel err {mb}");
    }

    #[test]
    fn blocked_quadrupole_matches_budget() {
        let (pos, mass) = random_system(600, 93);
        let b = built(&pos, &mass, true);
        let params = ForceParams {
            theta: 0.9,
            use_quadrupole: true,
            eval: ForceEval::blocked(),
            ..ForceParams::default()
        };
        let acc = forces(&b, &pos, &params);
        let mut mean = 0.0;
        for (i, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[i], Some(i as u32), &pos, &mass, 1.0, 0.0);
            mean += (a - exact).norm() / (1e-12 + exact.norm());
        }
        mean /= pos.len() as f64;
        assert!(mean < 0.01, "mean relative error {mean}");
    }

    #[test]
    fn blocked_policies_and_backends_agree_bitwise() {
        let (pos, mass) = random_system(400, 94);
        let b = built(&pos, &mass, false);
        let params = ForceParams {
            eval: ForceEval::Blocked { group: 48 },
            ..ForceParams::default()
        };
        let mut reference: Option<Vec<Vec3>> = None;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let a = forces(&b, &pos, &params);
                match &reference {
                    None => reference = Some(a),
                    Some(r) => assert_eq!(r, &a),
                }
            });
        }
        let mut seq = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(Seq, &pos, &mut seq, &params);
        assert_eq!(reference.unwrap(), seq);
    }

    #[test]
    fn group_size_only_perturbs_rounding() {
        let (pos, mass) = random_system(500, 95);
        let b = built(&pos, &mass, false);
        let base = forces(
            &b,
            &pos,
            &ForceParams { eval: ForceEval::Blocked { group: 8 }, ..ForceParams::default() },
        );
        for g in [1usize, 33, 512] {
            let a = forces(
                &b,
                &pos,
                &ForceParams { eval: ForceEval::Blocked { group: g }, ..ForceParams::default() },
            );
            for i in 0..pos.len() {
                let rel = (a[i] - base[i]).norm() / (1e-12 + base[i].norm());
                assert!(rel < 0.05, "group {g}, body {i}: rel {rel}");
            }
        }
    }

    #[test]
    fn blocked_edge_cases() {
        let params =
            ForceParams { eval: ForceEval::blocked(), ..ForceParams::default() };
        // Empty system: nothing to do, nothing to crash on.
        let b = built(&[], &[], false);
        b.compute_forces(ParUnseq, &[], &mut [], &params);
        // Single body: zero self force.
        let pos = vec![Vec3::new(0.3, 0.4, 0.5)];
        let b = built(&pos, &[2.0], false);
        let acc = forces(&b, &pos, &params);
        assert_eq!(acc[0], Vec3::ZERO);
        // Duplicate positions stay finite and agree with each other.
        let p = Vec3::new(0.2, 0.2, 0.2);
        let pos = vec![p, p, Vec3::new(-0.7, 0.1, 0.0)];
        let b = built(&pos, &[1.0, 1.0, 1.0], false);
        let acc = forces(&b, &pos, &params);
        assert!(acc.iter().all(|a| a.is_finite()));
        assert!((acc[0] - acc[1]).norm() < 1e-12);
    }

    #[test]
    fn zero_group_resolves_to_tree_default() {
        let (pos, mass) = random_system(64, 96);
        let b = built(&pos, &mass, false);
        let auto = forces(
            &b,
            &pos,
            &ForceParams { eval: ForceEval::Blocked { group: 0 }, ..ForceParams::default() },
        );
        let explicit = forces(
            &b,
            &pos,
            &ForceParams {
                eval: ForceEval::Blocked { group: Bvh::DEFAULT_BLOCK_GROUP },
                ..ForceParams::default()
            },
        );
        assert_eq!(auto, explicit);
        assert_eq!(
            ForceEval::blocked().resolve_group(Bvh::DEFAULT_BLOCK_GROUP),
            Some(Bvh::DEFAULT_BLOCK_GROUP)
        );
    }

    #[test]
    fn simd_kernel_matches_scalar_within_rounding() {
        use nbody_math::gravity::{ForceKernel, KernelPrecision};
        let (pos, mass) = random_system(700, 97);
        for quad in [false, true] {
            let b = built(&pos, &mass, quad);
            let base = ForceParams {
                theta: 0.6,
                use_quadrupole: quad,
                eval: ForceEval::blocked(),
                ..ForceParams::default()
            };
            let scalar = forces(&b, &pos, &base);
            let simd =
                forces(&b, &pos, &ForceParams { kernel: ForceKernel::Simd, ..base });
            for i in 0..pos.len() {
                let rel = (simd[i] - scalar[i]).norm() / (1e-12 + scalar[i].norm());
                assert!(rel < 1e-12, "quad={quad} body {i}: rel {rel}");
            }
            // Mixed precision stays within f32 noise of the f64 answer.
            let mixed = forces(
                &b,
                &pos,
                &ForceParams {
                    kernel: ForceKernel::Simd,
                    precision: KernelPrecision::MixedF32Far,
                    ..base
                },
            );
            for i in 0..pos.len() {
                let rel = (mixed[i] - scalar[i]).norm() / (1e-12 + scalar[i].norm());
                assert!(rel < 1e-4, "mixed quad={quad} body {i}: rel {rel}");
            }
        }
    }

    #[test]
    fn simd_kernel_agrees_across_policies_and_backends() {
        use nbody_math::gravity::ForceKernel;
        let (pos, mass) = random_system(400, 98);
        let b = built(&pos, &mass, false);
        let params = ForceParams {
            eval: ForceEval::Blocked { group: 48 },
            kernel: ForceKernel::Simd,
            ..ForceParams::default()
        };
        let mut reference: Option<Vec<Vec3>> = None;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let a = forces(&b, &pos, &params);
                match &reference {
                    None => reference = Some(a),
                    Some(r) => assert_eq!(r, &a),
                }
            });
        }
        let mut seq = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(Seq, &pos, &mut seq, &params);
        assert_eq!(reference.unwrap(), seq);
    }
}
