//! Task views of the BVH pipeline for barrier-free stepping.
//!
//! The barrier pipeline runs HILBERTSORT → BUILDTREE → ACCUMULATEMASS as
//! ~`2 + log₂(leaves)` separate parallel regions per step. This module
//! re-expresses the same work as a static DAG of `(phase, tile)` nodes
//! that one [`TaskGraph`] region executes end to end:
//!
//! ```text
//! Keys(t) ─→ SortChunk(t) ─→ Merge(0,k) ─→ … ─→ Merge(R-1,0)
//!                                                    │ (root merge)
//!                 ┌──────────────────────────────────┘
//!                 ▼
//!           GatherLeaf(t) ─→ BuildSub(s)  ─→ BuildTop
//!                       └──→ MomSub(s)    ─→ MomTop
//! ```
//!
//! * `Keys(t)` / `SortChunk(t)` — tile `t`'s `(key, index)` pairs are
//!   computed and sorted in place. `(key, index)` pairs are pairwise
//!   distinct (indices are unique), so the sorted whole is *unique*: the
//!   per-tile sort + binary merge tree below produces **bitwise** the
//!   same permutation as the barrier path's parallel merge sort — the
//!   same uniqueness argument the lazy re-sort relies on.
//! * `Merge(r,k)` — round `r` merges adjacent sorted blocks of width
//!   `chunk·2ʳ`, ping-ponging between the two pair buffers. The root
//!   merge (one node) produces the final sorted order.
//! * `GatherLeaf(t)` — tile `t` of the sorted order materialises the
//!   permutation, gathers positions/masses, and writes its leaf nodes'
//!   boxes and moments in one pass.
//! * `BuildSub(s)` / `MomSub(s)` — the complete binary tree decomposes
//!   into `S` independent subtrees above the leaf level plus a shared
//!   top; each subtree reduces its own levels with no synchronisation.
//!   `MomSub(s)` depends only on the `GatherLeaf` tiles whose body
//!   ranges intersect subtree `s` — **not** on `BuildSub(s)`: moments
//!   never read boxes, so the two reductions overlap freely. The edges
//!   are per-subtree, not a global barrier — subtree `s` can be folding
//!   moments while a distant tile is still gathering.
//!
//! [`ForceTasks`] does the same for CALCULATEFORCE + the integrator's
//! second kick: one node per body group (blocked path) or per chunk
//! (per-body path), each node running exactly the barrier path's loop
//! body, so the accelerations are bitwise identical to
//! [`Bvh::compute_forces_with`].

use crate::build::{Bvh, Curve};
use crate::scratch::BvhScratch;
use nbody_math::gravity::{ForceKernel, ForceParams};
use nbody_math::hilbert::HilbertGrid;
use nbody_math::simd::simd_level;
use nbody_math::{Aabb, InteractionLists, KernelStats, ListsPool, Vec3};
use nbody_resilience::BuildError;
use nbody_telemetry::{metrics, record, MacCounts};
use stdpar::backend::{max_workers, par_grain};
use stdpar::prelude::*;
use std::ops::Range;

/// A sealed view of one full BVH rebuild (sort + build + moments) as DAG
/// node bodies. Created by [`Bvh::begin_rebuild_tasks`], which validates
/// inputs and sizes every buffer; while the view lives the tree is
/// exclusively borrowed, and [`Bvh::finish_rebuild_tasks`] (after the
/// graph ran) marks the sort current and records build telemetry.
pub struct RebuildTasks<'a> {
    // Geometry (all derived in `begin_rebuild_tasks`).
    n: usize,
    /// Sort/gather tile count (power of two, ≤ leaves).
    tiles: usize,
    /// Bodies per tile (`ceil(n / tiles)`).
    chunk: usize,
    /// Merge rounds (`log₂ tiles`).
    rounds: u32,
    /// Subtree count for the build/moment reductions (= `tiles`).
    subtrees: usize,
    leaves: usize,
    // Key computation.
    grid: HilbertGrid,
    curve: Curve,
    bits: u32,
    // Inputs.
    positions: &'a [Vec3],
    masses: &'a [f64],
    // Outputs (disjoint-range writes per node; the SyncSlice contract).
    pairs_a: SyncSlice<'a, (u64, u32)>,
    pairs_b: SyncSlice<'a, (u64, u32)>,
    perm: SyncSlice<'a, u32>,
    sorted_pos: SyncSlice<'a, Vec3>,
    sorted_mass: SyncSlice<'a, f64>,
    boxes: SyncSlice<'a, Aabb>,
    diag2: SyncSlice<'a, f64>,
    mass: SyncSlice<'a, f64>,
    com: SyncSlice<'a, Vec3>,
    quad: Option<SyncSlice<'a, [f64; 6]>>,
}

impl Bvh {
    /// Validate inputs and lay out every buffer for a task-graph rebuild,
    /// exactly as `try_hilbert_sort_with` + `build_structure` +
    /// `accumulate_moments` would. `tiles` is a parallelism hint; it is
    /// rounded to a power of two and capped at the leaf count.
    ///
    /// Errors precisely like [`Bvh::try_hilbert_sort_with`]
    /// ([`BuildError::LengthMismatch`], [`BuildError::InvalidPositions`]);
    /// on error the previous sort is invalidated, matching the barrier
    /// path's failed-re-sort contract.
    pub fn begin_rebuild_tasks<'a>(
        &'a mut self,
        positions: &'a [Vec3],
        masses: &'a [f64],
        bounds: Aabb,
        tiles: usize,
        scratch: &'a mut BvhScratch,
    ) -> Result<RebuildTasks<'a>, BuildError> {
        if positions.len() != masses.len() {
            return Err(BuildError::LengthMismatch {
                positions: positions.len(),
                masses: masses.len(),
            });
        }
        let n = positions.len();
        self.n = n;
        self.unmark_sorted();
        // Same sequential validation as the barrier sort (which also scans
        // every position once on the caller thread before going parallel).
        if n > 0
            && (bounds.is_empty()
                || !bounds.min.is_finite()
                || !bounds.max.is_finite()
                || !positions.iter().all(|p| p.is_finite()))
        {
            return Err(BuildError::InvalidPositions);
        }
        let leaves = if n == 0 { 1 } else { n.next_power_of_two() };
        self.leaves = leaves;
        let total = 2 * leaves;

        // The grid only feeds `Keys(t)` nodes, which are empty when n = 0;
        // a unit box keeps construction well-defined in that case.
        let grid_bounds = if n == 0 { Aabb::new(Vec3::ZERO, Vec3::ONE) } else { bounds };
        let grid = HilbertGrid::new(grid_bounds, self.params.hilbert_bits);

        let tiles = tiles.max(1).next_power_of_two().min(leaves);
        let chunk = n.div_ceil(tiles);
        let rounds = tiles.trailing_zeros();

        // Layout: everything the phases would clear+resize, front-loaded so
        // the node bodies only ever write disjoint ranges.
        scratch.pairs.clear();
        scratch.pairs.resize(n, (0, 0));
        scratch.pairs2.clear();
        scratch.pairs2.resize(n, (0, 0));
        self.perm.clear();
        self.perm.resize(n, 0);
        self.sorted_pos.clear();
        self.sorted_pos.resize(n, Vec3::ZERO);
        self.sorted_mass.clear();
        self.sorted_mass.resize(n, 0.0);
        self.boxes.clear();
        self.boxes.resize(total, Aabb::EMPTY);
        self.diag2.clear();
        self.diag2.resize(total, 0.0);
        self.mass.clear();
        self.mass.resize(total, 0.0);
        self.com.clear();
        self.com.resize(total, Vec3::ZERO);
        if self.params.quadrupole {
            let q = self.quad.get_or_insert_with(Vec::new);
            q.clear();
            q.resize(total, [0.0; 6]);
        } else {
            self.quad = None;
        }

        Ok(RebuildTasks {
            n,
            tiles,
            chunk,
            rounds,
            subtrees: tiles,
            leaves,
            grid,
            curve: self.params.curve,
            bits: self.params.hilbert_bits,
            positions,
            masses,
            pairs_a: SyncSlice::new(&mut scratch.pairs),
            pairs_b: SyncSlice::new(&mut scratch.pairs2),
            perm: SyncSlice::new(&mut self.perm),
            sorted_pos: SyncSlice::new(&mut self.sorted_pos),
            sorted_mass: SyncSlice::new(&mut self.sorted_mass),
            boxes: SyncSlice::new(&mut self.boxes),
            diag2: SyncSlice::new(&mut self.diag2),
            mass: SyncSlice::new(&mut self.mass),
            com: SyncSlice::new(&mut self.com),
            quad: self.quad.as_mut().map(|q| SyncSlice::new(q)),
        })
    }

    /// Mark the task-graph rebuild complete: the sorted arrays are current
    /// and the per-step build telemetry is recorded (the task path's
    /// analogue of the records inside `build_structure`).
    pub fn finish_rebuild_tasks(&mut self) {
        self.mark_sorted();
        record!(counter BVH_BUILDS, 1);
        record!(gauge BVH_NODES_HIGH_WATER, (2 * self.leaves) as u64);
    }
}

impl RebuildTasks<'_> {
    /// Total DAG nodes this rebuild contributes.
    pub fn node_count(&self) -> usize {
        // keys + sort + (tiles-1) merges + gather + build_sub + mom_sub
        // + build_top + mom_top.
        let t = self.tiles;
        4 * t + (t - 1) + self.subtrees + 2
    }

    /// Coarse phase of local node `id`, for callers attributing per-node
    /// busy time to the step's phase breakdown. Gather nodes fuse the
    /// permutation application (sort work) with leaf box and leaf moment
    /// seeding; they count as [`RebuildPhase::Sort`], where the barrier
    /// path's permutation application also lives.
    pub fn node_phase(&self, id: u32) -> RebuildPhase {
        let id = id as usize;
        if id < self.bsub_off() {
            RebuildPhase::Sort
        } else if id < self.msub_off() || id == self.btop_id() {
            RebuildPhase::Build
        } else {
            RebuildPhase::Moments
        }
    }

    // Local node-id layout (dense, decoded by `run_node`):
    //   [0, T)        Keys(t)
    //   [T, 2T)       SortChunk(t)
    //   [2T, 3T-1)    Merge(r, k)  — round r's base is 2T + (T - T>>r)
    //   [3T-1, 4T-1)  GatherLeaf(t)
    //   [4T-1, 5T-1)  BuildSub(s)
    //   [5T-1, 6T-1)  MomSub(s)
    //   6T-1          BuildTop
    //   6T            MomTop
    #[inline]
    fn merge_off(&self) -> usize {
        2 * self.tiles
    }
    #[inline]
    fn gather_off(&self) -> usize {
        3 * self.tiles - 1
    }
    #[inline]
    fn bsub_off(&self) -> usize {
        4 * self.tiles - 1
    }
    #[inline]
    fn msub_off(&self) -> usize {
        4 * self.tiles - 1 + self.subtrees
    }
    #[inline]
    fn btop_id(&self) -> usize {
        4 * self.tiles - 1 + 2 * self.subtrees
    }
    #[inline]
    fn mtop_id(&self) -> usize {
        self.btop_id() + 1
    }

    /// Bodies covered by sort/gather tile `t`.
    #[inline]
    fn tile_range(&self, t: usize) -> Range<usize> {
        (t * self.chunk).min(self.n)..((t + 1) * self.chunk).min(self.n)
    }

    /// Bodies whose leaves fall inside subtree `s`.
    #[inline]
    fn subtree_range(&self, s: usize) -> Range<usize> {
        let per = self.leaves / self.subtrees;
        (per * s).min(self.n)..(per * (s + 1)).min(self.n)
    }

    /// Add this rebuild's nodes and edges to an empty graph. Node ids in
    /// the graph equal the local ids `run_node` decodes, so the caller's
    /// dispatch is just `|node, _| tasks.run_node(node)`.
    pub fn wire(&self, g: &mut TaskGraph) {
        assert!(g.is_empty(), "RebuildTasks::wire expects an empty graph");
        let t = self.tiles as u32;
        let nodes = g.add_nodes(self.node_count());
        debug_assert_eq!(nodes.len(), self.node_count());
        let (merge_off, gather_off) = (self.merge_off() as u32, self.gather_off() as u32);
        let (bsub_off, msub_off) = (self.bsub_off() as u32, self.msub_off() as u32);
        let (btop, mtop) = (self.btop_id() as u32, self.mtop_id() as u32);

        // Keys(t) → SortChunk(t).
        for i in 0..t {
            g.add_edge(i, t + i);
        }
        // The binary merge tree over the sorted tiles.
        for r in 0..self.rounds {
            let base = merge_off + (t - (t >> r));
            for k in 0..(t >> (r + 1)) {
                let node = base + k;
                let (left, right) = if r == 0 {
                    (t + 2 * k, t + 2 * k + 1)
                } else {
                    let prev = merge_off + (t - (t >> (r - 1)));
                    (prev + 2 * k, prev + 2 * k + 1)
                };
                g.add_edge(left, node);
                g.add_edge(right, node);
            }
        }
        // Root of the merge tree (or the lone sorted tile) → every gather.
        let sorted_root = if self.rounds == 0 { t } else { merge_off + t - 2 };
        for i in 0..t {
            g.add_edge(sorted_root, gather_off + i);
        }
        // GatherLeaf(t) → {BuildSub, MomSub}(s) only where the tile's body
        // range intersects the subtree's — per-subtree edges, not a global
        // barrier over all gathers.
        for s in 0..self.subtrees {
            let sr = self.subtree_range(s);
            for i in 0..self.tiles {
                let tr = self.tile_range(i);
                if tr.start < sr.end && sr.start < tr.end {
                    g.add_edge(gather_off + i as u32, bsub_off + s as u32);
                    g.add_edge(gather_off + i as u32, msub_off + s as u32);
                }
            }
            g.add_edge(bsub_off + s as u32, btop);
            g.add_edge(msub_off + s as u32, mtop);
        }
    }

    /// Execute local node `id` (as laid out by [`RebuildTasks::wire`]).
    pub fn run_node(&self, id: u32) {
        let id = id as usize;
        let t = self.tiles;
        if id < t {
            self.keys_tile(id);
        } else if id < 2 * t {
            self.sort_tile(id - t);
        } else if id < self.gather_off() {
            // Decode (round, k) from the packed merge ids.
            let rel = id - self.merge_off();
            let mut r = 0u32;
            loop {
                let base = t - (t >> r);
                let width = t >> (r + 1);
                if rel < base + width {
                    self.merge_tile(r, rel - base);
                    break;
                }
                r += 1;
            }
        } else if id < self.bsub_off() {
            self.gather_leaf_tile(id - self.gather_off());
        } else if id < self.msub_off() {
            self.build_subtree(id - self.bsub_off());
        } else if id < self.btop_id() {
            self.moments_subtree(id - self.msub_off());
        } else if id == self.btop_id() {
            self.build_top();
        } else {
            debug_assert_eq!(id, self.mtop_id());
            self.moments_top();
        }
    }

    /// `Keys(t)`: the barrier sort's key pass, restricted to one tile.
    fn keys_tile(&self, t: usize) {
        let (grid, curve, bits) = (self.grid, self.curve, self.bits);
        for i in self.tile_range(t) {
            let key = match curve {
                Curve::Hilbert => grid.key_of(self.positions[i]),
                Curve::Morton => {
                    let [x, y, z] = grid.cell_of(self.positions[i]);
                    debug_assert!(bits <= 21);
                    nbody_math::morton::morton3(x, y, z)
                }
            };
            // SAFETY: tiles partition 0..n; this node is range-exclusive.
            unsafe { self.pairs_a.write(i, (key, i as u32)) };
        }
    }

    /// `SortChunk(t)`: in-place, allocation-free sort of one tile. The
    /// comparator matches the barrier sort (`(key, index)` natural order);
    /// distinct pairs make the result order-unique.
    fn sort_tile(&self, t: usize) {
        let r = self.tile_range(t);
        // SAFETY: tiles partition 0..n; this node owns its range.
        let s = unsafe { self.pairs_a.slice_mut(r) };
        s.sort_unstable();
    }

    /// `Merge(round, k)`: merge two adjacent sorted blocks of width
    /// `chunk·2^round`, ping-ponging A→B→A… between the pair buffers.
    fn merge_tile(&self, round: u32, k: usize) {
        let w = self.chunk << round;
        let start = (k * 2 * w).min(self.n);
        let mid = (start + w).min(self.n);
        let end = (start + 2 * w).min(self.n);
        let (src, dst) = if round.is_multiple_of(2) {
            (&self.pairs_a, &self.pairs_b)
        } else {
            (&self.pairs_b, &self.pairs_a)
        };
        // SAFETY: merge blocks partition the array within a round, and the
        // DAG orders rounds, so src reads and dst writes are race-free.
        unsafe {
            let a = src.slice(start..mid);
            let b = src.slice(mid..end);
            let out = dst.slice_mut(start..end);
            let (mut i, mut j, mut o) = (0, 0, 0);
            while i < a.len() && j < b.len() {
                // `<=` keeps the merge stable (irrelevant for distinct
                // pairs, but it mirrors the lazy re-sort's merge).
                if a[i] <= b[j] {
                    out[o] = a[i];
                    i += 1;
                } else {
                    out[o] = b[j];
                    j += 1;
                }
                o += 1;
            }
            out[o..o + (a.len() - i)].copy_from_slice(&a[i..]);
            o += a.len() - i;
            out[o..].copy_from_slice(&b[j..]);
        }
    }

    /// The buffer the final merge round wrote (A when the round count is
    /// even — including zero — else B).
    #[inline]
    fn final_pairs(&self) -> &SyncSlice<'_, (u64, u32)> {
        if self.rounds.is_multiple_of(2) {
            &self.pairs_a
        } else {
            &self.pairs_b
        }
    }

    /// `GatherLeaf(t)`: materialise the permutation, gather bodies into
    /// sorted order, and write this tile's leaf boxes and leaf moments —
    /// the fused leaf passes of sort-apply, BUILDTREE and ACCUMULATEMASS.
    fn gather_leaf_tile(&self, t: usize) {
        let fin = self.final_pairs();
        let leaves = self.leaves;
        for j in self.tile_range(t) {
            // SAFETY: tiles partition 0..n (and the shifted leaf range);
            // every write below is range-exclusive to this node.
            unsafe {
                let (_, idx) = fin.read(j);
                let b = idx as usize;
                let (p, m) = (self.positions[b], self.masses[b]);
                self.perm.write(j, idx);
                self.sorted_pos.write(j, p);
                self.sorted_mass.write(j, m);
                self.boxes.write(leaves + j, Aabb::from_point(p));
                self.mass.write(leaves + j, m);
                self.com.write(leaves + j, p);
            }
        }
        // Excess leaves keep the EMPTY/zero fill from `begin_rebuild_tasks`,
        // exactly like the barrier path's resize fills.
    }

    /// One structure reduction: node `i` from its children — verbatim the
    /// barrier `build_structure` level pass body.
    #[inline]
    unsafe fn reduce_build(&self, i: usize) {
        let bx = self.boxes.read(2 * i).union(self.boxes.read(2 * i + 1));
        self.boxes.write(i, bx);
        self.diag2.write(i, if bx.is_empty() { 0.0 } else { bx.extent().norm2() });
    }

    /// One moment reduction: node `i` from its children — verbatim the
    /// barrier `accumulate_moments` level pass body (same operation order,
    /// so the floats are bitwise identical).
    #[inline]
    unsafe fn reduce_moment(&self, i: usize) {
        let (l, r) = (2 * i, 2 * i + 1);
        let (ml, mr) = (self.mass.read(l), self.mass.read(r));
        let m = ml + mr;
        self.mass.write(i, m);
        let c = if m > 0.0 {
            (self.com.read(l) * ml + self.com.read(r) * mr) / m
        } else {
            Vec3::ZERO
        };
        self.com.write(i, c);
        if let Some(q) = &self.quad {
            // Parallel-axis combination of central second moments.
            let mut s = [0.0f64; 6];
            for (mk, k) in [(ml, l), (mr, r)] {
                if mk > 0.0 {
                    let sk = q.read(k);
                    let d = self.com.read(k) - c;
                    s[0] += sk[0] + mk * d.x * d.x;
                    s[1] += sk[1] + mk * d.x * d.y;
                    s[2] += sk[2] + mk * d.x * d.z;
                    s[3] += sk[3] + mk * d.y * d.y;
                    s[4] += sk[4] + mk * d.y * d.z;
                    s[5] += sk[5] + mk * d.z * d.z;
                }
            }
            q.write(i, s);
        }
    }

    /// `BuildSub(s)`: reduce subtree `s`'s boxes bottom-up. At level
    /// width `w ≥ S` the subtree owns nodes `[w + (w/S)s, w + (w/S)(s+1))`;
    /// the children of every owned node lie in the subtree's own slice of
    /// the next-finer level, so no cross-subtree coordination is needed.
    fn build_subtree(&self, s: usize) {
        let (leaves, sub) = (self.leaves, self.subtrees);
        let mut w = leaves / 2;
        while w >= sub {
            let per = w / sub;
            for i in w + per * s..w + per * (s + 1) {
                // SAFETY: subtree node ranges are disjoint per level, and
                // the DAG orders this node after its leaf tiles.
                unsafe { self.reduce_build(i) };
            }
            w /= 2;
        }
    }

    /// `BuildTop`: the shared apex levels (`w < S`), after all subtrees.
    fn build_top(&self) {
        let mut w = (self.subtrees / 2).min(self.leaves / 2);
        while w >= 1 {
            for i in w..2 * w {
                // SAFETY: sole writer of the apex; ordered after subtrees.
                unsafe { self.reduce_build(i) };
            }
            w /= 2;
        }
    }

    /// `MomSub(s)`: subtree moment reduction (independent of `BuildSub` —
    /// moments read only child moments, never boxes).
    fn moments_subtree(&self, s: usize) {
        let (leaves, sub) = (self.leaves, self.subtrees);
        let mut w = leaves / 2;
        while w >= sub {
            let per = w / sub;
            for i in w + per * s..w + per * (s + 1) {
                // SAFETY: subtree node ranges are disjoint per level, and
                // the DAG orders this node after its leaf tiles.
                unsafe { self.reduce_moment(i) };
            }
            w /= 2;
        }
    }

    /// `MomTop`: the shared apex moment levels.
    fn moments_top(&self) {
        let mut w = (self.subtrees / 2).min(self.leaves / 2);
        while w >= 1 {
            for i in w..2 * w {
                // SAFETY: sole writer of the apex; ordered after subtrees.
                unsafe { self.reduce_moment(i) };
            }
            w /= 2;
        }
    }
}

/// Coarse timing classification of one [`RebuildTasks`] node (see
/// [`RebuildTasks::node_phase`]): the three barrier phases a task-graph
/// rebuild overlaps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildPhase {
    /// Key tiles, per-tile sorts, merge rounds, and the sorted gathers.
    Sort,
    /// Box-structure reductions (per-subtree and top).
    Build,
    /// Moment reductions (per-subtree and top).
    Moments,
}

/// A view of CALCULATEFORCE as independent tile bodies: one node per
/// blocked group (or per-body chunk), each replicating the barrier force
/// path's loop body exactly. Created by [`Bvh::begin_force_tasks`]; the
/// tree is only shared-borrowed, so force tiles coexist with other
/// `&Bvh` users in the same graph run.
pub struct ForceTasks<'a> {
    bvh: &'a Bvh,
    positions: &'a [Vec3],
    params: ForceParams,
    pool: &'a ListsPool,
    /// Bodies per tile: the resolved block group, or the per-body grain.
    chunk: usize,
    blocked: bool,
    n: usize,
}

impl Bvh {
    /// Prepare the force phase for task-graph execution: resolves the
    /// evaluation mode, sizes the per-worker interaction-list pool, and
    /// records the SIMD dispatch gauge — everything
    /// [`Bvh::compute_forces_with`] does before its parallel region.
    pub fn begin_force_tasks<'a>(
        &'a self,
        positions: &'a [Vec3],
        params: &ForceParams,
        scratch: &'a mut BvhScratch,
    ) -> ForceTasks<'a> {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since sort");
        if params.use_quadrupole {
            assert!(self.quad.is_some(), "quadrupole requested but not accumulated");
        }
        let n = self.n_bodies();
        let (blocked, chunk) = match params.eval.resolve_group(Self::DEFAULT_BLOCK_GROUP) {
            Some(group) => {
                scratch.lists.prepare(max_workers(), params.use_quadrupole);
                if params.kernel == ForceKernel::Simd {
                    record!(gauge SIMD_DISPATCH_LEVEL, simd_level() as u64);
                }
                (true, group)
            }
            None => (false, par_grain(n).max(1)),
        };
        ForceTasks {
            bvh: self,
            positions,
            params: *params,
            pool: &scratch.lists,
            chunk,
            blocked,
            n,
        }
    }
}

impl ForceTasks<'_> {
    /// Number of independent force tiles.
    pub fn tile_count(&self) -> usize {
        self.n.div_ceil(self.chunk.max(1))
    }

    /// Bodies covered by force tile `t` (sorted order on the blocked
    /// path, original order on the per-body path — same convention as the
    /// barrier chunking).
    #[inline]
    pub fn tile_range(&self, t: usize) -> Range<usize> {
        (t * self.chunk).min(self.n)..((t + 1) * self.chunk).min(self.n)
    }

    /// Original body indices whose accelerations force tile `t` writes, in
    /// evaluation order — the exact slots a dependent integrator tile may
    /// read through a single `force(t) → kick(t)` edge. Tiles partition
    /// `0..n` (the blocked path walks the sort permutation).
    pub fn tile_bodies(&self, t: usize) -> impl Iterator<Item = usize> + '_ {
        let blocked = self.blocked;
        self.tile_range(t).map(move |j| if blocked { self.bvh.perm[j] as usize } else { j })
    }

    /// Execute force tile `t` on `worker` (a dense executor worker index,
    /// per the [`ListsPool::slot`] contract), writing accelerations in
    /// original body order into `out`.
    pub fn run_tile(&self, t: usize, worker: usize, out: SyncSlice<'_, Vec3>) {
        assert_eq!(out.len(), self.n, "accel length mismatch");
        let r = self.tile_range(t);
        if self.blocked {
            self.run_blocked_tile(r, worker, out);
        } else {
            self.run_per_body_tile(r, out);
        }
    }

    /// The blocked-path group body, verbatim from
    /// `Bvh::compute_forces_blocked`'s `for_each_chunk_worker` closure.
    fn run_blocked_tile(&self, r: Range<usize>, w: usize, out: SyncSlice<'_, Vec3>) {
        let this = self.bvh;
        let params = &self.params;
        let theta2 = params.theta * params.theta;
        let eps2 = params.softening * params.softening;
        let mut gbox = Aabb::EMPTY;
        for j in r.clone() {
            gbox.expand(this.sorted_pos[j]);
        }
        // SAFETY: `w` is the graph executor's worker index — never observed
        // concurrently by two threads — and the pool was prepared for
        // `max_workers()` workers in `begin_force_tasks`.
        let state = unsafe { self.pool.slot(w) };
        let lists: &mut InteractionLists = &mut state.lists;
        lists.clear();
        let mut mac = MacCounts::default();
        this.gather_group(gbox, theta2, params.mac_pad, params.use_quadrupole, lists, &mut mac);
        mac.flush(&metrics::BVH_MAC_ACCEPTS, &metrics::BVH_MAC_OPENS);
        record!(hist BVH_LIST_BODIES, lists.n_bodies() as u64);
        record!(hist BVH_LIST_NODES, lists.n_nodes() as u64);
        match params.kernel {
            ForceKernel::Scalar => {
                for j in r {
                    let a = lists.eval_at(this.sorted_pos[j], params.g, eps2);
                    // SAFETY: disjoint slots — perm is a permutation and
                    // groups partition it.
                    unsafe { out.write(this.perm[j] as usize, a) };
                }
            }
            ForceKernel::Simd => {
                let scratch = &mut state.scratch;
                scratch.clear_targets();
                for j in r.clone() {
                    scratch.push_target(this.sorted_pos[j]);
                }
                let mut ks = KernelStats::default();
                lists.eval_group(scratch, params.g, eps2, params.precision, &mut ks);
                record!(counter SIMD_GROUPS, ks.groups);
                record!(counter SIMD_TILES, ks.tiles);
                record!(counter SIMD_LANE_SLOTS, ks.lane_slots);
                record!(counter SIMD_ACTIVE_LANES, ks.active_lanes);
                for (t, j) in r.enumerate() {
                    // SAFETY: as above — disjoint permutation slots.
                    unsafe { out.write(this.perm[j] as usize, scratch.accel(t)) };
                }
            }
        }
    }

    /// The per-body-path chunk body, verbatim from
    /// `Bvh::compute_forces_with`'s `for_each_chunk` closure.
    fn run_per_body_tile(&self, r: Range<usize>, out: SyncSlice<'_, Vec3>) {
        let this = self.bvh;
        let mut mac = MacCounts::default();
        for b in r {
            let a = this.accel_at_counted(self.positions[b], Some(b as u32), &self.params, &mut mac);
            // SAFETY: per-body chunks partition 0..n.
            unsafe { out.write(b, a) };
        }
        mac.flush(&metrics::BVH_MAC_ACCEPTS, &metrics::BVH_MAC_OPENS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BvhParams;
    use nbody_math::gravity::ForceEval;
    use nbody_math::SplitMix64;
    use stdpar::backend::{with_backend, with_threads, Backend};
    use stdpar::detpar::{with_schedule, ScheduleMode};

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        (pos, mass)
    }

    /// Full task-graph rebuild of `bvh` from `pos`/`mass`.
    fn rebuild_by_tasks(
        bvh: &mut Bvh,
        pos: &[Vec3],
        mass: &[f64],
        bounds: Aabb,
        tiles: usize,
    ) {
        let mut scratch = BvhScratch::new();
        let mut g = TaskGraph::new();
        {
            let tasks = bvh
                .begin_rebuild_tasks(pos, mass, bounds, tiles, &mut scratch)
                .unwrap();
            tasks.wire(&mut g);
            g.run(|node, _| tasks.run_node(node));
        }
        bvh.finish_rebuild_tasks();
    }

    fn assert_trees_identical(a: &Bvh, b: &Bvh) {
        assert_eq!(a.permutation(), b.permutation());
        assert_eq!(a.sorted_positions(), b.sorted_positions());
        assert_eq!(a.sorted_mass, b.sorted_mass);
        assert_eq!(a.leaf_count(), b.leaf_count());
        for i in 1..2 * a.leaf_count() {
            assert_eq!(a.node_box(i).min, b.node_box(i).min, "box min, node {i}");
            assert_eq!(a.node_box(i).max, b.node_box(i).max, "box max, node {i}");
            assert_eq!(a.node_diag2(i).to_bits(), b.node_diag2(i).to_bits(), "diag2, node {i}");
            assert_eq!(a.node_mass(i).to_bits(), b.node_mass(i).to_bits(), "mass, node {i}");
            assert_eq!(a.node_com(i), b.node_com(i), "com, node {i}");
            assert_eq!(a.node_quad(i), b.node_quad(i), "quad, node {i}");
        }
    }

    #[test]
    fn task_rebuild_matches_barrier_bitwise() {
        for (n, tiles, quad) in
            [(1usize, 8usize, false), (7, 4, false), (137, 8, true), (1000, 16, false), (1000, 1, true)]
        {
            let (pos, mass) = random_system(n, 1000 + n as u64);
            let bounds = Aabb::from_points(&pos);
            let mut reference =
                Bvh::with_params(BvhParams { quadrupole: quad, ..BvhParams::default() });
            reference.hilbert_sort(Par, &pos, &mass, bounds);
            reference.build_and_accumulate(Par);

            let mut tasked =
                Bvh::with_params(BvhParams { quadrupole: quad, ..BvhParams::default() });
            rebuild_by_tasks(&mut tasked, &pos, &mass, bounds, tiles);
            assert_trees_identical(&tasked, &reference);
        }
    }

    #[test]
    fn task_rebuild_matches_barrier_on_morton_curve() {
        let (pos, mass) = random_system(512, 2001);
        let bounds = Aabb::from_points(&pos);
        let params = BvhParams { curve: Curve::Morton, ..BvhParams::default() };
        let mut reference = Bvh::with_params(params);
        reference.hilbert_sort(Par, &pos, &mass, bounds);
        reference.build_and_accumulate(Par);
        let mut tasked = Bvh::with_params(params);
        rebuild_by_tasks(&mut tasked, &pos, &mass, bounds, 8);
        assert_trees_identical(&tasked, &reference);
    }

    #[test]
    fn task_rebuild_identical_across_backends_and_schedules() {
        let (pos, mass) = random_system(700, 2002);
        let bounds = Aabb::from_points(&pos);
        let mut reference = Bvh::new();
        reference.hilbert_sort(Par, &pos, &mass, bounds);
        reference.build_and_accumulate(Par);
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut b = Bvh::new();
                rebuild_by_tasks(&mut b, &pos, &mass, bounds, 8);
                assert_trees_identical(&b, &reference);
            });
        }
        with_backend(Backend::DetPar, || {
            for mode in ScheduleMode::ALL {
                with_schedule(17, mode, || {
                    let mut b = Bvh::new();
                    rebuild_by_tasks(&mut b, &pos, &mass, bounds, 8);
                    assert_trees_identical(&b, &reference);
                });
            }
        });
        with_threads(1, || {
            let mut b = Bvh::new();
            rebuild_by_tasks(&mut b, &pos, &mass, bounds, 8);
            assert_trees_identical(&b, &reference);
        });
    }

    #[test]
    fn task_rebuild_empty_system() {
        let mut b = Bvh::new();
        rebuild_by_tasks(&mut b, &[], &[], Aabb::EMPTY, 8);
        assert_eq!(b.n_bodies(), 0);
        assert_eq!(b.node_mass(1), 0.0);
        // A subsequent barrier build still works (sort is current).
        b.try_build_and_accumulate(Par).unwrap();
    }

    #[test]
    fn begin_rebuild_rejects_bad_inputs_typed() {
        let mut b = Bvh::new();
        let mut scratch = BvhScratch::new();
        let err = b
            .begin_rebuild_tasks(
                &[Vec3::ZERO, Vec3::ONE],
                &[1.0],
                Aabb::new(Vec3::ZERO, Vec3::ONE),
                4,
                &mut scratch,
            )
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, BuildError::LengthMismatch { positions: 2, masses: 1 });
        let pos = vec![Vec3::new(f64::NAN, 0.0, 0.0), Vec3::ONE];
        let err = b
            .begin_rebuild_tasks(&pos, &[1.0, 1.0], Aabb::new(Vec3::ZERO, Vec3::ONE), 4, &mut scratch)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidPositions);
        // The failed begin invalidated any previous sort.
        assert_eq!(b.try_build_and_accumulate(Par).unwrap_err(), BuildError::NotSorted);
    }

    fn force_by_tasks(b: &Bvh, pos: &[Vec3], params: &ForceParams) -> Vec<Vec3> {
        let mut acc = vec![Vec3::ZERO; pos.len()];
        {
            let mut scratch = BvhScratch::new();
            let out = SyncSlice::new(&mut acc);
            let tasks = b.begin_force_tasks(pos, params, &mut scratch);
            let mut g = TaskGraph::new();
            g.add_nodes(tasks.tile_count());
            g.run(|node, w| tasks.run_tile(node as usize, w, out));
        }
        acc
    }

    #[test]
    fn force_tiles_match_barrier_bitwise() {
        let (pos, mass) = random_system(600, 3001);
        for quad in [false, true] {
            let mut b =
                Bvh::with_params(BvhParams { quadrupole: quad, ..BvhParams::default() });
            b.hilbert_sort(Par, &pos, &mass, Aabb::from_points(&pos));
            b.build_and_accumulate(Par);
            for params in [
                ForceParams { use_quadrupole: quad, ..ForceParams::default() },
                ForceParams {
                    use_quadrupole: quad,
                    eval: ForceEval::blocked(),
                    ..ForceParams::default()
                },
                ForceParams {
                    use_quadrupole: quad,
                    eval: ForceEval::blocked(),
                    kernel: ForceKernel::Simd,
                    ..ForceParams::default()
                },
            ] {
                let mut reference = vec![Vec3::ZERO; pos.len()];
                b.compute_forces(Par, &pos, &mut reference, &params);
                let tasked = force_by_tasks(&b, &pos, &params);
                assert_eq!(tasked, reference, "quad={quad} params={params:?}");
            }
        }
    }

    #[test]
    fn force_tiles_identical_across_backends() {
        let (pos, mass) = random_system(300, 3002);
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, Aabb::from_points(&pos));
        b.build_and_accumulate(Par);
        let params = ForceParams { eval: ForceEval::blocked(), ..ForceParams::default() };
        let mut reference = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(Seq, &pos, &mut reference, &params);
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(force_by_tasks(&b, &pos, &params), reference);
            });
        }
        with_backend(Backend::DetPar, || {
            for mode in ScheduleMode::ALL {
                with_schedule(29, mode, || {
                    assert_eq!(force_by_tasks(&b, &pos, &params), reference);
                });
            }
        });
    }
}
