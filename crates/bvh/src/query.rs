//! Spatial queries on the built BVH (range + nearest neighbour), pruning
//! by node bounding boxes — the SpatialCL-style use the paper's BVH
//! lineage comes from.

use crate::build::Bvh;
use nbody_math::Vec3;

impl Bvh {
    /// Indices (original body ids) of all bodies within `r` of `p`.
    pub fn query_radius(&self, p: Vec3, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if self.n_bodies() == 0 || r.is_nan() || r < 0.0 {
            return out;
        }
        let r2 = r * r;
        let mut stack = vec![1usize];
        while let Some(i) = stack.pop() {
            if self.node_mass(i) <= 0.0 && self.node_box(i).is_empty() {
                continue;
            }
            if self.node_box(i).distance2_to_point(p) > r2 {
                continue;
            }
            if self.is_leaf(i) {
                if let Some(b) = self.leaf_body(i) {
                    let j = i - self.leaf_count();
                    if self.sorted_positions()[j].distance2(p) <= r2 {
                        out.push(b);
                    }
                }
            } else {
                stack.push(2 * i);
                stack.push(2 * i + 1);
            }
        }
        out
    }

    /// Original id of the body nearest to `p` (excluding `exclude`).
    pub fn nearest(&self, p: Vec3, exclude: Option<u32>) -> Option<u32> {
        if self.n_bodies() == 0 {
            return None;
        }
        let mut best: Option<(u32, f64)> = None;
        let mut stack: Vec<(usize, f64)> = vec![(1, 0.0)];
        while let Some((i, lower)) = stack.pop() {
            if let Some((_, d2)) = best {
                if lower > d2 {
                    continue;
                }
            }
            if self.node_box(i).is_empty() {
                continue;
            }
            if self.is_leaf(i) {
                if let Some(b) = self.leaf_body(i) {
                    if Some(b) == exclude {
                        continue;
                    }
                    let j = i - self.leaf_count();
                    let d2 = self.sorted_positions()[j].distance2(p);
                    if best.is_none_or(|(_, bd)| d2 < bd) {
                        best = Some((b, d2));
                    }
                }
            } else {
                let l = (2 * i, self.node_box(2 * i).distance2_to_point(p));
                let r = (2 * i + 1, self.node_box(2 * i + 1).distance2_to_point(p));
                // Push the farther child first so the nearer is popped next.
                if l.1 <= r.1 {
                    stack.push(r);
                    stack.push(l);
                } else {
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
        best.map(|(b, _)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::{Aabb, SplitMix64};
    use stdpar::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut r = SplitMix64::new(seed);
        (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect()
    }

    fn built(pos: &[Vec3]) -> Bvh {
        let masses = vec![1.0; pos.len()];
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, pos, &masses, Aabb::from_points(pos));
        b.build_and_accumulate(ParUnseq);
        b
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pos = random_points(2000, 111);
        let b = built(&pos);
        let mut rng = SplitMix64::new(9);
        for _ in 0..50 {
            let p = Vec3::new(rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2));
            let r = rng.uniform(0.0, 0.8);
            let mut got = b.query_radius(p, r);
            got.sort_unstable();
            let mut expect: Vec<u32> = pos
                .iter()
                .enumerate()
                .filter(|(_, &x)| x.distance(p) <= r)
                .map(|(i, _)| i as u32)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pos = random_points(1500, 112);
        let b = built(&pos);
        let mut rng = SplitMix64::new(10);
        for _ in 0..100 {
            let p = Vec3::new(rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5));
            let got = b.nearest(p, None).unwrap();
            let best_d2 = pos.iter().map(|x| x.distance2(p)).fold(f64::INFINITY, f64::min);
            assert!((pos[got as usize].distance2(p) - best_d2).abs() < 1e-15);
        }
    }

    #[test]
    fn exclusion_and_duplicates() {
        let p = Vec3::new(0.2, 0.2, 0.2);
        let pos = vec![p, p, Vec3::new(0.9, 0.9, 0.9)];
        let b = built(&pos);
        let first = b.nearest(p, None).unwrap();
        assert!(first == 0 || first == 1);
        let second = b.nearest(p, Some(first)).unwrap();
        assert_ne!(second, first);
        assert!(second == 0 || second == 1);
        let mut hits = b.query_radius(p, 0.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn empty_bvh_queries() {
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &[], &[], Aabb::EMPTY);
        b.build_and_accumulate(ParUnseq);
        assert!(b.query_radius(Vec3::ZERO, 1.0).is_empty());
        assert_eq!(b.nearest(Vec3::ZERO, None), None);
    }
}
