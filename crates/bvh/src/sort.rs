//! HILBERTSORT (paper §IV-B.1, Algorithm 7).
//!
//! Bodies are binned on the coarsest equidistant Cartesian grid holding all
//! of them; each body's cell is mapped to a Hilbert index with Skilling's
//! algorithm (precomputed once, "to avoid recomputation"); the bodies are
//! then sorted by that key with the parallel sort.
//!
//! The paper's primary path zips masses and positions through the sort
//! (`views::zip`); its portable fallback — which we implement — sorts an
//! auxiliary buffer of `(hilbert, index)` pairs and applies the result as a
//! permutation (paper §V-A, implementation issue 2).

use crate::build::{Bvh, Curve};
use nbody_math::hilbert::HilbertGrid;
use nbody_math::{Aabb, Vec3};
use nbody_resilience::BuildError;
use stdpar::prelude::*;

impl Bvh {
    /// Sort bodies along the Hilbert curve, panicking on invalid input.
    ///
    /// Thin wrapper over [`Bvh::try_hilbert_sort`] for callers that treat
    /// bad input as a programming error.
    pub fn hilbert_sort<P: ExecutionPolicy>(
        &mut self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
    ) {
        if let Err(e) = self.try_hilbert_sort(policy, positions, masses, bounds) {
            panic!("hilbert_sort: {e}");
        }
    }

    /// Sort bodies along the Hilbert curve.
    ///
    /// `bounds` is the output of CALCULATEBOUNDINGBOX. After this call,
    /// [`Bvh::sorted_positions`] and the permutation are valid and
    /// [`Bvh::build_and_accumulate`] may run. Any execution policy works
    /// (`par_unseq` in the paper).
    ///
    /// Errors with [`BuildError::LengthMismatch`] if `positions` and
    /// `masses` disagree, or [`BuildError::InvalidPositions`] if any
    /// position is non-finite or the bounds of a non-empty system are
    /// empty/non-finite.
    pub fn try_hilbert_sort<P: ExecutionPolicy>(
        &mut self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
    ) -> Result<(), BuildError> {
        let mut scratch = crate::scratch::BvhScratch::new();
        self.try_hilbert_sort_with(policy, positions, masses, bounds, &mut scratch)
    }

    /// [`Bvh::try_hilbert_sort`] borrowing caller-owned scratch: the pair
    /// buffer and the merge sort's ping-pong storage come from `scratch`,
    /// and the gathered `sorted_pos`/`sorted_mass` reuse their retained
    /// capacity, so a steady-state caller allocates nothing after warm-up.
    pub fn try_hilbert_sort_with<P: ExecutionPolicy>(
        &mut self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
        scratch: &mut crate::scratch::BvhScratch,
    ) -> Result<(), BuildError> {
        if positions.len() != masses.len() {
            return Err(BuildError::LengthMismatch {
                positions: positions.len(),
                masses: masses.len(),
            });
        }
        let n = positions.len();
        self.n = n;
        self.unmark_sorted();
        if n == 0 {
            self.perm.clear();
            self.sorted_pos.clear();
            self.sorted_mass.clear();
            self.mark_sorted();
            return Ok(());
        }
        if bounds.is_empty()
            || !bounds.min.is_finite()
            || !bounds.max.is_finite()
            || !positions.iter().all(|p| p.is_finite())
        {
            return Err(BuildError::InvalidPositions);
        }

        let grid = HilbertGrid::new(bounds, self.params.hilbert_bits);
        let curve = self.params.curve;
        let bits = self.params.hilbert_bits;

        // Precompute the keys (one pass), then sort (key, index) pairs.
        // The pair buffer and sort scratch come from the caller's arena.
        let pairs = &mut scratch.pairs;
        pairs.clear();
        pairs.resize(n, (0, 0));
        {
            let view = SyncSlice::new(pairs.as_mut_slice());
            for_each_index(policy, 0..n, |i| unsafe {
                let key = match curve {
                    Curve::Hilbert => grid.key_of(positions[i]),
                    Curve::Morton => {
                        let [x, y, z] = grid.cell_of(positions[i]);
                        debug_assert!(bits <= 21);
                        nbody_math::morton::morton3(x, y, z)
                    }
                };
                view.write(i, (key, i as u32));
            });
        }
        sort_unstable_by_with_scratch(policy, pairs, &mut scratch.sort, |a, b| a.cmp(b));

        // Apply as a permutation: gather positions and masses into the
        // tree's retained buffers.
        self.perm.clear();
        self.perm.extend(pairs.iter().map(|&(_, i)| i));
        apply_permutation_into(policy, positions, &self.perm, &mut self.sorted_pos);
        apply_permutation_into(policy, masses, &self.perm, &mut self.sorted_mass);
        self.mark_sorted();
        Ok(())
    }

    /// Hilbert keys of the *sorted* bodies (for tests/diagnostics).
    pub fn sorted_keys(&self, bounds: Aabb) -> Vec<u64> {
        let grid = HilbertGrid::new(bounds, self.params.hilbert_bits);
        self.sorted_pos.iter().map(|&p| grid.key_of(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(0.0, 1.0), r.uniform(0.0, 1.0), r.uniform(0.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.1, 2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn keys_are_nondecreasing_after_sort() {
        let (pos, mass) = random_system(5000, 71);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        let keys = b.sorted_keys(bounds);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn permutation_preserves_body_data() {
        let (pos, mass) = random_system(1000, 72);
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, Aabb::from_points(&pos));
        let perm = b.permutation();
        for (j, &orig) in perm.iter().enumerate() {
            assert_eq!(b.sorted_positions()[j], pos[orig as usize]);
            assert_eq!(b.sorted_mass[j], mass[orig as usize]);
        }
        // It is a permutation.
        let mut sorted: Vec<u32> = perm.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_neighbours_are_spatially_close_on_average() {
        // The whole point of the Hilbert sort: adjacent bodies in the
        // sorted order are close in space, giving compact BVH leaves.
        let (pos, mass) = random_system(20_000, 73);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        let sp = b.sorted_positions();
        let mean_sorted: f64 = sp.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>()
            / (sp.len() - 1) as f64;
        let mean_unsorted: f64 = pos.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>()
            / (pos.len() - 1) as f64;
        assert!(
            mean_sorted < mean_unsorted * 0.25,
            "sorted {mean_sorted} vs unsorted {mean_unsorted}"
        );
    }

    #[test]
    fn deterministic_across_policies_and_backends() {
        let (pos, mass) = random_system(3000, 74);
        let bounds = Aabb::from_points(&pos);
        let mut reference: Option<Vec<u32>> = None;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut b = Bvh::new();
                b.hilbert_sort(Par, &pos, &mass, bounds);
                match &reference {
                    None => reference = Some(b.permutation().to_vec()),
                    Some(r) => assert_eq!(r, &b.permutation().to_vec(), "{}", backend.name()),
                }
            });
        }
    }

    #[test]
    fn scratch_reuse_across_changing_n_matches_fresh() {
        // One scratch arena across grow-then-shrink sorts must agree
        // bitwise with throwaway-scratch sorts (no stale-buffer reads).
        let mut scratch = crate::scratch::BvhScratch::new();
        for (n, seed) in [(3000usize, 74u64), (5000, 71), (1000, 72)] {
            let (pos, mass) = random_system(n, seed);
            let bounds = Aabb::from_points(&pos);
            let mut a = Bvh::new();
            a.try_hilbert_sort_with(Par, &pos, &mass, bounds, &mut scratch).unwrap();
            let mut b = Bvh::new();
            b.try_hilbert_sort(Par, &pos, &mass, bounds).unwrap();
            assert_eq!(a.permutation(), b.permutation(), "n={n}");
            assert_eq!(a.sorted_positions(), b.sorted_positions(), "n={n}");
        }
    }

    #[test]
    fn morton_curve_also_sorts_and_builds() {
        let (pos, mass) = random_system(4000, 75);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::with_params(crate::BvhParams {
            curve: Curve::Morton,
            ..Default::default()
        });
        b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        b.build_and_accumulate(ParUnseq);
        crate::validate::BvhInvariants::check(&b).unwrap();
        // Morton ordering still clusters space: sorted neighbours closer
        // than unsorted ones.
        let sp = b.sorted_positions();
        let mean_sorted: f64 =
            sp.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>() / (sp.len() - 1) as f64;
        let mean_unsorted: f64 =
            pos.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>() / (pos.len() - 1) as f64;
        assert!(mean_sorted < mean_unsorted * 0.5);
    }

    #[test]
    fn hilbert_beats_morton_on_neighbour_distance() {
        // The reason the paper picks Hilbert: no long jumps, so adjacent
        // bodies in the order are closer on average.
        let (pos, mass) = random_system(20_000, 76);
        let bounds = Aabb::from_points(&pos);
        let mean_step = |curve: Curve| {
            let mut b = Bvh::with_params(crate::BvhParams { curve, ..Default::default() });
            b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
            let sp = b.sorted_positions();
            sp.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>() / (sp.len() - 1) as f64
        };
        let h = mean_step(Curve::Hilbert);
        let m = mean_step(Curve::Morton);
        assert!(h < m, "hilbert {h} should beat morton {m}");
    }

    #[test]
    fn try_sort_rejects_bad_inputs_typed() {
        let mut b = Bvh::new();
        // Length mismatch.
        let err = b
            .try_hilbert_sort(Par, &[Vec3::ZERO, Vec3::ONE], &[1.0], Aabb::new(Vec3::ZERO, Vec3::ONE))
            .unwrap_err();
        assert_eq!(err, BuildError::LengthMismatch { positions: 2, masses: 1 });
        // NaN position.
        let pos = vec![Vec3::new(f64::NAN, 0.0, 0.0), Vec3::ONE];
        let err = b
            .try_hilbert_sort(Par, &pos, &[1.0, 1.0], Aabb::new(Vec3::ZERO, Vec3::ONE))
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidPositions);
        // Empty bounds with bodies present.
        let err = b
            .try_hilbert_sort(Par, &[Vec3::ZERO], &[1.0], Aabb::EMPTY)
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidPositions);
        // Build without a successful sort is typed, not a hang or panic.
        assert_eq!(b.try_build_and_accumulate(Par).unwrap_err(), BuildError::NotSorted);
    }

    #[test]
    fn try_sort_then_try_build_round_trip() {
        let (pos, mass) = random_system(500, 77);
        let mut b = Bvh::new();
        b.try_hilbert_sort(Par, &pos, &mass, Aabb::from_points(&pos)).unwrap();
        b.try_build_and_accumulate(Par).unwrap();
        crate::validate::BvhInvariants::check(&b).unwrap();
    }

    #[test]
    fn equal_keys_tie_break_by_index() {
        // Bodies in the same grid cell sort by original index → stable,
        // deterministic permutation.
        let p = Vec3::new(0.5, 0.5, 0.5);
        let pos = vec![p, p, p];
        let mass = vec![1.0, 2.0, 3.0];
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, Aabb::new(Vec3::ZERO, Vec3::ONE));
        assert_eq!(b.permutation(), &[0, 1, 2]);
    }
}
