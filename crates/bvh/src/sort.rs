//! HILBERTSORT (paper §IV-B.1, Algorithm 7).
//!
//! Bodies are binned on the coarsest equidistant Cartesian grid holding all
//! of them; each body's cell is mapped to a Hilbert index with Skilling's
//! algorithm (precomputed once, "to avoid recomputation"); the bodies are
//! then sorted by that key with the parallel sort.
//!
//! The paper's primary path zips masses and positions through the sort
//! (`views::zip`); its portable fallback — which we implement — sorts an
//! auxiliary buffer of `(hilbert, index)` pairs and applies the result as a
//! permutation (paper §V-A, implementation issue 2).

use crate::build::{Bvh, Curve};
use nbody_math::hilbert::HilbertGrid;
use nbody_math::{Aabb, Vec3};
use nbody_resilience::BuildError;
use stdpar::prelude::*;

/// Maximum number of ascending runs the lazy re-sort will repair with a
/// natural merge; more disorder than this and a full parallel sort is the
/// faster (and simpler) option. Power of two so every merge round halves
/// the run count exactly.
pub const MAX_LAZY_RUNS: usize = 32;

/// Merge two ascending runs into `dst` (appending). Distinct elements, so
/// `<=` vs `<` is irrelevant for the output order — but `<=` keeps the
/// merge stable anyway.
fn merge_runs(a: &[(u64, u32)], b: &[(u64, u32)], dst: &mut Vec<(u64, u32)>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            dst.push(a[i]);
            i += 1;
        } else {
            dst.push(b[j]);
            j += 1;
        }
    }
    dst.extend_from_slice(&a[i..]);
    dst.extend_from_slice(&b[j..]);
}

impl Bvh {
    /// Sort bodies along the Hilbert curve, panicking on invalid input.
    ///
    /// Thin wrapper over [`Bvh::try_hilbert_sort`] for callers that treat
    /// bad input as a programming error.
    pub fn hilbert_sort<P: ExecutionPolicy>(
        &mut self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
    ) {
        if let Err(e) = self.try_hilbert_sort(policy, positions, masses, bounds) {
            panic!("hilbert_sort: {e}");
        }
    }

    /// Sort bodies along the Hilbert curve.
    ///
    /// `bounds` is the output of CALCULATEBOUNDINGBOX. After this call,
    /// [`Bvh::sorted_positions`] and the permutation are valid and
    /// [`Bvh::build_and_accumulate`] may run. Any execution policy works
    /// (`par_unseq` in the paper).
    ///
    /// Errors with [`BuildError::LengthMismatch`] if `positions` and
    /// `masses` disagree, or [`BuildError::InvalidPositions`] if any
    /// position is non-finite or the bounds of a non-empty system are
    /// empty/non-finite.
    pub fn try_hilbert_sort<P: ExecutionPolicy>(
        &mut self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
    ) -> Result<(), BuildError> {
        let mut scratch = crate::scratch::BvhScratch::new();
        self.try_hilbert_sort_with(policy, positions, masses, bounds, &mut scratch)
    }

    /// [`Bvh::try_hilbert_sort`] borrowing caller-owned scratch: the pair
    /// buffer and the merge sort's ping-pong storage come from `scratch`,
    /// and the gathered `sorted_pos`/`sorted_mass` reuse their retained
    /// capacity, so a steady-state caller allocates nothing after warm-up.
    pub fn try_hilbert_sort_with<P: ExecutionPolicy>(
        &mut self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
        scratch: &mut crate::scratch::BvhScratch,
    ) -> Result<(), BuildError> {
        if positions.len() != masses.len() {
            return Err(BuildError::LengthMismatch {
                positions: positions.len(),
                masses: masses.len(),
            });
        }
        let n = positions.len();
        self.n = n;
        self.unmark_sorted();
        if n == 0 {
            self.perm.clear();
            self.sorted_pos.clear();
            self.sorted_mass.clear();
            self.mark_sorted();
            return Ok(());
        }
        if bounds.is_empty()
            || !bounds.min.is_finite()
            || !bounds.max.is_finite()
            || !positions.iter().all(|p| p.is_finite())
        {
            return Err(BuildError::InvalidPositions);
        }

        let grid = HilbertGrid::new(bounds, self.params.hilbert_bits);
        let curve = self.params.curve;
        let bits = self.params.hilbert_bits;

        // Precompute the keys (one pass), then sort (key, index) pairs.
        // The pair buffer and sort scratch come from the caller's arena.
        let pairs = &mut scratch.pairs;
        pairs.clear();
        pairs.resize(n, (0, 0));
        {
            let view = SyncSlice::new(pairs.as_mut_slice());
            for_each_index(policy, 0..n, |i| unsafe {
                let key = match curve {
                    Curve::Hilbert => grid.key_of(positions[i]),
                    Curve::Morton => {
                        let [x, y, z] = grid.cell_of(positions[i]);
                        debug_assert!(bits <= 21);
                        nbody_math::morton::morton3(x, y, z)
                    }
                };
                view.write(i, (key, i as u32));
            });
        }
        sort_unstable_by_with_scratch(policy, pairs, &mut scratch.sort, |a, b| a.cmp(b));

        // Apply as a permutation: gather positions and masses into the
        // tree's retained buffers.
        self.perm.clear();
        self.perm.extend(pairs.iter().map(|&(_, i)| i));
        apply_permutation_into(policy, positions, &self.perm, &mut self.sorted_pos);
        apply_permutation_into(policy, masses, &self.perm, &mut self.sorted_mass);
        self.mark_sorted();
        Ok(())
    }

    /// Lazy re-sort for the incremental lifecycle: recompute the keys of
    /// the *previous* permutation order and fix only the locally-disordered
    /// stretches.
    ///
    /// Between consecutive small time steps most bodies keep their Hilbert
    /// rank, so the old order is a concatenation of a few ascending runs of
    /// the new keys. This entry point detects those runs in one O(N)
    /// comparison pass and repairs them with a natural merge:
    ///
    /// - 1 run — the old order is already sorted under the new keys; only
    ///   the gather of positions/masses runs (the permutation is unchanged).
    /// - ≤ [`MAX_LAZY_RUNS`] runs — adjacent runs are merged pairwise
    ///   (ping-pong between two scratch buffers) until one remains.
    /// - more runs, a changed body count, or no valid previous sort — full
    ///   [`Bvh::try_hilbert_sort_with`] fallback.
    ///
    /// `(key, id)` pairs are pairwise distinct (ids are unique), so the
    /// sorted sequence is unique and the merged result is **bitwise
    /// identical** to a full sort with the same `bounds` — the lazy path is
    /// an optimisation, never an approximation. Errors exactly as
    /// [`Bvh::try_hilbert_sort_with`] does.
    pub fn try_hilbert_resort_with<P: ExecutionPolicy>(
        &mut self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
        scratch: &mut crate::scratch::BvhScratch,
    ) -> Result<(), BuildError> {
        let n = positions.len();
        if !(self.sorted_is_current() && self.n == n && self.perm.len() == n && n > 0) {
            nbody_telemetry::record!(counter BVH_FULL_RESORTS, 1);
            return self.try_hilbert_sort_with(policy, positions, masses, bounds, scratch);
        }
        // From here on the previous sort is stale: a failed re-sort must
        // not leave the tree claiming its sorted data is current.
        self.unmark_sorted();
        if positions.len() != masses.len() {
            return Err(BuildError::LengthMismatch {
                positions: positions.len(),
                masses: masses.len(),
            });
        }
        if bounds.is_empty()
            || !bounds.min.is_finite()
            || !bounds.max.is_finite()
            || !positions.iter().all(|p| p.is_finite())
        {
            return Err(BuildError::InvalidPositions);
        }

        let grid = HilbertGrid::new(bounds, self.params.hilbert_bits);
        let curve = self.params.curve;
        let bits = self.params.hilbert_bits;

        // Recompute the keys in the previous sorted order: entry j holds
        // the new key of the body that occupied sorted slot j last step.
        let pairs = &mut scratch.pairs;
        pairs.clear();
        pairs.resize(n, (0, 0));
        {
            let view = SyncSlice::new(pairs.as_mut_slice());
            let perm = &self.perm;
            for_each_index(policy, 0..n, |j| unsafe {
                let b = perm[j] as usize;
                let key = match curve {
                    Curve::Hilbert => grid.key_of(positions[b]),
                    Curve::Morton => {
                        let [x, y, z] = grid.cell_of(positions[b]);
                        debug_assert!(bits <= 21);
                        nbody_math::morton::morton3(x, y, z)
                    }
                };
                view.write(j, (key, b as u32));
            });
        }

        // Ascending-run detection (strictly one O(N) comparison pass; the
        // `(key, id)` ordering matches the full sort's comparator).
        let runs = &mut scratch.runs;
        runs.clear();
        let mut start = 0u32;
        for j in 1..n {
            if pairs[j - 1] > pairs[j] {
                runs.push((start, j as u32));
                start = j as u32;
            }
        }
        runs.push((start, n as u32));
        nbody_telemetry::record!(hist BVH_RESORT_RUNS, runs.len() as u64);
        if runs.len() > MAX_LAZY_RUNS {
            nbody_telemetry::record!(counter BVH_FULL_RESORTS, 1);
            return self.try_hilbert_sort_with(policy, positions, masses, bounds, scratch);
        }

        // Natural merge: fold adjacent runs pairwise, ping-ponging between
        // the two pair buffers, until a single run spans the array. The
        // merge is sequential — the lazy path exists for the small-disorder
        // regime, where one O(N · log runs) scan beats a full parallel sort.
        let (mut src, mut dst) = (&mut scratch.pairs, &mut scratch.pairs2);
        let (mut rsrc, mut rdst) = (&mut scratch.runs, &mut scratch.runs2);
        while rsrc.len() > 1 {
            dst.clear();
            rdst.clear();
            let mut k = 0;
            while k < rsrc.len() {
                if k + 1 < rsrc.len() {
                    let (a0, a1) = rsrc[k];
                    let (b0, b1) = rsrc[k + 1];
                    debug_assert_eq!(a1, b0, "runs must tile the array");
                    merge_runs(
                        &src[a0 as usize..a1 as usize],
                        &src[b0 as usize..b1 as usize],
                        dst,
                    );
                    rdst.push((a0, b1));
                    k += 2;
                } else {
                    let (a0, a1) = rsrc[k];
                    dst.extend_from_slice(&src[a0 as usize..a1 as usize]);
                    rdst.push((a0, a1));
                    k += 1;
                }
            }
            std::mem::swap(&mut src, &mut dst);
            std::mem::swap(&mut rsrc, &mut rdst);
        }

        // Gather through the repaired permutation.
        self.perm.clear();
        self.perm.extend(src.iter().map(|&(_, i)| i));
        apply_permutation_into(policy, positions, &self.perm, &mut self.sorted_pos);
        apply_permutation_into(policy, masses, &self.perm, &mut self.sorted_mass);
        self.mark_sorted();
        nbody_telemetry::record!(counter BVH_LAZY_RESORTS, 1);
        Ok(())
    }

    /// [`Bvh::try_hilbert_resort_with`] with a throwaway scratch arena.
    pub fn try_hilbert_resort(
        &mut self,
        positions: &[Vec3],
        masses: &[f64],
        bounds: Aabb,
    ) -> Result<(), BuildError> {
        let mut scratch = crate::scratch::BvhScratch::new();
        self.try_hilbert_resort_with(Par, positions, masses, bounds, &mut scratch)
    }

    /// Hilbert keys of the *sorted* bodies (for tests/diagnostics).
    pub fn sorted_keys(&self, bounds: Aabb) -> Vec<u64> {
        let grid = HilbertGrid::new(bounds, self.params.hilbert_bits);
        self.sorted_pos.iter().map(|&p| grid.key_of(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(0.0, 1.0), r.uniform(0.0, 1.0), r.uniform(0.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.1, 2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn keys_are_nondecreasing_after_sort() {
        let (pos, mass) = random_system(5000, 71);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        let keys = b.sorted_keys(bounds);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn permutation_preserves_body_data() {
        let (pos, mass) = random_system(1000, 72);
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, Aabb::from_points(&pos));
        let perm = b.permutation();
        for (j, &orig) in perm.iter().enumerate() {
            assert_eq!(b.sorted_positions()[j], pos[orig as usize]);
            assert_eq!(b.sorted_mass[j], mass[orig as usize]);
        }
        // It is a permutation.
        let mut sorted: Vec<u32> = perm.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_neighbours_are_spatially_close_on_average() {
        // The whole point of the Hilbert sort: adjacent bodies in the
        // sorted order are close in space, giving compact BVH leaves.
        let (pos, mass) = random_system(20_000, 73);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        let sp = b.sorted_positions();
        let mean_sorted: f64 = sp.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>()
            / (sp.len() - 1) as f64;
        let mean_unsorted: f64 = pos.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>()
            / (pos.len() - 1) as f64;
        assert!(
            mean_sorted < mean_unsorted * 0.25,
            "sorted {mean_sorted} vs unsorted {mean_unsorted}"
        );
    }

    #[test]
    fn deterministic_across_policies_and_backends() {
        let (pos, mass) = random_system(3000, 74);
        let bounds = Aabb::from_points(&pos);
        let mut reference: Option<Vec<u32>> = None;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut b = Bvh::new();
                b.hilbert_sort(Par, &pos, &mass, bounds);
                match &reference {
                    None => reference = Some(b.permutation().to_vec()),
                    Some(r) => assert_eq!(r, &b.permutation().to_vec(), "{}", backend.name()),
                }
            });
        }
    }

    #[test]
    fn scratch_reuse_across_changing_n_matches_fresh() {
        // One scratch arena across grow-then-shrink sorts must agree
        // bitwise with throwaway-scratch sorts (no stale-buffer reads).
        let mut scratch = crate::scratch::BvhScratch::new();
        for (n, seed) in [(3000usize, 74u64), (5000, 71), (1000, 72)] {
            let (pos, mass) = random_system(n, seed);
            let bounds = Aabb::from_points(&pos);
            let mut a = Bvh::new();
            a.try_hilbert_sort_with(Par, &pos, &mass, bounds, &mut scratch).unwrap();
            let mut b = Bvh::new();
            b.try_hilbert_sort(Par, &pos, &mass, bounds).unwrap();
            assert_eq!(a.permutation(), b.permutation(), "n={n}");
            assert_eq!(a.sorted_positions(), b.sorted_positions(), "n={n}");
        }
    }

    #[test]
    fn morton_curve_also_sorts_and_builds() {
        let (pos, mass) = random_system(4000, 75);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::with_params(crate::BvhParams {
            curve: Curve::Morton,
            ..Default::default()
        });
        b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
        b.build_and_accumulate(ParUnseq);
        crate::validate::BvhInvariants::check(&b).unwrap();
        // Morton ordering still clusters space: sorted neighbours closer
        // than unsorted ones.
        let sp = b.sorted_positions();
        let mean_sorted: f64 =
            sp.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>() / (sp.len() - 1) as f64;
        let mean_unsorted: f64 =
            pos.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>() / (pos.len() - 1) as f64;
        assert!(mean_sorted < mean_unsorted * 0.5);
    }

    #[test]
    fn hilbert_beats_morton_on_neighbour_distance() {
        // The reason the paper picks Hilbert: no long jumps, so adjacent
        // bodies in the order are closer on average.
        let (pos, mass) = random_system(20_000, 76);
        let bounds = Aabb::from_points(&pos);
        let mean_step = |curve: Curve| {
            let mut b = Bvh::with_params(crate::BvhParams { curve, ..Default::default() });
            b.hilbert_sort(ParUnseq, &pos, &mass, bounds);
            let sp = b.sorted_positions();
            sp.windows(2).map(|w| w[0].distance(w[1])).sum::<f64>() / (sp.len() - 1) as f64
        };
        let h = mean_step(Curve::Hilbert);
        let m = mean_step(Curve::Morton);
        assert!(h < m, "hilbert {h} should beat morton {m}");
    }

    #[test]
    fn try_sort_rejects_bad_inputs_typed() {
        let mut b = Bvh::new();
        // Length mismatch.
        let err = b
            .try_hilbert_sort(Par, &[Vec3::ZERO, Vec3::ONE], &[1.0], Aabb::new(Vec3::ZERO, Vec3::ONE))
            .unwrap_err();
        assert_eq!(err, BuildError::LengthMismatch { positions: 2, masses: 1 });
        // NaN position.
        let pos = vec![Vec3::new(f64::NAN, 0.0, 0.0), Vec3::ONE];
        let err = b
            .try_hilbert_sort(Par, &pos, &[1.0, 1.0], Aabb::new(Vec3::ZERO, Vec3::ONE))
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidPositions);
        // Empty bounds with bodies present.
        let err = b
            .try_hilbert_sort(Par, &[Vec3::ZERO], &[1.0], Aabb::EMPTY)
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidPositions);
        // Build without a successful sort is typed, not a hang or panic.
        assert_eq!(b.try_build_and_accumulate(Par).unwrap_err(), BuildError::NotSorted);
    }

    #[test]
    fn try_sort_then_try_build_round_trip() {
        let (pos, mass) = random_system(500, 77);
        let mut b = Bvh::new();
        b.try_hilbert_sort(Par, &pos, &mass, Aabb::from_points(&pos)).unwrap();
        b.try_build_and_accumulate(Par).unwrap();
        crate::validate::BvhInvariants::check(&b).unwrap();
    }

    #[test]
    fn lazy_resort_matches_full_sort_bitwise() {
        // Random walk with small steps: the old order stays mostly sorted,
        // so the natural merge path runs — and must agree bitwise with a
        // from-scratch sort at every step.
        let (mut pos, mass) = random_system(4000, 80);
        let mut r = SplitMix64::new(81);
        let mut scratch = crate::scratch::BvhScratch::new();
        let mut lazy = Bvh::new();
        let bounds0 = Aabb::from_points(&pos);
        lazy.try_hilbert_sort_with(Par, &pos, &mass, bounds0, &mut scratch).unwrap();
        for _ in 0..8 {
            for p in &mut pos {
                *p += Vec3::new(
                    r.uniform(-1e-3, 1e-3),
                    r.uniform(-1e-3, 1e-3),
                    r.uniform(-1e-3, 1e-3),
                );
            }
            let bounds = Aabb::from_points(&pos);
            lazy.try_hilbert_resort_with(Par, &pos, &mass, bounds, &mut scratch).unwrap();
            let mut full = Bvh::new();
            full.try_hilbert_sort(Par, &pos, &mass, bounds).unwrap();
            assert_eq!(lazy.permutation(), full.permutation());
            assert_eq!(lazy.sorted_positions(), full.sorted_positions());
            assert_eq!(lazy.sorted_mass, full.sorted_mass);
        }
    }

    #[test]
    fn lazy_resort_identical_positions_keeps_permutation() {
        let (pos, mass) = random_system(2000, 82);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, bounds);
        let perm0 = b.permutation().to_vec();
        b.try_hilbert_resort(&pos, &mass, bounds).unwrap();
        assert_eq!(b.permutation(), perm0.as_slice());
    }

    #[test]
    fn lazy_resort_heavy_shuffle_falls_back_to_full_sort() {
        // Teleporting every body produces far more runs than MAX_LAZY_RUNS,
        // so the full-sort fallback must fire and still be correct.
        let (pos, mass) = random_system(3000, 83);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, bounds);
        let (pos2, _) = random_system(3000, 84);
        let bounds2 = Aabb::from_points(&pos2);
        b.try_hilbert_resort(&pos2, &mass, bounds2).unwrap();
        let mut full = Bvh::new();
        full.try_hilbert_sort(Par, &pos2, &mass, bounds2).unwrap();
        assert_eq!(b.permutation(), full.permutation());
        let keys = b.sorted_keys(bounds2);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lazy_resort_changed_n_falls_back() {
        let (pos, mass) = random_system(1000, 85);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, bounds);
        // Shrink the system: the previous permutation is unusable.
        let (pos2, mass2) = random_system(700, 86);
        let bounds2 = Aabb::from_points(&pos2);
        b.try_hilbert_resort(&pos2, &mass2, bounds2).unwrap();
        assert_eq!(b.n_bodies(), 700);
        let mut sorted: Vec<u32> = b.permutation().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..700u32).collect::<Vec<_>>());
    }

    #[test]
    fn lazy_resort_rejects_bad_inputs_typed() {
        let (pos, mass) = random_system(100, 87);
        let bounds = Aabb::from_points(&pos);
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, bounds);
        let mut bad = pos.clone();
        bad[3] = Vec3::new(f64::NAN, 0.0, 0.0);
        let err = b.try_hilbert_resort(&bad, &mass, bounds).unwrap_err();
        assert_eq!(err, BuildError::InvalidPositions);
        // The failed re-sort invalidated the previous sort: a build now
        // reports NotSorted instead of silently using stale data.
        assert_eq!(b.try_build_and_accumulate(Par).unwrap_err(), BuildError::NotSorted);
        // Recovery: a clean re-sort (full fallback) works again.
        b.try_hilbert_resort(&pos, &mass, bounds).unwrap();
        b.try_build_and_accumulate(Par).unwrap();
    }

    #[test]
    fn equal_keys_tie_break_by_index() {
        // Bodies in the same grid cell sort by original index → stable,
        // deterministic permutation.
        let p = Vec3::new(0.5, 0.5, 0.5);
        let pos = vec![p, p, p];
        let mass = vec![1.0, 2.0, 3.0];
        let mut b = Bvh::new();
        b.hilbert_sort(Par, &pos, &mass, Aabb::new(Vec3::ZERO, Vec3::ONE));
        assert_eq!(b.permutation(), &[0, 1, 2]);
    }
}
