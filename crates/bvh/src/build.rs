//! BVH storage and the BUILDTREE+ACCUMULATEMASS phase (paper §IV-B.2).

use nbody_math::{Aabb, Vec3};
use stdpar::prelude::*;

/// Which space-filling curve orders the bodies.
///
/// The paper's strategy uses the Hilbert curve; the Morton (Z-order) curve
/// is the common alternative in the BVH literature it cites (Lauterbach et
/// al., PLOC). Morton keys are cheaper to compute but the curve makes long
/// jumps, so first-level boxes are looser — the `curve_compare` ablation
/// bench measures the difference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Curve {
    #[default]
    Hilbert,
    Morton,
}

impl Curve {
    pub fn name(self) -> &'static str {
        match self {
            Curve::Hilbert => "hilbert",
            Curve::Morton => "morton",
        }
    }
}

/// Tuning parameters of the BVH.
#[derive(Clone, Copy, Debug)]
pub struct BvhParams {
    /// Grid resolution in bits per axis (1..=21). The paper grids bodies
    /// on "the coarsest equidistant Cartesian grid capable to hold all
    /// bodies"; finer grids give better curve locality at slightly higher
    /// key-computation cost.
    pub hilbert_bits: u32,
    /// Accumulate second moments for the quadrupole extension.
    pub quadrupole: bool,
    /// Space-filling curve for the sort (paper: Hilbert).
    pub curve: Curve,
}

impl Default for BvhParams {
    fn default() -> Self {
        BvhParams { hilbert_bits: 16, quadrupole: false, curve: Curve::Hilbert }
    }
}

/// A balanced binary BVH in implicit heap layout.
///
/// Node indexing is 1-based: the root is node 1, node `i` has children `2i`
/// and `2i+1`, and the `leaves` leaf nodes occupy `leaves..2·leaves`. The
/// number of leaves is the smallest power of two ≥ N (excess leaves are
/// empty: zero mass, empty box). Levels, nodes-per-level and total node
/// count are all predetermined, as the paper requires.
pub struct Bvh {
    pub(crate) n: usize,
    pub(crate) leaves: usize,
    /// Sorted→original body index permutation (`perm[j]` = original id of
    /// the body in leaf `j`).
    pub(crate) perm: Vec<u32>,
    /// Bodies gathered into Hilbert order.
    pub(crate) sorted_pos: Vec<Vec3>,
    pub(crate) sorted_mass: Vec<f64>,
    /// Per-node bounding boxes (index 0 unused).
    pub(crate) boxes: Vec<Aabb>,
    /// Per-node squared box diagonal, precomputed at build time so the
    /// acceptance criterion does no per-visit `extent().norm2()`.
    pub(crate) diag2: Vec<f64>,
    /// Per-node total mass.
    pub(crate) mass: Vec<f64>,
    /// Per-node centre of mass.
    pub(crate) com: Vec<Vec3>,
    /// Optional central second moments (xx, xy, xz, yy, yz, zz).
    pub(crate) quad: Option<Vec<[f64; 6]>>,
    pub(crate) params: BvhParams,
    /// Set by `hilbert_sort`, consumed by `build_and_accumulate`.
    sorted: bool,
}

impl Default for Bvh {
    fn default() -> Self {
        Self::new()
    }
}

impl Bvh {
    pub fn new() -> Self {
        Self::with_params(BvhParams::default())
    }

    pub fn with_params(params: BvhParams) -> Self {
        assert!((1..=21).contains(&params.hilbert_bits), "hilbert_bits must be in 1..=21");
        Bvh {
            n: 0,
            leaves: 0,
            perm: Vec::new(),
            sorted_pos: Vec::new(),
            sorted_mass: Vec::new(),
            boxes: Vec::new(),
            diag2: Vec::new(),
            mass: Vec::new(),
            com: Vec::new(),
            quad: None,
            params,
            sorted: false,
        }
    }

    /// Number of bodies.
    #[inline]
    pub fn n_bodies(&self) -> usize {
        self.n
    }

    /// Record that `hilbert_sort` has populated the sorted arrays.
    #[inline]
    pub(crate) fn mark_sorted(&mut self) {
        self.sorted = true;
    }

    /// Invalidate any previous sort (a failed re-sort must not leave the
    /// tree claiming stale sorted data is current).
    pub(crate) fn unmark_sorted(&mut self) {
        self.sorted = false;
    }

    /// True when a successful sort's data is current (the lazy re-sort
    /// uses this to decide whether the previous permutation is reusable).
    #[inline]
    pub(crate) fn sorted_is_current(&self) -> bool {
        self.sorted
    }

    /// Number of leaf nodes (power of two, ≥ n).
    #[inline]
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// Number of tree levels (root = level 0).
    #[inline]
    pub fn levels(&self) -> u32 {
        if self.leaves == 0 {
            0
        } else {
            self.leaves.trailing_zeros() + 1
        }
    }

    /// Sorted→original permutation of the last build.
    #[inline]
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Bodies in Hilbert order.
    #[inline]
    pub fn sorted_positions(&self) -> &[Vec3] {
        &self.sorted_pos
    }

    /// Node accessors (1-based; valid after [`Bvh::build_and_accumulate`]).
    #[inline]
    pub fn node_box(&self, i: usize) -> Aabb {
        self.boxes[i]
    }

    #[inline]
    pub fn node_mass(&self, i: usize) -> f64 {
        self.mass[i]
    }

    /// Squared diagonal of node `i`'s box (the MAC size term, precomputed).
    #[inline]
    pub fn node_diag2(&self, i: usize) -> f64 {
        self.diag2[i]
    }

    #[inline]
    pub fn node_com(&self, i: usize) -> Vec3 {
        self.com[i]
    }

    #[inline]
    pub fn node_quad(&self, i: usize) -> [f64; 6] {
        self.quad.as_ref().map(|q| q[i]).unwrap_or([0.0; 6])
    }

    /// True if node `i` is a leaf.
    #[inline]
    pub fn is_leaf(&self, i: usize) -> bool {
        i >= self.leaves
    }

    /// Original body id stored in leaf node `i` (None for empty leaves).
    #[inline]
    pub fn leaf_body(&self, i: usize) -> Option<u32> {
        debug_assert!(self.is_leaf(i));
        let j = i - self.leaves;
        if j < self.n {
            Some(self.perm[j])
        } else {
            None
        }
    }

    /// BUILDTREE + ACCUMULATEMASS: construct leaves from the sorted bodies,
    /// then reduce level by level up to the root. Requires a prior
    /// [`Bvh::hilbert_sort`](crate::sort) for the current positions.
    ///
    /// All loops are element-independent, so any policy works — including
    /// `ParUnseq` (the paper's choice).
    ///
    /// Errors with [`BuildError::NotSorted`](nbody_resilience::BuildError)
    /// when called before a successful sort of the current bodies.
    pub fn try_build_and_accumulate<P: ExecutionPolicy>(
        &mut self,
        policy: P,
    ) -> Result<(), nbody_resilience::BuildError> {
        self.try_build_structure(policy)?;
        self.accumulate_moments(policy);
        Ok(())
    }

    /// Panicking variant of [`Bvh::try_build_and_accumulate`].
    pub fn build_and_accumulate<P: ExecutionPolicy>(&mut self, policy: P) {
        self.build_structure(policy);
        self.accumulate_moments(policy);
    }

    /// Fallible variant of [`Bvh::build_structure`]: errors with
    /// [`BuildError::NotSorted`](nbody_resilience::BuildError) when called
    /// before a successful sort of the current bodies.
    pub fn try_build_structure<P: ExecutionPolicy>(
        &mut self,
        policy: P,
    ) -> Result<(), nbody_resilience::BuildError> {
        if !self.sorted {
            return Err(nbody_resilience::BuildError::NotSorted);
        }
        self.build_structure(policy);
        Ok(())
    }

    /// BUILDTREE: geometry only — per-node bounding boxes and squared
    /// diagonals, leaves up to the root. [`Bvh::accumulate_moments`]
    /// (ACCUMULATEMASS) fills masses/centres/quadrupoles afterwards; the
    /// split lets the step loop attribute structure and moment time to
    /// separate phases (`build` vs `multipole` in the timing breakdown).
    pub fn build_structure<P: ExecutionPolicy>(&mut self, policy: P) {
        assert!(self.sorted, "call hilbert_sort before build_structure");
        let n = self.n;
        let leaves = if n == 0 { 1 } else { n.next_power_of_two() };
        self.leaves = leaves;
        let total = 2 * leaves;
        self.boxes.clear();
        self.boxes.resize(total, Aabb::EMPTY);
        // Point leaves have zero diagonal; empty nodes are never visited
        // (zero mass), so zero is a safe fill for the whole array.
        self.diag2.clear();
        self.diag2.resize(total, 0.0);

        // Leaf boxes: one body per leaf, in Hilbert order. Excess leaves
        // keep the `Aabb::EMPTY` fill.
        {
            let boxes = SyncSlice::new(&mut self.boxes);
            let pos = &self.sorted_pos;
            for_each_index(policy, 0..n, |j| unsafe {
                boxes.write(leaves + j, Aabb::from_point(pos[j]));
            });
        }

        // Level-by-level bottom-up reduction (one parallel pass per level).
        // The empty-box guard replaces the mass guard of the fused build:
        // a node's subtree is body-free exactly when its box is empty.
        let mut width = leaves / 2;
        while width >= 1 {
            let boxes = SyncSlice::new(&mut self.boxes);
            let diag2 = SyncSlice::new(&mut self.diag2);
            for_each_index(policy, width..2 * width, |i| unsafe {
                let bx = boxes.read(2 * i).union(boxes.read(2 * i + 1));
                boxes.write(i, bx);
                diag2.write(i, if bx.is_empty() { 0.0 } else { bx.extent().norm2() });
            });
            width /= 2;
        }
        nbody_telemetry::record!(counter BVH_BUILDS, 1);
        nbody_telemetry::record!(gauge BVH_NODES_HIGH_WATER, total as u64);
    }

    /// ACCUMULATEMASS: per-node total mass, centre of mass and (optionally)
    /// central second moments, reduced level by level over the structure
    /// laid out by [`Bvh::build_structure`]. Must run after it; reruns are
    /// idempotent and reuse the node storage.
    pub fn accumulate_moments<P: ExecutionPolicy>(&mut self, policy: P) {
        assert!(self.sorted, "call hilbert_sort before accumulate_moments");
        let n = self.n;
        let leaves = self.leaves;
        let total = 2 * leaves;
        debug_assert_eq!(self.boxes.len(), total, "build_structure must run first");
        self.mass.clear();
        self.mass.resize(total, 0.0);
        self.com.clear();
        self.com.resize(total, Vec3::ZERO);
        if self.params.quadrupole {
            let q = self.quad.get_or_insert_with(Vec::new);
            q.clear();
            q.resize(total, [0.0; 6]);
        } else {
            self.quad = None;
        }

        // Leaf moments: one body per leaf, in Hilbert order.
        {
            let mass = SyncSlice::new(&mut self.mass);
            let com = SyncSlice::new(&mut self.com);
            let pos = &self.sorted_pos;
            let m = &self.sorted_mass;
            for_each_index(policy, 0..n, |j| unsafe {
                let i = leaves + j;
                mass.write(i, m[j]);
                com.write(i, pos[j]);
            });
        }

        // Level-by-level bottom-up reduction (one parallel pass per level).
        let mut width = leaves / 2;
        while width >= 1 {
            let mass = SyncSlice::new(&mut self.mass);
            let com = SyncSlice::new(&mut self.com);
            let quad = self.quad.as_mut().map(|q| SyncSlice::new(q));
            for_each_index(policy, width..2 * width, |i| unsafe {
                let (l, r) = (2 * i, 2 * i + 1);
                let (ml, mr) = (mass.read(l), mass.read(r));
                let m = ml + mr;
                mass.write(i, m);
                let c = if m > 0.0 {
                    (com.read(l) * ml + com.read(r) * mr) / m
                } else {
                    Vec3::ZERO
                };
                com.write(i, c);
                if let Some(q) = &quad {
                    // Parallel-axis combination of central second moments.
                    let mut s = [0.0f64; 6];
                    for (mk, k) in [(ml, l), (mr, r)] {
                        if mk > 0.0 {
                            let sk = q.read(k);
                            let d = com.read(k) - c;
                            s[0] += sk[0] + mk * d.x * d.x;
                            s[1] += sk[1] + mk * d.x * d.y;
                            s[2] += sk[2] + mk * d.x * d.z;
                            s[3] += sk[3] + mk * d.y * d.y;
                            s[4] += sk[4] + mk * d.y * d.z;
                            s[5] += sk[5] + mk * d.z * d.z;
                        }
                    }
                    q.write(i, s);
                }
            });
            width /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.1, 3.0)).collect();
        (pos, mass)
    }

    fn built(pos: &[Vec3], mass: &[f64]) -> Bvh {
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, pos, mass, Aabb::from_points(pos));
        b.build_and_accumulate(ParUnseq);
        b
    }

    #[test]
    fn leaf_count_is_power_of_two() {
        for n in [1usize, 2, 3, 7, 8, 9, 1000] {
            let (pos, mass) = random_system(n, n as u64);
            let b = built(&pos, &mass);
            assert!(b.leaf_count().is_power_of_two());
            assert!(b.leaf_count() >= n);
            assert!(b.leaf_count() < 2 * n.max(1));
        }
    }

    #[test]
    fn root_mass_and_com_match_totals() {
        let (pos, mass) = random_system(777, 61);
        let b = built(&pos, &mass);
        let total: f64 = mass.iter().sum();
        assert!((b.node_mass(1) - total).abs() < 1e-9 * total);
        let mut com = Vec3::ZERO;
        for (p, m) in pos.iter().zip(&mass) {
            com += *p * *m;
        }
        com /= total;
        assert!((b.node_com(1) - com).norm() < 1e-9);
    }

    #[test]
    fn parent_boxes_contain_child_boxes() {
        let (pos, mass) = random_system(500, 62);
        let b = built(&pos, &mass);
        for i in 1..b.leaf_count() {
            let pb = b.node_box(i);
            assert!(pb.contains_box(b.node_box(2 * i)), "node {i} left");
            assert!(pb.contains_box(b.node_box(2 * i + 1)), "node {i} right");
        }
    }

    #[test]
    fn root_box_contains_all_bodies() {
        let (pos, mass) = random_system(300, 63);
        let b = built(&pos, &mass);
        for &p in &pos {
            assert!(b.node_box(1).contains(p));
        }
    }

    #[test]
    fn every_body_in_exactly_one_leaf() {
        let (pos, mass) = random_system(143, 64);
        let b = built(&pos, &mass);
        let mut ids: Vec<u32> = (b.leaf_count()..2 * b.leaf_count())
            .filter_map(|i| b.leaf_body(i))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..143u32).collect::<Vec<_>>());
        // Excess leaves are empty.
        let empties = (b.leaf_count()..2 * b.leaf_count())
            .filter(|&i| b.leaf_body(i).is_none())
            .count();
        assert_eq!(empties, b.leaf_count() - 143);
    }

    #[test]
    fn single_body_tree() {
        let pos = vec![Vec3::new(1.0, 2.0, 3.0)];
        let mass = vec![5.0];
        let b = built(&pos, &mass);
        assert_eq!(b.leaf_count(), 1);
        assert_eq!(b.node_mass(1), 5.0);
        assert_eq!(b.node_com(1), pos[0]);
        assert_eq!(b.leaf_body(1), Some(0));
    }

    #[test]
    fn empty_input() {
        let mut b = Bvh::new();
        b.hilbert_sort(ParUnseq, &[], &[], Aabb::EMPTY);
        b.build_and_accumulate(ParUnseq);
        assert_eq!(b.n_bodies(), 0);
        assert_eq!(b.node_mass(1), 0.0);
    }

    #[test]
    fn duplicate_positions_each_get_a_leaf() {
        // No chaining needed: the balanced BVH holds one body per leaf
        // regardless of geometry — a robustness advantage over the octree.
        let p = Vec3::new(0.5, 0.5, 0.5);
        let pos = vec![p; 9];
        let mass = vec![1.0; 9];
        let b = built(&pos, &mass);
        assert_eq!(b.leaf_count(), 16);
        assert!((b.node_mass(1) - 9.0).abs() < 1e-12);
        assert!((b.node_com(1) - p).norm() < 1e-12);
    }

    #[test]
    fn levels_count() {
        let (pos, mass) = random_system(8, 65);
        let b = built(&pos, &mass);
        assert_eq!(b.leaf_count(), 8);
        assert_eq!(b.levels(), 4); // 8-4-2-1
    }

    #[test]
    fn seq_and_par_builds_agree() {
        let (pos, mass) = random_system(400, 66);
        let mut s = Bvh::new();
        s.hilbert_sort(Seq, &pos, &mass, Aabb::from_points(&pos));
        s.build_and_accumulate(Seq);
        let p = built(&pos, &mass);
        assert_eq!(s.permutation(), p.permutation());
        for i in 1..2 * s.leaf_count() {
            assert!((s.node_mass(i) - p.node_mass(i)).abs() < 1e-12);
            assert!((s.node_com(i) - p.node_com(i)).norm() < 1e-12);
        }
    }

    #[test]
    fn quadrupole_root_matches_direct() {
        let (pos, mass) = random_system(200, 67);
        let mut b = Bvh::with_params(BvhParams { quadrupole: true, ..BvhParams::default() });
        b.hilbert_sort(ParUnseq, &pos, &mass, Aabb::from_points(&pos));
        b.build_and_accumulate(ParUnseq);
        let m_tot: f64 = mass.iter().sum();
        let mut com = Vec3::ZERO;
        for (p, m) in pos.iter().zip(&mass) {
            com += *p * *m;
        }
        com /= m_tot;
        let mut s = [0.0f64; 6];
        for (p, m) in pos.iter().zip(&mass) {
            let d = *p - com;
            s[0] += m * d.x * d.x;
            s[1] += m * d.x * d.y;
            s[2] += m * d.x * d.z;
            s[3] += m * d.y * d.y;
            s[4] += m * d.y * d.z;
            s[5] += m * d.z * d.z;
        }
        let got = b.node_quad(1);
        for k in 0..6 {
            assert!((got[k] - s[k]).abs() < 1e-8 * (1.0 + s[k].abs()), "k={k}");
        }
    }

    #[test]
    #[should_panic]
    fn build_without_sort_panics() {
        let mut b = Bvh::new();
        b.build_and_accumulate(ParUnseq);
    }
}
