//! CALCULATEFORCE for the BVH (paper §IV-B.3).
//!
//! Same structure as the octree traversal, with the two differences the
//! paper calls out:
//!
//! 1. the *skip-list* nature of the complete binary tree lets the backward
//!    step jump "from a leaf node to the next node in the DFS traversal
//!    across multiple levels without traversing nodes in-between"
//!    (`while i is a right child { i /= 2 } i += 1`);
//! 2. BVH bounding boxes may be elongated and overlap, so the node size in
//!    the acceptance criterion is the **box diagonal**, which makes θ mean
//!    something slightly different (and slightly more conservative) than
//!    for the octree.

use crate::build::Bvh;
use nbody_math::gravity::{multipole_accel, pair_accel, ForceParams};
use nbody_math::Vec3;
use nbody_telemetry::{metrics, MacCounts};
use stdpar::backend::{par_grain, unseq_grain};
use stdpar::prelude::*;

impl Bvh {
    /// Compute gravitational accelerations for every body (original order).
    ///
    /// `positions` must be the same array the tree was sorted from. Every
    /// per-body computation (and, on the blocked path, per-group
    /// computation) is independent and lock-free, so all policies —
    /// including `par_unseq` — are valid (the whole point of the BVH
    /// strategy: it only needs weakly parallel forward progress).
    ///
    /// `params.eval` selects the traversal: one walk per body, or one walk
    /// per contiguous group of Hilbert-sorted bodies with shared SoA
    /// interaction lists (see [`crate::blocked`]).
    pub fn compute_forces<P: ExecutionPolicy>(
        &self,
        policy: P,
        positions: &[Vec3],
        accel: &mut [Vec3],
        params: &ForceParams,
    ) {
        let mut scratch = crate::scratch::BvhScratch::new();
        self.compute_forces_with(policy, positions, accel, params, &mut scratch);
    }

    /// [`Bvh::compute_forces`] borrowing caller-owned scratch: the blocked
    /// path draws its per-worker interaction lists from `scratch` instead
    /// of allocating per group (the per-body path needs no scratch).
    pub fn compute_forces_with<P: ExecutionPolicy>(
        &self,
        policy: P,
        positions: &[Vec3],
        accel: &mut [Vec3],
        params: &ForceParams,
        scratch: &mut crate::scratch::BvhScratch,
    ) {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since sort");
        assert_eq!(accel.len(), positions.len(), "accel length mismatch");
        if params.use_quadrupole {
            assert!(self.quad.is_some(), "quadrupole requested but not accumulated");
        }
        if let Some(group) = params.eval.resolve_group(Self::DEFAULT_BLOCK_GROUP) {
            self.compute_forces_blocked(policy, accel, params, group, &mut scratch.lists);
            return;
        }
        // Chunked rather than per-index so MAC telemetry tallies in a local
        // and flushes one atomic add per *chunk*; per-body results are
        // bitwise identical (same `accel_at` walk per body, same order).
        let n = positions.len();
        let grain = if P::UNSEQUENCED { unseq_grain(n) } else { par_grain(n) };
        let out = SyncSlice::new(accel);
        let this = self;
        for_each_chunk(policy, 0..n, grain, |r| {
            let mut mac = MacCounts::default();
            for b in r {
                let a = this.accel_at_counted(positions[b], Some(b as u32), params, &mut mac);
                unsafe { out.write(b, a) };
            }
            mac.flush(&metrics::BVH_MAC_ACCEPTS, &metrics::BVH_MAC_OPENS);
        });
    }

    /// Acceleration at point `p`, excluding original body `exclude` if given.
    pub fn accel_at(&self, p: Vec3, exclude: Option<u32>, params: &ForceParams) -> Vec3 {
        let mut mac = MacCounts::default();
        let a = self.accel_at_counted(p, exclude, params, &mut mac);
        mac.flush(&metrics::BVH_MAC_ACCEPTS, &metrics::BVH_MAC_OPENS);
        a
    }

    /// [`Bvh::accel_at`] with MAC accept/open decisions tallied into `mac`
    /// (plain locals — callers batch bodies and flush once per chunk).
    pub(crate) fn accel_at_counted(
        &self,
        p: Vec3,
        exclude: Option<u32>,
        params: &ForceParams,
        mac: &mut MacCounts,
    ) -> Vec3 {
        let mut acc = Vec3::ZERO;
        if self.n_bodies() == 0 {
            return acc;
        }
        let theta2 = params.theta * params.theta;
        let eps2 = params.softening * params.softening;
        let pad = params.mac_pad;
        // Resolve the quadrupole source once, outside the traversal loop.
        let quad = if params.use_quadrupole { self.quad.as_deref() } else { None };
        // Tally MAC decisions in plain locals (registers) for the whole
        // walk; fold into `mac` once at exit.
        let (mut accepts, mut opens) = (0u64, 0u64);

        let mut i: usize = 1; // root
        let acc = loop {
            let m = self.mass[i];
            let mut descend = false;
            if m > 0.0 {
                if self.is_leaf(i) {
                    // Exact pair-wise interaction at leaf nodes. G is
                    // hoisted: terms accumulate unscaled and the single
                    // multiply happens once at exit.
                    let j = i - self.leaves;
                    if Some(self.perm[j]) != exclude {
                        acc += pair_accel(self.sorted_pos[j] - p, self.sorted_mass[j], 1.0, eps2);
                    }
                } else {
                    let d = self.com[i] - p;
                    // Node size: the box diagonal (boxes may be elongated,
                    // hence the precomputed `diag2`), compared against the
                    // distance to the *box* rather than to the COM —
                    // elongated, overlapping BVH boxes can reach much closer
                    // to the body than their COM does.
                    let d2 = self.boxes[i].distance2_to_point(p);
                    if nbody_math::mac_accepts(self.diag2[i], d2, theta2, pad) {
                        accepts += 1;
                        acc += multipole_accel(d, m, quad.map(|q| &q[i]), 1.0, eps2);
                    } else {
                        opens += 1;
                        i *= 2; // forward step: descend into the left child
                        descend = true;
                    }
                }
            }
            if descend {
                continue;
            }
            // Backward step: skip-list jump to the next DFS node.
            let mut done = false;
            loop {
                if i == 1 {
                    done = true;
                    break;
                }
                if i & 1 == 0 {
                    i += 1; // right sibling
                    break;
                }
                i >>= 1; // climb (possibly several times: the multi-level jump)
            }
            if done {
                break acc;
            }
        };
        mac.accepts += accepts;
        mac.opens += opens;
        acc * params.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::gravity::direct_accel;
    use nbody_math::{Aabb, SplitMix64};

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        (pos, mass)
    }

    fn built(pos: &[Vec3], mass: &[f64], quad: bool) -> Bvh {
        let mut b = Bvh::with_params(crate::BvhParams { quadrupole: quad, ..Default::default() });
        b.hilbert_sort(ParUnseq, pos, mass, Aabb::from_points(pos));
        b.build_and_accumulate(ParUnseq);
        b
    }

    #[test]
    fn theta_zero_matches_direct_sum() {
        let (pos, mass) = random_system(300, 81);
        let b = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.0, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(ParUnseq, &pos, &mut acc, &params);
        for (i, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[i], Some(i as u32), &pos, &mass, 1.0, 0.0);
            assert!(
                (a - exact).norm() <= 1e-10 * (1.0 + exact.norm()),
                "body {i}: {a:?} vs {exact:?}"
            );
        }
    }

    #[test]
    fn theta_half_error_is_small() {
        let (pos, mass) = random_system(1000, 82);
        let b = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.5, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(ParUnseq, &pos, &mut acc, &params);
        let mut max_rel = 0.0f64;
        let mut mean_rel = 0.0f64;
        for (i, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[i], Some(i as u32), &pos, &mass, 1.0, 0.0);
            let r = (a - exact).norm() / (1e-12 + exact.norm());
            max_rel = max_rel.max(r);
            mean_rel += r;
        }
        mean_rel /= pos.len() as f64;
        // The max is dominated by bodies whose exact force nearly cancels
        // (tiny denominator), so bound the mean tightly and the max loosely.
        assert!(mean_rel < 0.01, "mean relative error {mean_rel}");
        assert!(max_rel < 0.15, "max relative error {max_rel}");
    }

    #[test]
    fn bvh_is_more_accurate_than_octree_criterion_at_same_theta() {
        // Not a strict theorem, but on random clouds the diagonal-based MAC
        // must open at least as many nodes as a width-based MAC would, so
        // the error should be no larger than the coarse θ=1.2 budget.
        let (pos, mass) = random_system(500, 83);
        let b = built(&pos, &mass, false);
        let params = ForceParams { theta: 1.2, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(ParUnseq, &pos, &mut acc, &params);
        let mut mean = 0.0;
        for (i, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[i], Some(i as u32), &pos, &mass, 1.0, 0.0);
            mean += (a - exact).norm() / (1e-12 + exact.norm());
        }
        mean /= pos.len() as f64;
        assert!(mean < 0.05, "mean relative error {mean}");
    }

    #[test]
    fn quadrupole_reduces_error() {
        let (pos, mass) = random_system(600, 84);
        let b = built(&pos, &mass, true);
        let mono = ForceParams { theta: 0.9, ..ForceParams::default() };
        let quad = ForceParams { theta: 0.9, use_quadrupole: true, ..ForceParams::default() };
        let mut am = vec![Vec3::ZERO; pos.len()];
        let mut aq = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(ParUnseq, &pos, &mut am, &mono);
        b.compute_forces(ParUnseq, &pos, &mut aq, &quad);
        let (mut em, mut eq) = (0.0, 0.0);
        for i in 0..pos.len() {
            let exact = direct_accel(pos[i], Some(i as u32), &pos, &mass, 1.0, 0.0);
            em += (am[i] - exact).norm() / (1e-12 + exact.norm());
            eq += (aq[i] - exact).norm() / (1e-12 + exact.norm());
        }
        assert!(eq < em, "quad {eq} vs mono {em}");
    }

    #[test]
    fn two_body_force_is_newtonian() {
        let pos = vec![Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
        let mass = vec![3.0, 5.0];
        let b = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.5, g: 2.0, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; 2];
        b.compute_forces(Par, &pos, &mut acc, &params);
        assert!((acc[0] - Vec3::new(2.0 * 5.0 / 4.0, 0.0, 0.0)).norm() < 1e-12);
        assert!((acc[1] - Vec3::new(-2.0 * 3.0 / 4.0, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn duplicate_positions_are_finite() {
        let p = Vec3::new(0.2, 0.2, 0.2);
        let pos = vec![p, p, Vec3::new(-0.7, 0.1, 0.0)];
        let mass = vec![1.0, 1.0, 1.0];
        let b = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.5, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; 3];
        b.compute_forces(Par, &pos, &mut acc, &params);
        assert!(acc.iter().all(|a| a.is_finite()));
        assert!((acc[0] - acc[1]).norm() < 1e-12);
    }

    #[test]
    fn policies_and_backends_agree_bitwise() {
        let (pos, mass) = random_system(400, 85);
        let b = built(&pos, &mass, false);
        let params = ForceParams::default();
        let mut reference: Option<Vec<Vec3>> = None;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut a = vec![Vec3::ZERO; pos.len()];
                b.compute_forces(ParUnseq, &pos, &mut a, &params);
                match &reference {
                    None => reference = Some(a),
                    Some(r) => assert_eq!(r, &a),
                }
            });
        }
        let mut seq = vec![Vec3::ZERO; pos.len()];
        b.compute_forces(Seq, &pos, &mut seq, &params);
        assert_eq!(reference.unwrap(), seq);
    }

    #[test]
    fn probe_outside_cluster() {
        let (pos, mass) = random_system(64, 86);
        let b = built(&pos, &mass, false);
        let probe = Vec3::new(10.0, 0.0, 0.0);
        let got = b.accel_at(probe, None, &ForceParams { theta: 0.5, ..Default::default() });
        let exact = direct_accel(probe, None, &pos, &mass, 1.0, 0.0);
        // Monopole truncation error scales like (cluster size / distance)²,
        // so a couple of percent is the right budget here.
        assert!((got - exact).norm() < 2e-2 * exact.norm());
    }
}
