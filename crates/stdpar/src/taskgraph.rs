//! Task-graph executor — barrier-free stepping over explicit DAGs.
//!
//! The paper's pipeline is a strict phase barrier per step (bbox → sort →
//! build → multipoles → forces → integrate): every phase is its own
//! parallel region, so a BVH step pays one `std::thread::scope`
//! spawn/join *per tree level* in the build and moment passes. This
//! module replaces the barriers with one region per step: the step is
//! expressed as a small static DAG of `(phase, tile)` nodes with explicit
//! edge lists, and a futures-free continuation scheduler runs it on the
//! same scoped-thread worker pool as the rest of the crate — moments for
//! subtree A start while subtree B is still building, a tile's second
//! kick starts the moment its force tile lands.
//!
//! ## Execution model
//!
//! [`TaskGraph`] is a grow-only arena: nodes are dense `u32` ids, edges
//! are staged as `(from, to)` pairs and sealed into a CSR successor table
//! on first run. [`TaskGraph::run`] dispatches every node exactly once,
//! respecting all edges:
//!
//! * **parallel backends** (`Dynamic`/`Threads`) — each worker owns a
//!   Chase-Lev-style deque of ready node ids (bounded: a graph of `n`
//!   nodes can push at most `n` ids per deque, so the buffers never wrap,
//!   resize, or recycle slots — no ABA). Completing a node decrements its
//!   successors' dependence counters with an acquire-release RMW; the
//!   worker that drops a counter to zero pushes the successor onto its
//!   own deque. Idle workers steal from peers with the same bounded-spin
//!   discipline as the tree builds (spin, then yield).
//! * **`Backend::DetPar`** — the node-granular analogue of the chunk
//!   executor: a single-threaded ready list driven by the active
//!   [`ScheduleMode`](crate::detpar::ScheduleMode), with node ids (not
//!   worker ids) as the trace alphabet, so a recorded DAG schedule
//!   replays byte-identically from one integer and overlap-dependent
//!   failures shrink to a pinned trace.
//! * **single worker** — nodes run inline in Kahn (FIFO topological)
//!   order.
//!
//! Every run begins with an O(V+E) Kahn pass over plain integers: it
//! proves the graph acyclic (a cycle is a caller bug and must panic, not
//! hang the worker pool) and doubles as the sequential execution order.
//!
//! ## Determinism contract
//!
//! The executor chooses only *when* a node runs, never what it computes:
//! if node bodies are pure functions of their predecessors' output and
//! write disjoint state (the [`SyncSlice`](crate::sync_slice::SyncSlice)
//! contract), the result is bitwise schedule-independent. The DetPar
//! path exists to *prove* that for a given step pipeline, not to create
//! it.

use crate::backend::{current_backend, thread_count, Backend, PanicCell};
use nbody_telemetry::record;
use std::ops::Range;
use std::sync::atomic::{fence, AtomicI64, AtomicU32, AtomicUsize, Ordering};
use std::time::Instant;

/// Failed pop/steal sweeps an idle worker spins through before yielding
/// the OS thread — the same bounded-spin discipline as the octree build's
/// lock-bit wait.
const SPIN_LIMIT: u32 = 64;

/// A static DAG of tasks plus the grow-only storage its executor needs.
///
/// Build with [`clear`](TaskGraph::clear) / [`add_node`](TaskGraph::add_node)
/// / [`add_edge`](TaskGraph::add_edge), execute with
/// [`run`](TaskGraph::run). All buffers retain capacity across
/// `clear()`, so a steady-state caller that rebuilds the same-shaped
/// graph every step allocates nothing after warm-up.
#[derive(Default)]
pub struct TaskGraph {
    /// Number of nodes in the current graph.
    n: usize,
    /// Staged edges (cleared by `clear`, folded into CSR by `seal`).
    edge_from: Vec<u32>,
    edge_to: Vec<u32>,
    sealed: bool,
    /// CSR successor table: node `i`'s successors are
    /// `succ[succ_off[i]..succ_off[i+1]]`.
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    /// Scatter cursor scratch for building `succ`.
    cursor: Vec<u32>,
    /// Initial predecessor count per node.
    dep_init: Vec<u32>,
    /// Runtime countdown counters (reset from `dep_init` every run).
    deps: Vec<AtomicU32>,
    /// Kahn scratch: plain-integer countdown + the resulting topo order.
    kahn_dep: Vec<u32>,
    topo: Vec<u32>,
    /// DetPar ready-list scratch.
    det_ready: Vec<u32>,
    /// Per-worker deque headers and the flat ring of id slots
    /// (`workers × n`, slot `w*n + k` is deque `w`'s `k`-th push).
    heads: Vec<DequeHead>,
    slots: Vec<AtomicU32>,
}

/// One worker deque's indices, padded to a cache line so two workers'
/// hot counters never false-share.
#[repr(align(64))]
#[derive(Default)]
struct DequeHead {
    /// Next slot the owner pushes to / pops from (owner-written).
    bottom: AtomicI64,
    /// Next slot thieves steal from (CAS-advanced).
    top: AtomicI64,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Discard the current graph and start a new one (capacity retained).
    pub fn clear(&mut self) {
        self.n = 0;
        self.edge_from.clear();
        self.edge_to.clear();
        self.sealed = false;
    }

    /// Add a node; returns its dense id.
    pub fn add_node(&mut self) -> u32 {
        assert!(!self.sealed, "TaskGraph: add_node after run (call clear first)");
        let id = self.n as u32;
        self.n += 1;
        id
    }

    /// Add `count` nodes; returns their contiguous id range.
    pub fn add_nodes(&mut self, count: usize) -> Range<u32> {
        let start = self.n as u32;
        for _ in 0..count {
            self.add_node();
        }
        start..self.n as u32
    }

    /// Require that `from` completes before `to` starts. Duplicate edges
    /// are allowed (each counts as one dependence; correctness is
    /// unaffected, the counter just starts higher).
    pub fn add_edge(&mut self, from: u32, to: u32) {
        assert!(!self.sealed, "TaskGraph: add_edge after run (call clear first)");
        assert!((from as usize) < self.n, "TaskGraph: edge from unknown node {from}");
        assert!((to as usize) < self.n, "TaskGraph: edge to unknown node {to}");
        assert_ne!(from, to, "TaskGraph: self-edge on node {from}");
        self.edge_from.push(from);
        self.edge_to.push(to);
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Fold the staged edge list into the CSR successor table and the
    /// initial dependence counts. Idempotent until the next `clear`.
    fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let n = self.n;
        self.succ_off.clear();
        self.succ_off.resize(n + 1, 0);
        for &f in &self.edge_from {
            self.succ_off[f as usize + 1] += 1;
        }
        for i in 0..n {
            self.succ_off[i + 1] += self.succ_off[i];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.succ_off[..n]);
        self.succ.clear();
        self.succ.resize(self.edge_from.len(), 0);
        for (&f, &t) in self.edge_from.iter().zip(&self.edge_to) {
            let c = &mut self.cursor[f as usize];
            self.succ[*c as usize] = t;
            *c += 1;
        }
        self.dep_init.clear();
        self.dep_init.resize(n, 0);
        for &t in &self.edge_to {
            self.dep_init[t as usize] += 1;
        }
        self.sealed = true;
    }

    /// Kahn pass over plain integers: fills `self.topo` with a FIFO
    /// topological order and panics on a cycle (which would otherwise
    /// hang the worker pool).
    fn toposort(&mut self) {
        let n = self.n;
        self.kahn_dep.clear();
        self.kahn_dep.extend_from_slice(&self.dep_init);
        self.topo.clear();
        self.topo.extend((0..n as u32).filter(|&i| self.kahn_dep[i as usize] == 0));
        let mut head = 0;
        while head < self.topo.len() {
            let node = self.topo[head] as usize;
            head += 1;
            for &s in &self.succ[self.succ_off[node] as usize..self.succ_off[node + 1] as usize] {
                let d = &mut self.kahn_dep[s as usize];
                *d -= 1;
                if *d == 0 {
                    self.topo.push(s);
                }
            }
        }
        assert_eq!(self.topo.len(), n, "TaskGraph: cycle detected — graph is not a DAG");
    }

    /// Execute every node exactly once, respecting all edges.
    ///
    /// `f(node, worker)` is the dispatch: `worker` is a dense index in
    /// `0..thread_count()` never observed concurrently by two threads, so
    /// nodes may key per-worker scratch (interaction-list pools) exactly
    /// like [`for_each_chunk_worker`](crate::foreach::for_each_chunk_worker)
    /// callbacks. A panicking node propagates its original payload to the
    /// caller after all workers joined.
    pub fn run(&mut self, f: impl Fn(u32, usize) + Sync) {
        self.seal();
        let n = self.n;
        if n == 0 {
            return;
        }
        self.toposort();
        record!(counter STDPAR_DAG_RUNS, 1);
        record!(counter STDPAR_DAG_NODES, n as u64);
        record!(counter STDPAR_PAR_REGIONS, 1);
        record!(counter STDPAR_CHUNKS_CLAIMED, n as u64);

        if current_backend() == Backend::DetPar {
            self.det_ready.clear();
            self.kahn_dep.clear();
            self.kahn_dep.extend_from_slice(&self.dep_init);
            crate::detpar::det_run_dag(
                &mut self.kahn_dep,
                &self.succ_off,
                &self.succ,
                &mut self.det_ready,
                |node| f(node, 0),
            );
            return;
        }

        let workers = thread_count().min(n);
        record!(gauge STDPAR_WORKERS_HIGH_WATER, workers as u64);
        if workers <= 1 {
            let t0 = nbody_telemetry::ENABLED.then(Instant::now);
            for &node in &self.topo {
                f(node, 0);
            }
            if let Some(t0) = t0 {
                record!(worker WORKER_BUSY_NANOS, 0, t0.elapsed().as_nanos() as u64);
            }
            return;
        }
        self.run_parallel(workers, &f);
    }

    fn run_parallel(&mut self, workers: usize, f: &(impl Fn(u32, usize) + Sync)) {
        let n = self.n;
        if self.deps.len() < n {
            self.deps.resize_with(n, || AtomicU32::new(0));
        }
        if self.heads.len() < workers {
            self.heads.resize_with(workers, DequeHead::default);
        }
        let need = workers * n;
        if self.slots.len() < need {
            self.slots.resize_with(need, || AtomicU32::new(0));
        }
        // Pre-scope resets: the thread-scope spawn orders these before any
        // worker's first load, so relaxed stores suffice.
        // relaxed-ok (whole loop): single-threaded initialization strictly
        // before the scope spawns; the spawn edge publishes every store.
        for (i, &d) in self.dep_init.iter().enumerate() {
            self.deps[i].store(d, Ordering::Relaxed);
        }
        for h in &self.heads[..workers] {
            h.bottom.store(0, Ordering::Relaxed);
            h.top.store(0, Ordering::Relaxed);
        }
        // Seed the initially-ready nodes round-robin across the deques (in
        // ascending id order, so the distribution is deterministic).
        let mut w = 0usize;
        for (i, &d) in self.dep_init.iter().enumerate() {
            if d == 0 {
                let b = self.heads[w].bottom.load(Ordering::Relaxed);
                self.slots[w * n + b as usize].store(i as u32, Ordering::Relaxed);
                self.heads[w].bottom.store(b + 1, Ordering::Relaxed);
                w = (w + 1) % workers;
            }
        }

        let remaining = AtomicUsize::new(n);
        let panics = PanicCell::new();
        let deps = &self.deps[..n];
        let succ_off = &self.succ_off[..];
        let succ = &self.succ[..];
        let heads = &self.heads[..workers];
        let slots = &self.slots[..need];
        let remaining_ref = &remaining;
        let panics_ref = &panics;

        std::thread::scope(|scope| {
            for me in 0..workers {
                scope.spawn(move || {
                    let mut busy = 0u64;
                    let mut steals = 0u64;
                    let mut spins = 0u32;
                    // relaxed-ok (whole worker loop): every Relaxed below is
                    // either a slot read validated by the seqcst `top` CAS of
                    // the Chase-Lev protocol, or an owner-local index store;
                    // the cross-thread publication edges are the Release
                    // `bottom` store in push, the AcqRel dependence-counter
                    // RMW, and the SeqCst fences/CAS in pop/steal.
                    loop {
                        if panics_ref.poisoned() {
                            break;
                        }
                        if remaining_ref.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        let claimed = pop_own(heads, slots, n, me).or_else(|| {
                            let mut got = None;
                            for k in 1..workers {
                                let victim = (me + k) % workers;
                                if let Some(v) = steal_from(heads, slots, n, victim) {
                                    steals += 1;
                                    got = Some(v);
                                    break;
                                }
                            }
                            got
                        });
                        let Some(node) = claimed else {
                            spins += 1;
                            if spins < SPIN_LIMIT {
                                std::hint::spin_loop();
                            } else {
                                spins = 0;
                                std::thread::yield_now();
                            }
                            continue;
                        };
                        spins = 0;
                        let t0 = nbody_telemetry::ENABLED.then(Instant::now);
                        panics_ref.run(|| f(node, me));
                        if let Some(t0) = t0 {
                            busy += t0.elapsed().as_nanos() as u64;
                        }
                        if panics_ref.poisoned() {
                            break;
                        }
                        let node = node as usize;
                        let succs =
                            &succ[succ_off[node] as usize..succ_off[node + 1] as usize];
                        for &s in succs {
                            // The worker that retires a node's final
                            // dependence acquires every sibling's release
                            // and republishes via its deque push.
                            if deps[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                push_own(heads, slots, n, me, s);
                            }
                        }
                        remaining_ref.fetch_sub(1, Ordering::AcqRel);
                    }
                    if busy > 0 {
                        record!(worker WORKER_BUSY_NANOS, me, busy);
                    }
                    if steals > 0 {
                        record!(counter STDPAR_DAG_STEALS, steals);
                    }
                });
            }
        });
        panics.rethrow();
    }
}

/// Owner-side push onto worker `me`'s deque. Slots are written once and
/// never recycled (the deque holds at most `n` ids over its lifetime), so
/// publication is just the Release store of `bottom`.
#[inline]
fn push_own(heads: &[DequeHead], slots: &[AtomicU32], n: usize, me: usize, v: u32) {
    let h = &heads[me];
    // relaxed-ok (both loads/stores except the Release): `bottom` is
    // owner-written only; the slot store is published by the Release below.
    let b = h.bottom.load(Ordering::Relaxed);
    debug_assert!((b as usize) < n, "task deque overflow");
    slots[me * n + b as usize].store(v, Ordering::Relaxed);
    h.bottom.store(b + 1, Ordering::Release);
}

/// Owner-side pop (LIFO end) of worker `me`'s deque.
#[inline]
fn pop_own(heads: &[DequeHead], slots: &[AtomicU32], n: usize, me: usize) -> Option<u32> {
    let h = &heads[me];
    // relaxed-ok (protocol): the classic Chase-Lev owner pop — the SeqCst
    // fence orders the speculative `bottom` store against the `top` read,
    // and the last-element race is settled by the SeqCst CAS on `top`.
    let b = h.bottom.load(Ordering::Relaxed) - 1;
    if b < h.top.load(Ordering::Relaxed) {
        return None; // fast path: visibly empty, skip the speculative store
    }
    // relaxed-ok: speculative `bottom` store + `top` re-read — the SeqCst
    // fence between them is what orders the pair against thieves; slot
    // reads are owner-local (written by this thread's push).
    h.bottom.store(b, Ordering::Relaxed);
    fence(Ordering::SeqCst);
    let t = h.top.load(Ordering::Relaxed);
    if t < b {
        // relaxed-ok: owner-local slot read (written by this thread's push).
        return Some(slots[me * n + b as usize].load(Ordering::Relaxed));
    }
    if t == b {
        // Exactly one element: race the thieves for it. The SeqCst CAS on
        // `top` settles ownership; everything else here is owner-local.
        // relaxed-ok: CAS failure ordering + owner-only `bottom` restore.
        let won = h.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok();
        h.bottom.store(b + 1, Ordering::Relaxed);
        return won.then(|| slots[me * n + b as usize].load(Ordering::Relaxed));
    }
    // relaxed-ok: owner-only `bottom` restore (no element was taken).
    h.bottom.store(b + 1, Ordering::Relaxed);
    None
}

/// Thief-side steal (FIFO end) from worker `victim`'s deque.
#[inline]
fn steal_from(heads: &[DequeHead], slots: &[AtomicU32], n: usize, victim: usize) -> Option<u32> {
    let h = &heads[victim];
    let t = h.top.load(Ordering::Acquire);
    fence(Ordering::SeqCst);
    let b = h.bottom.load(Ordering::Acquire);
    if t < b {
        // relaxed-ok: slot `t` was written before `bottom` advanced past it
        // (Acquire on `bottom` above pairs with the push's Release), and
        // slots are never recycled, so the value is stable; the SeqCst CAS
        // decides ownership.
        let v = slots[victim * n + t as usize].load(Ordering::Relaxed);
        if h.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
            return Some(v);
        }
    }
    None
}

/// Run two independent closures, overlapping them on real parallel
/// backends: `b` runs on a spawned scoped thread while `a` runs on the
/// caller. Under `Backend::DetPar` (or a single-thread pool) they run
/// sequentially — `a` then `b` — so deterministic replay covers the pair.
///
/// The caller guarantees `a` and `b` touch disjoint state; the results are
/// then identical in both regimes. Panics propagate with their original
/// payload (if both panic, `a`'s wins — it unwinds the caller).
pub fn run_pair<A, B>(a: impl FnOnce() -> A, b: impl FnOnce() -> B + Send) -> (A, B)
where
    B: Send,
{
    if current_backend() == Backend::DetPar || thread_count() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope
            .spawn(|| std::panic::catch_unwind(std::panic::AssertUnwindSafe(b)));
        let ra = a();
        match hb.join() {
            Ok(Ok(rb)) => (ra, rb),
            Ok(Err(payload)) => std::panic::resume_unwind(payload),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, with_threads, Backend};
    use crate::detpar::{record_trace, replay_trace, with_schedule, ScheduleMode};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A diamond over `width` parallel middles: src → m_i → sink.
    fn diamond(g: &mut TaskGraph, width: usize) -> (u32, Range<u32>, u32) {
        g.clear();
        let src = g.add_node();
        let mids = g.add_nodes(width);
        let sink = g.add_node();
        for m in mids.clone() {
            g.add_edge(src, m);
            g.add_edge(m, sink);
        }
        (src, mids, sink)
    }

    #[test]
    fn runs_every_node_once_on_every_backend() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut g = TaskGraph::new();
                let (_, _, _) = diamond(&mut g, 37);
                let hits: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
                g.run(|node, _| {
                    hits[node as usize].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "backend={}",
                    backend.name()
                );
            });
        }
    }

    #[test]
    fn edges_order_execution() {
        // A chain a→b→c→…: completion stamps must be strictly increasing.
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut g = TaskGraph::new();
                g.clear();
                let nodes = g.add_nodes(64);
                for i in nodes.start..nodes.end - 1 {
                    g.add_edge(i, i + 1);
                }
                let clock = AtomicU64::new(0);
                let stamps: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
                g.run(|node, _| {
                    stamps[node as usize]
                        .store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
                });
                for i in 1..64 {
                    assert!(
                        stamps[i].load(Ordering::SeqCst) > stamps[i - 1].load(Ordering::SeqCst)
                    );
                }
            });
        }
    }

    #[test]
    fn dependence_publishes_writes() {
        // The successor must observe everything its predecessors wrote
        // (the release/acquire chain through counters and deques).
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut g = TaskGraph::new();
                let width = 61;
                let (src, mids, sink) = diamond(&mut g, width);
                let mut data = vec![0u64; width];
                let view = crate::sync_slice::SyncSlice::new(&mut data);
                let sum = AtomicU64::new(0);
                g.run(|node, _| {
                    if node == src {
                        // nothing
                    } else if node == sink {
                        let mut s = 0;
                        for i in 0..width {
                            s += unsafe { view.read(i) };
                        }
                        sum.store(s, Ordering::SeqCst);
                    } else {
                        let i = (node - mids.start) as usize;
                        unsafe { view.write(i, (i as u64) + 1) };
                    }
                });
                assert_eq!(
                    sum.load(Ordering::SeqCst),
                    (1..=width as u64).sum::<u64>(),
                    "backend={}",
                    backend.name()
                );
            });
        }
    }

    #[test]
    fn reuse_after_clear_is_clean() {
        let mut g = TaskGraph::new();
        for width in [5usize, 17, 3] {
            diamond(&mut g, width);
            let count = AtomicUsize::new(0);
            g.run(|_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), width + 2);
        }
    }

    #[test]
    fn single_worker_runs_inline_in_topo_order() {
        with_threads(1, || {
            let mut g = TaskGraph::new();
            let (src, mids, sink) = diamond(&mut g, 8);
            let order = Mutex::new(Vec::new());
            g.run(|node, worker| {
                assert_eq!(worker, 0);
                order.lock().unwrap().push(node);
            });
            let order = order.into_inner().unwrap();
            assert_eq!(order[0], src);
            assert_eq!(*order.last().unwrap(), sink);
            assert_eq!(order.len(), mids.len() + 2);
        });
    }

    #[test]
    #[should_panic(expected = "cycle detected")]
    fn cycle_panics_instead_of_hanging() {
        let mut g = TaskGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.run(|_, _| {});
    }

    #[test]
    fn node_panic_propagates_payload() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut g = TaskGraph::new();
                diamond(&mut g, 19);
                let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    g.run(|node, _| {
                        if node == 7 {
                            panic!("node 7 failed");
                        }
                    });
                }))
                .unwrap_err();
                let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "node 7 failed", "backend={}", backend.name());
                // The arena must be reusable after a panicked run.
                g.clear();
                diamond(&mut g, 4);
                g.run(|_, _| {});
            });
        }
    }

    #[test]
    fn detpar_same_seed_same_claim_order() {
        with_backend(Backend::DetPar, || {
            let order_of = |seed| {
                let order = Mutex::new(Vec::new());
                with_schedule(seed, ScheduleMode::Random, || {
                    let mut g = TaskGraph::new();
                    diamond(&mut g, 23);
                    g.run(|node, _| order.lock().unwrap().push(node));
                });
                order.into_inner().unwrap()
            };
            assert_eq!(order_of(42), order_of(42), "same seed must replay identically");
            assert_ne!(order_of(42), order_of(43), "different seeds should differ");
        });
    }

    #[test]
    fn detpar_trace_replays_node_claim_order() {
        with_backend(Backend::DetPar, || {
            let run = || {
                let order = Mutex::new(Vec::new());
                let mut g = TaskGraph::new();
                diamond(&mut g, 23);
                g.run(|node, _| order.lock().unwrap().push(node));
                order.into_inner().unwrap()
            };
            let (order_a, trace) = record_trace(|| with_schedule(11, ScheduleMode::Random, run));
            assert_eq!(trace.len(), 1, "one DAG region recorded");
            assert_eq!(trace[0].len(), 25, "trace is node-granular: one entry per node");
            let order_b = replay_trace(trace, run);
            assert_eq!(order_a, order_b, "node trace must pin the claim order");
        });
    }

    #[test]
    fn detpar_modes_all_respect_edges() {
        with_backend(Backend::DetPar, || {
            for mode in ScheduleMode::ALL {
                with_schedule(9, mode, || {
                    let mut g = TaskGraph::new();
                    g.clear();
                    let nodes = g.add_nodes(40);
                    for i in nodes.start..nodes.end - 1 {
                        g.add_edge(i, i + 1);
                    }
                    let order = Mutex::new(Vec::new());
                    g.run(|node, _| order.lock().unwrap().push(node));
                    let order = order.into_inner().unwrap();
                    assert_eq!(order, (0..40).collect::<Vec<_>>(), "mode={}", mode.name());
                });
            }
        });
    }

    #[test]
    fn run_pair_returns_both_results_everywhere() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let (a, b) = run_pair(|| 6 * 7, || "done");
                assert_eq!((a, b), (42, "done"));
            });
        }
        with_backend(Backend::DetPar, || {
            let (a, b) = run_pair(|| 1, || 2);
            assert_eq!((a, b), (1, 2));
        });
    }

    #[test]
    fn run_pair_propagates_spawned_panic() {
        let err = std::panic::catch_unwind(|| {
            run_pair(|| 0u32, || -> u32 { panic!("b failed") })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "b failed");
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let mut g = TaskGraph::new();
        g.run(|_, _| panic!("must not run"));
        g.clear();
        g.run(|_, _| panic!("must not run"));
    }

    #[test]
    fn wide_graph_saturates_and_completes() {
        // More nodes than workers, uneven costs: exercises stealing.
        let mut g = TaskGraph::new();
        g.clear();
        let nodes = g.add_nodes(300);
        let sink = g.add_node();
        for i in nodes.clone() {
            g.add_edge(i, sink);
        }
        let total = AtomicU64::new(0);
        g.run(|node, _| {
            if node != sink {
                // Uneven spin so some workers finish early and steal.
                let mut acc = 0u64;
                for k in 0..(node as u64 % 97) * 50 {
                    acc = acc.wrapping_add(k);
                }
                std::hint::black_box(acc);
                total.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }
}
