//! `std::transform_reduce` and friends.
//!
//! The paper's CALCULATEBOUNDINGBOX step is exactly a `transform_reduce`
//! over body indices with a box-union reduction (Algorithm 3). The
//! reduction operator must be associative and commutative — the parallel
//! versions combine partials in unspecified order, as in C++.

use crate::backend::{
    current_backend, par_grain, split_range, thread_count, unseq_grain, Backend,
};
use crate::policy::ExecutionPolicy;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `transform_reduce(policy, iota(range), identity, reduce, transform)`.
///
/// Maps each index through `transform` and folds the results with `reduce`,
/// starting from `identity` (which must be the neutral element).
pub fn transform_reduce<P, R>(
    _policy: P,
    range: Range<usize>,
    identity: R,
    reduce_op: impl Fn(R, R) -> R + Sync + Send,
    transform: impl Fn(usize) -> R + Sync + Send,
) -> R
where
    P: ExecutionPolicy,
    R: Send + Sync + Clone,
{
    if !P::IS_PARALLEL {
        let mut acc = identity;
        for i in range {
            acc = reduce_op(acc, transform(i));
        }
        return acc;
    }
    match current_backend() {
        Backend::Dynamic => {
            let n = range.len();
            let grain = if P::UNSEQUENCED { unseq_grain(n) } else { par_grain(n).max(256) };
            dynamic_reduce(range, grain, identity, &reduce_op, &transform)
        }
        Backend::Threads => {
            if range.is_empty() {
                return identity;
            }
            if thread_count() <= 1 {
                // Single worker: fold inline without spawning or allocating
                // the partials vector.
                let mut acc = identity;
                for i in range {
                    acc = reduce_op(acc, transform(i));
                }
                return acc;
            }
            let chunks = split_range(range, thread_count());
            let mut partials: Vec<Option<R>> = vec![None; chunks.len()];
            let panics = crate::backend::PanicCell::new();
            std::thread::scope(|s| {
                for (slot, r) in partials.iter_mut().zip(chunks) {
                    let reduce_op = &reduce_op;
                    let transform = &transform;
                    let panics = &panics;
                    let id = identity.clone();
                    s.spawn(move || {
                        panics.run(|| {
                            let mut acc = id;
                            for i in r {
                                acc = reduce_op(acc, transform(i));
                            }
                            *slot = Some(acc);
                        })
                    });
                }
            });
            panics.rethrow();
            let mut acc = identity;
            for p in partials.into_iter().flatten() {
                acc = reduce_op(acc, p);
            }
            acc
        }
        Backend::DetPar => {
            let n = range.len();
            let grain = if P::UNSEQUENCED { unseq_grain(n) } else { par_grain(n).max(256) };
            crate::detpar::det_reduce(range, grain, identity, reduce_op, transform)
        }
    }
}

/// Self-scheduling reduction: workers claim `grain`-sized chunks from a
/// shared cursor, fold them into a worker-local accumulator, and the
/// per-worker partials are combined at the end. Panic-safe like
/// [`crate::backend::dynamic_chunks`].
fn dynamic_reduce<R>(
    range: Range<usize>,
    grain: usize,
    identity: R,
    reduce_op: &(impl Fn(R, R) -> R + Sync),
    transform: &(impl Fn(usize) -> R + Sync),
) -> R
where
    R: Send + Sync + Clone,
{
    let n = range.len();
    if n == 0 {
        return identity;
    }
    let grain = grain.max(1);
    let workers = thread_count().min(n.div_ceil(grain));
    if workers <= 1 {
        let mut acc = identity;
        for i in range {
            acc = reduce_op(acc, transform(i));
        }
        return acc;
    }
    let cursor = AtomicUsize::new(range.start);
    let end = range.end;
    let mut partials: Vec<Option<R>> = vec![None; workers];
    let panics = crate::backend::PanicCell::new();
    std::thread::scope(|s| {
        for slot in partials.iter_mut() {
            let cursor = &cursor;
            let panics = &panics;
            let id = identity.clone();
            s.spawn(move || {
                panics.run(|| {
                    let mut acc = id;
                    loop {
                        if panics.poisoned() {
                            break;
                        }
                        let start = cursor.fetch_add(grain, Ordering::Relaxed);
                        if start >= end {
                            break;
                        }
                        for i in start..(start + grain).min(end) {
                            acc = reduce_op(acc, transform(i));
                        }
                    }
                    *slot = Some(acc);
                })
            });
        }
    });
    panics.rethrow();
    let mut acc = identity;
    for p in partials.into_iter().flatten() {
        acc = reduce_op(acc, p);
    }
    acc
}

/// Fold a slice with an associative+commutative operator.
pub fn reduce<P, T>(
    policy: P,
    items: &[T],
    identity: T,
    reduce_op: impl Fn(T, T) -> T + Sync + Send,
) -> T
where
    P: ExecutionPolicy,
    T: Send + Sync + Clone,
{
    transform_reduce(policy, 0..items.len(), identity, reduce_op, |i| items[i].clone())
}

/// Index of the minimum element under `key` (first one wins ties
/// deterministically by smallest index). Returns `None` for empty input.
pub fn min_element<P, T, K>(policy: P, items: &[T], key: impl Fn(&T) -> K + Sync) -> Option<usize>
where
    P: ExecutionPolicy,
    T: Sync,
    K: PartialOrd + Send + Sync + Clone,
{
    if items.is_empty() {
        return None;
    }
    let best = transform_reduce(
        policy,
        0..items.len(),
        None::<(usize, K)>,
        |a, b| match (a, b) {
            (None, x) => x,
            (x, None) => x,
            (Some((ia, ka)), Some((ib, kb))) => match kb.partial_cmp(&ka) {
                Some(std::cmp::Ordering::Less) => Some((ib, kb)),
                Some(std::cmp::Ordering::Equal) if ib < ia => Some((ib, kb)),
                _ => Some((ia, ka)),
            },
        },
        |i| Some((i, key(&items[i]))),
    );
    best.map(|(i, _)| i)
}

/// Index of the maximum element under `key`. See [`min_element`].
pub fn max_element<P, T, K>(policy: P, items: &[T], key: impl Fn(&T) -> K + Sync) -> Option<usize>
where
    P: ExecutionPolicy,
    T: Sync,
    K: PartialOrd + Send + Sync + Clone,
{
    if items.is_empty() {
        return None;
    }
    let best = transform_reduce(
        policy,
        0..items.len(),
        None::<(usize, K)>,
        |a, b| match (a, b) {
            (None, x) => x,
            (x, None) => x,
            (Some((ia, ka)), Some((ib, kb))) => match kb.partial_cmp(&ka) {
                Some(std::cmp::Ordering::Greater) => Some((ib, kb)),
                Some(std::cmp::Ordering::Equal) if ib < ia => Some((ib, kb)),
                _ => Some((ia, ka)),
            },
        },
        |i| Some((i, key(&items[i]))),
    );
    best.map(|(i, _)| i)
}

/// Count the indices for which `pred` holds.
pub fn count_if<P: ExecutionPolicy>(
    policy: P,
    range: Range<usize>,
    pred: impl Fn(usize) -> bool + Sync + Send,
) -> usize {
    transform_reduce(policy, range, 0usize, |a, b| a + b, |i| usize::from(pred(i)))
}

/// True iff `pred` holds for every index (vacuously true on empty ranges).
pub fn all_of<P: ExecutionPolicy>(
    policy: P,
    range: Range<usize>,
    pred: impl Fn(usize) -> bool + Sync + Send,
) -> bool {
    transform_reduce(policy, range, true, |a, b| a && b, pred)
}

/// True iff `pred` holds for at least one index.
pub fn any_of<P: ExecutionPolicy>(
    policy: P,
    range: Range<usize>,
    pred: impl Fn(usize) -> bool + Sync + Send,
) -> bool {
    transform_reduce(policy, range, false, |a, b| a || b, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};

    fn sum_matches<P: ExecutionPolicy + Copy>(p: P) {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let n = 100_000usize;
                let got = transform_reduce(p, 0..n, 0u64, |a, b| a + b, |i| i as u64);
                assert_eq!(got, (n as u64 - 1) * n as u64 / 2);
            });
        }
    }

    #[test]
    fn sum_seq() {
        sum_matches(Seq);
    }

    #[test]
    fn sum_par() {
        sum_matches(Par);
    }

    #[test]
    fn sum_par_unseq() {
        sum_matches(ParUnseq);
    }

    #[test]
    fn empty_range_returns_identity() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(transform_reduce(Par, 7..7, 42u32, |a, b| a + b, |_| 1), 42);
            });
        }
    }

    #[test]
    fn reduce_slice() {
        let v: Vec<u32> = (1..=100).collect();
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(reduce(Par, &v, 0, |a, b| a + b), 5050);
                assert_eq!(reduce(ParUnseq, &v, u32::MAX, |a, b| a.min(b)), 1);
            });
        }
    }

    #[test]
    fn min_max_element() {
        let v = vec![5.0f64, -1.0, 3.0, -1.0, 9.0, 9.0];
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(min_element(Par, &v, |&x| x), Some(1)); // first -1.0
                assert_eq!(max_element(Par, &v, |&x| x), Some(4)); // first 9.0
                assert_eq!(min_element(Seq, &v, |&x| x), Some(1));
                assert_eq!(max_element(ParUnseq, &v, |&x| x), Some(4));
            });
        }
        let empty: Vec<f64> = vec![];
        assert_eq!(min_element(Par, &empty, |&x| x), None);
        assert_eq!(max_element(Par, &empty, |&x| x), None);
    }

    #[test]
    fn count_all_any() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(count_if(Par, 0..100, |i| i % 3 == 0), 34);
                assert!(all_of(Par, 0..100, |i| i < 100));
                assert!(!all_of(ParUnseq, 0..100, |i| i < 99));
                assert!(any_of(Par, 0..100, |i| i == 57));
                assert!(!any_of(Par, 0..100, |i| i > 1000));
                // Vacuous truth / falsity on empty ranges.
                assert!(all_of(Par, 3..3, |_| false));
                assert!(!any_of(Par, 3..3, |_| true));
            });
        }
    }

    #[test]
    fn panicking_transform_propagates() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    transform_reduce(Par, 0..100_000, 0u64, |a, b| a + b, |i| {
                        if i == 31_337 {
                            panic!("bad index");
                        }
                        i as u64
                    });
                }))
                .unwrap_err();
                let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "bad index", "backend={}", backend.name());
            });
        }
    }

    #[test]
    fn bounding_box_style_reduction() {
        // Mirrors paper Algorithm 3: reduce (min, max) tuples.
        let xs: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 1000) as f64 - 500.0).collect();
        for backend in Backend::ALL {
            with_backend(backend, || {
                let (lo, hi) = transform_reduce(
                    ParUnseq,
                    0..xs.len(),
                    (f64::INFINITY, f64::NEG_INFINITY),
                    |a, b| (a.0.min(b.0), a.1.max(b.1)),
                    |i| (xs[i], xs[i]),
                );
                assert_eq!(lo, -500.0);
                assert_eq!(hi, 499.0);
            });
        }
    }
}
