//! Parallel prefix sums (`std::exclusive_scan` / `std::inclusive_scan`).
//!
//! Used by the BVH level construction offsets and by benchmark harnesses.
//! The parallel algorithm is the classic three-phase blocked scan:
//! (1) per-chunk partial reductions in parallel, (2) a short sequential
//! scan over the chunk totals, (3) a parallel per-chunk re-scan seeded with
//! the chunk offset. The operator must be associative.

use crate::backend::thread_count;
use crate::foreach::for_each_index;
use crate::policy::ExecutionPolicy;
use crate::sync_slice::SyncSlice;

/// Exclusive prefix scan: `out[i] = init ⊕ in[0] ⊕ … ⊕ in[i-1]`.
pub fn exclusive_scan<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    scan_impl(policy, input, init, op, false)
}

/// Inclusive prefix scan: `out[i] = init ⊕ in[0] ⊕ … ⊕ in[i]`.
pub fn inclusive_scan<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    scan_impl(policy, input, init, op, true)
}

fn scan_impl<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
    inclusive: bool,
) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    let n = input.len();
    if n == 0 {
        return vec![];
    }
    if !P::IS_PARALLEL || n < 4096 {
        let mut out = Vec::with_capacity(n);
        let mut acc = init;
        for &v in input {
            if inclusive {
                acc = op(acc, v);
                out.push(acc);
            } else {
                out.push(acc);
                acc = op(acc, v);
            }
        }
        return out;
    }

    let chunks = crate::backend::split_range(0..n, 4 * thread_count());
    let nchunks = chunks.len();

    // Phase 1: per-chunk totals.
    let mut totals: Vec<Option<T>> = vec![None; nchunks];
    {
        let totals_view = SyncSlice::new(&mut totals);
        let chunks_ref = &chunks;
        let op_ref = &op;
        for_each_index(policy, 0..nchunks, |c| {
            let r = chunks_ref[c].clone();
            let mut acc = input[r.start];
            for &v in &input[r.start + 1..r.end] {
                acc = op_ref(acc, v);
            }
            unsafe { totals_view.write(c, Some(acc)) };
        });
    }

    // Phase 2: sequential scan of chunk totals → chunk seeds.
    let mut seeds = Vec::with_capacity(nchunks);
    let mut acc = init;
    for t in totals.into_iter().flatten() {
        seeds.push(acc);
        acc = op(acc, t);
    }

    // Phase 3: per-chunk scans seeded by offsets.
    let mut out: Vec<T> = vec![init; n];
    {
        let out_view = SyncSlice::new(&mut out);
        let chunks_ref = &chunks;
        let seeds_ref = &seeds;
        let op_ref = &op;
        for_each_index(policy, 0..nchunks, |c| {
            let r = chunks_ref[c].clone();
            let mut acc = seeds_ref[c];
            for i in r {
                if inclusive {
                    acc = op_ref(acc, input[i]);
                    unsafe { out_view.write(i, acc) };
                } else {
                    unsafe { out_view.write(i, acc) };
                    acc = op_ref(acc, input[i]);
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};

    #[test]
    fn exclusive_matches_reference_small() {
        let input = vec![1u64, 2, 3, 4, 5];
        let out = exclusive_scan(Seq, &input, 0, |a, b| a + b);
        assert_eq!(out, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn inclusive_matches_reference_small() {
        let input = vec![1u64, 2, 3, 4, 5];
        let out = inclusive_scan(Seq, &input, 0, |a, b| a + b);
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        let input: Vec<u64> = (0..100_000).map(|i| (i * 2654435761u64) % 1000).collect();
        let expect_ex = exclusive_scan(Seq, &input, 7, |a, b| a + b);
        let expect_in = inclusive_scan(Seq, &input, 7, |a, b| a + b);
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(exclusive_scan(Par, &input, 7, |a, b| a + b), expect_ex);
                assert_eq!(inclusive_scan(Par, &input, 7, |a, b| a + b), expect_in);
                assert_eq!(exclusive_scan(ParUnseq, &input, 7, |a, b| a + b), expect_ex);
                assert_eq!(inclusive_scan(ParUnseq, &input, 7, |a, b| a + b), expect_in);
            });
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(exclusive_scan(Par, &empty, 0, |a, b| a + b).is_empty());
        assert!(inclusive_scan(Par, &empty, 0, |a, b| a + b).is_empty());
        assert_eq!(exclusive_scan(Par, &[9u32], 1, |a, b| a + b), vec![1]);
        assert_eq!(inclusive_scan(Par, &[9u32], 1, |a, b| a + b), vec![10]);
    }

    #[test]
    fn scan_with_max_operator() {
        let input = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
        let out = inclusive_scan(Seq, &input, i64::MIN, |a, b| a.max(b));
        assert_eq!(out, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }
}
