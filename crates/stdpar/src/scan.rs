//! Parallel prefix sums (`std::exclusive_scan` / `std::inclusive_scan`).
//!
//! Used by the BVH level construction offsets and by benchmark harnesses.
//! The parallel algorithm is the classic three-phase blocked scan:
//! (1) per-chunk partial reductions in parallel, (2) a short sequential
//! scan over the chunk totals, (3) a parallel per-chunk re-scan seeded with
//! the chunk offset. The operator must be associative.
//!
//! Two API layers:
//!
//! * [`exclusive_scan`] / [`inclusive_scan`] — convenience forms returning a
//!   fresh `Vec` per call;
//! * [`exclusive_scan_into`] / [`inclusive_scan_into`] — allocation-free on
//!   warm buffers: the caller owns the output vector and a [`ScanScratch`]
//!   (chunk totals + seeds), so steady-state callers (e.g. a simulation
//!   loop drawing from `SimWorkspace`) never touch the heap. The `Vec`
//!   forms delegate to the `_into` forms with throwaway scratch.

use crate::backend::max_workers;
use crate::foreach::for_each_index;
use crate::policy::ExecutionPolicy;
use crate::sync_slice::SyncSlice;

/// Reusable intermediate buffers for the blocked parallel scan: per-chunk
/// totals (phase 1) and per-chunk seed offsets (phase 2). Construction is
/// allocation-free; buffers grow to the high-water chunk count on first use
/// and are fully overwritten by every scan, so one scratch can serve scans
/// of any size in any order.
#[derive(Default)]
pub struct ScanScratch<T> {
    totals: Vec<Option<T>>,
    seeds: Vec<T>,
}

impl<T> ScanScratch<T> {
    /// An empty scratch (no allocations until first parallel scan).
    pub fn new() -> Self {
        Self { totals: Vec::new(), seeds: Vec::new() }
    }
}

/// Exclusive prefix scan: `out[i] = init ⊕ in[0] ⊕ … ⊕ in[i-1]`.
pub fn exclusive_scan<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    let mut out = Vec::new();
    exclusive_scan_into(policy, input, init, op, &mut ScanScratch::new(), &mut out);
    out
}

/// Inclusive prefix scan: `out[i] = init ⊕ in[0] ⊕ … ⊕ in[i]`.
pub fn inclusive_scan<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    let mut out = Vec::new();
    inclusive_scan_into(policy, input, init, op, &mut ScanScratch::new(), &mut out);
    out
}

/// [`exclusive_scan`] into caller-owned storage: allocation-free once `out`
/// and `scratch` have warmed up to the input size.
pub fn exclusive_scan_into<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
    scratch: &mut ScanScratch<T>,
    out: &mut Vec<T>,
) where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    scan_into_impl(policy, input, init, op, false, scratch, out);
}

/// [`inclusive_scan`] into caller-owned storage: allocation-free once `out`
/// and `scratch` have warmed up to the input size.
pub fn inclusive_scan_into<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
    scratch: &mut ScanScratch<T>,
    out: &mut Vec<T>,
) where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    scan_into_impl(policy, input, init, op, true, scratch, out);
}

fn scan_into_impl<P, T>(
    policy: P,
    input: &[T],
    init: T,
    op: impl Fn(T, T) -> T + Sync + Send,
    inclusive: bool,
    scratch: &mut ScanScratch<T>,
    out: &mut Vec<T>,
) where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    let n = input.len();
    out.clear();
    if n == 0 {
        return;
    }
    if !P::IS_PARALLEL || n < 4096 {
        out.reserve(n);
        let mut acc = init;
        for &v in input {
            if inclusive {
                acc = op(acc, v);
                out.push(acc);
            } else {
                out.push(acc);
                acc = op(acc, v);
            }
        }
        return;
    }

    // Chunk geometry is pure arithmetic (no per-call range vector): chunk c
    // covers `c*len .. min((c+1)*len, n)`. Aim for 4 chunks per worker so
    // dynamic backends can load-balance.
    let len = n.div_ceil(4 * max_workers()).max(1);
    let nchunks = n.div_ceil(len);
    let chunk_of = move |c: usize| c * len..((c + 1) * len).min(n);

    // Phase 1: per-chunk totals.
    scratch.totals.clear();
    scratch.totals.resize(nchunks, None);
    {
        let totals_view = SyncSlice::new(&mut scratch.totals);
        let op_ref = &op;
        for_each_index(policy, 0..nchunks, |c| {
            let r = chunk_of(c);
            let mut acc = input[r.start];
            for &v in &input[r.start + 1..r.end] {
                acc = op_ref(acc, v);
            }
            unsafe { totals_view.write(c, Some(acc)) };
        });
    }

    // Phase 2: sequential scan of chunk totals → chunk seeds.
    scratch.seeds.clear();
    scratch.seeds.reserve(nchunks);
    let mut acc = init;
    for t in scratch.totals.iter().flatten() {
        scratch.seeds.push(acc);
        acc = op(acc, *t);
    }

    // Phase 3: per-chunk scans seeded by offsets.
    out.resize(n, init);
    {
        let out_view = SyncSlice::new(out);
        let seeds_ref = &scratch.seeds;
        let op_ref = &op;
        for_each_index(policy, 0..nchunks, |c| {
            let mut acc = seeds_ref[c];
            for i in chunk_of(c) {
                if inclusive {
                    acc = op_ref(acc, input[i]);
                    unsafe { out_view.write(i, acc) };
                } else {
                    unsafe { out_view.write(i, acc) };
                    acc = op_ref(acc, input[i]);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};

    #[test]
    fn exclusive_matches_reference_small() {
        let input = vec![1u64, 2, 3, 4, 5];
        let out = exclusive_scan(Seq, &input, 0, |a, b| a + b);
        assert_eq!(out, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn inclusive_matches_reference_small() {
        let input = vec![1u64, 2, 3, 4, 5];
        let out = inclusive_scan(Seq, &input, 0, |a, b| a + b);
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        let input: Vec<u64> = (0..100_000).map(|i| (i * 2654435761u64) % 1000).collect();
        let expect_ex = exclusive_scan(Seq, &input, 7, |a, b| a + b);
        let expect_in = inclusive_scan(Seq, &input, 7, |a, b| a + b);
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(exclusive_scan(Par, &input, 7, |a, b| a + b), expect_ex);
                assert_eq!(inclusive_scan(Par, &input, 7, |a, b| a + b), expect_in);
                assert_eq!(exclusive_scan(ParUnseq, &input, 7, |a, b| a + b), expect_ex);
                assert_eq!(inclusive_scan(ParUnseq, &input, 7, |a, b| a + b), expect_in);
            });
        }
    }

    #[test]
    fn parallel_matches_under_detpar() {
        let input: Vec<u64> =
            (0..50_000u64).map(|i| i.wrapping_mul(11400714819323198485) % 97).collect();
        let expect = exclusive_scan(Seq, &input, 0, |a, b| a + b);
        with_backend(Backend::DetPar, || {
            assert_eq!(exclusive_scan(Par, &input, 0, |a, b| a + b), expect);
            assert_eq!(exclusive_scan(ParUnseq, &input, 0, |a, b| a + b), expect);
        });
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(exclusive_scan(Par, &empty, 0, |a, b| a + b).is_empty());
        assert!(inclusive_scan(Par, &empty, 0, |a, b| a + b).is_empty());
        assert_eq!(exclusive_scan(Par, &[9u32], 1, |a, b| a + b), vec![1]);
        assert_eq!(inclusive_scan(Par, &[9u32], 1, |a, b| a + b), vec![10]);
    }

    #[test]
    fn scan_with_max_operator() {
        let input = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
        let out = inclusive_scan(Seq, &input, i64::MIN, |a, b| a.max(b));
        assert_eq!(out, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn into_variants_reuse_buffers_across_sizes() {
        let mut scratch = ScanScratch::new();
        let mut out = Vec::new();
        for &n in &[10usize, 100_000, 5_000, 100_000] {
            let input: Vec<u64> = (0..n as u64).map(|i| i % 13).collect();
            let expect = exclusive_scan(Seq, &input, 3, |a, b| a + b);
            exclusive_scan_into(Par, &input, 3, |a, b| a + b, &mut scratch, &mut out);
            assert_eq!(out, expect, "exclusive, n={n}");
            let expect = inclusive_scan(Seq, &input, 3, |a, b| a + b);
            inclusive_scan_into(Par, &input, 3, |a, b| a + b, &mut scratch, &mut out);
            assert_eq!(out, expect, "inclusive, n={n}");
        }
    }
}
