//! Element-wise bulk operations (`std::fill`, `std::copy`,
//! `std::generate`, `std::transform`).
//!
//! These power the BabelStream-TRIAD validation benchmark (paper Table I)
//! and the UPDATEPOSITION step.

use crate::foreach::{for_each, for_each_index};
use crate::policy::ExecutionPolicy;
use crate::sync_slice::SyncSlice;

/// `std::fill`: set every element to `value`.
pub fn fill<P, T>(policy: P, out: &mut [T], value: T)
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    for_each(policy, out, |x| *x = value);
}

/// `std::copy`: `dst[i] = src[i]`.
pub fn copy<P, T>(policy: P, src: &[T], dst: &mut [T])
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    assert_eq!(src.len(), dst.len(), "copy length mismatch");
    let view = SyncSlice::new(dst);
    for_each_index(policy, 0..src.len(), |i| unsafe {
        view.write(i, src[i]);
    });
}

/// `std::generate` by index: `out[i] = f(i)`.
pub fn generate<P, T>(policy: P, out: &mut [T], f: impl Fn(usize) -> T + Sync + Send)
where
    P: ExecutionPolicy,
    T: Send + Sync + Send,
{
    let view = SyncSlice::new(out);
    for_each_index(policy, 0..view.len(), |i| unsafe {
        view.write(i, f(i));
    });
}

/// `std::transform`: `dst[i] = f(&src[i])`.
pub fn transform<P, T, U>(policy: P, src: &[T], dst: &mut [U], f: impl Fn(&T) -> U + Sync + Send)
where
    P: ExecutionPolicy,
    T: Sync,
    U: Send + Sync + Send,
{
    assert_eq!(src.len(), dst.len(), "transform length mismatch");
    let view = SyncSlice::new(dst);
    for_each_index(policy, 0..src.len(), |i| unsafe {
        view.write(i, f(&src[i]));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};

    #[test]
    fn fill_copy_generate_transform_all_backends() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let n = 30_000;
                let mut a = vec![0.0f64; n];
                fill(ParUnseq, &mut a, 2.5);
                assert!(a.iter().all(|&x| x == 2.5));

                let mut b = vec![0.0f64; n];
                copy(Par, &a, &mut b);
                assert_eq!(a, b);

                let mut c = vec![0u64; n];
                generate(ParUnseq, &mut c, |i| (i * i) as u64);
                assert!(c.iter().enumerate().all(|(i, &x)| x == (i * i) as u64));

                let mut d = vec![0.0f64; n];
                transform(Par, &c, &mut d, |&x| x as f64 + 0.5);
                assert!(d.iter().enumerate().all(|(i, &x)| x == (i * i) as f64 + 0.5));
            });
        }
    }

    #[test]
    fn triad_kernel_matches_reference() {
        // BabelStream TRIAD: a[i] = b[i] + s * c[i], the paper's Table I
        // validation kernel.
        let n = 100_000;
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let c: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let s = 0.4;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut a = vec![0.0f64; n];
                let view = SyncSlice::new(&mut a);
                crate::foreach::for_each_index(ParUnseq, 0..n, |i| unsafe {
                    view.write(i, b[i] + s * c[i]);
                });
                assert!(a.iter().enumerate().all(|(i, &x)| x == b[i] + s * c[i]));
            });
        }
    }

    #[test]
    fn seq_variants() {
        let mut v = vec![1u8; 10];
        fill(Seq, &mut v, 9);
        assert!(v.iter().all(|&x| x == 9));
    }

    #[test]
    #[should_panic]
    fn copy_length_mismatch_panics() {
        let mut dst = vec![0u8; 3];
        copy(Seq, &[1u8, 2], &mut dst);
    }
}
