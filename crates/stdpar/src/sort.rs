//! Parallel sorting (`std::sort(par, …)`) and permutation application.
//!
//! HILBERTSORT (paper Algorithm 7) sorts all bodies by the Hilbert index of
//! their grid cell with `std::sort(par, …)`. The paper notes (§V-A, issue 2)
//! that toolchains without `views::zip` instead "sort an auxiliary buffer of
//! Hilbert and body index pairs, applying it as a permutation afterwards" —
//! that is exactly the [`sort_by_key`] + [`apply_permutation`] pair here.
//!
//! Backends (hand-rolled parallel merge sort: per-chunk `sort_unstable_by`
//! followed by log₂(chunks) parallel pairwise merge passes):
//! * dynamic — over-decomposes into more runs than workers so the merge
//!   passes balance (rayon/TBB-style);
//! * threads — exactly one run per worker (static OpenMP-style schedule).

use crate::backend::{current_backend, split_range, thread_count, Backend, PanicCell};
use crate::foreach::for_each_index;
use crate::policy::ExecutionPolicy;
use crate::sync_slice::SyncSlice;
use std::cmp::Ordering;

/// Sort `v` with comparator `cmp` under `policy`. Unstable.
pub fn sort_unstable_by<P, T>(_policy: P, v: &mut [T], cmp: impl Fn(&T, &T) -> Ordering + Sync + Send)
where
    P: ExecutionPolicy,
    T: Send + Clone,
{
    if !P::IS_PARALLEL || v.len() < 2048 {
        v.sort_unstable_by(cmp);
        return;
    }
    let nchunks = match current_backend() {
        Backend::Dynamic => (4 * thread_count()).next_power_of_two(),
        Backend::Threads => thread_count().next_power_of_two(),
    };
    threads_merge_sort(v, &cmp, nchunks);
}

/// Sort by a key function. Unstable.
pub fn sort_by_key<P, T, K>(policy: P, v: &mut [T], key: impl Fn(&T) -> K + Sync + Send)
where
    P: ExecutionPolicy,
    T: Send + Clone,
    K: Ord,
{
    sort_unstable_by(policy, v, |a, b| key(a).cmp(&key(b)));
}

/// Gather `src` through `perm` into a new vector: `out[i] = src[perm[i]]`.
///
/// `perm` must be a permutation of `0..src.len()` (checked in debug builds).
/// This is the "apply it as a permutation afterwards" step of the paper's
/// AdaptiveCpp/Clang HILBERTSORT fallback.
pub fn apply_permutation<P, T>(policy: P, src: &[T], perm: &[u32]) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    assert_eq!(src.len(), perm.len(), "permutation length mismatch");
    debug_assert!(is_permutation(perm), "perm is not a permutation of 0..n");
    let n = src.len();
    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: every index in 0..n is written exactly once below before use.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n)
    };
    {
        let view = SyncSlice::new(&mut out);
        for_each_index(policy, 0..n, |i| unsafe {
            view.write(i, src[perm[i] as usize]);
        });
    }
    out
}

fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let p = p as usize;
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Parallel merge sort shared by both backends (they differ in run count).
/// Panic-safe: a panicking comparator propagates its payload to the caller
/// after all workers joined (`v` is left in an unspecified order).
fn threads_merge_sort<T: Send + Clone>(
    v: &mut [T],
    cmp: &(impl Fn(&T, &T) -> Ordering + Sync),
    nchunks: usize,
) {
    let n = v.len();
    let mut chunks = split_range(0..n, nchunks);
    if chunks.len() <= 1 {
        // A single run needs no scratch buffer and no merge passes at all.
        v.sort_unstable_by(cmp);
        return;
    }
    // An odd number of merge passes would leave the result in the scratch
    // buffer and force a copy back into `v`; splitting one level finer makes
    // the pass count even so the ping-pong ends in `v`.
    let passes = usize::BITS - (chunks.len() - 1).leading_zeros();
    if passes % 2 == 1 && chunks.len() * 2 <= n {
        chunks = split_range(0..n, (chunks.len() * 2).next_power_of_two());
    }
    let panics = PanicCell::new();

    // Phase 1: sort each chunk on its own thread.
    {
        let base = v.as_mut_ptr() as usize;
        std::thread::scope(|s| {
            for r in chunks.iter().cloned() {
                let panics = &panics;
                s.spawn(move || {
                    panics.run(|| {
                        // SAFETY: chunks are disjoint subslices of `v`.
                        let ptr = base as *mut T;
                        let sub =
                            unsafe { std::slice::from_raw_parts_mut(ptr.add(r.start), r.len()) };
                        sub.sort_unstable_by(cmp);
                    })
                });
            }
        });
    }
    if panics.poisoned() {
        panics.rethrow();
        return;
    }

    // Phase 2: pairwise parallel merges, ping-ponging with a scratch buffer.
    // The first merge pass writes every scratch slot (merged spans tile the
    // whole range), so the buffer needs *capacity* only — cloning `v` into
    // it would be pure overhead. Its length stays 0 and all access goes
    // through raw pointers, so no uninitialised `T` is ever dropped or read.
    let mut runs: Vec<std::ops::Range<usize>> = chunks;
    let mut scratch: Vec<T> = Vec::with_capacity(n);
    let mut src_is_v = true;
    while runs.len() > 1 {
        let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
        {
            // Merge run pairs from `src` into `dst`.
            let (src_ptr, dst_ptr) = if src_is_v {
                (v.as_ptr() as usize, scratch.as_mut_ptr() as usize)
            } else {
                (scratch.as_ptr() as usize, v.as_mut_ptr() as usize)
            };
            std::thread::scope(|s| {
                let mut i = 0;
                while i < runs.len() {
                    let left = runs[i].clone();
                    let right = if i + 1 < runs.len() { runs[i + 1].clone() } else { left.end..left.end };
                    next_runs.push(left.start..right.end);
                    let panics = &panics;
                    s.spawn(move || {
                        panics.run(|| {
                            // SAFETY: each merged output span [left.start, right.end)
                            // is disjoint across pairs; src is not mutated.
                            let src = src_ptr as *const T;
                            let dst = dst_ptr as *mut T;
                            unsafe { merge_runs(src, dst, left, right, cmp) };
                        })
                    });
                    i += 2;
                }
            });
        }
        if panics.poisoned() {
            panics.rethrow();
            return;
        }
        runs = next_runs;
        src_is_v = !src_is_v;
    }
    if !src_is_v {
        // Fallback when the pass count could not be made even: the final
        // data lives in scratch; copy back. SAFETY: every slot in 0..n was
        // written by the preceding merge pass.
        let merged = unsafe { std::slice::from_raw_parts(scratch.as_ptr(), n) };
        v.clone_from_slice(merged);
    }
}

/// Merge `src[left]` and `src[right]` (each sorted) into `dst[left.start..right.end]`.
///
/// # Safety
/// `src` and `dst` must both be valid for the full span, and no other thread
/// may access that span of `dst` concurrently.
unsafe fn merge_runs<T: Clone>(
    src: *const T,
    dst: *mut T,
    left: std::ops::Range<usize>,
    right: std::ops::Range<usize>,
    cmp: &impl Fn(&T, &T) -> Ordering,
) {
    let mut a = left.start;
    let mut b = right.start;
    let mut o = left.start;
    while a < left.end && b < right.end {
        let va = &*src.add(a);
        let vb = &*src.add(b);
        if cmp(vb, va) == Ordering::Less {
            dst.add(o).write(vb.clone());
            b += 1;
        } else {
            dst.add(o).write(va.clone());
            a += 1;
        }
        o += 1;
    }
    while a < left.end {
        dst.add(o).write((*src.add(a)).clone());
        a += 1;
        o += 1;
    }
    while b < right.end {
        dst.add(o).write((*src.add(b)).clone());
        b += 1;
        o += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 16
            })
            .collect()
    }

    #[test]
    fn sorts_match_std_all_policies_and_backends() {
        let input = pseudo_random(50_000, 3);
        let mut expect = input.clone();
        expect.sort_unstable();
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut a = input.clone();
                sort_unstable_by(Seq, &mut a, |x, y| x.cmp(y));
                assert_eq!(a, expect);
                let mut b = input.clone();
                sort_unstable_by(Par, &mut b, |x, y| x.cmp(y));
                assert_eq!(b, expect, "par backend={}", backend.name());
                let mut c = input.clone();
                sort_unstable_by(ParUnseq, &mut c, |x, y| x.cmp(y));
                assert_eq!(c, expect);
            });
        }
    }

    #[test]
    fn sort_by_key_descending() {
        let mut v = pseudo_random(10_000, 4);
        with_backend(Backend::Threads, || {
            sort_by_key(Par, &mut v, |&x| std::cmp::Reverse(x));
        });
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn small_and_edge_inputs() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut empty: Vec<u64> = vec![];
                sort_unstable_by(Par, &mut empty, |a, b| a.cmp(b));
                assert!(empty.is_empty());

                let mut one = vec![5u64];
                sort_unstable_by(Par, &mut one, |a, b| a.cmp(b));
                assert_eq!(one, vec![5]);

                let mut dup = vec![3u64; 5000];
                sort_unstable_by(Par, &mut dup, |a, b| a.cmp(b));
                assert!(dup.iter().all(|&x| x == 3));

                // Already sorted and reverse sorted.
                let mut asc: Vec<u64> = (0..10_000).collect();
                sort_unstable_by(Par, &mut asc, |a, b| a.cmp(b));
                assert!(asc.windows(2).all(|w| w[0] <= w[1]));
                let mut desc: Vec<u64> = (0..10_000).rev().collect();
                sort_unstable_by(Par, &mut desc, |a, b| a.cmp(b));
                assert!(desc.windows(2).all(|w| w[0] <= w[1]));
            });
        }
    }

    #[test]
    fn threads_merge_sort_odd_chunk_counts() {
        // Force the Threads path with a size that does not divide evenly.
        with_backend(Backend::Threads, || {
            let mut v = pseudo_random(12_345, 9);
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_unstable_by(Par, &mut v, |a, b| a.cmp(b));
            assert_eq!(v, expect);
        });
    }

    #[test]
    fn merge_sort_handles_both_pass_parities() {
        // Drive `threads_merge_sort` directly across run counts whose merge
        // pass counts have both parities, including counts too large to be
        // doubled (n < 2·chunks exercises the scratch copy-back fallback).
        for (n, nchunks) in
            [(6_000usize, 2usize), (6_000, 3), (6_000, 4), (6_000, 7), (6_000, 8), (100, 512)]
        {
            let mut v = pseudo_random(n, nchunks as u64);
            let mut expect = v.clone();
            expect.sort_unstable();
            threads_merge_sort(&mut v, &|a, b| a.cmp(b), nchunks);
            assert_eq!(v, expect, "n={n} nchunks={nchunks}");
        }
    }

    #[test]
    fn hilbert_style_pair_sort_and_permutation() {
        // The paper's fallback path: sort (key, index) pairs, then permute.
        let keys = pseudo_random(20_000, 5);
        let values: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut pairs: Vec<(u64, u32)> =
                    keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
                sort_by_key(Par, &mut pairs, |&(k, i)| (k, i));
                let perm: Vec<u32> = pairs.iter().map(|&(_, i)| i).collect();
                let sorted_vals = apply_permutation(Par, &values, &perm);
                let sorted_keys = apply_permutation(ParUnseq, &keys, &perm);
                assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
                // Each value still pairs with its original key.
                for (i, &v) in sorted_vals.iter().enumerate() {
                    assert_eq!(keys[v as usize], sorted_keys[i]);
                }
            });
        }
    }

    #[test]
    #[should_panic]
    fn apply_permutation_length_mismatch_panics() {
        let _ = apply_permutation(Seq, &[1, 2, 3], &[0, 1]);
    }

    #[test]
    fn is_permutation_detects_bad_inputs() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }
}
