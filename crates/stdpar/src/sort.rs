//! Parallel sorting (`std::sort(par, …)`) and permutation application.
//!
//! HILBERTSORT (paper Algorithm 7) sorts all bodies by the Hilbert index of
//! their grid cell with `std::sort(par, …)`. The paper notes (§V-A, issue 2)
//! that toolchains without `views::zip` instead "sort an auxiliary buffer of
//! Hilbert and body index pairs, applying it as a permutation afterwards" —
//! that is exactly the [`sort_by_key`] + [`apply_permutation`] pair here.
//!
//! Backends (hand-rolled parallel merge sort: per-chunk `sort_unstable_by`
//! followed by log₂(chunks) parallel pairwise merge passes):
//! * dynamic — over-decomposes into more runs than workers so the merge
//!   passes balance (rayon/TBB-style);
//! * threads — exactly one run per worker (static OpenMP-style schedule).
//!
//! ## Scratch reuse
//!
//! The merge passes need an element-sized ping-pong buffer plus two run
//! lists. The plain entry points allocate them per call; the
//! [`sort_unstable_by_with_scratch`] / [`sort_by_key_with_scratch`]
//! variants borrow a caller-owned [`SortScratch`] instead, so a steady-state
//! caller (the Hilbert sort re-sorting every step) performs no heap
//! allocation after warm-up. The `_with_scratch` variants require `T: Copy`
//! and merge through `ptr::copy_nonoverlapping` for the run tails rather
//! than per-element `clone()`.

use crate::backend::{current_backend, thread_count, Backend, PanicCell};
use crate::foreach::for_each_index;
use crate::policy::ExecutionPolicy;
use crate::sync_slice::SyncSlice;
use std::cmp::Ordering;

/// Reusable sort scratch: the merge ping-pong buffer and both run lists.
///
/// Construction is allocation-free; buffers grow on first use and are
/// retained across calls, so repeated sorts of same-or-smaller inputs touch
/// the allocator zero times.
pub struct SortScratch<T> {
    /// Element ping-pong buffer (capacity-only: length stays 0, all access
    /// is by raw pointer, so no uninitialised `T` is dropped or read).
    buf: Vec<T>,
    /// Current sorted runs as `(start, end)` index pairs.
    runs: Vec<(usize, usize)>,
    /// Runs produced by the in-flight merge pass.
    next_runs: Vec<(usize, usize)>,
}

impl<T> Default for SortScratch<T> {
    fn default() -> Self {
        SortScratch { buf: Vec::new(), runs: Vec::new(), next_runs: Vec::new() }
    }
}

impl<T> SortScratch<T> {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Sort `v` with comparator `cmp` under `policy`. Unstable.
pub fn sort_unstable_by<P, T>(_policy: P, v: &mut [T], cmp: impl Fn(&T, &T) -> Ordering + Sync + Send)
where
    P: ExecutionPolicy,
    T: Send + Clone,
{
    if !P::IS_PARALLEL || v.len() < 2048 || thread_count() <= 1 {
        v.sort_unstable_by(cmp);
        return;
    }
    threads_merge_sort(v, &cmp, merge_sort_runs(v.len()));
}

/// Sort by a key function. Unstable.
pub fn sort_by_key<P, T, K>(policy: P, v: &mut [T], key: impl Fn(&T) -> K + Sync + Send)
where
    P: ExecutionPolicy,
    T: Send + Clone,
    K: Ord,
{
    sort_unstable_by(policy, v, |a, b| key(a).cmp(&key(b)));
}

/// [`sort_unstable_by`] borrowing caller-owned scratch instead of
/// allocating: zero heap allocations once `scratch` has warmed up to the
/// input size. Requires `T: Copy` (run tails move via
/// `ptr::copy_nonoverlapping`).
pub fn sort_unstable_by_with_scratch<P, T>(
    _policy: P,
    v: &mut [T],
    scratch: &mut SortScratch<T>,
    cmp: impl Fn(&T, &T) -> Ordering + Sync + Send,
) where
    P: ExecutionPolicy,
    T: Send + Copy,
{
    if !P::IS_PARALLEL || v.len() < 2048 || thread_count() <= 1 {
        // `slice::sort_unstable_by` is allocation-free.
        v.sort_unstable_by(cmp);
        return;
    }
    merge_sort_core::<T, MemcpyOps>(v, &cmp, merge_sort_runs(v.len()), scratch);
}

/// [`sort_by_key`] borrowing caller-owned scratch. See
/// [`sort_unstable_by_with_scratch`].
pub fn sort_by_key_with_scratch<P, T, K>(
    policy: P,
    v: &mut [T],
    scratch: &mut SortScratch<T>,
    key: impl Fn(&T) -> K + Sync + Send,
) where
    P: ExecutionPolicy,
    T: Send + Copy,
    K: Ord,
{
    sort_unstable_by_with_scratch(policy, v, scratch, |a, b| key(a).cmp(&key(b)));
}

/// Run count for the parallel merge sort under the current backend.
fn merge_sort_runs(_n: usize) -> usize {
    match current_backend() {
        Backend::Dynamic => (4 * thread_count()).next_power_of_two(),
        Backend::Threads => thread_count().next_power_of_two(),
        // One run = a plain sequential `sort_unstable_by`: sorting has no
        // schedule-dependent intermediate states worth fuzzing, and the
        // deterministic executor must not spawn real merge threads.
        Backend::DetPar => 1,
    }
}

/// Gather `src` through `perm` into a new vector: `out[i] = src[perm[i]]`.
///
/// `perm` must be a permutation of `0..src.len()` (checked in debug builds
/// only — the O(N) validation and its marker vector are compiled out of
/// release builds).
/// This is the "apply it as a permutation afterwards" step of the paper's
/// AdaptiveCpp/Clang HILBERTSORT fallback.
pub fn apply_permutation<P, T>(policy: P, src: &[T], perm: &[u32]) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    let mut out = Vec::new();
    apply_permutation_into(policy, src, perm, &mut out);
    out
}

/// [`apply_permutation`] writing into a caller-owned vector, reusing its
/// capacity: zero heap allocations once `out` has warmed up to `src.len()`.
pub fn apply_permutation_into<P, T>(policy: P, src: &[T], perm: &[u32], out: &mut Vec<T>)
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    assert_eq!(src.len(), perm.len(), "permutation length mismatch");
    #[cfg(debug_assertions)]
    assert!(is_permutation(perm), "perm is not a permutation of 0..n");
    let n = src.len();
    out.clear();
    out.reserve(n);
    // SAFETY: every index in 0..n is written exactly once below before use.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(n)
    };
    {
        let view = SyncSlice::new(out.as_mut_slice());
        for_each_index(policy, 0..n, |i| unsafe {
            view.write(i, src[perm[i] as usize]);
        });
    }
}

/// O(N) permutation validity check — debug builds only (satellite of the
/// zero-allocation work: release builds must not pay the marker vector).
#[cfg(debug_assertions)]
fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let p = p as usize;
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// How merged elements move from `src` to `dst`: per-element `clone()` for
/// the `T: Clone` entry points, bitwise copies (`ptr::copy_nonoverlapping`
/// for whole run tails) for the `T: Copy` scratch-borrowing entry points.
/// A trait rather than specialization, which stable Rust lacks.
trait CopyOps<T> {
    /// Write `*val` into the (possibly uninitialised) slot at `dst`.
    ///
    /// # Safety
    /// `dst` must be valid for writes; the previous contents are not dropped.
    unsafe fn put(dst: *mut T, val: &T);

    /// Move `len` elements from `src` into the (possibly uninitialised)
    /// span at `dst`.
    ///
    /// # Safety
    /// Both pointers must be valid for `len` elements and non-overlapping;
    /// previous contents of `dst` are not dropped.
    unsafe fn fill_span(dst: *mut T, src: *const T, len: usize);

    /// Copy `src` over the *initialised* slice `dst`.
    fn copy_back(dst: &mut [T], src: &[T]);
}

enum CloneOps {}

impl<T: Clone> CopyOps<T> for CloneOps {
    unsafe fn put(dst: *mut T, val: &T) {
        unsafe { dst.write(val.clone()) }
    }

    unsafe fn fill_span(dst: *mut T, src: *const T, len: usize) {
        for k in 0..len {
            unsafe { dst.add(k).write((*src.add(k)).clone()) }
        }
    }

    fn copy_back(dst: &mut [T], src: &[T]) {
        dst.clone_from_slice(src);
    }
}

enum MemcpyOps {}

impl<T: Copy> CopyOps<T> for MemcpyOps {
    unsafe fn put(dst: *mut T, val: &T) {
        unsafe { dst.write(*val) }
    }

    unsafe fn fill_span(dst: *mut T, src: *const T, len: usize) {
        unsafe { std::ptr::copy_nonoverlapping(src, dst, len) }
    }

    fn copy_back(dst: &mut [T], src: &[T]) {
        dst.copy_from_slice(src);
    }
}

/// Fill `runs` with `parts` near-equal contiguous `(start, end)` runs over
/// `0..n`, reusing the vector's capacity.
fn fill_runs(runs: &mut Vec<(usize, usize)>, n: usize, parts: usize) {
    let parts = parts.min(n).max(1);
    runs.clear();
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        runs.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, n);
}

/// Parallel merge sort shared by both backends (they differ in run count);
/// allocates a throwaway scratch. Kept for the `T: Clone` entry points and
/// driven directly by tests.
fn threads_merge_sort<T: Send + Clone>(
    v: &mut [T],
    cmp: &(impl Fn(&T, &T) -> Ordering + Sync),
    nchunks: usize,
) {
    let mut scratch = SortScratch::default();
    merge_sort_core::<T, CloneOps>(v, cmp, nchunks, &mut scratch);
}

/// Parallel merge sort over caller scratch: per-chunk `sort_unstable_by`
/// followed by pairwise parallel merge passes ping-ponging between `v` and
/// `scratch.buf`. Panic-safe: a panicking comparator propagates its payload
/// to the caller after all workers joined (`v` is left in an unspecified
/// order).
fn merge_sort_core<T: Send, O: CopyOps<T>>(
    v: &mut [T],
    cmp: &(impl Fn(&T, &T) -> Ordering + Sync),
    nchunks: usize,
    scratch: &mut SortScratch<T>,
) {
    let n = v.len();
    let SortScratch { buf, runs, next_runs } = scratch;
    fill_runs(runs, n, nchunks);
    if runs.len() <= 1 {
        // A single run needs no scratch buffer and no merge passes at all.
        v.sort_unstable_by(cmp);
        return;
    }
    // An odd number of merge passes would leave the result in the scratch
    // buffer and force a copy back into `v`; splitting one level finer makes
    // the pass count even so the ping-pong ends in `v`.
    let passes = usize::BITS - (runs.len() - 1).leading_zeros();
    if passes % 2 == 1 && runs.len() * 2 <= n {
        let finer = (runs.len() * 2).next_power_of_two();
        fill_runs(runs, n, finer);
    }
    let panics = PanicCell::new();

    // Phase 1: sort each chunk on its own thread.
    {
        let base = v.as_mut_ptr() as usize;
        std::thread::scope(|s| {
            for &(start, end) in runs.iter() {
                let panics = &panics;
                s.spawn(move || {
                    panics.run(|| {
                        // SAFETY: chunks are disjoint subslices of `v`.
                        let ptr = base as *mut T;
                        let sub =
                            unsafe { std::slice::from_raw_parts_mut(ptr.add(start), end - start) };
                        sub.sort_unstable_by(cmp);
                    })
                });
            }
        });
    }
    if panics.poisoned() {
        panics.rethrow();
        return;
    }

    // Phase 2: pairwise parallel merges, ping-ponging with the scratch
    // buffer. The first merge pass writes every scratch slot (merged spans
    // tile the whole range), so the buffer needs *capacity* only — its
    // length stays 0 and all access goes through raw pointers, so no
    // uninitialised `T` is ever dropped or read.
    buf.clear();
    buf.reserve(n);
    let mut src_is_v = true;
    while runs.len() > 1 {
        next_runs.clear();
        {
            // Merge run pairs from `src` into `dst`.
            let (src_ptr, dst_ptr) = if src_is_v {
                (v.as_ptr() as usize, buf.as_mut_ptr() as usize)
            } else {
                (buf.as_ptr() as usize, v.as_mut_ptr() as usize)
            };
            std::thread::scope(|s| {
                let mut i = 0;
                while i < runs.len() {
                    let left = runs[i];
                    let right = if i + 1 < runs.len() { runs[i + 1] } else { (left.1, left.1) };
                    next_runs.push((left.0, right.1));
                    let panics = &panics;
                    s.spawn(move || {
                        panics.run(|| {
                            // SAFETY: each merged output span [left.0, right.1)
                            // is disjoint across pairs; src is not mutated.
                            let src = src_ptr as *const T;
                            let dst = dst_ptr as *mut T;
                            unsafe { merge_runs::<T, O>(src, dst, left, right, cmp) };
                        })
                    });
                    i += 2;
                }
            });
        }
        if panics.poisoned() {
            panics.rethrow();
            return;
        }
        std::mem::swap(runs, next_runs);
        src_is_v = !src_is_v;
    }
    if !src_is_v {
        // Fallback when the pass count could not be made even: the final
        // data lives in scratch; copy back. SAFETY: every slot in 0..n was
        // written by the preceding merge pass.
        let merged = unsafe { std::slice::from_raw_parts(buf.as_ptr(), n) };
        O::copy_back(v, merged);
    }
}

/// Merge `src[left]` and `src[right]` (each sorted, given as `(start, end)`
/// pairs) into `dst[left.0..right.1]`.
///
/// # Safety
/// `src` and `dst` must both be valid for the full span, and no other thread
/// may access that span of `dst` concurrently.
unsafe fn merge_runs<T, O: CopyOps<T>>(
    src: *const T,
    dst: *mut T,
    left: (usize, usize),
    right: (usize, usize),
    cmp: &impl Fn(&T, &T) -> Ordering,
) {
    let mut a = left.0;
    let mut b = right.0;
    let mut o = left.0;
    unsafe {
        while a < left.1 && b < right.1 {
            let va = &*src.add(a);
            let vb = &*src.add(b);
            if cmp(vb, va) == Ordering::Less {
                O::put(dst.add(o), vb);
                b += 1;
            } else {
                O::put(dst.add(o), va);
                a += 1;
            }
            o += 1;
        }
        // Exactly one run has a tail; move it in one span.
        if a < left.1 {
            O::fill_span(dst.add(o), src.add(a), left.1 - a);
        } else if b < right.1 {
            O::fill_span(dst.add(o), src.add(b), right.1 - b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{set_threads, with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 16
            })
            .collect()
    }

    #[test]
    fn sorts_match_std_all_policies_and_backends() {
        let input = pseudo_random(50_000, 3);
        let mut expect = input.clone();
        expect.sort_unstable();
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut a = input.clone();
                sort_unstable_by(Seq, &mut a, |x, y| x.cmp(y));
                assert_eq!(a, expect);
                let mut b = input.clone();
                sort_unstable_by(Par, &mut b, |x, y| x.cmp(y));
                assert_eq!(b, expect, "par backend={}", backend.name());
                let mut c = input.clone();
                sort_unstable_by(ParUnseq, &mut c, |x, y| x.cmp(y));
                assert_eq!(c, expect);
            });
        }
    }

    #[test]
    fn scratch_sort_matches_std_and_reuses_buffers() {
        let mut scratch = SortScratch::new();
        for backend in Backend::ALL {
            with_backend(backend, || {
                // Multiple sizes through ONE scratch, including grow and
                // shrink, to catch stale-buffer reads.
                for (n, seed) in [(50_000usize, 3u64), (10_000, 7), (60_000, 11), (100, 1)] {
                    let input = pseudo_random(n, seed);
                    let mut expect = input.clone();
                    expect.sort_unstable();
                    let mut v = input.clone();
                    sort_unstable_by_with_scratch(Par, &mut v, &mut scratch, |x, y| x.cmp(y));
                    assert_eq!(v, expect, "n={n} backend={}", backend.name());
                }
            });
        }
    }

    #[test]
    fn sort_by_key_descending() {
        let mut v = pseudo_random(10_000, 4);
        with_backend(Backend::Threads, || {
            sort_by_key(Par, &mut v, |&x| std::cmp::Reverse(x));
        });
        assert!(v.windows(2).all(|w| w[0] >= w[1]));

        let mut w = pseudo_random(10_000, 4);
        let mut scratch = SortScratch::new();
        sort_by_key_with_scratch(Par, &mut w, &mut scratch, |&x| std::cmp::Reverse(x));
        assert_eq!(v, w);
    }

    #[test]
    fn single_thread_override_sorts_sequentially() {
        // With one worker the parallel entry points must fall through to the
        // allocation-free sequential sort and still be correct.
        set_threads(1);
        let mut v = pseudo_random(50_000, 13);
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_unstable_by(Par, &mut v, |a, b| a.cmp(b));
        assert_eq!(v, expect);
        set_threads(0);
    }

    #[test]
    fn small_and_edge_inputs() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut empty: Vec<u64> = vec![];
                sort_unstable_by(Par, &mut empty, |a, b| a.cmp(b));
                assert!(empty.is_empty());

                let mut one = vec![5u64];
                sort_unstable_by(Par, &mut one, |a, b| a.cmp(b));
                assert_eq!(one, vec![5]);

                let mut dup = vec![3u64; 5000];
                sort_unstable_by(Par, &mut dup, |a, b| a.cmp(b));
                assert!(dup.iter().all(|&x| x == 3));

                // Already sorted and reverse sorted.
                let mut asc: Vec<u64> = (0..10_000).collect();
                sort_unstable_by(Par, &mut asc, |a, b| a.cmp(b));
                assert!(asc.windows(2).all(|w| w[0] <= w[1]));
                let mut desc: Vec<u64> = (0..10_000).rev().collect();
                sort_unstable_by(Par, &mut desc, |a, b| a.cmp(b));
                assert!(desc.windows(2).all(|w| w[0] <= w[1]));
            });
        }
    }

    #[test]
    fn threads_merge_sort_odd_chunk_counts() {
        // Force the Threads path with a size that does not divide evenly.
        with_backend(Backend::Threads, || {
            let mut v = pseudo_random(12_345, 9);
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_unstable_by(Par, &mut v, |a, b| a.cmp(b));
            assert_eq!(v, expect);
        });
    }

    #[test]
    fn merge_sort_handles_both_pass_parities() {
        // Drive the merge sort directly across run counts whose merge
        // pass counts have both parities, including counts too large to be
        // doubled (n < 2·chunks exercises the scratch copy-back fallback).
        for (n, nchunks) in
            [(6_000usize, 2usize), (6_000, 3), (6_000, 4), (6_000, 7), (6_000, 8), (100, 512)]
        {
            let mut v = pseudo_random(n, nchunks as u64);
            let mut expect = v.clone();
            expect.sort_unstable();
            threads_merge_sort(&mut v, &|a, b| a.cmp(b), nchunks);
            assert_eq!(v, expect, "n={n} nchunks={nchunks} (clone path)");

            let mut w = pseudo_random(n, nchunks as u64);
            let mut scratch = SortScratch::new();
            merge_sort_core::<u64, MemcpyOps>(&mut w, &|a, b| a.cmp(b), nchunks, &mut scratch);
            assert_eq!(w, expect, "n={n} nchunks={nchunks} (copy path)");
        }
    }

    #[test]
    fn hilbert_style_pair_sort_and_permutation() {
        // The paper's fallback path: sort (key, index) pairs, then permute.
        let keys = pseudo_random(20_000, 5);
        let values: Vec<f64> = (0..20_000).map(|i| i as f64).collect();
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut pairs: Vec<(u64, u32)> =
                    keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
                sort_by_key(Par, &mut pairs, |&(k, i)| (k, i));
                let perm: Vec<u32> = pairs.iter().map(|&(_, i)| i).collect();
                let sorted_vals = apply_permutation(Par, &values, &perm);
                let sorted_keys = apply_permutation(ParUnseq, &keys, &perm);
                assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
                // Each value still pairs with its original key.
                for (i, &v) in sorted_vals.iter().enumerate() {
                    assert_eq!(keys[v as usize], sorted_keys[i]);
                }
                // The `_into` variant agrees and reuses its output buffer.
                let mut out: Vec<f64> = Vec::new();
                apply_permutation_into(Par, &values, &perm, &mut out);
                assert_eq!(out, sorted_vals);
                let cap = out.capacity();
                apply_permutation_into(Par, &values, &perm, &mut out);
                assert_eq!(out, sorted_vals);
                assert_eq!(out.capacity(), cap);
            });
        }
    }

    #[test]
    #[should_panic]
    fn apply_permutation_length_mismatch_panics() {
        let _ = apply_permutation(Seq, &[1, 2, 3], &[0, 1]);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn is_permutation_detects_bad_inputs() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }
}
