//! # stdpar — ISO C++ standard parallelism, reproduced in Rust
//!
//! The paper implements Barnes-Hut entirely against the C++17 parallel
//! algorithms (`std::for_each`, `std::transform_reduce`, `std::sort`) plus
//! execution policies (`seq`, `par`, `par_unseq`) and atomics. This crate
//! reproduces that *API surface* in Rust so the tree algorithms in
//! `bh-octree` / `bh-bvh` read line-for-line like the paper's listings:
//!
//! ```
//! use stdpar::prelude::*;
//!
//! let mut x = vec![1.0f64; 1024];
//! let y = vec![2.0f64; 1024];
//! // Algorithm 1 of the paper: parallel vector addition.
//! let xs = SyncSlice::new(&mut x);
//! for_each_index(ParUnseq, 0..1024, |i| unsafe {
//!     *xs.get_mut(i) += y[i];
//! });
//! assert!(x.iter().all(|&v| v == 3.0));
//! ```
//!
//! ## Execution policies and forward progress
//!
//! The policy types encode the paper's §II contract in the Rust type system:
//!
//! | policy | forward progress | may block / use locks | vectorizable |
//! |---|---|---|---|
//! | [`policy::Seq`] | n/a (single thread) | yes | no |
//! | [`policy::Par`] | *parallel* — a started thread is eventually rescheduled | **yes** (starvation-free algorithms OK) | no |
//! | [`policy::ParUnseq`] | *weakly parallel* | **no** (lock-freedom required) | yes |
//!
//! Algorithms that take locks (the Concurrent Octree build) bound their
//! policy parameter by [`policy::ParallelForwardProgress`], so calling them
//! with `ParUnseq` is a **compile error** — the Rust analogue of the paper's
//! observation that running the octree under `par_unseq` on a GPU without
//! Independent Thread Scheduling "reliably caused them to hang".
//!
//! ## Backends
//!
//! Two interchangeable parallel substrates stand in for the paper's multiple
//! C++ toolchains (NVC++, AdaptiveCpp, GCC, Clang in Figs. 8–9):
//!
//! * [`Backend::Dynamic`](backend::Backend) — self-scheduling chunk
//!   claiming, dynamic load-balancing (like TBB-backed libstdc++);
//! * [`Backend::Threads`](backend::Backend) — static contiguous chunking on
//!   scoped OS threads (like a plain OpenMP-static runtime).
//!
//! Both are implemented in-tree on `std::thread::scope` (no external
//! runtime) and are panic-safe: a panicking user closure propagates its
//! original payload to the caller after all sibling workers joined.
//! Select with [`backend::set_backend`] or scoped [`backend::with_backend`].

pub mod alloc_stats;
pub mod backend;
pub mod detpar;
pub mod elementwise;
pub mod foreach;
pub mod policy;
pub mod reduce;
pub mod scan;
pub mod selection;
pub mod sort;
pub mod sync_slice;
pub mod taskgraph;

pub mod prelude {
    pub use crate::alloc_stats::allocation_count;
    pub use crate::backend::{
        set_backend, set_threads, with_backend, with_threads, Backend,
    };
    pub use crate::detpar::{
        record_trace, replay_trace, set_schedule, with_probe, with_schedule, ScheduleMode,
    };
    pub use crate::elementwise::{copy, fill, generate, transform};
    pub use crate::foreach::{for_each, for_each_chunk, for_each_chunk_worker, for_each_index};
    pub use crate::policy::{ExecutionPolicy, Par, ParUnseq, ParallelForwardProgress, Seq};
    pub use crate::reduce::{
        all_of, any_of, count_if, max_element, min_element, reduce, transform_reduce,
    };
    pub use crate::scan::{
        exclusive_scan, exclusive_scan_into, inclusive_scan, inclusive_scan_into, ScanScratch,
    };
    pub use crate::selection::{adjacent_difference, copy_if, iota_vec, partition_copy};
    pub use crate::sort::{
        apply_permutation, apply_permutation_into, sort_by_key, sort_by_key_with_scratch,
        sort_unstable_by, sort_unstable_by_with_scratch, SortScratch,
    };
    pub use crate::sync_slice::SyncSlice;
    pub use crate::taskgraph::{run_pair, TaskGraph};
}

pub use prelude::*;
