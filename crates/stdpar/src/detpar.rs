//! DetPar — the deterministic schedule-replay executor.
//!
//! The paper's correctness argument for the concurrent octree is scheduler
//! independence: the build must be correct under *any* interleaving that
//! satisfies the stated forward-progress guarantees. The two real backends
//! only ever exercise whatever interleavings the OS happens to produce, so
//! this module adds a third substrate, [`Backend::DetPar`]
//! (`crate::backend::Backend::DetPar`): a single-threaded executor that runs
//! every parallel region as an *explicit* interleaving of chunk-granular
//! steps chosen by a seeded scheduler. The same seed replays the same
//! interleaving byte-for-byte, so a failure found by fuzzing the schedule
//! space reproduces from one integer.
//!
//! ## Execution model
//!
//! A region of `n` indices is split into grain-sized chunks exactly like the
//! real backends. Chunk `c` belongs to *virtual worker* `c % W` (with
//! `W = virtual_workers().min(nchunks)` — virtual, so a 1-core CI runner
//! explores the same interleavings as a workstation), and each worker's
//! chunks form its
//! program order: the scheduler only ever runs the *head* chunk of a
//! worker's queue, mirroring how a real thread executes its claims in
//! sequence. One **step** is one whole chunk run to completion; between
//! steps the installed [invariant probes](with_probe) fire, which is what
//! lets a weakened publish edge be observed *mid-region* at a deterministic
//! point instead of by luck.
//!
//! ## Schedule modes
//!
//! * [`ScheduleMode::RoundRobin`] — cycle through workers with pending
//!   steps (the "fair OS" schedule);
//! * [`ScheduleMode::Lifo`] — always the highest-index pending worker
//!   (workers complete in reverse, maximally unfair to low indices);
//! * [`ScheduleMode::Random`] — uniform seeded choice among pending
//!   workers;
//! * [`ScheduleMode::Adversarial`] — last-writer-first-descheduled: never
//!   re-run the worker that just ran while any other has pending steps
//!   (seeded tie-break). This maximally separates each worker's
//!   consecutive steps, scheduling every other worker *between* a worker's
//!   publish-side stores — the interleaving a misordered flag/data pair
//!   fears most;
//! * [`ScheduleMode::Trace`] — replay a recorded worker sequence (see
//!   [`record_trace`] / [`replay_trace`]), for shrinking a fuzz failure to
//!   an exact pinned schedule.
//!
//! All scheduler state is **thread-local**: concurrent `#[test]` threads
//! each get their own seed/mode/trace/probes and cannot perturb each
//! other's determinism assertions. Only the backend *selection*
//! ([`crate::backend::set_backend`]) remains process-global, like the real
//! substrates.
//!
//! DetPar trades throughput for control — it allocates its queue state per
//! region and runs on one thread, so it is deliberately **not** part of
//! [`Backend::ALL`](crate::backend::Backend::ALL) (the benchmark/alloc-gate
//! sweep of real substrates); tests opt in explicitly via
//! `with_backend(Backend::DetPar, ..)`.

use nbody_telemetry::record;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::Range;
use std::rc::Rc;

/// How the DetPar scheduler picks the next virtual worker (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Fair cycle over workers with pending steps.
    RoundRobin,
    /// Highest-index pending worker first.
    Lifo,
    /// Uniform seeded choice among pending workers.
    Random,
    /// Never re-run the just-ran worker while another is pending.
    Adversarial,
    /// Replay the next recorded region trace (falls back to round-robin
    /// when the trace is missing or exhausted mid-region).
    Trace,
}

impl ScheduleMode {
    /// The self-contained modes a fuzz sweep iterates ([`Trace`]
    /// needs a recorded trace, so it is excluded).
    ///
    /// [`Trace`]: ScheduleMode::Trace
    pub const ALL: [ScheduleMode; 4] = [
        ScheduleMode::RoundRobin,
        ScheduleMode::Lifo,
        ScheduleMode::Random,
        ScheduleMode::Adversarial,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ScheduleMode::RoundRobin => "round-robin",
            ScheduleMode::Lifo => "lifo",
            ScheduleMode::Random => "random",
            ScheduleMode::Adversarial => "adversarial",
            ScheduleMode::Trace => "trace",
        }
    }
}

/// Per-thread scheduler state. Thread-local by design: the executor itself
/// is single-threaded, and test harnesses run many tests concurrently.
struct DetState {
    seed: u64,
    mode: ScheduleMode,
    /// Virtual worker count. Independent of the host CPU count on purpose:
    /// schedule fuzzing must explore the same interleavings on a 1-core CI
    /// runner as on a workstation.
    workers: usize,
    /// Regions executed since the innermost [`with_schedule`] scope opened;
    /// salts the per-region RNG so consecutive regions of one pipeline get
    /// distinct (but still seed-determined) interleavings.
    region: u64,
    recording: bool,
    recorded: Vec<Vec<u32>>,
    replay: VecDeque<Vec<u32>>,
    probes: Vec<Rc<dyn Fn()>>,
}

impl DetState {
    fn new() -> Self {
        DetState {
            seed: 0,
            mode: ScheduleMode::RoundRobin,
            workers: DEFAULT_VIRTUAL_WORKERS,
            region: 0,
            recording: false,
            recorded: Vec::new(),
            replay: VecDeque::new(),
            probes: Vec::new(),
        }
    }
}

thread_local! {
    static STATE: RefCell<DetState> = RefCell::new(DetState::new());
}

/// Default number of virtual workers: enough queues that round-robin,
/// LIFO and adversarial schedules are structurally distinct, small enough
/// that per-worker scratch stays cheap.
pub const DEFAULT_VIRTUAL_WORKERS: usize = 4;

/// This thread's DetPar virtual worker count.
pub fn virtual_workers() -> usize {
    STATE.with(|s| s.borrow().workers)
}

/// Set this thread's DetPar virtual worker count (clamped to ≥ 1).
pub fn set_virtual_workers(n: usize) {
    STATE.with(|s| s.borrow_mut().workers = n.max(1));
}

/// Set this thread's DetPar seed and schedule mode and reset the region
/// counter (so the next region sequence replays from scratch).
pub fn set_schedule(seed: u64, mode: ScheduleMode) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.seed = seed;
        s.mode = mode;
        s.region = 0;
    });
}

/// This thread's current DetPar (seed, mode).
pub fn schedule() -> (u64, ScheduleMode) {
    STATE.with(|s| {
        let s = s.borrow();
        (s.seed, s.mode)
    })
}

/// Run `f` under the given seed and mode, restoring the previous schedule
/// (and region counter) afterwards — including on panic, via a drop guard
/// like [`crate::backend::with_backend`]. Entering the scope resets the
/// region counter, so a pipeline wrapped in `with_schedule(seed, mode, ..)`
/// replays identically every time it is wrapped with the same seed.
pub fn with_schedule<R>(seed: u64, mode: ScheduleMode, f: impl FnOnce() -> R) -> R {
    struct Restore {
        seed: u64,
        mode: ScheduleMode,
        region: u64,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            STATE.with(|s| {
                let mut s = s.borrow_mut();
                s.seed = self.seed;
                s.mode = self.mode;
                s.region = self.region;
            });
        }
    }
    let _restore = STATE.with(|s| {
        let s = s.borrow();
        Restore { seed: s.seed, mode: s.mode, region: s.region }
    });
    set_schedule(seed, mode);
    f()
}

/// Run `f` with `probe` installed as a between-step invariant check: the
/// DetPar executor calls every installed probe after each completed step.
/// Probes nest (scopes push/pop a stack) and are removed on exit even if
/// `f` panics. A probe that panics aborts the region like a panicking chunk.
///
/// Probes must not themselves enter a parallel region.
///
/// The probe may borrow locals (it is not required to be `'static`): the
/// octree build, for example, installs a probe borrowing the tree it is
/// concurrently building.
pub fn with_probe<R>(probe: impl Fn(), f: impl FnOnce() -> R) -> R {
    struct PopProbe;
    impl Drop for PopProbe {
        fn drop(&mut self) {
            STATE.with(|s| {
                s.borrow_mut().probes.pop();
            });
        }
    }
    let probe: Rc<dyn Fn() + '_> = Rc::new(probe);
    // SAFETY: erasing the probe's lifetime to store it in the thread-local
    // stack is sound because every clone of this Rc is confined to this
    // scope: the drop guard below pops the entry before `with_probe`
    // returns (including on unwind), and the only other clones are the
    // per-region snapshot in `det_chunks_worker`, which lives on the stack
    // of a region that runs strictly inside `f`. Nothing stashes a probe
    // beyond the region that observed it — `det_chunks_worker` must keep
    // it that way.
    let probe: Rc<dyn Fn() + 'static> = unsafe { std::mem::transmute(probe) };
    STATE.with(|s| s.borrow_mut().probes.push(probe));
    let _pop = PopProbe;
    f()
}

/// Run `f` while recording the worker sequence of every DetPar region it
/// executes; returns `f`'s result and the recorded trace (one `Vec<u32>` of
/// worker indices per region, in region order). Feed the trace back through
/// [`replay_trace`] to pin the exact interleaving.
pub fn record_trace<R>(f: impl FnOnce() -> R) -> (R, Vec<Vec<u32>>) {
    struct StopRecording;
    impl Drop for StopRecording {
        fn drop(&mut self) {
            STATE.with(|s| s.borrow_mut().recording = false);
        }
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.recording = true;
        s.recorded.clear();
    });
    let _stop = StopRecording;
    let out = f();
    let trace = STATE.with(|s| std::mem::take(&mut s.borrow_mut().recorded));
    (out, trace)
}

/// Run `f` in [`ScheduleMode::Trace`], replaying `trace` region by region
/// (the shape produced by [`record_trace`]). Restores the previous schedule
/// and clears any unconsumed trace afterwards, including on panic.
pub fn replay_trace<R>(trace: Vec<Vec<u32>>, f: impl FnOnce() -> R) -> R {
    struct ClearReplay;
    impl Drop for ClearReplay {
        fn drop(&mut self) {
            STATE.with(|s| s.borrow_mut().replay.clear());
        }
    }
    STATE.with(|s| {
        s.borrow_mut().replay = trace.into();
    });
    let _clear = ClearReplay;
    let (seed, _) = schedule();
    with_schedule(seed, ScheduleMode::Trace, f)
}

/// SplitMix64 step — the executor's only entropy source, so a region's
/// interleaving is a pure function of (seed, region index, mode).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Virtual worker count for a region of `n` indices at `grain` — the
/// configured [`virtual_workers`] clamped to the chunk count, mirroring how
/// the real backends clamp `thread_count()`.
pub(crate) fn det_worker_count(n: usize, grain: usize) -> usize {
    virtual_workers().min(n.div_ceil(grain.max(1))).max(1)
}

/// Run `f(worker, chunk_range)` over `range` as a deterministic interleaving
/// of chunk steps (the DetPar analogue of
/// [`crate::backend::dynamic_chunks_worker`]). Single-threaded: `f` needs
/// neither `Sync` nor `Send`, and may mutate captured state (`FnMut`) —
/// the reduction path exploits this for its per-worker partials.
///
/// A panicking chunk or probe propagates immediately (there are no sibling
/// threads to join); the remaining steps are abandoned.
pub(crate) fn det_chunks_worker(
    range: Range<usize>,
    grain: usize,
    mut f: impl FnMut(usize, Range<usize>),
) {
    let n = range.len();
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let nchunks = n.div_ceil(grain);
    let workers = det_worker_count(n, grain);

    // Pull the per-region scheduling inputs out of the thread-local in one
    // borrow; nothing below holds a borrow while user code runs, so chunks
    // and probes may freely call back into this module (nested regions,
    // probe scopes).
    let (mut rng, mode, region_trace, probes) = STATE.with(|s| {
        let mut s = s.borrow_mut();
        let region = s.region;
        s.region += 1;
        // Salt the seed with the region ordinal: distinct regions of one
        // pipeline draw independent schedules, all determined by the seed.
        let mut rng = s.seed ^ region.wrapping_mul(0xA076_1D64_78BD_642F);
        splitmix64(&mut rng);
        let region_trace = if s.mode == ScheduleMode::Trace { s.replay.pop_front() } else { None };
        (rng, s.mode, region_trace, s.probes.clone())
    });

    record!(counter STDPAR_PAR_REGIONS, 1);
    record!(counter STDPAR_CHUNKS_CLAIMED, nchunks as u64);
    record!(counter STDPAR_DET_REGIONS, 1);
    record!(counter STDPAR_DET_STEPS, nchunks as u64);
    record!(gauge STDPAR_WORKERS_HIGH_WATER, workers as u64);
    record!(hist STDPAR_GRAIN_SIZES, grain.min(n) as u64);

    // Worker w's queue is chunks {w, w+W, w+2W, ...}; `next[w]` is the head.
    // Executing the head advances it by W — each worker runs its chunks in
    // program order, like a real thread draining its claims.
    let mut next: Vec<usize> = (0..workers).collect();
    let mut pending = workers;
    let mut last: Option<usize> = None;
    let mut cursor = 0usize; // round-robin scan position
    let mut executed: Vec<u32> = Vec::new();
    let recording = STATE.with(|s| s.borrow().recording);
    let mut trace_pos = 0usize;
    let mut probe_calls = 0u64;

    while pending > 0 {
        let w = match mode {
            ScheduleMode::RoundRobin => next_pending_from(&next, nchunks, workers, cursor),
            ScheduleMode::Lifo => (0..workers).rev().find(|&w| next[w] < nchunks).unwrap(),
            ScheduleMode::Random => {
                let k = (splitmix64(&mut rng) % pending as u64) as usize;
                nth_pending(&next, nchunks, k)
            }
            ScheduleMode::Adversarial => {
                // Exclude the just-ran worker whenever any other worker has
                // pending steps: its next store-side step is maximally
                // delayed, and every peer's loads land in the gap.
                let avoid = last.filter(|_| {
                    (0..workers).filter(|&w| next[w] < nchunks).count() > 1
                });
                let candidates =
                    (0..workers).filter(|&w| next[w] < nchunks && Some(w) != avoid).count();
                let k = (splitmix64(&mut rng) % candidates as u64) as usize;
                (0..workers)
                    .filter(|&w| next[w] < nchunks && Some(w) != avoid)
                    .nth(k)
                    .unwrap()
            }
            ScheduleMode::Trace => {
                let choice = region_trace
                    .as_ref()
                    .and_then(|t| t.get(trace_pos))
                    .map(|&w| w as usize)
                    .filter(|&w| w < workers && next[w] < nchunks);
                trace_pos += 1;
                choice.unwrap_or_else(|| next_pending_from(&next, nchunks, workers, cursor))
            }
        };
        cursor = (w + 1) % workers;
        let ci = next[w];
        next[w] += workers; // the worker's next chunk in its program order
        if next[w] >= nchunks {
            pending -= 1;
        }
        last = Some(w);
        if recording {
            executed.push(w as u32);
        }
        let s = range.start + ci * grain;
        let e = (s + grain).min(range.end);
        f(w, s..e);
        for probe in &probes {
            probe();
            probe_calls += 1;
        }
    }
    if probe_calls > 0 {
        record!(counter STDPAR_DET_PROBE_CALLS, probe_calls);
    }
    if recording {
        STATE.with(|s| s.borrow_mut().recorded.push(executed));
    }
}

/// Run a task DAG as a deterministic sequence of node steps — the
/// node-granular analogue of [`det_chunks_worker`], used by
/// [`crate::taskgraph::TaskGraph::run`] under `Backend::DetPar`.
///
/// `dep` holds each node's remaining predecessor count (pre-filled by the
/// caller from the graph's initial counts); `succ_off`/`succ` is the CSR
/// successor table; `ready` is caller-owned scratch so steady-state runs
/// allocate nothing. One **step** is one whole node run to completion;
/// the installed [`with_probe`] probes fire between steps, exactly like
/// the chunk executor.
///
/// The ready list is kept in *readied order* (seeds in ascending node id,
/// then successors appended as their last dependence retires), which gives
/// the modes their meaning:
///
/// * `RoundRobin` — FIFO: oldest-ready node first (the "fair" schedule,
///   and the same order as the Kahn sequential path);
/// * `Lifo` — newest-ready node first (depth-first: chase continuations);
/// * `Random` — uniform seeded choice among ready nodes;
/// * `Adversarial` — never run the *most recently readied* node while any
///   other is ready (seeded choice among the rest): a node's freshly
///   enabled continuation is maximally delayed, so every other ready
///   node's work lands between a predecessor's publish and its consumer;
/// * `Trace` — replay a recorded **node-id** sequence (falling back to
///   FIFO on a missing/stale entry). Traces recorded here interleave with
///   chunk-region traces in region order; the alphabet differs (node ids
///   vs worker ids) but [`record_trace`]/[`replay_trace`] treat both as
///   opaque `Vec<u32>` regions.
pub(crate) fn det_run_dag(
    dep: &mut [u32],
    succ_off: &[u32],
    succ: &[u32],
    ready: &mut Vec<u32>,
    mut f: impl FnMut(u32),
) {
    let total = dep.len();
    if total == 0 {
        return;
    }
    ready.clear();
    ready.extend((0..total as u32).filter(|&i| dep[i as usize] == 0));

    // Pull the per-region scheduling inputs out of the thread-local in one
    // borrow, exactly like `det_chunks_worker`: nothing below holds a
    // borrow while user code runs, and the probe clones stay on this
    // region's stack (see the SAFETY contract in `with_probe`).
    let (mut rng, mode, region_trace, probes) = STATE.with(|s| {
        let mut s = s.borrow_mut();
        let region = s.region;
        s.region += 1;
        let mut rng = s.seed ^ region.wrapping_mul(0xA076_1D64_78BD_642F);
        splitmix64(&mut rng);
        let region_trace = if s.mode == ScheduleMode::Trace { s.replay.pop_front() } else { None };
        (rng, s.mode, region_trace, s.probes.clone())
    });

    record!(counter STDPAR_DET_REGIONS, 1);
    record!(counter STDPAR_DET_STEPS, total as u64);

    let recording = STATE.with(|s| s.borrow().recording);
    let mut executed: Vec<u32> = Vec::new();
    let mut trace_pos = 0usize;
    let mut probe_calls = 0u64;
    let mut done = 0usize;

    while !ready.is_empty() {
        let k = match mode {
            ScheduleMode::RoundRobin => 0,
            ScheduleMode::Lifo => ready.len() - 1,
            ScheduleMode::Random => (splitmix64(&mut rng) % ready.len() as u64) as usize,
            ScheduleMode::Adversarial => {
                if ready.len() == 1 {
                    0
                } else {
                    // Exclude the tail — the most recently readied node —
                    // so a just-enabled continuation never runs while
                    // older work is pending.
                    (splitmix64(&mut rng) % (ready.len() - 1) as u64) as usize
                }
            }
            ScheduleMode::Trace => {
                let choice = region_trace
                    .as_ref()
                    .and_then(|t| t.get(trace_pos))
                    .and_then(|&want| ready.iter().position(|&r| r == want));
                trace_pos += 1;
                choice.unwrap_or(0)
            }
        };
        let node = ready.remove(k);
        if recording {
            executed.push(node);
        }
        f(node);
        done += 1;
        let node = node as usize;
        for &s in &succ[succ_off[node] as usize..succ_off[node + 1] as usize] {
            let d = &mut dep[s as usize];
            *d -= 1;
            if *d == 0 {
                ready.push(s);
            }
        }
        for probe in &probes {
            probe();
            probe_calls += 1;
        }
    }
    if probe_calls > 0 {
        record!(counter STDPAR_DET_PROBE_CALLS, probe_calls);
    }
    if recording {
        STATE.with(|s| s.borrow_mut().recorded.push(executed));
    }
    assert_eq!(done, total, "det_run_dag: dependence cycle — only {done} of {total} nodes ran");
}

/// First worker with pending steps scanning circularly from `cursor`.
fn next_pending_from(next: &[usize], nchunks: usize, workers: usize, cursor: usize) -> usize {
    (0..workers)
        .map(|k| (cursor + k) % workers)
        .find(|&w| next[w] < nchunks)
        .expect("next_pending_from called with no pending worker")
}

/// `k`-th worker (in index order) among those with pending steps.
fn nth_pending(next: &[usize], nchunks: usize, k: usize) -> usize {
    next.iter()
        .enumerate()
        .filter(|(_, &nx)| nx < nchunks)
        .nth(k)
        .map(|(w, _)| w)
        .expect("nth_pending out of range")
}

/// Deterministic reduction under DetPar: chunks fold into per-worker
/// partials (each worker's chunks combine in its program order), and the
/// partials combine in worker order — so the result is a pure function of
/// (seed-independent!) chunk geometry, not of the interleaving. The
/// schedule only decides *when* each fold runs, which is exactly what the
/// fuzzer wants to vary.
pub(crate) fn det_reduce<R>(
    range: Range<usize>,
    grain: usize,
    identity: R,
    reduce_op: impl Fn(R, R) -> R,
    transform: impl Fn(usize) -> R,
) -> R
where
    R: Clone,
{
    let n = range.len();
    if n == 0 {
        return identity;
    }
    let workers = det_worker_count(n, grain);
    let mut partials: Vec<Option<R>> = vec![None; workers];
    det_chunks_worker(range, grain, |w, r| {
        let mut acc = partials[w].take().unwrap_or_else(|| identity.clone());
        for i in r {
            acc = reduce_op(acc, transform(i));
        }
        partials[w] = Some(acc);
    });
    partials.into_iter().flatten().fold(identity, reduce_op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::foreach::for_each_index;
    use crate::policy::Par;
    use std::cell::Cell;

    fn visit_order(seed: u64, mode: ScheduleMode, n: usize) -> Vec<usize> {
        let order = RefCell::new(Vec::new());
        with_backend(Backend::DetPar, || {
            with_schedule(seed, mode, || {
                det_chunks_worker(0..n, 3, |_, r| order.borrow_mut().extend(r));
            });
        });
        order.into_inner()
    }

    #[test]
    fn covers_every_index_exactly_once_in_every_mode() {
        for mode in ScheduleMode::ALL {
            for seed in [0u64, 1, 99] {
                let mut got = visit_order(seed, mode, 101);
                got.sort_unstable();
                assert_eq!(got, (0..101).collect::<Vec<_>>(), "mode={}", mode.name());
            }
        }
    }

    #[test]
    fn same_seed_same_order_different_seed_usually_differs() {
        let a = visit_order(42, ScheduleMode::Random, 400);
        let b = visit_order(42, ScheduleMode::Random, 400);
        assert_eq!(a, b, "same seed must replay identically");
        let c = visit_order(43, ScheduleMode::Random, 400);
        assert_ne!(a, c, "different seeds should explore different schedules");
    }

    #[test]
    fn worker_program_order_is_preserved() {
        // Each worker's chunks must execute in increasing chunk order no
        // matter the mode: that is the real-thread program-order model.
        for mode in ScheduleMode::ALL {
            let seen = RefCell::new(std::collections::HashMap::<usize, usize>::new());
            with_schedule(7, mode, || {
                det_chunks_worker(0..1000, 10, |w, r| {
                    let ci = r.start / 10;
                    let mut seen = seen.borrow_mut();
                    if let Some(&prev) = seen.get(&w) {
                        assert!(ci > prev, "worker {w} ran chunk {ci} after {prev}");
                    }
                    seen.insert(w, ci);
                });
            });
        }
    }

    #[test]
    fn adversarial_never_repeats_a_worker_when_avoidable() {
        let seq = RefCell::new(Vec::new());
        with_schedule(5, ScheduleMode::Adversarial, || {
            det_chunks_worker(0..100, 1, |w, _| seq.borrow_mut().push(w));
        });
        let seq = seq.into_inner();
        assert_eq!(seq.len(), 100);
        let workers = seq.iter().copied().max().unwrap() + 1;
        // Worker w owns chunks {w, w+W, ...}: how many steps each must run.
        let totals: Vec<usize> = (0..workers).map(|w| (100 - w).div_ceil(workers)).collect();
        let mut done = vec![0usize; workers];
        for (p, pair) in seq.windows(2).enumerate() {
            done[pair[0]] += 1;
            if pair[0] == pair[1] {
                // A back-to-back repeat is only legal once every *other*
                // worker's queue has drained.
                for (v, (&d, &t)) in done.iter().zip(&totals).enumerate() {
                    if v != pair[0] {
                        assert_eq!(d, t, "repeat at step {p} while worker {v} still pending");
                    }
                }
            }
        }
    }

    #[test]
    fn probes_fire_between_every_step() {
        let fired = Rc::new(Cell::new(0usize));
        let chunks = Cell::new(0usize);
        let fired_probe = Rc::clone(&fired);
        with_probe(
            move || fired_probe.set(fired_probe.get() + 1),
            || {
                with_schedule(1, ScheduleMode::RoundRobin, || {
                    det_chunks_worker(0..64, 4, |_, _| chunks.set(chunks.get() + 1));
                });
            },
        );
        assert_eq!(chunks.get(), 16);
        assert_eq!(fired.get(), 16, "one probe call per step");
    }

    #[test]
    fn probes_may_borrow_locals() {
        // A probe borrowing stack state (the shape the octree build uses:
        // the probe watches the tree it is installed around).
        let steps = Cell::new(0usize);
        let chunks = Cell::new(0usize);
        with_probe(
            || steps.set(steps.get() + 1),
            || {
                with_schedule(2, ScheduleMode::Lifo, || {
                    det_chunks_worker(0..32, 4, |_, _| chunks.set(chunks.get() + 1));
                });
            },
        );
        assert_eq!((chunks.get(), steps.get()), (8, 8));
    }

    #[test]
    fn trace_replay_pins_the_exact_interleaving() {
        fn capture() -> Vec<usize> {
            let order = RefCell::new(Vec::new());
            det_chunks_worker(0..300, 7, |_, r| order.borrow_mut().extend(r));
            order.into_inner()
        }
        let (order_a, trace) =
            record_trace(|| with_schedule(11, ScheduleMode::Random, capture));
        assert_eq!(trace.len(), 1, "one region recorded");
        let order_b = replay_trace(trace, capture);
        assert_eq!(order_a, order_b, "trace replay must reproduce the interleaving");
    }

    #[test]
    fn det_reduce_matches_sequential_fold() {
        for mode in ScheduleMode::ALL {
            for seed in [3u64, 17] {
                with_schedule(seed, mode, || {
                    let got = det_reduce(0..10_000, 64, 0u64, |a, b| a + b, |i| i as u64);
                    assert_eq!(got, 9_999 * 10_000 / 2, "mode={}", mode.name());
                });
            }
        }
    }

    #[test]
    fn for_each_index_runs_under_detpar_backend() {
        use std::sync::atomic::{AtomicU32, Ordering};
        with_backend(Backend::DetPar, || {
            with_schedule(9, ScheduleMode::Adversarial, || {
                let hits: Vec<AtomicU32> = (0..5000).map(|_| AtomicU32::new(0)).collect();
                for_each_index(Par, 0..5000, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        });
    }

    #[test]
    fn with_schedule_restores_on_panic() {
        set_schedule(123, ScheduleMode::RoundRobin);
        let err = std::panic::catch_unwind(|| {
            with_schedule(456, ScheduleMode::Adversarial, || -> () {
                panic!("schedule scope failed")
            })
        });
        assert!(err.is_err());
        assert_eq!(schedule(), (123, ScheduleMode::RoundRobin));
    }
}
