//! Execution policies (C++ `std::execution::seq` / `par` / `par_unseq`).
//!
//! The policies are zero-sized types passed by value, exactly like the C++
//! tag objects. The two properties the paper cares about are surfaced as
//! associated constants and marker traits:
//!
//! * **forward progress** — `par` provides *parallel forward progress*
//!   ("if a thread starts running it will eventually be scheduled again"),
//!   which starvation-free algorithms with critical sections require.
//!   `par_unseq` only provides *weakly parallel* forward progress and
//!   forbids blocking synchronization. The [`ParallelForwardProgress`]
//!   marker trait is implemented for [`Seq`] and [`Par`] but **not**
//!   [`ParUnseq`], so lock-taking algorithms can demand it at compile time.
//! * **vectorization** — `par_unseq` permits interleaving element
//!   operations on one thread; our implementations use large contiguous
//!   chunks with tight inner loops for it, while `par` uses fine-grained
//!   dynamic scheduling.

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Seq {}
    impl Sealed for super::Par {}
    impl Sealed for super::ParUnseq {}
}

/// An execution policy tag. Sealed: exactly `Seq`, `Par`, `ParUnseq`.
pub trait ExecutionPolicy: sealed::Sealed + Copy + Send + Sync + 'static {
    /// Human-readable name used in benchmark output ("seq", "par", …).
    const NAME: &'static str;
    /// True when user callables run on more than one thread.
    const IS_PARALLEL: bool;
    /// True when element operations may be interleaved/vectorized within a
    /// thread of execution (C++ "unsequenced"): blocking sync is forbidden.
    const UNSEQUENCED: bool;
}

/// Sequential execution (C++ `std::execution::seq`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Seq;

/// Parallel execution with *parallel forward progress* guarantees
/// (C++ `std::execution::par`). Lock-based, starvation-free algorithms are
/// allowed under this policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Par;

/// Parallel + vectorized execution with only *weakly parallel* forward
/// progress (C++ `std::execution::par_unseq`). Callables must be lock-free:
/// no critical sections, no spin-waiting on other elements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParUnseq;

impl ExecutionPolicy for Seq {
    const NAME: &'static str = "seq";
    const IS_PARALLEL: bool = false;
    const UNSEQUENCED: bool = false;
}

impl ExecutionPolicy for Par {
    const NAME: &'static str = "par";
    const IS_PARALLEL: bool = true;
    const UNSEQUENCED: bool = false;
}

impl ExecutionPolicy for ParUnseq {
    const NAME: &'static str = "par_unseq";
    const IS_PARALLEL: bool = true;
    const UNSEQUENCED: bool = true;
}

/// Marker for policies that provide parallel forward progress, i.e. under
/// which a blocked thread's lock holder is guaranteed to eventually run.
///
/// Implemented for [`Seq`] (trivially: one thread never waits on another
/// *concurrently-running* element — note the octree build never self-locks
/// because a single thread releases before re-entry) and [`Par`], and
/// deliberately **not** for [`ParUnseq`]: the Concurrent Octree BUILDTREE
/// bound (`P: ParallelForwardProgress`) turns the paper's "hangs on non-ITS
/// GPUs" into a compile-time rejection.
pub trait ParallelForwardProgress: ExecutionPolicy {}
impl ParallelForwardProgress for Seq {}
impl ParallelForwardProgress for Par {}

/// Runtime-selectable policy, for benchmark harnesses that sweep policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynPolicy {
    Seq,
    Par,
    ParUnseq,
}

impl DynPolicy {
    pub const ALL: [DynPolicy; 3] = [DynPolicy::Seq, DynPolicy::Par, DynPolicy::ParUnseq];

    pub fn name(self) -> &'static str {
        match self {
            DynPolicy::Seq => Seq::NAME,
            DynPolicy::Par => Par::NAME,
            DynPolicy::ParUnseq => ParUnseq::NAME,
        }
    }

    /// Monomorphize: call `f` with the corresponding policy tag.
    pub fn dispatch<R>(self, f: impl PolicyVisitor<R>) -> R {
        match self {
            DynPolicy::Seq => f.visit(Seq),
            DynPolicy::Par => f.visit(Par),
            DynPolicy::ParUnseq => f.visit(ParUnseq),
        }
    }
}

/// Visitor used by [`DynPolicy::dispatch`].
pub trait PolicyVisitor<R> {
    fn visit<P: ExecutionPolicy>(self, policy: P) -> R;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn policy_constants() {
        assert!(!Seq::IS_PARALLEL && !Seq::UNSEQUENCED);
        assert!(Par::IS_PARALLEL && !Par::UNSEQUENCED);
        assert!(ParUnseq::IS_PARALLEL && ParUnseq::UNSEQUENCED);
        assert_eq!(Seq::NAME, "seq");
        assert_eq!(Par::NAME, "par");
        assert_eq!(ParUnseq::NAME, "par_unseq");
    }

    #[test]
    fn policies_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Seq>(), 0);
        assert_eq!(std::mem::size_of::<Par>(), 0);
        assert_eq!(std::mem::size_of::<ParUnseq>(), 0);
    }

    fn requires_pfp<P: ParallelForwardProgress>(_: P) -> &'static str {
        P::NAME
    }

    #[test]
    fn forward_progress_marker() {
        // Compiles for Seq and Par; `requires_pfp(ParUnseq)` must not compile
        // (covered by the compile-fail doc-test below).
        assert_eq!(requires_pfp(Seq), "seq");
        assert_eq!(requires_pfp(Par), "par");
    }

    /// ```compile_fail
    /// use stdpar::policy::{ParUnseq, ParallelForwardProgress};
    /// fn requires_pfp<P: ParallelForwardProgress>(_: P) {}
    /// requires_pfp(ParUnseq); // par_unseq lacks parallel forward progress
    /// ```
    fn _par_unseq_is_rejected_for_locking_algorithms() {}

    #[test]
    fn dyn_policy_dispatch() {
        struct NameOf;
        impl PolicyVisitor<&'static str> for NameOf {
            fn visit<P: ExecutionPolicy>(self, _p: P) -> &'static str {
                P::NAME
            }
        }
        assert_eq!(DynPolicy::Seq.dispatch(NameOf), "seq");
        assert_eq!(DynPolicy::Par.dispatch(NameOf), "par");
        assert_eq!(DynPolicy::ParUnseq.dispatch(NameOf), "par_unseq");
        for p in DynPolicy::ALL {
            assert_eq!(p.name(), p.dispatch(NameOf));
        }
    }
}
