//! A `Sync` view over a mutable slice for index-disjoint parallel writes.
//!
//! The C++ parallel algorithms hand every element callable a raw view of the
//! arrays it writes ("Applications are then responsible to ensure algorithm
//! invocations do not introduce data-races", paper §II). Rust's `&mut [T]`
//! cannot be shared across parallel-backend closures, so [`SyncSlice`] provides the
//! same contract explicitly: the *caller* guarantees distinct indices are
//! written by distinct logical threads, and in exchange gets lock-free
//! indexed writes.

use std::marker::PhantomData;

/// A shareable pointer+length view of `&mut [T]`.
///
/// All accessor methods are `unsafe`: the caller promises that no index is
/// accessed concurrently from two threads (the usual stdpar data-race
/// contract). Every access is bounds-checked unconditionally — release
/// builds included — so a bad index is a deterministic panic, never a
/// silent out-of-bounds write (the same hardening as `ListsPool::slot`).
/// The check is one compare against an already-loaded length, noise next
/// to the force kernels these views feed.
#[derive(Clone, Copy)]
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _life: PhantomData<&'a mut [T]>,
}

// SAFETY: the type only exposes unsafe accessors whose contract forbids
// data races; with that contract upheld, sending/sharing the view is sound.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a mutable slice. The borrow is held for `'a`, so the underlying
    /// storage cannot be touched elsewhere while views exist.
    #[inline]
    pub fn new(slice: &'a mut [T]) -> Self {
        Self { ptr: slice.as_mut_ptr(), len: slice.len(), _life: PhantomData }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to element `i`.
    ///
    /// # Safety
    /// `i < len()`, and no other thread accesses index `i` concurrently.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "SyncSlice::get_mut: index {i} out of bounds (len {})", self.len);
        &mut *self.ptr.add(i)
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// `i < len()`, and no other thread writes index `i` concurrently.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        assert!(i < self.len, "SyncSlice::read: index {i} out of bounds (len {})", self.len);
        *self.ptr.add(i)
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// `i < len()`, and no other thread accesses index `i` concurrently.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        assert!(i < self.len, "SyncSlice::write: index {i} out of bounds (len {})", self.len);
        *self.ptr.add(i) = v;
    }

    /// Shared view of the sub-range `range`.
    ///
    /// # Safety
    /// `range` is within `len()`, and no other thread *writes* any index in
    /// `range` while the returned slice is live.
    #[inline]
    pub unsafe fn slice(&self, range: std::ops::Range<usize>) -> &'a [T] {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "SyncSlice::slice: range {range:?} out of bounds (len {})",
            self.len
        );
        std::slice::from_raw_parts(self.ptr.add(range.start), range.end - range.start)
    }

    /// Exclusive view of the sub-range `range`.
    ///
    /// # Safety
    /// `range` is within `len()`, and no other thread *accesses* any index in
    /// `range` while the returned slice is live (this call must be the only
    /// path to those elements, exactly like disjoint `get_mut` calls).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &'a mut [T] {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "SyncSlice::slice_mut: range {range:?} out of bounds (len {})",
            self.len
        );
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0usize; 10_000];
        let view = SyncSlice::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    let mut i = t;
                    while i < view.len() {
                        unsafe { view.write(i, i * 2) };
                        i += 4;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn get_mut_and_read() {
        let mut data = vec![1.0f64, 2.0, 3.0];
        let view = SyncSlice::new(&mut data);
        unsafe {
            *view.get_mut(1) += 10.0;
            assert_eq!(view.read(1), 12.0);
        }
        assert_eq!(data, vec![1.0, 12.0, 3.0]);
    }

    #[test]
    fn len_and_empty() {
        let mut v: Vec<u8> = vec![];
        let s = SyncSlice::new(&mut v);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    // Regression (pre-fix: `debug_assert!` only, so release builds walked
    // straight past the end of the slice): the bounds check must fire in
    // every build profile, for every accessor.

    #[test]
    #[should_panic(expected = "SyncSlice::write: index 3 out of bounds (len 3)")]
    fn write_out_of_bounds_panics() {
        let mut v = vec![0u32; 3];
        let s = SyncSlice::new(&mut v);
        unsafe { s.write(3, 1) };
    }

    #[test]
    #[should_panic(expected = "SyncSlice::read: index 7 out of bounds (len 2)")]
    fn read_out_of_bounds_panics() {
        let mut v = vec![0u32; 2];
        let s = SyncSlice::new(&mut v);
        unsafe {
            let _ = s.read(7);
        }
    }

    #[test]
    fn disjoint_subslices() {
        let mut data = vec![0u32; 100];
        let view = SyncSlice::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..4usize {
                s.spawn(move || {
                    let r = t * 25..(t + 1) * 25;
                    let sub = unsafe { view.slice_mut(r.clone()) };
                    for (k, v) in sub.iter_mut().enumerate() {
                        *v = (r.start + k) as u32;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn shared_slice_reads() {
        let mut data: Vec<u64> = (0..10).collect();
        let view = SyncSlice::new(&mut data);
        let sub = unsafe { view.slice(3..7) };
        assert_eq!(sub, &[3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "SyncSlice::slice: range 2..9 out of bounds (len 4)")]
    fn slice_out_of_bounds_panics() {
        let mut v = vec![0u8; 4];
        let s = SyncSlice::new(&mut v);
        unsafe {
            let _ = s.slice(2..9);
        }
    }

    #[test]
    #[should_panic(expected = "SyncSlice::slice_mut: range 5..3 out of bounds (len 8)")]
    #[allow(clippy::reversed_empty_ranges)]
    fn slice_mut_reversed_range_panics() {
        let mut v = vec![0u8; 8];
        let s = SyncSlice::new(&mut v);
        unsafe {
            let _ = s.slice_mut(5..3);
        }
    }

    #[test]
    #[should_panic(expected = "SyncSlice::get_mut: index 0 out of bounds (len 0)")]
    fn get_mut_on_empty_panics() {
        let mut v: Vec<u64> = vec![];
        let s = SyncSlice::new(&mut v);
        unsafe {
            let _ = s.get_mut(0);
        }
    }
}
