//! Heap-allocation counting for the zero-steady-state-allocation invariant.
//!
//! The paper's pipeline assumes buffers are allocated once and the kernels
//! then run back-to-back over persistent arrays. To *enforce* that shape
//! rather than merely intend it, binaries can install [`CountingAlloc`] as
//! their `#[global_allocator]` (gated behind their own `alloc-stats` cargo
//! feature) and read [`allocation_count`] before/after a region:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: stdpar::alloc_stats::CountingAlloc = stdpar::alloc_stats::CountingAlloc;
//!
//! let before = stdpar::alloc_stats::allocation_count();
//! run_one_step();
//! assert_eq!(stdpar::alloc_stats::allocation_count() - before, 0);
//! ```
//!
//! The counter tallies *allocation events* (`alloc`, `alloc_zeroed`, and
//! `realloc`), not bytes or frees: the invariant under test is "the steady
//! state performs no allocator calls at all", for which an event count is
//! both sufficient and immune to size-rounding noise. When the allocator is
//! not installed the counter simply stays at zero, so library code can call
//! [`allocation_count`] unconditionally and observe zero deltas.
//!
//! A relaxed atomic keeps the overhead to one uncontended RMW per
//! allocation; the type is always compiled so instrumented and plain builds
//! share one code path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of allocation events observed so far (0 unless [`CountingAlloc`]
/// is installed as the global allocator). Monotonic between calls to
/// [`reset_allocation_count`].
#[inline]
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Zero the allocation-event counter, e.g. to scope a measurement window in
/// a test harness. Code computing deltas of [`allocation_count`] must use
/// `saturating_sub`: a reset between two reads makes the second read
/// smaller than the first.
pub fn reset_allocation_count() {
    ALLOCATIONS.store(0, Ordering::Relaxed);
}

/// A `System`-backed global allocator that counts allocation events.
pub struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_cheap_to_read() {
        let a = allocation_count();
        let b = allocation_count();
        assert!(b >= a);
    }
}
