//! Parallel execution backends.
//!
//! The paper evaluates the *same* ISO C++ source under several toolchains
//! (NVC++, AdaptiveCpp, GCC/TBB, Clang — Figs. 8 & 9) and finds small
//! differences "attributed mainly in the sorting algorithm". To reproduce
//! that axis on one machine, every parallel algorithm in this crate can run
//! on either of two substrates:
//!
//! * [`Backend::Rayon`] — rayon's work-stealing pool with adaptive
//!   splitting (dynamic load balancing, like TBB);
//! * [`Backend::Threads`] — plain scoped OS threads with static contiguous
//!   chunking (like a static-schedule OpenMP runtime), including a
//!   hand-rolled parallel merge sort.
//!
//! The backend is a process-global setting (benchmarks sweep it between
//! runs, not concurrently).

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Which parallel substrate executes `Par`/`ParUnseq` algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// rayon work-stealing (dynamic scheduling).
    Rayon,
    /// scoped OS threads with static chunking.
    Threads,
}

impl Backend {
    pub const ALL: [Backend; 2] = [Backend::Rayon, Backend::Threads];

    pub fn name(self) -> &'static str {
        match self {
            Backend::Rayon => "rayon",
            Backend::Threads => "threads",
        }
    }
}

static BACKEND: AtomicU8 = AtomicU8::new(0);
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Select the global backend.
pub fn set_backend(b: Backend) {
    BACKEND.store(b as u8, Ordering::Relaxed);
}

/// The currently selected backend.
pub fn current_backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Rayon,
        _ => Backend::Threads,
    }
}

/// Run `f` under backend `b`, restoring the previous backend afterwards.
///
/// Not re-entrant across concurrently running harnesses (the setting is
/// process-global); benchmark drivers call it from a single thread.
pub fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    let prev = current_backend();
    set_backend(b);
    let r = f();
    set_backend(prev);
    r
}

/// Override the worker count used by the [`Backend::Threads`] backend
/// (`0` = use [`hardware_parallelism`]). rayon's pool size is fixed at
/// process start by rayon itself.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// Number of hardware threads.
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Worker count the Threads backend will use.
pub fn thread_count() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => hardware_parallelism(),
        n => n,
    }
}

/// Split `range` into at most `parts` contiguous chunks of near-equal size.
pub fn split_range(range: Range<usize>, parts: usize) -> Vec<Range<usize>> {
    let n = range.len();
    if n == 0 || parts == 0 {
        return vec![];
    }
    let parts = parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = range.start;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, range.end);
    out
}

/// Run `f` once per chunk of `range` on scoped OS threads (the Threads
/// backend's fundamental primitive). `f(chunk_index, chunk_range)`.
pub fn scoped_chunks(range: Range<usize>, f: impl Fn(usize, Range<usize>) + Sync) {
    let chunks = split_range(range, thread_count());
    if chunks.len() <= 1 {
        if let Some(c) = chunks.into_iter().next() {
            f(0, c);
        }
        return;
    }
    std::thread::scope(|s| {
        for (i, c) in chunks.into_iter().enumerate() {
            let f = &f;
            s.spawn(move || f(i, c));
        }
    });
}

/// Grain size used by `ParUnseq` chunking under rayon: large contiguous
/// blocks so the inner loops vectorize, like a SIMD-width-agnostic
/// `#pragma omp simd`.
pub fn unseq_grain(n: usize) -> usize {
    let target_chunks = 8 * hardware_parallelism();
    (n / target_chunks.max(1)).max(1024).min(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_round_trip() {
        let prev = current_backend();
        set_backend(Backend::Threads);
        assert_eq!(current_backend(), Backend::Threads);
        set_backend(Backend::Rayon);
        assert_eq!(current_backend(), Backend::Rayon);
        set_backend(prev);
    }

    #[test]
    fn with_backend_restores() {
        let prev = current_backend();
        with_backend(Backend::Threads, || {
            assert_eq!(current_backend(), Backend::Threads);
        });
        assert_eq!(current_backend(), prev);
    }

    #[test]
    fn split_range_covers_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let chunks = split_range(10..10 + n, parts);
                let total: usize = chunks.iter().map(|c| c.len()).sum();
                assert_eq!(total, n, "n={n}, parts={parts}");
                // Contiguous and ordered.
                let mut expect = 10;
                for c in &chunks {
                    assert_eq!(c.start, expect);
                    assert!(!c.is_empty());
                    expect = c.end;
                }
                // Balanced to within one element.
                if let (Some(min), Some(max)) = (
                    chunks.iter().map(|c| c.len()).min(),
                    chunks.iter().map(|c| c.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn scoped_chunks_visits_every_index_once() {
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        scoped_chunks(0..n, |_, r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn thread_count_override() {
        set_threads(3);
        assert_eq!(thread_count(), 3);
        set_threads(0);
        assert_eq!(thread_count(), hardware_parallelism());
    }

    #[test]
    fn unseq_grain_is_sane() {
        assert!(unseq_grain(10) >= 1);
        assert!(unseq_grain(1_000_000) >= 1024);
        assert!(unseq_grain(0) >= 1);
    }
}
