//! Parallel execution backends.
//!
//! The paper evaluates the *same* ISO C++ source under several toolchains
//! (NVC++, AdaptiveCpp, GCC/TBB, Clang — Figs. 8 & 9) and finds small
//! differences "attributed mainly in the sorting algorithm". To reproduce
//! that axis on one machine, every parallel algorithm in this crate can run
//! on any of three substrates:
//!
//! * [`Backend::Dynamic`] — a self-scheduling executor: workers claim
//!   grain-sized chunks from a shared atomic cursor (dynamic load
//!   balancing, like a TBB/rayon-style runtime) — implemented in-tree on
//!   scoped OS threads so the crate has no external dependencies;
//! * [`Backend::Threads`] — plain scoped OS threads with static contiguous
//!   chunking (like a static-schedule OpenMP runtime), including a
//!   hand-rolled parallel merge sort;
//! * [`Backend::DetPar`] — a deterministic single-threaded schedule-replay
//!   executor for correctness fuzzing ([`crate::detpar`]): every region
//!   runs as an explicit seeded interleaving of chunk steps, so failures
//!   reproduce byte-identically from a seed.
//!
//! The backend is a process-global setting (benchmarks sweep it between
//! runs, not concurrently).
//!
//! ## Panic safety
//!
//! Both substrates are panic-safe: if a user closure panics on a worker
//! thread, the *first* panic payload is captured, the remaining workers
//! stop claiming new work (dynamic) or finish their static chunk, and the
//! payload is re-raised on the calling thread once every sibling has
//! joined. Without this, `std::thread::scope` would abort the process on a
//! double panic and replace the payload with a generic "a scoped thread
//! panicked" message.

use nbody_telemetry::{self as telemetry, record};
use std::any::Any;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Which parallel substrate executes `Par`/`ParUnseq` algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Self-scheduling chunk claiming (dynamic load balancing).
    Dynamic,
    /// scoped OS threads with static chunking.
    Threads,
    /// Deterministic single-threaded schedule replay (correctness tooling,
    /// not a performance substrate — see [`crate::detpar`]).
    DetPar,
}

impl Backend {
    /// The *real* parallel substrates: what benchmarks sweep and what the
    /// zero-allocation gate iterates. [`Backend::DetPar`] is deliberately
    /// excluded — it is a single-threaded fuzzing harness that allocates
    /// scheduler state per region; tests select it explicitly.
    pub const ALL: [Backend; 2] = [Backend::Dynamic, Backend::Threads];

    pub fn name(self) -> &'static str {
        match self {
            Backend::Dynamic => "dynamic",
            Backend::Threads => "threads",
            Backend::DetPar => "detpar",
        }
    }
}

static BACKEND: AtomicU8 = AtomicU8::new(0);
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Select the global backend.
pub fn set_backend(b: Backend) {
    // relaxed-ok: a lone configuration flag — nothing is published through
    // it; every executor produces correct results whichever value a racing
    // region observes.
    BACKEND.store(b as u8, Ordering::Relaxed);
}

/// The currently selected backend.
pub fn current_backend() -> Backend {
    // relaxed-ok: see `set_backend` — pure mode selection, no publish edge.
    match BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Dynamic,
        2 => Backend::DetPar,
        _ => Backend::Threads,
    }
}

/// Run `f` under backend `b`, restoring the previous backend afterwards —
/// including when `f` panics (the restore runs from a drop guard during
/// unwinding, so a panicking benchmark iteration cannot leak its backend
/// override into every subsequent test or run in the process).
///
/// Not re-entrant across concurrently running harnesses (the setting is
/// process-global); benchmark drivers call it from a single thread.
pub fn with_backend<R>(b: Backend, f: impl FnOnce() -> R) -> R {
    struct Restore(Backend);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_backend(self.0);
        }
    }
    let _restore = Restore(current_backend());
    set_backend(b);
    f()
}

/// Override the worker count used by both backends
/// (`0` = use [`hardware_parallelism`]).
pub fn set_threads(n: usize) {
    // relaxed-ok: worker-count hint only; any observed value yields a
    // correct (if differently-chunked) execution.
    THREADS.store(n, Ordering::Relaxed);
}

/// Run `f` with the worker-count override set to `n`, restoring the
/// previous override afterwards — including when `f` panics, via the same
/// drop-guard pattern as [`with_backend`].
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_threads(self.0);
        }
    }
    // relaxed-ok: reads the same hint `set_threads` writes.
    let _restore = Restore(THREADS.load(Ordering::Relaxed));
    set_threads(n);
    f()
}

/// Number of hardware threads. Cached after the first query:
/// `available_parallelism` re-reads cgroup limits (and allocates) on every
/// call, which would break the zero-steady-state-allocation invariant for
/// grain computations inside parallel regions.
pub fn hardware_parallelism() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    // relaxed-ok: idempotent memoisation — racing initialisers compute the
    // same value, and a stale 0 merely recomputes it.
    match CACHED.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
            CACHED.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Upper bound (exclusive) on the worker indices the *current* backend
/// passes to worker-keyed callbacks ([`crate::foreach::for_each_chunk_worker`]).
/// Size per-worker scratch (interaction-list pools, partial accumulators)
/// with this, not with [`thread_count`]: the DetPar executor schedules
/// *virtual* workers whose count is configured independently of the host
/// CPUs.
pub fn max_workers() -> usize {
    match current_backend() {
        Backend::Dynamic | Backend::Threads => thread_count().max(1),
        Backend::DetPar => crate::detpar::virtual_workers(),
    }
}

/// Worker count the backends will use.
pub fn thread_count() -> usize {
    // relaxed-ok: worker-count hint, see `set_threads`.
    match THREADS.load(Ordering::Relaxed) {
        0 => hardware_parallelism(),
        n => n,
    }
}

/// The `p`-th of `parts` near-equal contiguous chunks of `range`, computed
/// arithmetically so chunked loops need no chunk-list allocation. `parts`
/// must already be clamped to `1..=range.len()`.
#[inline]
pub fn chunk_of(range: &Range<usize>, parts: usize, p: usize) -> Range<usize> {
    let n = range.len();
    debug_assert!(parts >= 1 && parts <= n.max(1) && p < parts);
    let base = n / parts;
    let extra = n % parts;
    let start = range.start + p * base + p.min(extra);
    start..start + base + usize::from(p < extra)
}

/// Split `range` into at most `parts` contiguous chunks of near-equal size.
pub fn split_range(range: Range<usize>, parts: usize) -> Vec<Range<usize>> {
    let n = range.len();
    if n == 0 || parts == 0 {
        return vec![];
    }
    let parts = parts.min(n);
    (0..parts).map(|p| chunk_of(&range, parts, p)).collect()
}

/// Captures the first panic raised by any worker of a parallel region, so
/// it can be re-raised on the calling thread after all siblings joined.
pub(crate) struct PanicCell {
    poisoned: AtomicBool,
    payload: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl PanicCell {
    pub(crate) fn new() -> Self {
        PanicCell { poisoned: AtomicBool::new(false), payload: Mutex::new(None) }
    }

    /// Run `f`, capturing a panic instead of unwinding across the thread
    /// boundary. Only the first captured payload is kept.
    pub(crate) fn run(&self, f: impl FnOnce()) {
        if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
            record!(counter STDPAR_PANICS_RECOVERED, 1);
            let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(p);
            }
            self.poisoned.store(true, Ordering::Release);
        }
    }

    /// True once any worker has panicked — used by the dynamic executor to
    /// stop claiming new chunks.
    pub(crate) fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Re-raise the first captured panic, if any.
    pub(crate) fn rethrow(&self) {
        let payload = self.payload.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

/// Run `f` once per chunk of `range` on scoped OS threads (the Threads
/// backend's fundamental primitive). `f(chunk_index, chunk_range)`.
///
/// Panic-safe: the first panicking chunk's payload propagates to the caller
/// after every worker has joined.
pub fn scoped_chunks(range: Range<usize>, f: impl Fn(usize, Range<usize>) + Sync) {
    let n = range.len();
    if n == 0 {
        return;
    }
    let parts = thread_count().min(n);
    // Telemetry is a handful of relaxed RMWs per *region* (never per
    // element) plus one clock read per worker, flushed after the chunk.
    record!(counter STDPAR_PAR_REGIONS, 1);
    record!(counter STDPAR_CHUNKS_CLAIMED, parts as u64);
    record!(gauge STDPAR_WORKERS_HIGH_WATER, parts as u64);
    record!(hist STDPAR_GRAIN_SIZES, (n / parts) as u64);
    if parts <= 1 {
        // Single worker: run inline, touching no allocator (the steady-state
        // invariant relies on this path when the worker count is pinned to 1).
        f(0, range);
        return;
    }
    let panics = PanicCell::new();
    std::thread::scope(|s| {
        for i in 0..parts {
            let c = chunk_of(&range, parts, i);
            let f = &f;
            let panics = &panics;
            s.spawn(move || {
                let t0 = telemetry::ENABLED.then(Instant::now);
                panics.run(|| f(i, c));
                if let Some(t0) = t0 {
                    record!(worker WORKER_BUSY_NANOS, i, t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    panics.rethrow();
}

/// Run `f(chunk_range)` over `range` with dynamic self-scheduling: workers
/// repeatedly claim the next `grain`-sized chunk from a shared cursor (the
/// Dynamic backend's fundamental primitive — load balancing like a
/// work-stealing runtime, without per-task queues).
///
/// Panic-safe: on a worker panic the remaining workers stop claiming new
/// chunks and the first payload is re-raised on the caller.
pub fn dynamic_chunks(range: Range<usize>, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    dynamic_chunks_worker(range, grain, |_, r| f(r));
}

/// [`dynamic_chunks`] with the claiming worker's index (`0..workers`) passed
/// to `f` alongside each chunk, so callers can key per-worker scratch state
/// (e.g. reusable interaction lists) without locks. A worker index is never
/// observed concurrently by two threads.
pub fn dynamic_chunks_worker(
    range: Range<usize>,
    grain: usize,
    f: impl Fn(usize, Range<usize>) + Sync,
) {
    let n = range.len();
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let workers = thread_count().min(n.div_ceil(grain));
    record!(counter STDPAR_PAR_REGIONS, 1);
    record!(gauge STDPAR_WORKERS_HIGH_WATER, workers.max(1) as u64);
    record!(hist STDPAR_GRAIN_SIZES, grain.min(n) as u64);
    if workers <= 1 {
        let mut claimed: u64 = 0;
        let mut s = range.start;
        while s < range.end {
            let e = (s + grain).min(range.end);
            claimed += 1;
            f(0, s..e);
            s = e;
        }
        record!(counter STDPAR_CHUNKS_CLAIMED, claimed);
        return;
    }
    let cursor = AtomicUsize::new(range.start);
    let panics = PanicCell::new();
    std::thread::scope(|s| {
        for w in 0..workers {
            let f = &f;
            let cursor = &cursor;
            let panics = &panics;
            let end = range.end;
            s.spawn(move || {
                // Claims tally locally and flush once at worker exit so the
                // shared counter sees one RMW per worker, not per chunk.
                let t0 = telemetry::ENABLED.then(Instant::now);
                let mut claimed: u64 = 0;
                loop {
                    if panics.poisoned() {
                        break;
                    }
                    // relaxed-ok: the RMW's atomicity alone makes claims
                    // disjoint; chunk *data* is published by the thread
                    // scope join, not by this counter.
                    let start = cursor.fetch_add(grain, Ordering::Relaxed);
                    if start >= end {
                        break;
                    }
                    claimed += 1;
                    let stop = (start + grain).min(end);
                    panics.run(|| f(w, start..stop));
                }
                if claimed > 0 {
                    record!(counter STDPAR_CHUNKS_CLAIMED, claimed);
                }
                if let Some(t0) = t0 {
                    record!(worker WORKER_BUSY_NANOS, w, t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    panics.rethrow();
}

/// Grain size used by fine-grained dynamic scheduling under `Par`: small
/// enough that uneven per-element cost balances, large enough that the
/// claim cost amortises.
pub fn par_grain(n: usize) -> usize {
    let target_chunks = 32 * thread_count();
    (n / target_chunks.max(1)).clamp(1, 4096)
}

/// Grain size used by `ParUnseq` chunking: large contiguous blocks so the
/// inner loops vectorize, like a SIMD-width-agnostic `#pragma omp simd`.
pub fn unseq_grain(n: usize) -> usize {
    let target_chunks = 8 * hardware_parallelism();
    (n / target_chunks.max(1)).max(1024).min(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_round_trip() {
        let prev = current_backend();
        set_backend(Backend::Threads);
        assert_eq!(current_backend(), Backend::Threads);
        set_backend(Backend::Dynamic);
        assert_eq!(current_backend(), Backend::Dynamic);
        set_backend(prev);
    }

    #[test]
    fn with_backend_restores() {
        let prev = current_backend();
        with_backend(Backend::Threads, || {
            assert_eq!(current_backend(), Backend::Threads);
        });
        assert_eq!(current_backend(), prev);
    }

    #[test]
    fn with_backend_restores_after_panicking_closure() {
        // Regression: the pre-guard implementation set the backend back
        // only on the normal return path, so a panicking closure leaked
        // its override into every later parallel region in the process.
        let prev = current_backend();
        let other = match prev {
            Backend::Dynamic => Backend::Threads,
            Backend::Threads | Backend::DetPar => Backend::Dynamic,
        };
        let err = catch_unwind(AssertUnwindSafe(|| {
            with_backend(other, || -> () { panic!("scoped closure failed") })
        }));
        assert!(err.is_err());
        assert_eq!(current_backend(), prev, "panic leaked the backend override");
    }


    #[test]
    fn split_range_covers_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let chunks = split_range(10..10 + n, parts);
                let total: usize = chunks.iter().map(|c| c.len()).sum();
                assert_eq!(total, n, "n={n}, parts={parts}");
                // Contiguous and ordered.
                let mut expect = 10;
                for c in &chunks {
                    assert_eq!(c.start, expect);
                    assert!(!c.is_empty());
                    expect = c.end;
                }
                // Balanced to within one element.
                if let (Some(min), Some(max)) = (
                    chunks.iter().map(|c| c.len()).min(),
                    chunks.iter().map(|c| c.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn scoped_chunks_visits_every_index_once() {
        let n = 10_007;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        scoped_chunks(0..n, |_, r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_chunks_visits_every_index_once() {
        for grain in [1usize, 7, 64, 100_000] {
            let n = 10_007;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            dynamic_chunks(0..n, grain, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "grain={grain}"
            );
        }
    }

    #[test]
    fn dynamic_chunks_nonzero_start() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        dynamic_chunks(40..100, 9, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), usize::from(i >= 40), "i={i}");
        }
    }

    #[test]
    fn scoped_chunks_propagates_first_panic_payload() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            scoped_chunks(0..10_000, |_, r| {
                if r.contains(&0) {
                    panic!("worker exploded deliberately");
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "worker exploded deliberately");
    }

    #[test]
    fn dynamic_chunks_propagates_panic_and_stays_usable() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            dynamic_chunks(0..100_000, 64, |r| {
                if r.start == 0 {
                    panic!("boom {}", 42);
                }
            });
        }))
        .unwrap_err();
        // rustc may const-fold the formatted message into a `&str` payload.
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "boom 42");
        // The executor must remain fully functional after a panic.
        let count = AtomicUsize::new(0);
        dynamic_chunks(0..1000, 10, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn multiple_panicking_workers_do_not_abort() {
        // Every chunk panics; exactly one payload must surface, and the
        // process must not abort from a panic-while-panicking.
        let err = catch_unwind(AssertUnwindSafe(|| {
            scoped_chunks(0..10_000, |_, _| panic!("all workers fail"));
        }))
        .unwrap_err();
        assert_eq!(err.downcast_ref::<&str>().copied().unwrap_or(""), "all workers fail");
    }

    #[test]
    fn thread_count_override() {
        // One test owns every THREADS mutation: the override is process
        // global and the test harness runs tests concurrently.
        set_threads(3);
        assert_eq!(thread_count(), 3);
        set_threads(0);
        assert_eq!(thread_count(), hardware_parallelism());

        with_threads(5, || assert_eq!(thread_count(), 5));
        assert_eq!(THREADS.load(Ordering::Relaxed), 0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            with_threads(7, || -> () { panic!("scoped closure failed") })
        }));
        assert!(err.is_err());
        assert_eq!(
            THREADS.load(Ordering::Relaxed),
            0,
            "panic leaked the thread-count override"
        );
    }

    #[test]
    fn unseq_grain_is_sane() {
        assert!(unseq_grain(10) >= 1);
        assert!(unseq_grain(1_000_000) >= 1024);
        assert!(unseq_grain(0) >= 1);
        assert!(par_grain(0) >= 1);
        assert!(par_grain(1_000_000) >= 1);
    }
}
