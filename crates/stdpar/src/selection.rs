//! Selection and stream-compaction algorithms (`std::copy_if`,
//! `std::partition_copy`, `std::adjacent_difference`, `std::iota`).
//!
//! Round out the C++ parallel-algorithm surface. The parallel
//! `copy_if`/`partition_copy` use the classic two-phase compaction: a
//! per-chunk count + exclusive scan of offsets, then a parallel writeback
//! — all stable (input order preserved), as the C++ versions are.

use crate::backend::{split_range, thread_count};
use crate::foreach::for_each_index;
use crate::policy::ExecutionPolicy;
use crate::scan::exclusive_scan;
use crate::sync_slice::SyncSlice;

/// `std::iota`: the vector `[start, start+1, …)` of length `n`.
pub fn iota_vec(start: u32, n: usize) -> Vec<u32> {
    (0..n as u32).map(|i| start + i).collect()
}

/// Stable parallel `copy_if`: all `src[i]` with `pred(i, &src[i])`, in
/// input order.
pub fn copy_if<P, T>(policy: P, src: &[T], pred: impl Fn(usize, &T) -> bool + Sync + Send) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    let n = src.len();
    if !P::IS_PARALLEL || n < 4096 {
        return src
            .iter()
            .enumerate()
            .filter(|(i, t)| pred(*i, t))
            .map(|(_, &t)| t)
            .collect();
    }
    let chunks = split_range(0..n, 4 * thread_count());
    let nchunks = chunks.len();
    // Phase 1: per-chunk match counts.
    let mut counts = vec![0usize; nchunks];
    {
        let out = SyncSlice::new(&mut counts);
        let chunks_ref = &chunks;
        let pred_ref = &pred;
        for_each_index(policy, 0..nchunks, |c| {
            let r = chunks_ref[c].clone();
            let k = r.clone().filter(|&i| pred_ref(i, &src[i])).count();
            unsafe { out.write(c, k) };
        });
    }
    // Phase 2: offsets; phase 3: parallel writeback.
    let offsets = exclusive_scan(policy, &counts, 0usize, |a, b| a + b);
    let total = offsets.last().map_or(0, |&o| o) + counts.last().copied().unwrap_or(0);
    let mut out: Vec<T> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    // SAFETY: every slot below `total` is written exactly once in phase 3.
    unsafe {
        out.set_len(total)
    };
    {
        let view = SyncSlice::new(&mut out);
        let chunks_ref = &chunks;
        let offsets_ref = &offsets;
        let pred_ref = &pred;
        for_each_index(policy, 0..nchunks, |c| {
            let mut w = offsets_ref[c];
            for i in chunks_ref[c].clone() {
                if pred_ref(i, &src[i]) {
                    unsafe { view.write(w, src[i]) };
                    w += 1;
                }
            }
        });
    }
    out
}

/// Stable parallel `partition_copy`: `(matching, rest)`.
pub fn partition_copy<P, T>(
    policy: P,
    src: &[T],
    pred: impl Fn(usize, &T) -> bool + Sync + Send,
) -> (Vec<T>, Vec<T>)
where
    P: ExecutionPolicy + Copy,
    T: Send + Sync + Copy,
{
    let yes = copy_if(policy, src, &pred);
    let no = copy_if(policy, src, |i, t| !pred(i, t));
    (yes, no)
}

/// `std::adjacent_difference`: `out[0] = in[0]`, `out[i] = op(in[i], in[i-1])`.
pub fn adjacent_difference<P, T>(
    policy: P,
    src: &[T],
    op: impl Fn(T, T) -> T + Sync + Send,
) -> Vec<T>
where
    P: ExecutionPolicy,
    T: Send + Sync + Copy,
{
    let n = src.len();
    if n == 0 {
        return vec![];
    }
    let mut out: Vec<T> = Vec::with_capacity(n);
    #[allow(clippy::uninit_vec)]
    // SAFETY: every index in 0..n is written exactly once below.
    unsafe {
        out.set_len(n)
    };
    {
        let view = SyncSlice::new(&mut out);
        for_each_index(policy, 0..n, |i| unsafe {
            if i == 0 {
                view.write(0, src[0]);
            } else {
                view.write(i, op(src[i], src[i - 1]));
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i.wrapping_mul(2654435761) % 1000).collect()
    }

    #[test]
    fn copy_if_matches_filter_all_policies() {
        let v = sample(50_000);
        let expect: Vec<u64> = v.iter().copied().filter(|&x| x % 3 == 0).collect();
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(copy_if(Seq, &v, |_, &x| x % 3 == 0), expect);
                assert_eq!(copy_if(Par, &v, |_, &x| x % 3 == 0), expect);
                assert_eq!(copy_if(ParUnseq, &v, |_, &x| x % 3 == 0), expect);
            });
        }
    }

    #[test]
    fn copy_if_is_stable() {
        // Order preservation with an index-dependent predicate.
        let v = sample(20_000);
        let got = copy_if(Par, &v, |i, _| i % 7 == 0);
        let expect: Vec<u64> = v.iter().enumerate().filter(|(i, _)| i % 7 == 0).map(|(_, &x)| x).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn copy_if_edge_cases() {
        let empty: Vec<u64> = vec![];
        assert!(copy_if(Par, &empty, |_, _| true).is_empty());
        let v = sample(10_000);
        assert_eq!(copy_if(Par, &v, |_, _| true), v);
        assert!(copy_if(Par, &v, |_, _| false).is_empty());
    }

    #[test]
    fn partition_copy_covers_both_sides() {
        let v = sample(30_000);
        let (yes, no) = partition_copy(Par, &v, |_, &x| x < 500);
        assert_eq!(yes.len() + no.len(), v.len());
        assert!(yes.iter().all(|&x| x < 500));
        assert!(no.iter().all(|&x| x >= 500));
        // Stability of both sides.
        let expect_yes: Vec<u64> = v.iter().copied().filter(|&x| x < 500).collect();
        assert_eq!(yes, expect_yes);
    }

    #[test]
    fn adjacent_difference_matches_reference() {
        let v = vec![3i64, 7, 2, 10, 10];
        let got = adjacent_difference(Par, &v, |a, b| a - b);
        assert_eq!(got, vec![3, 4, -5, 8, 0]);
        let empty: Vec<i64> = vec![];
        assert!(adjacent_difference(Par, &empty, |a, b| a - b).is_empty());
        let one = adjacent_difference(Seq, &[42i64], |a, b| a - b);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn adjacent_difference_large_parallel_matches_seq() {
        let v = sample(100_000);
        let seq: Vec<u64> = adjacent_difference(Seq, &v, |a, b| a.wrapping_sub(b));
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(adjacent_difference(ParUnseq, &v, |a, b| a.wrapping_sub(b)), seq);
            });
        }
    }

    #[test]
    fn iota() {
        assert_eq!(iota_vec(5, 4), vec![5, 6, 7, 8]);
        assert!(iota_vec(0, 0).is_empty());
    }
}
