//! `std::for_each` analogues.
//!
//! [`for_each_index`] is the workhorse: the paper's kernels are all
//! `for_each(policy, views::iota(0, n), ...)` loops over body or node
//! indices (Algorithm 1). Under `par` the elements are scheduled
//! fine-grained and dynamically (each may block briefly on a lock); under
//! `par_unseq` they run in large contiguous chunks whose inner loop the
//! compiler can vectorize.

use crate::backend::{
    current_backend, dynamic_chunks, par_grain, scoped_chunks, unseq_grain, Backend,
};
use crate::policy::ExecutionPolicy;
use std::ops::Range;

/// Invoke `f(i)` for every `i` in `range` under `policy`.
pub fn for_each_index<P: ExecutionPolicy>(
    _policy: P,
    range: Range<usize>,
    f: impl Fn(usize) + Sync + Send,
) {
    if !P::IS_PARALLEL {
        for i in range {
            f(i);
        }
        return;
    }
    match current_backend() {
        Backend::Dynamic => {
            let grain = if P::UNSEQUENCED {
                // Large contiguous blocks; tight inner loop for vectorization.
                unseq_grain(range.len())
            } else {
                // Fine-grained claiming balances uneven per-element cost.
                par_grain(range.len())
            };
            dynamic_chunks(range, grain, |r| {
                for i in r {
                    f(i);
                }
            });
        }
        Backend::Threads => {
            scoped_chunks(range, |_, r| {
                for i in r {
                    f(i);
                }
            });
        }
        Backend::DetPar => {
            let grain = if P::UNSEQUENCED { unseq_grain(range.len()) } else { par_grain(range.len()) };
            crate::detpar::det_chunks_worker(range, grain, |_, r| {
                for i in r {
                    f(i);
                }
            });
        }
    }
}

/// The `ci`-th grain-sized chunk of `range` (last chunk may be short),
/// computed arithmetically so chunked loops need no chunk-list allocation.
#[inline]
fn grain_chunk(range: &Range<usize>, grain: usize, ci: usize) -> Range<usize> {
    let s = range.start + ci * grain;
    s..(s + grain).min(range.end)
}

/// Invoke `f` on every element of `items` under `policy`.
pub fn for_each<P: ExecutionPolicy, T: Send>(
    _policy: P,
    items: &mut [T],
    f: impl Fn(&mut T) + Sync + Send,
) {
    if !P::IS_PARALLEL {
        for t in items.iter_mut() {
            f(t);
        }
        return;
    }
    let base = items.as_mut_ptr() as usize;
    let len = items.len();
    let touch = move |r: Range<usize>| {
        // SAFETY: chunks are disjoint index ranges over one slice.
        let ptr = base as *mut T;
        for i in r {
            f(unsafe { &mut *ptr.add(i) });
        }
    };
    match current_backend() {
        Backend::Dynamic => {
            let grain = if P::UNSEQUENCED { unseq_grain(len) } else { par_grain(len) };
            dynamic_chunks(0..len, grain, touch);
        }
        Backend::Threads => scoped_chunks(0..len, move |_, r| touch(r)),
        Backend::DetPar => {
            let grain = if P::UNSEQUENCED { unseq_grain(len) } else { par_grain(len) };
            crate::detpar::det_chunks_worker(0..len, grain, move |_, r| touch(r));
        }
    }
}

/// Invoke `f(chunk_range)` over contiguous chunks of `range` (grain-level
/// parallelism for kernels that manage their own inner loop).
pub fn for_each_chunk<P: ExecutionPolicy>(
    policy: P,
    range: Range<usize>,
    grain: usize,
    f: impl Fn(Range<usize>) + Sync + Send,
) {
    for_each_chunk_worker(policy, range, grain, |_, r| f(r));
}

/// [`for_each_chunk`] with the executing worker's index passed to `f`
/// alongside each chunk. Worker indices are dense (`0..workers`, bounded by
/// [`crate::backend::thread_count`]) and never observed concurrently by two
/// threads, so callers can key per-worker scratch state — reusable
/// interaction lists, local accumulators — without locks, which keeps the
/// combination valid even under `ParUnseq` (weakly parallel forward
/// progress forbids blocking). Under `Seq` the single worker has index 0.
pub fn for_each_chunk_worker<P: ExecutionPolicy>(
    _policy: P,
    range: Range<usize>,
    grain: usize,
    f: impl Fn(usize, Range<usize>) + Sync + Send,
) {
    let grain = grain.max(1);
    if !P::IS_PARALLEL {
        let mut s = range.start;
        while s < range.end {
            let e = (s + grain).min(range.end);
            f(0, s..e);
            s = e;
        }
        return;
    }
    match current_backend() {
        Backend::Dynamic => crate::backend::dynamic_chunks_worker(range, grain, f),
        Backend::Threads => {
            // Static distribution of grain-sized chunks over workers.
            let nchunks = range.len().div_ceil(grain);
            scoped_chunks(0..nchunks, |w, cis| {
                for ci in cis {
                    f(w, grain_chunk(&range, grain, ci));
                }
            });
        }
        Backend::DetPar => crate::detpar::det_chunks_worker(range, grain, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn check_visits_all<P: ExecutionPolicy + Copy>(p: P) {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let n = 4321;
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                for_each_index(p, 0..n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "policy={} backend={}",
                    P::NAME,
                    backend.name()
                );
            });
        }
    }

    #[test]
    fn for_each_index_visits_all_seq() {
        check_visits_all(Seq);
    }

    #[test]
    fn for_each_index_visits_all_par() {
        check_visits_all(Par);
    }

    #[test]
    fn for_each_index_visits_all_par_unseq() {
        check_visits_all(ParUnseq);
    }

    #[test]
    fn for_each_index_empty_range() {
        for_each_index(Par, 5..5, |_| panic!("must not run"));
    }

    #[test]
    fn for_each_mutates_every_element() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut v: Vec<u64> = (0..10_000).collect();
                for_each(Par, &mut v, |x| *x *= 2);
                assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));

                let mut w: Vec<u64> = (0..10_000).collect();
                for_each(ParUnseq, &mut w, |x| *x += 1);
                assert!(w.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));

                let mut u: Vec<u64> = (0..97).collect();
                for_each(Seq, &mut u, |x| *x = 0);
                assert!(u.iter().all(|&x| x == 0));
            });
        }
    }

    #[test]
    fn for_each_chunk_covers_range_once() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let n = 1000;
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                for_each_chunk(Par, 0..n, 64, |r| {
                    assert!(r.len() <= 64 && !r.is_empty());
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn par_supports_blocking_critical_sections() {
        // Starvation-free lock use must complete under `par` (parallel
        // forward progress): every element briefly takes the same lock.
        let lock = std::sync::Mutex::new(0u64);
        for_each_index(Par, 0..1000, |_| {
            *lock.lock().unwrap() += 1;
        });
        assert_eq!(*lock.lock().unwrap(), 1000);
    }

    #[test]
    fn panicking_element_propagates_message() {
        // The tentpole's panic-safety contract, visible at the algorithm
        // level: the original message survives both backends.
        for backend in Backend::ALL {
            with_backend(backend, || {
                let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for_each_index(Par, 0..50_000, |i| {
                        if i == 17 {
                            panic!("element 17 failed");
                        }
                    });
                }))
                .unwrap_err();
                let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "element 17 failed", "backend={}", backend.name());
            });
        }
    }

    #[test]
    fn grain_chunks_partition() {
        let range = 3..103usize;
        let grain = 7;
        let nchunks = range.len().div_ceil(grain);
        let chunks: Vec<_> = (0..nchunks).map(|ci| grain_chunk(&range, grain, ci)).collect();
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 100);
        assert_eq!(chunks[0].start, 3);
        assert_eq!(chunks.last().unwrap().end, 103);
        assert!(chunks.iter().all(|c| c.len() <= 7 && !c.is_empty()));
        // Contiguous.
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn for_each_chunk_worker_indices_are_bounded() {
        use crate::backend::thread_count;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let n = 5000;
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                for_each_chunk_worker(Par, 0..n, 64, |w, r| {
                    assert!(w < thread_count());
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
        // Seq runs everything on worker 0.
        for_each_chunk_worker(Seq, 0..100, 9, |w, _| assert_eq!(w, 0));
    }
}
