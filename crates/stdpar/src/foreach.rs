//! `std::for_each` analogues.
//!
//! [`for_each_index`] is the workhorse: the paper's kernels are all
//! `for_each(policy, views::iota(0, n), ...)` loops over body or node
//! indices (Algorithm 1). Under `par` the elements are scheduled
//! fine-grained and dynamically (each may block briefly on a lock); under
//! `par_unseq` they run in large contiguous chunks whose inner loop the
//! compiler can vectorize.

use crate::backend::{
    current_backend, dynamic_chunks, par_grain, scoped_chunks, unseq_grain, Backend,
};
use crate::policy::ExecutionPolicy;
use std::ops::Range;

/// Invoke `f(i)` for every `i` in `range` under `policy`.
pub fn for_each_index<P: ExecutionPolicy>(
    _policy: P,
    range: Range<usize>,
    f: impl Fn(usize) + Sync + Send,
) {
    if !P::IS_PARALLEL {
        for i in range {
            f(i);
        }
        return;
    }
    match current_backend() {
        Backend::Dynamic => {
            let grain = if P::UNSEQUENCED {
                // Large contiguous blocks; tight inner loop for vectorization.
                unseq_grain(range.len())
            } else {
                // Fine-grained claiming balances uneven per-element cost.
                par_grain(range.len())
            };
            dynamic_chunks(range, grain, |r| {
                for i in r {
                    f(i);
                }
            });
        }
        Backend::Threads => {
            scoped_chunks(range, |_, r| {
                for i in r {
                    f(i);
                }
            });
        }
    }
}

/// Split into chunks of size `grain` (last chunk may be short).
fn split_range_by_grain(range: Range<usize>, grain: usize) -> Vec<Range<usize>> {
    let grain = grain.max(1);
    let mut out = Vec::with_capacity(range.len() / grain + 1);
    let mut s = range.start;
    while s < range.end {
        let e = (s + grain).min(range.end);
        out.push(s..e);
        s = e;
    }
    out
}

/// Invoke `f` on every element of `items` under `policy`.
pub fn for_each<P: ExecutionPolicy, T: Send>(
    _policy: P,
    items: &mut [T],
    f: impl Fn(&mut T) + Sync + Send,
) {
    if !P::IS_PARALLEL {
        for t in items.iter_mut() {
            f(t);
        }
        return;
    }
    let base = items.as_mut_ptr() as usize;
    let len = items.len();
    let touch = move |r: Range<usize>| {
        // SAFETY: chunks are disjoint index ranges over one slice.
        let ptr = base as *mut T;
        for i in r {
            f(unsafe { &mut *ptr.add(i) });
        }
    };
    match current_backend() {
        Backend::Dynamic => {
            let grain = if P::UNSEQUENCED { unseq_grain(len) } else { par_grain(len) };
            dynamic_chunks(0..len, grain, touch);
        }
        Backend::Threads => scoped_chunks(0..len, move |_, r| touch(r)),
    }
}

/// Invoke `f(chunk_range)` over contiguous chunks of `range` (grain-level
/// parallelism for kernels that manage their own inner loop).
pub fn for_each_chunk<P: ExecutionPolicy>(
    _policy: P,
    range: Range<usize>,
    grain: usize,
    f: impl Fn(Range<usize>) + Sync + Send,
) {
    if !P::IS_PARALLEL {
        for c in split_range_by_grain(range, grain) {
            f(c);
        }
        return;
    }
    match current_backend() {
        Backend::Dynamic => dynamic_chunks(range, grain.max(1), f),
        Backend::Threads => {
            // Static distribution of chunks over workers.
            let chunks = split_range_by_grain(range, grain);
            let n = chunks.len();
            let chunks_ref = &chunks;
            scoped_chunks(0..n, move |_, r| {
                for ci in r {
                    f(chunks_ref[ci].clone());
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{with_backend, Backend};
    use crate::policy::{Par, ParUnseq, Seq};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn check_visits_all<P: ExecutionPolicy + Copy>(p: P) {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let n = 4321;
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                for_each_index(p, 0..n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "policy={} backend={}",
                    P::NAME,
                    backend.name()
                );
            });
        }
    }

    #[test]
    fn for_each_index_visits_all_seq() {
        check_visits_all(Seq);
    }

    #[test]
    fn for_each_index_visits_all_par() {
        check_visits_all(Par);
    }

    #[test]
    fn for_each_index_visits_all_par_unseq() {
        check_visits_all(ParUnseq);
    }

    #[test]
    fn for_each_index_empty_range() {
        for_each_index(Par, 5..5, |_| panic!("must not run"));
    }

    #[test]
    fn for_each_mutates_every_element() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let mut v: Vec<u64> = (0..10_000).collect();
                for_each(Par, &mut v, |x| *x *= 2);
                assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));

                let mut w: Vec<u64> = (0..10_000).collect();
                for_each(ParUnseq, &mut w, |x| *x += 1);
                assert!(w.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));

                let mut u: Vec<u64> = (0..97).collect();
                for_each(Seq, &mut u, |x| *x = 0);
                assert!(u.iter().all(|&x| x == 0));
            });
        }
    }

    #[test]
    fn for_each_chunk_covers_range_once() {
        for backend in Backend::ALL {
            with_backend(backend, || {
                let n = 1000;
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                for_each_chunk(Par, 0..n, 64, |r| {
                    assert!(r.len() <= 64 && !r.is_empty());
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn par_supports_blocking_critical_sections() {
        // Starvation-free lock use must complete under `par` (parallel
        // forward progress): every element briefly takes the same lock.
        let lock = std::sync::Mutex::new(0u64);
        for_each_index(Par, 0..1000, |_| {
            *lock.lock().unwrap() += 1;
        });
        assert_eq!(*lock.lock().unwrap(), 1000);
    }

    #[test]
    fn panicking_element_propagates_message() {
        // The tentpole's panic-safety contract, visible at the algorithm
        // level: the original message survives both backends.
        for backend in Backend::ALL {
            with_backend(backend, || {
                let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for_each_index(Par, 0..50_000, |i| {
                        if i == 17 {
                            panic!("element 17 failed");
                        }
                    });
                }))
                .unwrap_err();
                let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "element 17 failed", "backend={}", backend.name());
            });
        }
    }

    #[test]
    fn split_by_grain_partitions() {
        let chunks = split_range_by_grain(3..103, 7);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 100);
        assert_eq!(chunks[0].start, 3);
        assert_eq!(chunks.last().unwrap().end, 103);
        assert!(chunks.iter().all(|c| c.len() <= 7));
    }
}
