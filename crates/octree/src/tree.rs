//! The concurrent octree: storage, bump allocation, and the parallel
//! BUILDTREE step (paper Algorithms 4 & 5).

use crate::tags::{self, Slot, CHILDREN, EMPTY, FIRST_GROUP, LOCKED};
use nbody_math::{Aabb, AtomicF64, Vec3};
pub use nbody_resilience::BuildError;
use nbody_telemetry::record;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use stdpar::prelude::*;

/// Maximum descent depth before bodies are chained as co-located.
///
/// Two bodies closer than `root_edge / 2^MAX_DEPTH` (or at identical
/// positions) stop sub-dividing and are linked into a per-leaf chain whose
/// members interact directly. Guarantees termination for degenerate inputs.
pub const MAX_DEPTH: u32 = 96;

/// Sentinel terminating a co-located chain.
pub const CHAIN_END: u32 = u32::MAX;

/// Parent sentinel for sibling groups that are *not* reachable from the
/// root: groups sitting on the incremental free list (released by a
/// coarsen, or never granted). A full build overwrites the entry when the
/// bump allocator re-claims the group; the incremental allocator restores
/// it on every release so stale climbs can be detected.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// Hard cap on the node pool (≈ 1 G slots).
pub(crate) const MAX_NODES: u32 = 1 << 30;

/// Statistics returned by a successful [`Octree::build`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BuildStats {
    /// Number of node slots allocated (root + padding + groups).
    pub allocated_nodes: u32,
    /// Number of bodies inserted.
    pub bodies: usize,
    /// How many times the node pool had to be grown and the build restarted.
    pub retries: u32,
}

/// Default per-worker budget of *consecutive* spins on one locked slot.
///
/// Under parallel forward progress a lock holder finishes its constant-work
/// critical section after a bounded delay, so a healthy build never comes
/// close to this. Exhausting it means the holder is stuck (crashed,
/// descheduled forever, or a seeded fault) — the build aborts with
/// [`BuildError::SpinBudgetExhausted`] instead of hanging.
pub const DEFAULT_SPIN_BUDGET: u64 = 1 << 24;

/// Shared control block threaded through the per-body insert lambdas of one
/// build attempt: the first worker to observe a fatal condition flags it and
/// every other worker bails out promptly.
///
/// Ordering protocol: both flags are **published with `Release` and read
/// with `Acquire`**. Each flag is raised after writes the observer relies
/// on — `spin_exhausted` after the `max_spins` diagnostic it reports,
/// `overflow` after the leaf-restore store that un-wedges the tree — so an
/// observed flag carries those writes with it. (Flag reads used to be
/// `Relaxed`; that let an observer see `spin_exhausted` without the
/// `max_spins` value behind it.)
struct InsertCtl {
    /// A group allocation failed: grow the pool and restart the build.
    overflow: AtomicBool,
    /// A worker exceeded its spin budget: the build is livelocked.
    spin_exhausted: AtomicBool,
    /// Largest consecutive-spin count observed by a giving-up worker.
    max_spins: AtomicU64,
}

impl InsertCtl {
    fn new() -> Self {
        InsertCtl {
            overflow: AtomicBool::new(false),
            spin_exhausted: AtomicBool::new(false),
            max_spins: AtomicU64::new(0),
        }
    }

    /// True once any worker flagged a condition that dooms this attempt.
    /// `Acquire`: pairs with the `Release` flag stores, so a worker bailing
    /// out also sees every write the flagger published before flagging.
    fn aborted(&self) -> bool {
        self.overflow.load(Ordering::Acquire) || self.spin_exhausted.load(Ordering::Acquire)
    }
}

/// The concurrent octree (see crate docs).
pub struct Octree {
    /// Tagged child slot per node (Fig. 1: "one offset to first child per node").
    pub(crate) child: Vec<AtomicU32>,
    /// Parent node index per sibling group (Fig. 1: "one parent offset per siblings").
    pub(crate) parent: Vec<AtomicU32>,
    /// Bump pointer: next free node index (always group-aligned).
    bump: AtomicU32,
    /// Co-located chain links, one per body.
    pub(crate) next_colocated: Vec<AtomicU32>,
    /// Root cell geometry: the bounding cube.
    pub(crate) root_center: Vec3,
    /// Root cell edge length.
    pub(crate) root_edge: f64,
    /// Multipole storage, sized to `allocated_nodes` by `compute_multipoles`.
    pub(crate) node_mass: Vec<AtomicF64>,
    pub(crate) node_com: [Vec<AtomicF64>; 3],
    /// Optional second moments (quadrupole extension): xx, xy, xz, yy, yz, zz.
    pub(crate) node_quad: Option<[Vec<AtomicF64>; 6]>,
    /// Arrival counters for the wait-free tree reduction.
    pub(crate) arrivals: Vec<AtomicU32>,
    /// Number of bodies in the current build.
    pub(crate) n_bodies: usize,
    /// High-water mark of initialised (zeroed) child slots.
    initialized: u32,
    /// Per-worker consecutive-spin budget (see [`DEFAULT_SPIN_BUDGET`]).
    spin_budget: u64,
    /// One-shot fault: leave the root slot LOCKED for the next build.
    inject_stuck_lock: bool,
    /// One-shot fault: cap the allocator for the next build so it overflows.
    inject_pool_exhaustion: bool,
    /// Allocator cap in effect for the current build (`u32::MAX` = none).
    alloc_limit: u32,
    /// Install [`Octree::probe_build_invariants`] as a DetPar between-step
    /// probe for the insert region of every build (see
    /// [`Octree::set_step_probes`]).
    step_probes: bool,
    /// Persistent incremental-maintenance state (free-list allocator,
    /// per-slot body counts, per-body leaf cache, dirty paths). `None`
    /// until [`Octree::init_incremental`] runs; invalidated (not dropped —
    /// its buffers are grow-only) by every full build.
    pub(crate) inc: Option<Box<crate::incremental::IncState>>,
}

impl Default for Octree {
    fn default() -> Self {
        Self::new()
    }
}

impl Octree {
    /// An empty tree; the node pool grows on demand.
    pub fn new() -> Self {
        Self::with_node_capacity(1024)
    }

    /// An empty tree with an initial node-pool capacity (rounded up to a
    /// whole number of sibling groups).
    pub fn with_node_capacity(nodes: usize) -> Self {
        let nodes = pool_size_for(nodes as u32);
        Octree {
            child: make_atomic_u32(nodes as usize, EMPTY),
            parent: make_atomic_u32((nodes as usize).saturating_sub(FIRST_GROUP as usize) / CHILDREN as usize, 0),
            bump: AtomicU32::new(FIRST_GROUP),
            next_colocated: Vec::new(),
            root_center: Vec3::ZERO,
            root_edge: 0.0,
            node_mass: Vec::new(),
            node_com: [Vec::new(), Vec::new(), Vec::new()],
            node_quad: None,
            arrivals: Vec::new(),
            n_bodies: 0,
            initialized: 0,
            spin_budget: DEFAULT_SPIN_BUDGET,
            inject_stuck_lock: false,
            inject_pool_exhaustion: false,
            alloc_limit: u32::MAX,
            step_probes: false,
            inc: None,
        }
    }

    /// Bound the number of consecutive spins a worker may burn waiting on
    /// one locked slot before the build aborts with
    /// [`BuildError::SpinBudgetExhausted`]. A budget of 0 never spins.
    pub fn set_spin_budget(&mut self, budget: u64) {
        self.spin_budget = budget;
    }

    /// Current consecutive-spin budget.
    pub fn spin_budget(&self) -> u64 {
        self.spin_budget
    }

    /// Fault injection: the *next* build starts with the root slot LOCKED,
    /// as if a worker died inside its critical section. Exactly one build is
    /// affected; the rebuild after it observes a clean pool. Test-only in
    /// spirit, but kept available in release builds so the resilience
    /// harness can exercise production code paths.
    pub fn inject_stuck_lock(&mut self) {
        self.inject_stuck_lock = true;
    }

    /// Fault injection: the *next* build runs with the node allocator capped
    /// at its first sibling group, forcing [`BuildError::PoolExhausted`]
    /// without the usual grow-and-retry. One-shot, like
    /// [`Octree::inject_stuck_lock`].
    pub fn inject_pool_exhaustion(&mut self) {
        self.inject_pool_exhaustion = true;
    }

    /// Run [`Octree::probe_build_invariants`] between every scheduler step
    /// of the insert region when building under
    /// [`Backend::DetPar`](stdpar::backend::Backend): the probe panics the
    /// moment a torn tag, an out-of-bump child group, or a backwards bump
    /// pointer becomes observable, pinning a schedule-fuzz failure to the
    /// exact step that exposed it. A no-op under the real backends (probes
    /// only fire in the DetPar executor).
    pub fn set_step_probes(&mut self, enable: bool) {
        self.step_probes = enable;
    }

    /// Mid-build well-formedness check, designed to run between DetPar
    /// scheduler steps (no insert is in flight at a step boundary, but the
    /// tree may be arbitrarily partial). What must hold at *every* step
    /// boundary:
    ///
    /// * every child tag below the bump pointer decodes to a value some
    ///   insert actually stored — `Empty`, `Locked` (only under fault
    ///   injection or mid-critical-section), `Body(b)` with `b` in range,
    ///   or a group-aligned `Node` offset strictly after its parent. Any
    ///   other pattern is a torn or corrupt child-pointer read;
    /// * every *published* child group lies wholly below the bump pointer
    ///   and its parent back-pointer names the publishing node;
    /// * the bump pointer is group-aligned and never moves backwards:
    ///   callers thread the previous return value in as `min_bump`
    ///   (starting from 0) to assert monotonicity across probe calls.
    ///
    /// Returns the observed bump value. Panics on violation — DetPar probes
    /// signal failure by panicking.
    pub fn probe_build_invariants(&self, min_bump: u32) -> u32 {
        let cap = self.child.len() as u32;
        let bump = self.bump.load(Ordering::Acquire);
        assert!(bump >= min_bump, "bump pointer moved backwards: {bump} < {min_bump}");
        assert!(
            bump >= FIRST_GROUP && (bump - FIRST_GROUP).is_multiple_of(CHILDREN),
            "bump pointer {bump} not group-aligned"
        );
        let n = self.n_bodies as u32;
        let limit = bump.min(cap);
        for i in 0..limit {
            let tag = self.child[i as usize].load(Ordering::Acquire);
            match tags::decode(tag) {
                Slot::Empty | Slot::Locked => {}
                Slot::Body(b) => {
                    assert!(b < n, "node {i}: body tag {b} out of range (n={n})");
                }
                Slot::Node(c) => {
                    assert!(
                        c >= FIRST_GROUP && (c - FIRST_GROUP).is_multiple_of(CHILDREN),
                        "node {i}: torn child tag {tag:#x} (offset {c} not group-aligned)"
                    );
                    assert!(c > i, "node {i}: child group {c} not after its parent");
                    assert!(
                        c + CHILDREN <= limit,
                        "node {i}: published child group {c} beyond bump {limit}"
                    );
                    // relaxed-ok: the back-pointer was written before the
                    // Release publish of the child slot this probe just
                    // Acquire-loaded the group through.
                    let back = self.parent[tags::group_of(c) as usize].load(Ordering::Relaxed);
                    assert!(back == i, "group {c}: parent back-pointer {back}, expected {i}");
                }
            }
        }
        bump
    }

    /// Enable or disable quadrupole moments for subsequent
    /// `compute_multipoles` calls (the paper's "extends to multipoles"
    /// extension; monopole-only is the paper's evaluated configuration).
    pub fn set_quadrupole(&mut self, enable: bool) {
        if enable {
            if self.node_quad.is_none() {
                self.node_quad = Some(std::array::from_fn(|_| Vec::new()));
            }
        } else {
            self.node_quad = None;
        }
    }

    /// True when quadrupole moments are enabled.
    pub fn quadrupole_enabled(&self) -> bool {
        self.node_quad.is_some()
    }

    /// Number of node slots handed out by the bump allocator.
    #[inline]
    pub fn allocated_nodes(&self) -> u32 {
        // relaxed-ok: a monotonic counter read for introspection; callers
        // consume node data only after the build region joined (or through
        // Acquire slot loads), never ordered by this load.
        self.bump.load(Ordering::Relaxed).min(self.child.len() as u32)
    }

    /// Number of bodies in the last build.
    #[inline]
    pub fn n_bodies(&self) -> usize {
        self.n_bodies
    }

    /// Root cell edge length of the last build.
    #[inline]
    pub fn root_edge(&self) -> f64 {
        self.root_edge
    }

    /// Root cell centre of the last build.
    #[inline]
    pub fn root_center(&self) -> Vec3 {
        self.root_center
    }

    /// The root cube as an AABB. Feeding this back into [`Octree::build`]
    /// reproduces the same cell geometry — the incremental equivalence
    /// tests use it to build from-scratch oracles on the persistent cube.
    pub fn root_cube(&self) -> Aabb {
        let h = self.root_edge * 0.5;
        Aabb::new(self.root_center - Vec3::splat(h), self.root_center + Vec3::splat(h))
    }

    /// Whether DetPar step probes are armed (see [`Octree::set_step_probes`]).
    #[inline]
    pub(crate) fn step_probes_enabled(&self) -> bool {
        self.step_probes
    }

    /// Node-pool capacity in slots.
    #[inline]
    pub fn node_capacity(&self) -> usize {
        self.child.len()
    }

    /// Decoded state of node `i` (post-build introspection).
    #[inline]
    pub fn slot(&self, i: u32) -> Slot {
        tags::decode(self.child[i as usize].load(Ordering::Acquire))
    }

    /// Parent node index of node `i > 0`.
    #[inline]
    pub fn parent_of(&self, i: u32) -> u32 {
        // relaxed-ok: the parent entry is written inside the critical
        // section that precedes the group's Release publish, and readers
        // only reach group `i` through an Acquire load of that published
        // slot (or after the build joined) — the edge is on the child slot,
        // not here.
        self.parent[tags::group_of(i) as usize].load(Ordering::Relaxed)
    }

    /// Iterate a co-located body chain starting at its head body.
    pub fn chain(&self, head: u32) -> ChainIter<'_> {
        ChainIter { tree: self, cur: head }
    }

    /// BUILDTREE (paper Algorithm 4): insert all bodies in parallel.
    ///
    /// `bounds` is the box from CALCULATEBOUNDINGBOX; the root cell is its
    /// bounding cube. The policy is bounded by [`ParallelForwardProgress`]
    /// because insertion takes per-leaf locks (starvation-free): `Seq` and
    /// `Par` compile, `ParUnseq` does not.
    ///
    /// On pool overflow the pool is grown ×2 and the build restarts (the
    /// paper sizes the pool from an isotropic-subdivision estimate; growth
    /// makes the estimate self-correcting).
    pub fn build<P>(&mut self, policy: P, positions: &[Vec3], bounds: Aabb) -> Result<BuildStats, BuildError>
    where
        P: ParallelForwardProgress,
    {
        let n = positions.len();
        if n > tags::MAX_INDEX as usize {
            return Err(BuildError::TooManyBodies { n });
        }
        // A from-scratch build invalidates any incremental bookkeeping (the
        // buffers are kept — they are grow-only and will be re-initialised).
        if let Some(inc) = self.inc.as_deref_mut() {
            inc.valid = false;
        }
        self.n_bodies = n;
        if n == 0 {
            self.reset_slots();
            self.root_center = Vec3::ZERO;
            self.root_edge = 0.0;
            return Ok(BuildStats { allocated_nodes: FIRST_GROUP, bodies: 0, retries: 0 });
        }
        if bounds.is_empty() || !bounds.min.is_finite() || !bounds.max.is_finite() {
            return Err(BuildError::InvalidPositions);
        }
        let cube = bounds.to_cube();
        self.root_center = cube.center();
        self.root_edge = cube.extent().x;

        // Pool estimate: every body costs at most one group on the path it
        // opens; clustered inputs need more, handled by growth-retry.
        let want = pool_size_for((2 * n as u32).max(1024));
        if self.child.len() < want as usize {
            self.grow_pool(want)?;
        }
        if self.next_colocated.len() < n {
            self.next_colocated = make_atomic_u32(n, CHAIN_END);
        }

        // One-shot fault arming: consumed by exactly this build.
        let stuck_lock = std::mem::take(&mut self.inject_stuck_lock);
        self.alloc_limit =
            if std::mem::take(&mut self.inject_pool_exhaustion) { FIRST_GROUP } else { u32::MAX };

        let mut retries = 0u32;
        loop {
            self.reset_slots();
            if stuck_lock && retries == 0 {
                // Simulate a worker that died holding the root lock.
                self.child[0].store(LOCKED, Ordering::Release);
            }
            // Reset chains for this build.
            for_each(policy, &mut self.next_colocated[..n], |c| *c = AtomicU32::new(CHAIN_END));

            let ctl = InsertCtl::new();
            let this = &*self;
            let c = &ctl;
            let insert_region = || {
                for_each_index(policy, 0..n, |b| {
                    if !c.aborted() {
                        this.insert(b as u32, positions, c);
                    }
                })
            };
            if self.step_probes {
                // Between-step invariant probe (fires only under DetPar):
                // the Cell threads bump monotonicity across probe calls.
                let last_bump = std::cell::Cell::new(0u32);
                stdpar::detpar::with_probe(
                    || last_bump.set(this.probe_build_invariants(last_bump.get())),
                    insert_region,
                );
            } else {
                insert_region();
            }

            // Acquire pairs with the Release flag store: observing the flag
            // guarantees the `max_spins` diagnostic behind it is visible.
            if ctl.spin_exhausted.load(Ordering::Acquire) {
                // Livelock: a bigger pool cannot help, so no retry here. The
                // pool is left dirty (reset at the next build).
                return Err(BuildError::SpinBudgetExhausted {
                    // relaxed-ok: ordered after the flag by the Acquire load
                    // above (and the parallel region has joined besides).
                    spins: ctl.max_spins.load(Ordering::Relaxed),
                });
            }
            if !ctl.overflow.load(Ordering::Acquire) {
                let allocated_nodes = self.allocated_nodes();
                record!(counter OCTREE_BUILDS, 1);
                if retries > 0 {
                    record!(counter OCTREE_BUILD_RETRIES, retries as u64);
                }
                record!(gauge OCTREE_POOL_HIGH_WATER, allocated_nodes as u64);
                return Ok(BuildStats { allocated_nodes, bodies: n, retries });
            }
            if self.alloc_limit != u32::MAX {
                // Injected exhaustion: report rather than grow, and disarm so
                // the caller's retry observes a healthy allocator.
                let limit = self.alloc_limit;
                self.alloc_limit = u32::MAX;
                return Err(BuildError::PoolExhausted { requested_nodes: limit });
            }
            retries += 1;
            let new_size = pool_size_for((self.child.len() as u32).saturating_mul(2));
            self.grow_pool(new_size)?;
        }
    }

    /// Insert one body (the per-element lambda of Algorithm 4). Contention
    /// telemetry (lock-bit spins, lost CASes) tallies in locals inside
    /// [`Octree::insert_inner`] and flushes here, once per body and only
    /// when contention actually happened — an uncontended insert performs
    /// zero extra atomic operations.
    fn insert(&self, b: u32, positions: &[Vec3], ctl: &InsertCtl) {
        let mut spins_total = 0u64;
        let mut cas_retries = 0u64;
        self.insert_inner(b, positions, ctl, &mut spins_total, &mut cas_retries);
        if spins_total > 0 {
            record!(counter OCTREE_SPIN_ITERS, spins_total);
        }
        if cas_retries > 0 {
            record!(counter OCTREE_LOCK_CAS_RETRIES, cas_retries);
        }
    }

    fn insert_inner(
        &self,
        b: u32,
        positions: &[Vec3],
        ctl: &InsertCtl,
        spins_total: &mut u64,
        cas_retries: &mut u64,
    ) {
        let p = positions[b as usize];
        let mut i = 0u32;
        let mut center = self.root_center;
        let mut half = self.root_edge * 0.5;
        let mut depth = 0u32;
        // Consecutive spins on the *current* locked slot; any forward step
        // (or even a failed CAS, which proves the slot changed) resets it.
        let mut spins = 0u64;
        loop {
            let tag = self.child[i as usize].load(Ordering::Acquire);
            match tags::decode(tag) {
                Slot::Node(c) => {
                    // Forward step: descend into the child covering `p`.
                    spins = 0;
                    let oct = Aabb::octant_of(center, p);
                    center = octant_center(center, half, oct);
                    half *= 0.5;
                    i = c + oct as u32;
                    depth += 1;
                }
                Slot::Empty => {
                    spins = 0;
                    // Try to claim the empty leaf directly.
                    if self.child[i as usize]
                        .compare_exchange_weak(
                            tag,
                            tags::body_tag(b),
                            Ordering::AcqRel,
                            // relaxed-ok: the failure value is discarded;
                            // the retry re-reads the slot with Acquire.
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        return;
                    }
                    // Lost the race; re-examine the slot.
                    *cas_retries += 1;
                }
                Slot::Locked => {
                    // Another thread is sub-dividing: wait (starvation-free —
                    // requires parallel forward progress, hence the `par`
                    // bound). The wait is budgeted: a holder that never
                    // publishes would otherwise livelock the whole build.
                    spins += 1;
                    *spins_total += 1;
                    if spins > self.spin_budget {
                        // relaxed-ok: the diagnostic payload; publication is
                        // the Release store of the flag just below.
                        ctl.max_spins.fetch_max(spins, Ordering::Relaxed);
                        // Release: publishes `max_spins` to whoever observes
                        // the flag (Acquire in `aborted` / the build loop).
                        ctl.spin_exhausted.store(true, Ordering::Release);
                        return;
                    }
                    if spins.is_multiple_of(64) && ctl.spin_exhausted.load(Ordering::Acquire) {
                        // A peer already diagnosed the livelock; don't burn
                        // a full budget rediscovering it.
                        return;
                    }
                    std::hint::spin_loop();
                }
                Slot::Body(b2) => {
                    spins = 0;
                    // Try to lock the leaf for sub-division (Algorithm 5).
                    // relaxed-ok (failure ordering): the failure value is
                    // discarded; the retry re-reads the slot with Acquire.
                    if self.child[i as usize]
                        .compare_exchange_weak(tag, LOCKED, Ordering::Acquire, Ordering::Relaxed)
                        .is_err()
                    {
                        *cas_retries += 1;
                        continue;
                    }
                    // --- critical section ---
                    let p2 = positions[b2 as usize];
                    if depth >= MAX_DEPTH || p == p2 {
                        // Co-located (or resolution exhausted): chain `b`
                        // behind the resident body instead of sub-dividing.
                        // relaxed-ok (all three chain ops): the chain is only
                        // mutated under this leaf's lock, and the Release
                        // store unlocking the leaf below publishes it;
                        // readers reach the chain head via an Acquire load of
                        // the leaf slot.
                        let next = self.next_colocated[b2 as usize].load(Ordering::Relaxed);
                        self.next_colocated[b as usize].store(next, Ordering::Relaxed);
                        self.next_colocated[b2 as usize].store(b, Ordering::Relaxed);
                        self.child[i as usize].store(tags::body_tag(b2), Ordering::Release);
                        return;
                    }
                    match self.allocate_group() {
                        Some(c) => {
                            // Move the resident body into its child, then
                            // publish the new children with a release store.
                            // relaxed-ok (parent + child-slot init): both
                            // writes are sequenced before the Release publish
                            // of the parent slot, and no other thread can
                            // name the fresh group until it observes that
                            // publish with Acquire.
                            self.parent[tags::group_of(c) as usize].store(i, Ordering::Relaxed);
                            let oct2 = Aabb::octant_of(center, p2);
                            self.child[(c + oct2 as u32) as usize]
                                .store(tags::body_tag(b2), Ordering::Relaxed);
                            self.child[i as usize].store(tags::node_tag(c), Ordering::Release);
                            // Next iteration traverses into the children.
                        }
                        None => {
                            // Pool exhausted: restore the leaf, flag, abort.
                            // Release on the flag orders it after the leaf
                            // restore — an observer of `overflow` never sees
                            // the tree still wedged in the Locked state.
                            self.child[i as usize].store(tags::body_tag(b2), Ordering::Release);
                            ctl.overflow.store(true, Ordering::Release);
                            return;
                        }
                    }
                    // --- end critical section ---
                }
            }
        }
    }

    /// Concurrent bump allocation of one sibling group (paper: "relaxed
    /// atomic add operations" on a pre-reserved pool).
    fn allocate_group(&self) -> Option<u32> {
        // relaxed-ok: the RMW's atomicity alone makes claims disjoint; the
        // group's contents are published by the parent slot's Release store,
        // not by this counter (the paper's "relaxed atomic add").
        let c = self.bump.fetch_add(CHILDREN, Ordering::Relaxed);
        let cap = (self.child.len() as u32).min(self.alloc_limit);
        if c.saturating_add(CHILDREN) <= cap {
            Some(c)
        } else {
            None
        }
    }

    /// Zero the previously used region of the pool and reset the allocator.
    fn reset_slots(&mut self) {
        // relaxed-ok (both bump ops): `&mut self` — no other thread exists
        // for these to race with.
        let used = (self.bump.load(Ordering::Relaxed).min(self.child.len() as u32))
            .max(self.initialized);
        let used = used.min(self.child.len() as u32) as usize;
        for slot in &mut self.child[..used] {
            *slot = AtomicU32::new(EMPTY);
        }
        self.bump.store(FIRST_GROUP, Ordering::Relaxed);
        self.initialized = 0;
    }

    fn grow_pool(&mut self, nodes: u32) -> Result<(), BuildError> {
        if nodes > MAX_NODES {
            return Err(BuildError::PoolExhausted { requested_nodes: nodes });
        }
        self.child = make_atomic_u32(nodes as usize, EMPTY);
        self.parent =
            make_atomic_u32((nodes as usize - FIRST_GROUP as usize) / CHILDREN as usize, 0);
        // relaxed-ok: `&mut self`, single-threaded.
        self.bump.store(FIRST_GROUP, Ordering::Relaxed);
        self.initialized = 0;
        Ok(())
    }

    /// Grow the node pool *without* wiping existing slots — the incremental
    /// free-list allocator grows the pool mid-life, when the live tree must
    /// survive. New slots come up `EMPTY` with `NO_PARENT` back-pointers
    /// (they join the free list). The bump pointer is parked at the new
    /// capacity so `allocated_nodes()` keeps covering every grantable slot.
    pub(crate) fn grow_pool_preserving(&mut self, nodes: u32) -> Result<(), BuildError> {
        if nodes > MAX_NODES {
            return Err(BuildError::PoolExhausted { requested_nodes: nodes });
        }
        self.child.resize_with(nodes as usize, || AtomicU32::new(EMPTY));
        self.parent.resize_with(
            (nodes as usize - FIRST_GROUP as usize) / CHILDREN as usize,
            || AtomicU32::new(NO_PARENT),
        );
        self.park_bump_at_capacity();
        Ok(())
    }

    /// Park the bump pointer at the pool capacity. In incremental mode the
    /// free-list allocator owns group recycling, and every slot below the
    /// capacity may hold live tree data — `allocated_nodes()`, moment
    /// sizing, and the next full build's `reset_slots` must all treat the
    /// whole pool as in use.
    pub(crate) fn park_bump_at_capacity(&mut self) {
        let cap = self.child.len() as u32;
        // relaxed-ok: `&mut self`, single-threaded.
        self.bump.store(cap, Ordering::Relaxed);
        self.initialized = self.initialized.max(cap);
    }
}

/// Iterator over a co-located body chain.
pub struct ChainIter<'a> {
    tree: &'a Octree,
    cur: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.cur == CHAIN_END {
            return None;
        }
        let b = self.cur;
        // relaxed-ok: chains were published by the Release store that
        // unlocked their leaf; the iterator's caller reached the head via an
        // Acquire slot load (`Octree::slot`) or after the build joined.
        self.cur = self.tree.next_colocated[b as usize].load(Ordering::Relaxed);
        Some(b)
    }
}

/// Centre of the `oct`-th octant of the cell (`center`, half-width `half`).
#[inline]
pub(crate) fn octant_center(center: Vec3, half: f64, oct: usize) -> Vec3 {
    let q = half * 0.5;
    Vec3::new(
        center.x + if oct & 1 != 0 { q } else { -q },
        center.y + if oct & 2 != 0 { q } else { -q },
        center.z + if oct & 4 != 0 { q } else { -q },
    )
}

pub(crate) fn pool_size_for(nodes: u32) -> u32 {
    let groups = nodes.saturating_sub(FIRST_GROUP).div_ceil(CHILDREN).max(4);
    FIRST_GROUP + groups.saturating_mul(CHILDREN)
}

fn make_atomic_u32(n: usize, v: u32) -> Vec<AtomicU32> {
    let mut out = Vec::with_capacity(n);
    out.resize_with(n, || AtomicU32::new(v));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::Slot;
    use nbody_math::SplitMix64;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut r = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0))).collect()
    }

    fn build_tree(pos: &[Vec3]) -> Octree {
        let mut t = Octree::new();
        t.build(Par, pos, Aabb::from_points(pos)).unwrap();
        t
    }

    #[test]
    fn empty_input() {
        let mut t = Octree::new();
        let stats = t.build(Par, &[], Aabb::EMPTY).unwrap();
        assert_eq!(stats.bodies, 0);
        assert_eq!(t.slot(0), Slot::Empty);
    }

    #[test]
    fn single_body_lands_in_root() {
        let pos = vec![Vec3::new(0.5, 0.5, 0.5)];
        let t = build_tree(&pos);
        assert_eq!(t.slot(0), Slot::Body(0));
        assert_eq!(t.chain(0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn two_bodies_subdivide_once() {
        let pos = vec![Vec3::new(-0.5, -0.5, -0.5), Vec3::new(0.5, 0.5, 0.5)];
        let t = build_tree(&pos);
        match t.slot(0) {
            Slot::Node(c) => {
                assert_eq!(c, FIRST_GROUP);
                // The bodies sit in opposite octants of the root cube.
                let occupied: Vec<Slot> = (c..c + 8).map(|i| t.slot(i)).collect();
                let bodies: Vec<u32> = occupied
                    .iter()
                    .filter_map(|s| if let Slot::Body(b) = s { Some(*b) } else { None })
                    .collect();
                let mut sorted = bodies.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1]);
            }
            other => panic!("root should be internal, got {other:?}"),
        }
    }

    #[test]
    fn all_bodies_reachable_every_policy() {
        let pos = random_points(2000, 7);
        for reachable in [
            {
                let t = build_tree(&pos);
                crate::validate::collect_bodies(&t)
            },
            {
                let mut t = Octree::new();
                t.build(Seq, &pos, Aabb::from_points(&pos)).unwrap();
                crate::validate::collect_bodies(&t)
            },
        ] {
            let mut r = reachable.clone();
            r.sort_unstable();
            assert_eq!(r, (0..2000u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn no_locked_tags_remain() {
        let pos = random_points(5000, 8);
        let t = build_tree(&pos);
        for i in 0..t.allocated_nodes() {
            assert_ne!(t.slot(i), Slot::Locked, "node {i} still locked");
        }
    }

    #[test]
    fn duplicate_positions_form_chain() {
        let p = Vec3::new(0.25, 0.25, 0.25);
        let pos = vec![p, Vec3::new(-0.5, 0.0, 0.0), p, p];
        let t = build_tree(&pos);
        let bodies = crate::validate::collect_bodies(&t);
        let mut sorted = bodies.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Bodies 0, 2, 3 share one leaf via a chain.
        let inv = crate::validate::TreeInvariants::check(&t, &pos).unwrap();
        assert!(inv.max_chain_len >= 3, "chain len {}", inv.max_chain_len);
    }

    #[test]
    fn extremely_close_positions_terminate() {
        // 1 ulp apart: must terminate via MAX_DEPTH chaining.
        let a = 0.1f64;
        let b = f64::from_bits(a.to_bits() + 1);
        let pos = vec![Vec3::splat(a), Vec3::splat(b), Vec3::new(0.9, 0.9, 0.9)];
        let t = build_tree(&pos);
        let mut bodies = crate::validate::collect_bodies(&t);
        bodies.sort_unstable();
        assert_eq!(bodies, vec![0, 1, 2]);
    }

    #[test]
    fn pool_growth_retries() {
        // Start with a tiny pool and force growth.
        let pos = random_points(3000, 9);
        let mut t = Octree::with_node_capacity(64);
        let stats = t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        assert!(stats.retries > 0, "expected at least one growth retry");
        let mut bodies = crate::validate::collect_bodies(&t);
        bodies.sort_unstable();
        assert_eq!(bodies.len(), 3000);
    }

    #[test]
    fn rebuild_reuses_tree() {
        let mut t = Octree::new();
        let pos1 = random_points(500, 10);
        t.build(Par, &pos1, Aabb::from_points(&pos1)).unwrap();
        let pos2 = random_points(800, 11);
        t.build(Par, &pos2, Aabb::from_points(&pos2)).unwrap();
        let mut bodies = crate::validate::collect_bodies(&t);
        bodies.sort_unstable();
        assert_eq!(bodies, (0..800u32).collect::<Vec<_>>());
    }

    #[test]
    fn child_offsets_exceed_parent_offsets() {
        // The stackless-DFS invariant (paper Fig. 3).
        let pos = random_points(3000, 12);
        let t = build_tree(&pos);
        for i in 0..t.allocated_nodes() {
            if let Slot::Node(c) = t.slot(i) {
                assert!(c > i, "child group {c} not after parent {i}");
            }
        }
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut t = Octree::new();
        let pos = vec![Vec3::new(f64::NAN, 0.0, 0.0)];
        assert_eq!(
            t.build(Par, &pos, Aabb::from_points(&pos)),
            Err(BuildError::InvalidPositions)
        );
    }

    #[test]
    fn octant_center_moves_toward_octant() {
        let c = Vec3::ZERO;
        let h = 1.0;
        // `half` is the parent half-width; children centres sit at ±half/2.
        assert_eq!(octant_center(c, h, 0), Vec3::splat(-0.5));
        assert_eq!(octant_center(c, h, 7), Vec3::splat(0.5));
        let oc = octant_center(c, h, 1);
        assert!(oc.x > 0.0 && oc.y < 0.0 && oc.z < 0.0);
    }

    #[test]
    fn pool_size_respects_group_alignment() {
        for n in [0u32, 1, 8, 9, 100, 4096] {
            let s = pool_size_for(n);
            assert!(s >= n.max(FIRST_GROUP));
            assert_eq!((s - FIRST_GROUP) % CHILDREN, 0);
        }
    }

    #[test]
    fn stuck_lock_detected_not_hung() {
        let pos = random_points(200, 21);
        let mut t = Octree::new();
        t.set_spin_budget(10_000); // keep the test fast
        t.inject_stuck_lock();
        let err = t.build(Par, &pos, Aabb::from_points(&pos)).unwrap_err();
        match err {
            BuildError::SpinBudgetExhausted { spins } => assert!(spins > 10_000),
            other => panic!("expected SpinBudgetExhausted, got {other:?}"),
        }
        // The injection was one-shot: an immediate rebuild succeeds.
        let stats = t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        assert_eq!(stats.bodies, 200);
        let mut bodies = crate::validate::collect_bodies(&t);
        bodies.sort_unstable();
        assert_eq!(bodies, (0..200u32).collect::<Vec<_>>());
    }

    #[test]
    fn stuck_lock_detected_sequentially() {
        // Single-threaded: the budget is the only thing standing between the
        // lone worker and an infinite spin.
        let pos = random_points(50, 22);
        let mut t = Octree::new();
        t.set_spin_budget(1000);
        t.inject_stuck_lock();
        let err = t.build(Seq, &pos, Aabb::from_points(&pos)).unwrap_err();
        assert!(matches!(err, BuildError::SpinBudgetExhausted { .. }), "{err:?}");
    }

    #[test]
    fn injected_pool_exhaustion_reports_and_recovers() {
        let pos = random_points(500, 23);
        let mut t = Octree::new();
        t.inject_pool_exhaustion();
        let err = t.build(Par, &pos, Aabb::from_points(&pos)).unwrap_err();
        assert!(matches!(err, BuildError::PoolExhausted { .. }), "{err:?}");
        assert!(err.is_retryable());
        // One-shot: the retry builds normally.
        let stats = t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        assert_eq!(stats.bodies, 500);
    }

    #[test]
    fn healthy_build_untouched_by_budget() {
        // A generous budget must never fire on a fault-free build.
        let pos = random_points(3000, 24);
        let mut t = Octree::new();
        t.set_spin_budget(DEFAULT_SPIN_BUDGET);
        let stats = t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        assert_eq!(stats.bodies, 3000);
    }

    #[test]
    fn step_probes_hold_under_detpar_schedules() {
        // The mid-build probe must pass at every step boundary of every
        // schedule mode — and the resulting trees must be byte-identical
        // across modes (the build is deterministic given the insert order
        // DetPar serializes).
        let pos = random_points(700, 30);
        let bounds = Aabb::from_points(&pos);
        with_backend(Backend::DetPar, || {
            for mode in ScheduleMode::ALL {
                for seed in [0u64, 7] {
                    with_schedule(seed, mode, || {
                        let mut t = Octree::new();
                        t.set_step_probes(true);
                        t.build(Par, &pos, bounds).unwrap();
                        crate::validate::TreeInvariants::check(&t, &pos).unwrap();
                    });
                }
            }
        });
    }

    #[test]
    fn ctl_flags_deterministic_under_adversarial_detpar() {
        // Regression for the control-flag ordering fix: both abort flags
        // must produce the same diagnosis on every adversarial schedule,
        // with the publish edge (max_spins behind spin_exhausted, restored
        // leaf behind overflow) intact at the deterministic failure point.
        let pos = random_points(300, 31);
        let bounds = Aabb::from_points(&pos);
        with_backend(Backend::DetPar, || {
            for seed in 0u64..4 {
                with_schedule(seed, ScheduleMode::Adversarial, || {
                    let mut t = Octree::new();
                    t.set_step_probes(true);
                    t.set_spin_budget(2000);
                    t.inject_stuck_lock();
                    match t.build(Par, &pos, bounds).unwrap_err() {
                        BuildError::SpinBudgetExhausted { spins } => {
                            assert_eq!(spins, 2001, "seed {seed}: max_spins not published");
                        }
                        other => panic!("seed {seed}: expected SpinBudgetExhausted, got {other:?}"),
                    }

                    let mut t = Octree::new();
                    t.set_step_probes(true);
                    t.inject_pool_exhaustion();
                    let err = t.build(Par, &pos, bounds).unwrap_err();
                    assert!(matches!(err, BuildError::PoolExhausted { .. }), "seed {seed}: {err:?}");
                    // Overflow published after the leaf restore: no slot may
                    // still be wedged Locked once the flag was observed.
                    for i in 0..t.allocated_nodes() {
                        assert_ne!(t.slot(i), Slot::Locked, "seed {seed}: node {i} wedged");
                    }
                    // And the recovery build must succeed cleanly.
                    t.build(Par, &pos, bounds).unwrap();
                    crate::validate::TreeInvariants::check(&t, &pos).unwrap();
                });
            }
        });
    }

    #[test]
    fn clustered_input_builds() {
        // Tight Gaussian cluster forces deep subdivision.
        let mut r = SplitMix64::new(13);
        let mut pos: Vec<Vec3> = (0..2000)
            .map(|_| Vec3::new(r.normal() * 1e-6, r.normal() * 1e-6, r.normal() * 1e-6))
            .collect();
        pos.push(Vec3::new(1.0, 1.0, 1.0)); // far outlier stretches the root
        let t = build_tree(&pos);
        let mut bodies = crate::validate::collect_bodies(&t);
        bodies.sort_unstable();
        assert_eq!(bodies.len(), 2001);
    }
}
