//! Reusable scratch buffers for the octree force traversal.
//!
//! The blocked CALCULATEFORCE path needs the tree's depth-first body order
//! (an O(N) vector plus the DFS stack that produces it) and per-worker
//! interaction lists. [`TraversalScratch`] owns all three so a steady-state
//! caller of [`crate::Octree::compute_forces_with`] allocates nothing after
//! warm-up; the tree's own storage (node pool, co-location chains, moment
//! arrays) is already grow-only.
//!
//! The plain [`crate::Octree::compute_forces`] entry point constructs a
//! throwaway scratch per call — same results, per-call allocations — so
//! existing callers are unaffected.

use nbody_math::ListsPool;

/// Scratch arena for octree force evaluation. Construction is
/// allocation-free; buffers grow on first use and are retained across
/// steps.
#[derive(Default)]
pub struct TraversalScratch {
    /// Bodies in depth-first tree order (the blocked path's grouping key).
    pub(crate) order: Vec<u32>,
    /// DFS stack used to produce `order`.
    pub(crate) stack: Vec<u32>,
    /// Per-worker interaction lists for the blocked traversal.
    pub(crate) lists: ListsPool,
}

impl TraversalScratch {
    pub fn new() -> Self {
        Self::default()
    }
}
