//! Spatial queries on the built octree.
//!
//! The paper motivates Barnes-Hut trees as "transferable to other domains
//! and algorithms" (§I); range and nearest-neighbour queries are the
//! canonical other uses. These run on the same structure the force
//! traversal uses, pruning by cell geometry.

use crate::tags::{Slot, CHILDREN};
use crate::tree::{octant_center, Octree};
use nbody_math::{Aabb, Vec3};

impl Octree {
    /// Indices of all bodies within distance `r` of `p` (inclusive).
    /// Order unspecified.
    pub fn query_radius(&self, p: Vec3, r: f64, positions: &[Vec3]) -> Vec<u32> {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        let mut out = Vec::new();
        if self.n_bodies() == 0 || r.is_nan() || r < 0.0 {
            return out;
        }
        let r2 = r * r;
        let mut stack: Vec<(u32, Vec3, f64)> =
            vec![(0, self.root_center, self.root_edge * 0.5)];
        while let Some((i, center, half)) = stack.pop() {
            match self.slot(i) {
                Slot::Empty | Slot::Locked => {}
                Slot::Body(head) => {
                    for b in self.chain(head) {
                        if positions[b as usize].distance2(p) <= r2 {
                            out.push(b);
                        }
                    }
                }
                Slot::Node(c) => {
                    for oct in 0..CHILDREN as usize {
                        let cc = octant_center(center, half, oct);
                        let ch = half * 0.5;
                        let cell = Aabb::new(cc - Vec3::splat(ch), cc + Vec3::splat(ch));
                        if cell.distance2_to_point(p) <= r2 {
                            stack.push((c + oct as u32, cc, ch));
                        }
                    }
                }
            }
        }
        out
    }

    /// Index of the body nearest to `p` (excluding `exclude`), by
    /// branch-and-bound descent. Returns `None` for an empty tree or when
    /// the only body is excluded.
    pub fn nearest(&self, p: Vec3, exclude: Option<u32>, positions: &[Vec3]) -> Option<u32> {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        if self.n_bodies() == 0 {
            return None;
        }
        let mut best: Option<(u32, f64)> = None;
        // Best-first search on a stack ordered lazily: we pop nearest-cell
        // candidates first by sorting children before pushing.
        let mut stack: Vec<(u32, Vec3, f64, f64)> =
            vec![(0, self.root_center, self.root_edge * 0.5, 0.0)];
        while let Some((i, center, half, lower)) = stack.pop() {
            if let Some((_, d2)) = best {
                if lower > d2 {
                    continue;
                }
            }
            match self.slot(i) {
                Slot::Empty | Slot::Locked => {}
                Slot::Body(head) => {
                    for b in self.chain(head) {
                        if Some(b) == exclude {
                            continue;
                        }
                        let d2 = positions[b as usize].distance2(p);
                        if best.is_none_or(|(_, bd)| d2 < bd) {
                            best = Some((b, d2));
                        }
                    }
                }
                Slot::Node(c) => {
                    let mut kids: Vec<(u32, Vec3, f64, f64)> = (0..CHILDREN as usize)
                        .map(|oct| {
                            let cc = octant_center(center, half, oct);
                            let ch = half * 0.5;
                            let cell = Aabb::new(cc - Vec3::splat(ch), cc + Vec3::splat(ch));
                            (c + oct as u32, cc, ch, cell.distance2_to_point(p))
                        })
                        .collect();
                    // Push farthest first so the nearest cell is popped next.
                    kids.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap());
                    stack.extend(kids);
                }
            }
        }
        best.map(|(b, _)| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;
    use stdpar::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut r = SplitMix64::new(seed);
        (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect()
    }

    fn built(pos: &[Vec3]) -> Octree {
        let mut t = Octree::new();
        t.build(Par, pos, Aabb::from_points(pos)).unwrap();
        t
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pos = random_points(2000, 101);
        let t = built(&pos);
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let p = Vec3::new(rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2));
            let r = rng.uniform(0.0, 0.8);
            let mut got = t.query_radius(p, r, &pos);
            got.sort_unstable();
            let mut expect: Vec<u32> = pos
                .iter()
                .enumerate()
                .filter(|(_, &x)| x.distance(p) <= r)
                .map(|(i, _)| i as u32)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "p={p:?}, r={r}");
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pos = random_points(1500, 102);
        let t = built(&pos);
        let mut rng = SplitMix64::new(8);
        for _ in 0..100 {
            let p = Vec3::new(rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5));
            let got = t.nearest(p, None, &pos).unwrap();
            let expect = pos
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.distance2(p).partial_cmp(&b.1.distance2(p)).unwrap())
                .unwrap()
                .0 as u32;
            // Allow ties at identical distance.
            assert!(
                (pos[got as usize].distance2(p) - pos[expect as usize].distance2(p)).abs() < 1e-15,
                "got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn nearest_respects_exclusion() {
        let pos = vec![Vec3::ZERO, Vec3::new(0.1, 0.0, 0.0), Vec3::new(5.0, 0.0, 0.0)];
        let t = built(&pos);
        assert_eq!(t.nearest(Vec3::ZERO, None, &pos), Some(0));
        assert_eq!(t.nearest(Vec3::ZERO, Some(0), &pos), Some(1));
    }

    #[test]
    fn radius_zero_finds_exact_hits_only() {
        let pos = vec![Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0)];
        let t = built(&pos);
        assert_eq!(t.query_radius(Vec3::ZERO, 0.0, &pos), vec![0]);
        assert!(t.query_radius(Vec3::new(0.25, 0.0, 0.0), 0.0, &pos).is_empty());
    }

    #[test]
    fn empty_tree_queries() {
        let mut t = Octree::new();
        t.build(Par, &[], Aabb::EMPTY).unwrap();
        assert!(t.query_radius(Vec3::ZERO, 1.0, &[]).is_empty());
        assert_eq!(t.nearest(Vec3::ZERO, None, &[]), None);
    }

    #[test]
    fn colocated_chain_members_all_found() {
        let p = Vec3::new(0.3, 0.3, 0.3);
        let pos = vec![p, p, p, Vec3::new(-0.9, 0.0, 0.0)];
        let t = built(&pos);
        let mut got = t.query_radius(p, 1e-12, &pos);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }
}
