//! CALCULATEMULTIPOLES — the wait-free parallel tree reduction (paper
//! §IV-A.2, Fig. 2).
//!
//! One logical thread is scheduled per allocated node; threads whose node is
//! internal exit immediately, so the available parallelism stays `O(N)`.
//! Each leaf thread computes its node's moments (mass and mass-weighted
//! position; optionally second moments for the quadrupole extension), stores
//! them into its own node's slots and signals completion with an
//! **acquire-release** integer increment on the parent's arrival counter.
//! The thread that observes the last arrival owns the now-complete parent:
//! it combines the eight child slots **in child-index order**, stores the
//! parent's totals, and recurses upward; its siblings exit.
//!
//! The release sequence on the arrival counter makes all sibling moment
//! writes happen-before the winner's reads, so no critical sections are
//! needed — the algorithm is wait-free. Acquire-release atomics are
//! vectorization-unsafe in the C++ model, so the paper runs this under
//! `par`; we mirror that with the [`ParallelForwardProgress`] bound.
//!
//! The paper's Fig. 2 instead folds each child into the parent with relaxed
//! `AtomicF64::fetch_add` at arrival time, which sums the children in
//! *arrival* order — correct up to floating-point reassociation, but a
//! different bitwise result on every schedule. Combining in child-index
//! order at the winner costs the same number of flops and makes the whole
//! reduction a pure function of (tree structure, positions, masses): any
//! schedule — real threads, DetPar replay, or the task-graph executor —
//! produces bit-identical moments, which is what lets `Stepping::TaskGraph`
//! be validated bitwise against the barrier pipeline.

use crate::tags::{Slot, CHILDREN, FIRST_GROUP};
use crate::tree::Octree;
use nbody_math::{AtomicF64, Vec3};
use std::sync::atomic::{AtomicU32, Ordering};
use stdpar::prelude::*;

impl Octree {
    /// Compute (and finalize) the multipole moments of every node.
    ///
    /// After this returns, [`Octree::node_mass_of`] is the total mass of the
    /// subtree and [`Octree::node_com_of`] its centre of mass; with
    /// quadrupoles enabled, [`Octree::node_quad_of`] is the central second
    /// moment tensor. The root (node 0) holds the totals of the whole
    /// system.
    pub fn compute_multipoles<P>(&mut self, policy: P, positions: &[Vec3], masses: &[f64])
    where
        P: ParallelForwardProgress,
    {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        assert_eq!(masses.len(), self.n_bodies(), "masses length changed since build");
        let alloc = self.allocated_nodes() as usize;
        self.ensure_moment_storage(alloc, policy);

        // Degenerate roots (empty tree or a single leaf/chain) are cheap.
        match self.slot(0) {
            Slot::Empty => return,
            Slot::Body(head) => {
                let (m, mx, quad) = self.leaf_moment(head, positions, masses);
                self.store_moment(0, m, mx, quad);
                self.finalize(policy, alloc);
                return;
            }
            Slot::Locked => unreachable!("locked slot after build"),
            Slot::Node(_) => {}
        }

        let this = &*self;
        for_each_index(policy, FIRST_GROUP as usize..alloc, |i| {
            let i = i as u32;
            let (m, mx, quad) = match this.slot(i) {
                Slot::Node(_) => return, // internal: exit immediately (Fig. 2)
                Slot::Empty => (0.0, Vec3::ZERO, [0.0; 6]),
                Slot::Body(head) => this.leaf_moment(head, positions, masses),
                Slot::Locked => unreachable!("locked slot after build"),
            };
            this.store_moment(i, m, mx, quad);

            // Leaf-to-root climb: arrive at the parent; the last arriving
            // sibling combines the eight child slots in child-index order
            // and continues upward. Index-order combination makes the
            // result a pure function of the tree, not the schedule (see
            // module docs).
            let mut node = i;
            loop {
                let p = this.parent_of(node);
                if p == crate::tree::NO_PARENT {
                    // Free-list resident: this group is not reachable from
                    // the root (released by an incremental coarsen or never
                    // granted), so it has no parent to arrive at. Its slots
                    // are all Empty; contribute nothing.
                    return;
                }
                let prev = this.arrivals[p as usize].fetch_add(1, Ordering::AcqRel);
                if prev + 1 != CHILDREN {
                    return; // a sibling will finish this parent
                }
                // This thread owns the completed parent: every sibling's
                // AcqRel increment joins the counter's release sequence,
                // and this thread's own AcqRel increment read the final
                // value — so all eight children's slot stores happen-before
                // the reads inside `combine_children`.
                let c = match this.slot(p) {
                    Slot::Node(c) => c,
                    _ => unreachable!("arrival counter reached CHILDREN on a non-internal node"),
                };
                let (m_p, mx_p, quad_p) = this.combine_children(c);
                this.store_moment(p, m_p, mx_p, quad_p);
                if p == 0 {
                    return; // root complete
                }
                node = p;
            }
        });

        self.finalize(policy, alloc);
    }

    /// Total mass of the subtree rooted at node `i` (after
    /// [`Octree::compute_multipoles`]).
    #[inline]
    pub fn node_mass_of(&self, i: u32) -> f64 {
        // relaxed-ok (also node_com_of/node_quad_of): read-only accessors
        // called after `compute_multipoles` returned — the reduction
        // region's join already ordered every moment write before them.
        self.node_mass[i as usize].load(Ordering::Relaxed)
    }

    /// Centre of mass of the subtree rooted at node `i`.
    #[inline]
    pub fn node_com_of(&self, i: u32) -> Vec3 {
        // relaxed-ok: see node_mass_of — same post-join read-only accessor.
        Vec3::new(
            self.node_com[0][i as usize].load(Ordering::Relaxed),
            self.node_com[1][i as usize].load(Ordering::Relaxed),
            self.node_com[2][i as usize].load(Ordering::Relaxed),
        )
    }

    /// Central second-moment tensor (xx, xy, xz, yy, yz, zz) of node `i`;
    /// zeros unless quadrupoles are enabled.
    #[inline]
    pub fn node_quad_of(&self, i: u32) -> [f64; 6] {
        // relaxed-ok: see node_mass_of — same post-join read-only accessor.
        match &self.node_quad {
            Some(q) => std::array::from_fn(|k| q[k][i as usize].load(Ordering::Relaxed)),
            None => [0.0; 6],
        }
    }

    /// Moments of a leaf: sums over the co-located chain starting at `head`.
    fn leaf_moment(&self, head: u32, positions: &[Vec3], masses: &[f64]) -> (f64, Vec3, [f64; 6]) {
        let mut m = 0.0;
        let mut mx = Vec3::ZERO;
        let mut quad = [0.0; 6];
        let want_quad = self.node_quad.is_some();
        for b in self.chain(head) {
            let w = masses[b as usize];
            let x = positions[b as usize];
            m += w;
            mx += x * w;
            if want_quad {
                quad[0] += w * x.x * x.x;
                quad[1] += w * x.x * x.y;
                quad[2] += w * x.x * x.z;
                quad[3] += w * x.y * x.y;
                quad[4] += w * x.y * x.z;
                quad[5] += w * x.z * x.z;
            }
        }
        (m, mx, quad)
    }

    // relaxed-ok (whole method): node `i`'s slots are written only by its
    // own leaf thread, and the subsequent AcqRel arrival increment on the
    // parent publishes them to whichever sibling climbs.
    fn store_moment(&self, i: u32, m: f64, mx: Vec3, quad: [f64; 6]) {
        let i = i as usize;
        self.node_mass[i].store(m, Ordering::Relaxed);
        self.node_com[0][i].store(mx.x, Ordering::Relaxed);
        self.node_com[1][i].store(mx.y, Ordering::Relaxed);
        self.node_com[2][i].store(mx.z, Ordering::Relaxed);
        if let Some(q) = &self.node_quad {
            for k in 0..6 {
                q[k][i].store(quad[k], Ordering::Relaxed);
            }
        }
    }

    /// Sum the raw moments of the eight children starting at slot `c`, in
    /// child-index order — the fixed summation order is what makes the
    /// reduction schedule-independent bit-for-bit.
    // relaxed-ok (whole method): only called by the thread whose AcqRel
    // arrival increment completed the parent — the counter's release
    // sequence ordered all eight children's stores before these loads.
    fn combine_children(&self, c: u32) -> (f64, Vec3, [f64; 6]) {
        let mut m = 0.0;
        let mut mx = Vec3::ZERO;
        let mut quad = [0.0; 6];
        for k in c as usize..(c + CHILDREN) as usize {
            m += self.node_mass[k].load(Ordering::Relaxed);
            mx += Vec3::new(
                self.node_com[0][k].load(Ordering::Relaxed),
                self.node_com[1][k].load(Ordering::Relaxed),
                self.node_com[2][k].load(Ordering::Relaxed),
            );
            if let Some(q) = &self.node_quad {
                for j in 0..6 {
                    quad[j] += q[j][k].load(Ordering::Relaxed);
                }
            }
        }
        (m, mx, quad)
    }

    /// Convert raw sums (Σm·x, Σm·x·xᵀ) into centre of mass and *central*
    /// second moments. Pure element-wise pass.
    // relaxed-ok (whole method): runs after the reduction region joined;
    // each index is touched by exactly one closure invocation, so the
    // atomics only paper over the shared `&self` — no cross-thread edges.
    fn finalize<P: ExecutionPolicy>(&self, policy: P, alloc: usize) {
        let this = self;
        for_each_index(policy, 0..alloc, |i| {
            let m = this.node_mass[i].load(Ordering::Relaxed);
            if m <= 0.0 {
                return;
            }
            let cx = this.node_com[0][i].load(Ordering::Relaxed) / m;
            let cy = this.node_com[1][i].load(Ordering::Relaxed) / m;
            let cz = this.node_com[2][i].load(Ordering::Relaxed) / m;
            this.node_com[0][i].store(cx, Ordering::Relaxed);
            this.node_com[1][i].store(cy, Ordering::Relaxed);
            this.node_com[2][i].store(cz, Ordering::Relaxed);
            if let Some(q) = &this.node_quad {
                // S_central = Σ m x xᵀ − M c cᵀ
                let c = [cx, cy, cz];
                let pairs = [(0, 0, 0), (1, 0, 1), (2, 0, 2), (3, 1, 1), (4, 1, 2), (5, 2, 2)];
                for (k, a, b) in pairs {
                    let raw = q[k][i].load(Ordering::Relaxed);
                    q[k][i].store(raw - m * c[a] * c[b], Ordering::Relaxed);
                }
            }
        });
    }

    /// Grow moment storage to cover `alloc` slots **without** disturbing
    /// stored values — the incremental dirty-path recompute relies on clean
    /// subtrees keeping their finalized moments across refreshes. New slots
    /// come up zeroed (they belong to free-list groups and are always
    /// marked dirty before first use).
    pub(crate) fn ensure_moment_storage_preserving(&mut self, alloc: usize) {
        fn grow_f64(v: &mut Vec<AtomicF64>, n: usize) {
            if v.len() < n {
                v.resize_with(n, || AtomicF64::new(0.0));
            }
        }
        grow_f64(&mut self.node_mass, alloc);
        for c in &mut self.node_com {
            grow_f64(c, alloc);
        }
        if let Some(q) = &mut self.node_quad {
            for c in q.iter_mut() {
                grow_f64(c, alloc);
            }
        }
    }

    fn ensure_moment_storage<P: ExecutionPolicy>(&mut self, alloc: usize, policy: P) {
        fn ensure_f64(v: &mut Vec<AtomicF64>, n: usize) {
            if v.len() < n {
                *v = (0..n).map(|_| AtomicF64::new(0.0)).collect();
            }
        }
        ensure_f64(&mut self.node_mass, alloc);
        for c in &mut self.node_com {
            ensure_f64(c, alloc);
        }
        if let Some(q) = &mut self.node_quad {
            for c in q.iter_mut() {
                ensure_f64(c, alloc);
            }
        }
        if self.arrivals.len() < alloc {
            let mut a = Vec::with_capacity(alloc);
            a.resize_with(alloc, || AtomicU32::new(0));
            self.arrivals = a;
        }
        // Zero the active prefix in parallel.
        // relaxed-ok (whole pass): initialization strictly before the
        // reduction region; the region boundary (thread scope join / DetPar
        // sequencing) orders these stores before any accumulate.
        let this = &*self;
        let has_quad = this.node_quad.is_some();
        for_each_index(policy, 0..alloc, |i| {
            this.node_mass[i].store(0.0, Ordering::Relaxed);
            this.node_com[0][i].store(0.0, Ordering::Relaxed);
            this.node_com[1][i].store(0.0, Ordering::Relaxed);
            this.node_com[2][i].store(0.0, Ordering::Relaxed);
            if has_quad {
                if let Some(q) = &this.node_quad {
                    for qk in q.iter() {
                        qk[i].store(0.0, Ordering::Relaxed);
                    }
                }
            }
            this.arrivals[i].store(0, Ordering::Relaxed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::{Aabb, SplitMix64};

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.1, 3.0)).collect();
        (pos, mass)
    }

    fn built(pos: &[Vec3], mass: &[f64]) -> Octree {
        let mut t = Octree::new();
        t.build(Par, pos, Aabb::from_points(pos)).unwrap();
        t.compute_multipoles(Par, pos, mass);
        t
    }

    #[test]
    fn root_mass_is_total_mass() {
        let (pos, mass) = random_system(3000, 21);
        let t = built(&pos, &mass);
        let total: f64 = mass.iter().sum();
        assert!((t.node_mass_of(0) - total).abs() < 1e-9 * total);
    }

    #[test]
    fn root_com_is_global_com() {
        let (pos, mass) = random_system(3000, 22);
        let t = built(&pos, &mass);
        let total: f64 = mass.iter().sum();
        let mut com = Vec3::ZERO;
        for (p, m) in pos.iter().zip(&mass) {
            com += *p * *m;
        }
        com /= total;
        assert!((t.node_com_of(0) - com).norm() < 1e-10, "{:?} vs {com:?}", t.node_com_of(0));
    }

    #[test]
    fn single_body_root_moment() {
        let pos = vec![Vec3::new(1.0, 2.0, 3.0)];
        let mass = vec![4.0];
        let t = built(&pos, &mass);
        assert_eq!(t.node_mass_of(0), 4.0);
        assert_eq!(t.node_com_of(0), pos[0]);
    }

    #[test]
    fn empty_tree_moment() {
        let mut t = Octree::new();
        t.build(Par, &[], Aabb::EMPTY).unwrap();
        t.compute_multipoles(Par, &[], &[]);
        // Nothing to assert beyond "no panic"; root storage may be empty.
    }

    #[test]
    fn chained_bodies_counted_once_each() {
        let p = Vec3::new(0.3, 0.3, 0.3);
        let pos = vec![p, p, p, Vec3::new(-1.0, 0.0, 0.0)];
        let mass = vec![1.0, 2.0, 3.0, 4.0];
        let t = built(&pos, &mass);
        assert!((t.node_mass_of(0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn internal_node_mass_equals_subtree_sum() {
        let (pos, mass) = random_system(500, 23);
        let t = built(&pos, &mass);
        // For every internal node, mass == sum of children masses.
        for i in 0..t.allocated_nodes() {
            if let Slot::Node(c) = t.slot(i) {
                let kids: f64 = (c..c + 8).map(|k| t.node_mass_of(k)).sum();
                let own = t.node_mass_of(i);
                assert!((own - kids).abs() <= 1e-9 * own.max(1.0), "node {i}: {own} vs {kids}");
            }
        }
    }

    #[test]
    fn deterministic_up_to_fp_reassociation() {
        let (pos, mass) = random_system(2000, 24);
        let a = built(&pos, &mass);
        let b = built(&pos, &mass);
        assert!((a.node_mass_of(0) - b.node_mass_of(0)).abs() < 1e-9);
        assert!((a.node_com_of(0) - b.node_com_of(0)).norm() < 1e-9);
    }

    #[test]
    fn seq_and_par_agree() {
        let (pos, mass) = random_system(1500, 25);
        let mut ts = Octree::new();
        ts.build(Seq, &pos, Aabb::from_points(&pos)).unwrap();
        ts.compute_multipoles(Seq, &pos, &mass);
        let tp = built(&pos, &mass);
        assert!((ts.node_mass_of(0) - tp.node_mass_of(0)).abs() < 1e-9);
        assert!((ts.node_com_of(0) - tp.node_com_of(0)).norm() < 1e-9);
    }

    #[test]
    fn quadrupole_moments_match_direct_computation() {
        let (pos, mass) = random_system(300, 26);
        let mut t = Octree::new();
        t.set_quadrupole(true);
        t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        t.compute_multipoles(Par, &pos, &mass);

        // Direct central second moment of the whole system.
        let m_tot: f64 = mass.iter().sum();
        let mut com = Vec3::ZERO;
        for (p, m) in pos.iter().zip(&mass) {
            com += *p * *m;
        }
        com /= m_tot;
        let mut s = [0.0f64; 6];
        for (p, m) in pos.iter().zip(&mass) {
            let d = *p - com;
            s[0] += m * d.x * d.x;
            s[1] += m * d.x * d.y;
            s[2] += m * d.x * d.z;
            s[3] += m * d.y * d.y;
            s[4] += m * d.y * d.z;
            s[5] += m * d.z * d.z;
        }
        let got = t.node_quad_of(0);
        for k in 0..6 {
            assert!(
                (got[k] - s[k]).abs() < 1e-8 * (1.0 + s[k].abs()),
                "component {k}: {} vs {}",
                got[k],
                s[k]
            );
        }
    }

    /// Every node's raw moment state as exact bit patterns.
    fn moment_bits(t: &Octree) -> Vec<u64> {
        let mut bits = Vec::new();
        for i in 0..t.allocated_nodes() {
            bits.push(t.node_mass_of(i).to_bits());
            let c = t.node_com_of(i);
            bits.extend([c.x.to_bits(), c.y.to_bits(), c.z.to_bits()]);
            bits.extend(t.node_quad_of(i).iter().map(|q| q.to_bits()));
        }
        bits
    }

    #[test]
    fn multipoles_bitwise_schedule_independent() {
        // Regression for the arrival-order fetch_add accumulation: given a
        // fixed tree structure, the moments must be bit-identical under
        // every backend and every DetPar schedule, because the winner now
        // combines children in index order (a pure function of the tree).
        let (pos, mass) = random_system(2500, 27);
        let mut t = Octree::new();
        t.set_quadrupole(true);
        t.build(Seq, &pos, Aabb::from_points(&pos)).unwrap();
        t.compute_multipoles(Seq, &pos, &mass);
        let reference = moment_bits(&t);

        for backend in Backend::ALL {
            with_backend(backend, || {
                t.compute_multipoles(Par, &pos, &mass);
                assert_eq!(moment_bits(&t), reference, "backend {}", backend.name());
            });
        }
        with_backend(Backend::DetPar, || {
            for mode in ScheduleMode::ALL {
                for seed in [0u64, 5, 91] {
                    with_schedule(seed, mode, || {
                        t.compute_multipoles(Par, &pos, &mass);
                        assert_eq!(
                            moment_bits(&t),
                            reference,
                            "mode {} seed {seed}",
                            mode.name()
                        );
                    });
                }
            }
        });
    }

    #[test]
    fn zero_mass_bodies_are_tolerated() {
        let pos = vec![Vec3::new(0.1, 0.0, 0.0), Vec3::new(-0.4, 0.2, 0.3)];
        let mass = vec![0.0, 0.0];
        let t = built(&pos, &mass);
        assert_eq!(t.node_mass_of(0), 0.0);
    }
}
