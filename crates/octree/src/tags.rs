//! Tagged child-slot encoding.
//!
//! Each tree node stores a single `u32` that is simultaneously the node's
//! state token and its child offset (paper §IV-A: "We extend the token
//! values Empty, Body to include a Locked state"):
//!
//! | pattern | meaning |
//! |---|---|
//! | `0` | `Empty` leaf |
//! | `1` | `Locked` — a thread is sub-dividing this leaf |
//! | bit 31 set | `Body(i)` leaf holding body `i = v & 0x7fff_ffff` |
//! | otherwise (`8 ≤ v < 2^31`) | `Node(v)` internal; children at `v..v+8` |
//!
//! Internal offsets start at [`FIRST_GROUP`] (the root is node 0; indices
//! 1–7 are reserved padding) so every encodable offset is distinguishable
//! from `Empty`/`Locked`.

/// Empty-leaf token.
pub const EMPTY: u32 = 0;

/// Locked-leaf token (a thread is inside the sub-division critical section).
/// `1` is unused by every other encoding: `Empty` is 0, internal offsets
/// start at [`FIRST_GROUP`], and body tags all have bit 31 set.
pub const LOCKED: u32 = 1;

/// Index of the first child group; also the alignment unit of groups.
pub const FIRST_GROUP: u32 = 8;

/// Children per node (isotropic 3-D subdivision).
pub const CHILDREN: u32 = 8;

/// Maximum encodable body index / node offset (31 bits).
pub const MAX_INDEX: u32 = 0x7fff_ffff;

const BODY_BIT: u32 = 0x8000_0000;

/// Decoded state of a child slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    Empty,
    Locked,
    /// Leaf holding this body index (possibly the head of a co-located chain).
    Body(u32),
    /// Internal node; the eight children live at `offset..offset+8`.
    Node(u32),
}

/// Encode a body-leaf token.
#[inline]
pub const fn body_tag(body: u32) -> u32 {
    debug_assert!(body <= MAX_INDEX);
    body | BODY_BIT
}

/// Encode an internal-node token.
#[inline]
pub const fn node_tag(offset: u32) -> u32 {
    debug_assert!(offset >= FIRST_GROUP && offset <= MAX_INDEX);
    offset
}

/// Decode a token.
#[inline]
pub const fn decode(tag: u32) -> Slot {
    if tag == EMPTY {
        Slot::Empty
    } else if tag == LOCKED {
        Slot::Locked
    } else if tag & BODY_BIT != 0 {
        Slot::Body(tag & !BODY_BIT)
    } else {
        Slot::Node(tag)
    }
}

/// Sibling-group index of node `i` (`i >= FIRST_GROUP`).
#[inline]
pub const fn group_of(i: u32) -> u32 {
    debug_assert!(i >= FIRST_GROUP);
    (i - FIRST_GROUP) / CHILDREN
}

/// Position of node `i` within its sibling group (`0..8`).
#[inline]
pub const fn sibling_rank(i: u32) -> u32 {
    debug_assert!(i >= FIRST_GROUP);
    (i - FIRST_GROUP) % CHILDREN
}

/// First node index of group `g`.
#[inline]
pub const fn group_base(g: u32) -> u32 {
    FIRST_GROUP + g * CHILDREN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_special_tokens() {
        assert_eq!(decode(EMPTY), Slot::Empty);
        assert_eq!(decode(LOCKED), Slot::Locked);
    }

    #[test]
    fn body_round_trip() {
        for b in [0u32, 1, 1234, MAX_INDEX] {
            assert_eq!(decode(body_tag(b)), Slot::Body(b));
        }
    }

    #[test]
    fn node_round_trip() {
        for off in [FIRST_GROUP, 16, 1 << 20, MAX_INDEX] {
            assert_eq!(decode(node_tag(off)), Slot::Node(off));
        }
    }

    #[test]
    fn tokens_are_disjoint() {
        // Body(0) must not collide with Empty, Node(8) must not collide
        // with Locked, etc.
        assert_ne!(body_tag(0), EMPTY);
        assert_ne!(body_tag(0), LOCKED);
        assert_ne!(node_tag(FIRST_GROUP), EMPTY);
        assert_ne!(node_tag(FIRST_GROUP), LOCKED);
        assert_ne!(body_tag(MAX_INDEX), node_tag(MAX_INDEX));
    }

    #[test]
    fn group_arithmetic() {
        assert_eq!(group_of(8), 0);
        assert_eq!(group_of(15), 0);
        assert_eq!(group_of(16), 1);
        assert_eq!(sibling_rank(8), 0);
        assert_eq!(sibling_rank(15), 7);
        assert_eq!(sibling_rank(16), 0);
        for g in [0u32, 1, 7, 1000] {
            assert_eq!(group_of(group_base(g)), g);
            assert_eq!(sibling_rank(group_base(g)), 0);
        }
    }
}
