//! Task view of the octree force phase for barrier-free stepping.
//!
//! Unlike the BVH (whose whole rebuild decomposes into a static DAG, see
//! `bh-bvh`'s `tasks` module), the concurrent octree's insertion build is
//! lock-mediated and runs as its own parallel region on the caller's
//! thread between the task-graph runs. What *does* tile cleanly is
//! CALCULATEFORCE: every body group (blocked path) or body chunk
//! (per-body path) is an independent read-only traversal. This module
//! exposes those tiles as DAG node bodies so a [`stdpar::TaskGraph`] run
//! can overlap force tiles with the integrator's second-kick tiles —
//! each tile's kick starts the moment its forces land, instead of after
//! a global force barrier.
//!
//! Each tile replicates the corresponding barrier closure body exactly
//! ([`Octree::compute_forces_with`] / the blocked group loop), so
//! accelerations are bitwise identical to the barrier path.

use crate::scratch::TraversalScratch;
use crate::tree::Octree;
use crate::validate::collect_bodies_into;
use nbody_math::gravity::{ForceKernel, ForceParams};
use nbody_math::simd::simd_level;
use nbody_math::{Aabb, InteractionLists, KernelStats, ListsPool, Vec3};
use nbody_telemetry::{metrics, record, MacCounts};
use stdpar::backend::{max_workers, par_grain};
use stdpar::prelude::*;
use std::ops::Range;

/// A view of the octree force phase as independent tile bodies. Created
/// by [`Octree::begin_force_tasks`]; the tree is only shared-borrowed.
pub struct OctreeForceTasks<'a> {
    tree: &'a Octree,
    positions: &'a [Vec3],
    masses: &'a [f64],
    params: ForceParams,
    /// Depth-first body order (blocked path's grouping key; empty on the
    /// per-body path, which chunks original indices directly).
    order: &'a [u32],
    pool: &'a ListsPool,
    /// Bodies per tile: the resolved block group, or the per-body grain.
    chunk: usize,
    blocked: bool,
    n: usize,
}

impl Octree {
    /// Prepare the force phase for task-graph execution: resolves the
    /// evaluation mode, collects the DFS body order, sizes the per-worker
    /// interaction-list pool, and records the SIMD dispatch gauge —
    /// everything [`Octree::compute_forces_with`] does before its
    /// parallel region.
    pub fn begin_force_tasks<'a>(
        &'a self,
        positions: &'a [Vec3],
        masses: &'a [f64],
        params: &ForceParams,
        scratch: &'a mut TraversalScratch,
    ) -> OctreeForceTasks<'a> {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        assert_eq!(masses.len(), positions.len(), "masses length mismatch");
        if params.use_quadrupole {
            assert!(self.quadrupole_enabled(), "quadrupole requested but not computed");
        }
        let n = self.n_bodies();
        // Split borrows: the pool reference must outlive the view while
        // `order`/`stack` are filled first.
        let TraversalScratch { order, stack, lists } = scratch;
        let (blocked, chunk) = match params.eval.resolve_group(Self::DEFAULT_BLOCK_GROUP) {
            Some(group) => {
                collect_bodies_into(self, order, stack);
                debug_assert_eq!(order.len(), n);
                lists.prepare(max_workers(), params.use_quadrupole);
                if params.kernel == ForceKernel::Simd {
                    record!(gauge SIMD_DISPATCH_LEVEL, simd_level() as u64);
                }
                (true, group)
            }
            None => {
                order.clear();
                (false, par_grain(n).max(1))
            }
        };
        OctreeForceTasks {
            tree: self,
            positions,
            masses,
            params: *params,
            order,
            pool: lists,
            chunk,
            blocked,
            n,
        }
    }
}

impl OctreeForceTasks<'_> {
    /// Number of independent force tiles.
    pub fn tile_count(&self) -> usize {
        self.n.div_ceil(self.chunk.max(1))
    }

    /// Bodies covered by force tile `t` (DFS order on the blocked path,
    /// original order on the per-body path — same convention as the
    /// barrier chunking).
    #[inline]
    pub fn tile_range(&self, t: usize) -> Range<usize> {
        (t * self.chunk).min(self.n)..((t + 1) * self.chunk).min(self.n)
    }

    /// Original body indices whose accelerations force tile `t` writes, in
    /// evaluation order — the exact slots a dependent integrator tile may
    /// read through a single `force(t) → kick(t)` edge. Tiles partition
    /// `0..n` (the blocked path walks the DFS order).
    pub fn tile_bodies(&self, t: usize) -> impl Iterator<Item = usize> + '_ {
        let blocked = self.blocked;
        self.tile_range(t).map(move |j| if blocked { self.order[j] as usize } else { j })
    }

    /// Execute force tile `t` on `worker` (a dense executor worker index,
    /// per the [`ListsPool::slot`] contract), writing accelerations in
    /// original body order into `out`.
    pub fn run_tile(&self, t: usize, worker: usize, out: SyncSlice<'_, Vec3>) {
        assert_eq!(out.len(), self.n, "accel length mismatch");
        let r = self.tile_range(t);
        if self.blocked {
            self.run_blocked_tile(r, worker, out);
        } else {
            self.run_per_body_tile(r, out);
        }
    }

    /// The blocked-path group body, verbatim from
    /// `Octree::compute_forces_blocked`'s `for_each_chunk_worker` closure.
    fn run_blocked_tile(&self, r: Range<usize>, w: usize, out: SyncSlice<'_, Vec3>) {
        let this = self.tree;
        let (positions, masses) = (self.positions, self.masses);
        let params = &self.params;
        let order = self.order;
        let theta2 = params.theta * params.theta;
        let eps2 = params.softening * params.softening;
        let mut gbox = Aabb::EMPTY;
        for &b in &order[r.clone()] {
            gbox.expand(positions[b as usize]);
        }
        // SAFETY: `w` is the graph executor's worker index — never observed
        // concurrently by two threads — and the pool was prepared for
        // `max_workers()` workers in `begin_force_tasks`.
        let state = unsafe { self.pool.slot(w) };
        let lists: &mut InteractionLists = &mut state.lists;
        lists.clear();
        let mut mac = MacCounts::default();
        this.gather_group(
            gbox,
            theta2,
            params.mac_pad,
            params.use_quadrupole,
            positions,
            masses,
            lists,
            &mut mac,
        );
        mac.flush(&metrics::OCTREE_MAC_ACCEPTS, &metrics::OCTREE_MAC_OPENS);
        record!(hist OCTREE_LIST_BODIES, lists.n_bodies() as u64);
        record!(hist OCTREE_LIST_NODES, lists.n_nodes() as u64);
        match params.kernel {
            ForceKernel::Scalar => {
                for &b in &order[r] {
                    let a = lists.eval_at(positions[b as usize], params.g, eps2);
                    // SAFETY: disjoint slots — the DFS order is a
                    // permutation of 0..n and groups partition it.
                    unsafe { out.write(b as usize, a) };
                }
            }
            ForceKernel::Simd => {
                let scratch = &mut state.scratch;
                scratch.clear_targets();
                for &b in &order[r.clone()] {
                    scratch.push_target(positions[b as usize]);
                }
                let mut ks = KernelStats::default();
                lists.eval_group(scratch, params.g, eps2, params.precision, &mut ks);
                record!(counter SIMD_GROUPS, ks.groups);
                record!(counter SIMD_TILES, ks.tiles);
                record!(counter SIMD_LANE_SLOTS, ks.lane_slots);
                record!(counter SIMD_ACTIVE_LANES, ks.active_lanes);
                for (t, &b) in order[r].iter().enumerate() {
                    // SAFETY: as above — disjoint permutation slots.
                    unsafe { out.write(b as usize, scratch.accel(t)) };
                }
            }
        }
    }

    /// The per-body-path chunk body, verbatim from
    /// `Octree::compute_forces_with`'s `for_each_chunk` closure.
    fn run_per_body_tile(&self, r: Range<usize>, out: SyncSlice<'_, Vec3>) {
        let this = self.tree;
        let mut mac = MacCounts::default();
        for b in r {
            let a = this.accel_at_counted(
                self.positions[b],
                Some(b as u32),
                self.positions,
                self.masses,
                &self.params,
                &mut mac,
            );
            // SAFETY: per-body chunks partition 0..n.
            unsafe { out.write(b, a) };
        }
        mac.flush(&metrics::OCTREE_MAC_ACCEPTS, &metrics::OCTREE_MAC_OPENS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::gravity::ForceEval;
    use nbody_math::SplitMix64;
    use stdpar::backend::{with_backend, Backend};
    use stdpar::detpar::{with_schedule, ScheduleMode};
    use stdpar::taskgraph::TaskGraph;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        (pos, mass)
    }

    fn built(pos: &[Vec3], mass: &[f64], quad: bool) -> Octree {
        let mut t = Octree::new();
        t.set_quadrupole(quad);
        t.build(Par, pos, Aabb::from_points(pos)).unwrap();
        t.compute_multipoles(Par, pos, mass);
        t
    }

    fn force_by_tasks(
        t: &Octree,
        pos: &[Vec3],
        mass: &[f64],
        params: &ForceParams,
    ) -> Vec<Vec3> {
        let mut acc = vec![Vec3::ZERO; pos.len()];
        {
            let mut scratch = TraversalScratch::new();
            let out = SyncSlice::new(&mut acc);
            let tasks = t.begin_force_tasks(pos, mass, params, &mut scratch);
            let mut g = TaskGraph::new();
            g.add_nodes(tasks.tile_count());
            g.run(|node, w| tasks.run_tile(node as usize, w, out));
        }
        acc
    }

    #[test]
    fn force_tiles_match_barrier_bitwise() {
        let (pos, mass) = random_system(600, 4001);
        for quad in [false, true] {
            let t = built(&pos, &mass, quad);
            for params in [
                ForceParams { use_quadrupole: quad, ..ForceParams::default() },
                ForceParams {
                    use_quadrupole: quad,
                    eval: ForceEval::blocked(),
                    ..ForceParams::default()
                },
                ForceParams {
                    use_quadrupole: quad,
                    eval: ForceEval::blocked(),
                    kernel: ForceKernel::Simd,
                    ..ForceParams::default()
                },
            ] {
                let mut reference = vec![Vec3::ZERO; pos.len()];
                t.compute_forces(Par, &pos, &mass, &mut reference, &params);
                let tasked = force_by_tasks(&t, &pos, &mass, &params);
                assert_eq!(tasked, reference, "quad={quad} params={params:?}");
            }
        }
    }

    #[test]
    fn force_tiles_identical_across_backends() {
        let (pos, mass) = random_system(300, 4002);
        let t = built(&pos, &mass, false);
        let params = ForceParams { eval: ForceEval::blocked(), ..ForceParams::default() };
        let mut reference = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(Seq, &pos, &mass, &mut reference, &params);
        for backend in Backend::ALL {
            with_backend(backend, || {
                assert_eq!(force_by_tasks(&t, &pos, &mass, &params), reference);
            });
        }
        with_backend(Backend::DetPar, || {
            for mode in ScheduleMode::ALL {
                with_schedule(31, mode, || {
                    assert_eq!(force_by_tasks(&t, &pos, &mass, &params), reference);
                });
            }
        });
    }

    #[test]
    fn empty_tree_has_no_tiles() {
        let t = built(&[], &[], false);
        let mut scratch = TraversalScratch::new();
        let tasks =
            t.begin_force_tasks(&[], &[], &ForceParams::default(), &mut scratch);
        assert_eq!(tasks.tile_count(), 0);
    }
}
