//! # bh-octree — the Concurrent Octree strategy (paper §IV-A)
//!
//! A Barnes-Hut octree whose construction, multipole reduction and force
//! traversal are all *fully parallel* with `O(N)` available parallelism:
//!
//! * **BUILDTREE** (Algorithm 4/5): every body is inserted concurrently by a
//!   root-to-leaf descent. Child slots are tagged atomics
//!   (`Empty | Locked | Body(i) | Node(offset)`); threads lock a leaf with
//!   `compare_exchange`, sub-divide it inside a critical section, and
//!   publish with a release store. The algorithm is **starvation-free**, so
//!   the policy parameter is bounded by
//!   [`stdpar::policy::ParallelForwardProgress`] — calling it with
//!   `ParUnseq` does not compile, mirroring the paper's finding that the
//!   octree hangs on GPUs without Independent Thread Scheduling.
//! * **CALCULATEMULTIPOLES** (Fig. 2): a wait-free bottom-up tree reduction.
//!   One logical thread per node; leaves accumulate their moments onto the
//!   parent with relaxed `AtomicF64::fetch_add` and an acquire-release
//!   arrival counter; the last arriving thread recurses upward.
//! * **CALCULATEFORCE** (Fig. 3): a stackless depth-first traversal using
//!   the invariant that child offsets always exceed their parent's offset,
//!   plus the per-sibling-group parent offset — runs under `par_unseq`.
//!
//! Memory layout follows Fig. 1: one 4-byte tagged child offset per node,
//! one 4-byte parent offset per sibling group, nodes allocated in Morton
//! order from a concurrent bump allocator.
//!
//! ```
//! use bh_octree::Octree;
//! use nbody_math::{Aabb, Vec3};
//! use stdpar::prelude::*;
//!
//! let pos = vec![
//!     Vec3::new(0.1, 0.1, 0.1),
//!     Vec3::new(0.9, 0.2, 0.4),
//!     Vec3::new(0.4, 0.8, 0.6),
//! ];
//! let mass = vec![1.0, 2.0, 3.0];
//! let mut tree = Octree::new();
//! tree.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
//! tree.compute_multipoles(Par, &pos, &mass);
//! let mut acc = vec![Vec3::ZERO; pos.len()];
//! tree.compute_forces(ParUnseq, &pos, &mass, &mut acc, &bh_octree::ForceParams::default());
//! assert!(acc.iter().all(|a| a.is_finite()));
//! ```

pub mod blocked;
pub mod force;
pub mod incremental;
pub mod multipole;
pub mod query;
pub mod scratch;
pub mod tags;
pub mod tasks;
pub mod traverse;
pub mod tree;
pub mod validate;

pub use force::ForceParams;
pub use incremental::{IncrementalStats, NeedsRebuild};
pub use scratch::TraversalScratch;
pub use tasks::OctreeForceTasks;
pub use tree::{BuildError, BuildStats, Octree, DEFAULT_SPIN_BUDGET, MAX_DEPTH};
pub use validate::TreeInvariants;
