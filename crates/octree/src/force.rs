//! CALCULATEFORCE — stackless depth-first force traversal (paper §IV-A.3,
//! Fig. 3).
//!
//! One element per body, `par_unseq`-safe (read-only tree, no atomics). The
//! traversal needs no stack: a *forward step* descends to the first child
//! (whose offset is always larger than the parent's, by bump allocation);
//! a *backward step* either advances to the next sibling or climbs through
//! the per-group parent offset, doubling the tracked cell width.

use crate::tags::{self, Slot};
use crate::tree::Octree;
use nbody_math::gravity::{multipole_accel, pair_accel};
use nbody_math::Vec3;
use nbody_telemetry::{metrics, MacCounts};
use std::sync::atomic::Ordering;
use stdpar::backend::{par_grain, unseq_grain};
use stdpar::prelude::*;

/// Re-export: shared force parameters (see [`nbody_math::gravity`]).
pub use nbody_math::gravity::ForceParams;
/// Re-export: exact `O(N²)` reference field.
pub use nbody_math::gravity::direct_accel;

impl Octree {
    /// Compute gravitational accelerations for every body.
    ///
    /// `accel[i]` receives `a_i = G Σ_j m_j (x_j − x_i) / (r² + ε²)^{3/2}`,
    /// with far-field sums approximated by node multipoles under the
    /// acceptance criterion `s/d < θ` (s = cell width). Runs under any
    /// policy (the paper uses `par_unseq`: the per-body computations are
    /// independent and lock-free).
    pub fn compute_forces<P: ExecutionPolicy>(
        &self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        accel: &mut [Vec3],
        params: &ForceParams,
    ) {
        let mut scratch = crate::scratch::TraversalScratch::new();
        self.compute_forces_with(policy, positions, masses, accel, params, &mut scratch);
    }

    /// [`Octree::compute_forces`] borrowing caller-owned scratch: the
    /// blocked path draws its DFS order buffer and per-worker interaction
    /// lists from `scratch` instead of allocating per call (the per-body
    /// path needs no scratch).
    pub fn compute_forces_with<P: ExecutionPolicy>(
        &self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        accel: &mut [Vec3],
        params: &ForceParams,
        scratch: &mut crate::scratch::TraversalScratch,
    ) {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        assert_eq!(accel.len(), positions.len(), "accel length mismatch");
        if params.use_quadrupole {
            assert!(self.quadrupole_enabled(), "quadrupole requested but not computed");
        }
        if let Some(group) = params.eval.resolve_group(Self::DEFAULT_BLOCK_GROUP) {
            self.compute_forces_blocked(policy, positions, masses, accel, params, group, scratch);
            return;
        }
        // Chunked rather than per-index so MAC telemetry tallies in a local
        // and flushes one atomic add per *chunk*. The per-body work is the
        // same `accel_at` walk in the same order, so results stay bitwise
        // identical to the per-index formulation; the grain matches what
        // the executor would pick for this policy anyway.
        let n = positions.len();
        let grain = if P::UNSEQUENCED { unseq_grain(n) } else { par_grain(n) };
        let out = SyncSlice::new(accel);
        let this = self;
        for_each_chunk(policy, 0..n, grain, |r| {
            let mut mac = MacCounts::default();
            for b in r {
                let a = this.accel_at_counted(
                    positions[b],
                    Some(b as u32),
                    positions,
                    masses,
                    params,
                    &mut mac,
                );
                unsafe { out.write(b, a) };
            }
            mac.flush(&metrics::OCTREE_MAC_ACCEPTS, &metrics::OCTREE_MAC_OPENS);
        });
    }

    /// Acceleration felt at point `p`, excluding body `exclude` (and its
    /// exact self-interaction) if given. This is the per-element kernel of
    /// [`Octree::compute_forces`], public for tests and probes.
    pub fn accel_at(
        &self,
        p: Vec3,
        exclude: Option<u32>,
        positions: &[Vec3],
        masses: &[f64],
        params: &ForceParams,
    ) -> Vec3 {
        let mut mac = MacCounts::default();
        let a = self.accel_at_counted(p, exclude, positions, masses, params, &mut mac);
        mac.flush(&metrics::OCTREE_MAC_ACCEPTS, &metrics::OCTREE_MAC_OPENS);
        a
    }

    /// [`Octree::accel_at`] with MAC accept/open decisions tallied into
    /// `mac` (plain locals — the caller batches chunks of bodies and
    /// flushes once, keeping atomics off the per-node hot path).
    pub(crate) fn accel_at_counted(
        &self,
        p: Vec3,
        exclude: Option<u32>,
        positions: &[Vec3],
        masses: &[f64],
        params: &ForceParams,
        mac: &mut MacCounts,
    ) -> Vec3 {
        let mut acc = Vec3::ZERO;
        if self.n_bodies() == 0 {
            return acc;
        }
        let theta2 = params.theta * params.theta;
        let eps2 = params.softening * params.softening;
        let pad = params.mac_pad;
        // Resolve the quadrupole source once, outside the traversal loop.
        let quads = if params.use_quadrupole { self.node_quad.as_ref() } else { None };
        // Tally MAC decisions in plain locals (registers) for the whole
        // walk; fold into `mac` once at exit.
        let (mut accepts, mut opens) = (0u64, 0u64);

        let mut i: u32 = 0;
        let mut width = self.root_edge();
        let acc = loop {
            let mut descend = false;
            match self.slot(i) {
                Slot::Node(c) => {
                    let com = self.node_com_of(i);
                    let d = com - p;
                    let d2 = d.norm2();
                    if nbody_math::mac_accepts(width * width, d2, theta2, pad) {
                        // Far node: accept the multipole approximation.
                        accepts += 1;
                        let quad = quads.map(|q| {
                            std::array::from_fn(|k| q[k][i as usize].load(Ordering::Relaxed))
                        });
                        acc += multipole_accel(d, self.node_mass_of(i), quad.as_ref(), 1.0, eps2);
                    } else {
                        // Too close: forward step into the first child.
                        opens += 1;
                        i = c;
                        width *= 0.5;
                        descend = true;
                    }
                }
                Slot::Empty => {}
                Slot::Body(head) => {
                    // Exact pair-wise interactions at leaf nodes. G is
                    // hoisted: terms accumulate unscaled and the single
                    // multiply happens once at exit.
                    for bj in self.chain(head) {
                        if Some(bj) == exclude {
                            continue;
                        }
                        acc += pair_accel(
                            positions[bj as usize] - p,
                            masses[bj as usize],
                            1.0,
                            eps2,
                        );
                    }
                }
                Slot::Locked => unreachable!("locked slot during force traversal"),
            }
            if descend {
                continue;
            }
            // Backward step: next sibling, or climb until one exists.
            let mut done = false;
            loop {
                if i == 0 {
                    done = true;
                    break;
                }
                if tags::sibling_rank(i) != tags::CHILDREN - 1 {
                    i += 1;
                    break;
                }
                i = self.parent_of(i);
                width *= 2.0;
            }
            if done {
                break acc;
            }
        };
        mac.accepts += accepts;
        mac.opens += opens;
        acc * params.g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::{Aabb, SplitMix64};

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        (pos, mass)
    }

    fn built(pos: &[Vec3], mass: &[f64], quad: bool) -> Octree {
        let mut t = Octree::new();
        t.set_quadrupole(quad);
        t.build(Par, pos, Aabb::from_points(pos)).unwrap();
        t.compute_multipoles(Par, pos, mass);
        t
    }

    #[test]
    fn theta_zero_matches_direct_sum() {
        let (pos, mass) = random_system(300, 31);
        let t = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.0, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(ParUnseq, &pos, &mass, &mut acc, &params);
        for (b, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[b], Some(b as u32), &pos, &mass, 1.0, 0.0);
            assert!(
                (a - exact).norm() <= 1e-10 * (1.0 + exact.norm()),
                "body {b}: {a:?} vs {exact:?}"
            );
        }
    }

    #[test]
    fn theta_half_error_is_small() {
        let (pos, mass) = random_system(1000, 32);
        let t = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.5, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(ParUnseq, &pos, &mass, &mut acc, &params);
        let mut rel = 0.0f64;
        for (b, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[b], Some(b as u32), &pos, &mass, 1.0, 0.0);
            rel = rel.max((a - exact).norm() / (1e-12 + exact.norm()));
        }
        assert!(rel < 0.05, "max relative error {rel}");
    }

    #[test]
    fn error_is_monotone_in_theta_on_average() {
        let (pos, mass) = random_system(800, 33);
        let t = built(&pos, &mass, false);
        let mut errors = vec![];
        for theta in [0.2, 0.5, 1.0] {
            let params = ForceParams { theta, ..ForceParams::default() };
            let mut acc = vec![Vec3::ZERO; pos.len()];
            t.compute_forces(ParUnseq, &pos, &mass, &mut acc, &params);
            let mut total = 0.0;
            for (b, &a) in acc.iter().enumerate() {
                let exact = direct_accel(pos[b], Some(b as u32), &pos, &mass, 1.0, 0.0);
                total += (a - exact).norm() / (1e-12 + exact.norm());
            }
            errors.push(total / pos.len() as f64);
        }
        assert!(errors[0] <= errors[1] && errors[1] <= errors[2], "{errors:?}");
    }

    #[test]
    fn quadrupole_reduces_error() {
        let (pos, mass) = random_system(600, 34);
        let t = built(&pos, &mass, true);
        let mono = ForceParams { theta: 0.8, ..ForceParams::default() };
        let quad = ForceParams { theta: 0.8, use_quadrupole: true, ..ForceParams::default() };
        let mut am = vec![Vec3::ZERO; pos.len()];
        let mut aq = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(ParUnseq, &pos, &mass, &mut am, &mono);
        t.compute_forces(ParUnseq, &pos, &mass, &mut aq, &quad);
        let (mut em, mut eq) = (0.0, 0.0);
        for b in 0..pos.len() {
            let exact = direct_accel(pos[b], Some(b as u32), &pos, &mass, 1.0, 0.0);
            em += (am[b] - exact).norm() / (1e-12 + exact.norm());
            eq += (aq[b] - exact).norm() / (1e-12 + exact.norm());
        }
        assert!(
            eq < em * 0.8,
            "quadrupole ({}) should beat monopole ({}) by a clear margin",
            eq / pos.len() as f64,
            em / pos.len() as f64
        );
    }

    #[test]
    fn two_body_force_is_newtonian() {
        let pos = vec![Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
        let mass = vec![3.0, 5.0];
        let t = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.5, g: 2.0, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; 2];
        t.compute_forces(Par, &pos, &mass, &mut acc, &params);
        // a_0 = G m_1 / r² toward +x.
        assert!((acc[0] - Vec3::new(2.0 * 5.0 / 4.0, 0.0, 0.0)).norm() < 1e-12);
        assert!((acc[1] - Vec3::new(-2.0 * 3.0 / 4.0, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let pos = vec![Vec3::ZERO, Vec3::new(1e-9, 0.0, 0.0)];
        let mass = vec![1.0, 1.0];
        let t = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.5, softening: 0.1, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; 2];
        t.compute_forces(Par, &pos, &mass, &mut acc, &params);
        // With ε = 0.1 the acceleration magnitude is bounded near m/ε².
        assert!(acc[0].norm() < 1.0 / (0.1f64 * 0.1), "{:?}", acc[0]);
        assert!(acc[0].is_finite() && acc[1].is_finite());
    }

    #[test]
    fn colocated_bodies_do_not_blow_up_with_softening() {
        let p = Vec3::new(0.2, 0.2, 0.2);
        let pos = vec![p, p, Vec3::new(-0.7, 0.1, 0.0)];
        let mass = vec![1.0, 1.0, 1.0];
        let t = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.5, softening: 0.05, ..ForceParams::default() };
        let mut acc = vec![Vec3::ZERO; 3];
        t.compute_forces(Par, &pos, &mass, &mut acc, &params);
        assert!(acc.iter().all(|a| a.is_finite()));
        // The two co-located bodies feel identical acceleration from body 2
        // and zero from each other (r = 0 ⇒ zero-numerator guard).
        assert!((acc[0] - acc[1]).norm() < 1e-12);
    }

    #[test]
    fn exclude_none_includes_all_bodies() {
        let (pos, mass) = random_system(50, 35);
        let t = built(&pos, &mass, false);
        let params = ForceParams { theta: 0.0, ..ForceParams::default() };
        let probe = Vec3::new(5.0, 5.0, 5.0); // outside the cluster
        let got = t.accel_at(probe, None, &pos, &mass, &params);
        let exact = direct_accel(probe, None, &pos, &mass, 1.0, 0.0);
        assert!((got - exact).norm() < 1e-10);
    }

    #[test]
    fn policies_agree_bitwise_for_fixed_tree() {
        // The traversal is deterministic per body once the tree is fixed.
        let (pos, mass) = random_system(400, 36);
        let t = built(&pos, &mass, false);
        let params = ForceParams::default();
        let mut a1 = vec![Vec3::ZERO; pos.len()];
        let mut a2 = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(Seq, &pos, &mass, &mut a1, &params);
        t.compute_forces(ParUnseq, &pos, &mass, &mut a2, &params);
        assert_eq!(a1, a2);
    }
}
