//! Blocked CALCULATEFORCE for the octree: one traversal per body *group*.
//!
//! Mirror of the BVH blocked path (see `bh-bvh`'s `blocked` module).
//! The octree stores bodies in insertion order, which is not spatially
//! sorted, so groups are formed from the tree's own depth-first leaf
//! order instead: a contiguous run of DFS bodies lives in one subtree and
//! therefore in a small box. One stackless traversal per run tests the
//! acceptance criterion against the run's AABB using the conservative
//! point-to-box distance [`Aabb::distance2_to_point`] — every member's
//! distance to a node's centre of mass is at least the box's distance, so
//! a node accepted for the box is accepted for every member. Accepted
//! multipoles and opened leaf bodies land in flat SoA
//! [`InteractionLists`] and members evaluate with the shared branch-free
//! kernels, amortising the walk over the whole group.
//!
//! Groups partition the DFS order deterministically (fixed chunking, no
//! data-dependent scheduling), every group writes disjoint output slots
//! and owns its scratch lists, so the path runs under `par_unseq` with
//! bitwise-reproducible results across policies and backends.

use crate::scratch::TraversalScratch;
use crate::tags::{self, Slot};
use crate::tree::Octree;
use crate::validate::collect_bodies_into;
use nbody_math::gravity::{ForceKernel, ForceParams};
use nbody_math::simd::simd_level;
use nbody_math::{Aabb, InteractionLists, KernelStats, Vec3};
use nbody_telemetry::{metrics, record, MacCounts};
use std::sync::atomic::Ordering;
use stdpar::backend::max_workers;
use stdpar::prelude::*;

impl Octree {
    /// Default blocked group size: the measured optimum for the octree's
    /// cubic cells (group = 8 → 2.57x over per-body at N = 1e5, θ = 0.5;
    /// see `BENCH_blocked.json` — larger groups inflate the conservative
    /// group box faster than they amortise the walk). Resolved from the
    /// `ForceEval::Blocked { group: 0 }` auto sentinel by
    /// [`nbody_math::gravity::ForceEval::resolve_group`].
    pub const DEFAULT_BLOCK_GROUP: usize = 8;

    /// Blocked force evaluation: one traversal per contiguous group of
    /// `group` bodies in depth-first tree order. Called from
    /// [`Octree::compute_forces`] when `params.eval` selects
    /// [`nbody_math::gravity::ForceEval::Blocked`].
    ///
    /// `scratch` supplies the DFS order buffer and the per-worker
    /// interaction lists: each group clears and refills its worker's slot,
    /// so no allocation happens once the buffers have warmed up.
    /// `UnsafeCell` slots instead of locks keep the path valid under
    /// `par_unseq` (weakly parallel forward progress).
    #[allow(clippy::too_many_arguments)] // internal: mirrors compute_forces_with + group + scratch
    pub(crate) fn compute_forces_blocked<P: ExecutionPolicy>(
        &self,
        policy: P,
        positions: &[Vec3],
        masses: &[f64],
        accel: &mut [Vec3],
        params: &ForceParams,
        group: usize,
        scratch: &mut TraversalScratch,
    ) {
        collect_bodies_into(self, &mut scratch.order, &mut scratch.stack);
        let order = &scratch.order[..];
        debug_assert_eq!(order.len(), self.n_bodies());
        scratch.lists.prepare(max_workers(), params.use_quadrupole);
        let pool = &scratch.lists;
        let out = SyncSlice::new(accel);
        let this = self;
        let theta2 = params.theta * params.theta;
        let eps2 = params.softening * params.softening;
        if params.kernel == ForceKernel::Simd {
            record!(gauge SIMD_DISPATCH_LEVEL, simd_level() as u64);
        }
        for_each_chunk_worker(policy, 0..order.len(), group, |w, r| {
            let mut gbox = Aabb::EMPTY;
            for &b in &order[r.clone()] {
                gbox.expand(positions[b as usize]);
            }
            // SAFETY: `w` is the executor's worker index — never observed
            // concurrently by two threads — and the pool was prepared for
            // `max_workers()` workers above.
            let state = unsafe { pool.slot(w) };
            let lists: &mut InteractionLists = &mut state.lists;
            lists.clear();
            let mut mac = MacCounts::default();
            this.gather_group(
                gbox,
                theta2,
                params.mac_pad,
                params.use_quadrupole,
                positions,
                masses,
                lists,
                &mut mac,
            );
            // One flush and two histogram samples per *group*, amortised
            // over every member body.
            mac.flush(&metrics::OCTREE_MAC_ACCEPTS, &metrics::OCTREE_MAC_OPENS);
            record!(hist OCTREE_LIST_BODIES, lists.n_bodies() as u64);
            record!(hist OCTREE_LIST_NODES, lists.n_nodes() as u64);
            match params.kernel {
                ForceKernel::Scalar => {
                    for &b in &order[r] {
                        let a = lists.eval_at(positions[b as usize], params.g, eps2);
                        // Disjoint slots: the DFS order is a permutation of
                        // 0..n.
                        unsafe { out.write(b as usize, a) };
                    }
                }
                ForceKernel::Simd => {
                    let scratch = &mut state.scratch;
                    scratch.clear_targets();
                    for &b in &order[r.clone()] {
                        scratch.push_target(positions[b as usize]);
                    }
                    let mut ks = KernelStats::default();
                    lists.eval_group(scratch, params.g, eps2, params.precision, &mut ks);
                    record!(counter SIMD_GROUPS, ks.groups);
                    record!(counter SIMD_TILES, ks.tiles);
                    record!(counter SIMD_LANE_SLOTS, ks.lane_slots);
                    record!(counter SIMD_ACTIVE_LANES, ks.active_lanes);
                    for (t, &b) in order[r].iter().enumerate() {
                        unsafe { out.write(b as usize, scratch.accel(t)) };
                    }
                }
            }
        });
    }

    /// Stackless walk collecting the interaction lists of one group box.
    /// Same forward/backward structure as [`Octree::accel_at`], with the
    /// point distance `|com − p|²` replaced by the conservative distance
    /// from the node's centre of mass to the group box.
    /// `pub(crate)`: the task-graph force tiles ([`crate::tasks`]) run the
    /// same walk.
    #[allow(clippy::too_many_arguments)] // internal: gather inputs + telemetry tally
    pub(crate) fn gather_group(
        &self,
        gbox: Aabb,
        theta2: f64,
        pad: f64,
        want_quad: bool,
        positions: &[Vec3],
        masses: &[f64],
        lists: &mut InteractionLists,
        mac: &mut MacCounts,
    ) {
        if self.n_bodies() == 0 {
            return;
        }
        let quads = if want_quad { self.node_quad.as_ref() } else { None };
        let mut i: u32 = 0;
        let mut width = self.root_edge();
        loop {
            let mut descend = false;
            match self.slot(i) {
                Slot::Node(c) => {
                    let com = self.node_com_of(i);
                    let d2 = gbox.distance2_to_point(com);
                    if nbody_math::mac_accepts(width * width, d2, theta2, pad) {
                        mac.accepts += 1;
                        let quad = quads.map(|q| {
                            std::array::from_fn(|k| q[k][i as usize].load(Ordering::Relaxed))
                        });
                        lists.push_node(com, self.node_mass_of(i), quad);
                    } else {
                        mac.opens += 1;
                        i = c;
                        width *= 0.5;
                        descend = true;
                    }
                }
                Slot::Empty => {}
                Slot::Body(head) => {
                    // Group members meet themselves here; the evaluation
                    // kernel's zero-distance guard zeroes self terms,
                    // matching the per-body path's explicit exclusion.
                    for bj in self.chain(head) {
                        lists.push_body(positions[bj as usize], masses[bj as usize]);
                    }
                }
                Slot::Locked => unreachable!("locked slot during force traversal"),
            }
            if descend {
                continue;
            }
            // Backward step: next sibling, or climb until one exists.
            loop {
                if i == 0 {
                    return;
                }
                if tags::sibling_rank(i) != tags::CHILDREN - 1 {
                    i += 1;
                    break;
                }
                i = self.parent_of(i);
                width *= 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::gravity::{direct_accel, ForceEval};
    use nbody_math::SplitMix64;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        (pos, mass)
    }

    fn built(pos: &[Vec3], mass: &[f64], quad: bool) -> Octree {
        let mut t = Octree::new();
        t.set_quadrupole(quad);
        t.build(Par, pos, Aabb::from_points(pos)).unwrap();
        t.compute_multipoles(Par, pos, mass);
        t
    }

    fn forces(t: &Octree, pos: &[Vec3], mass: &[f64], params: &ForceParams) -> Vec<Vec3> {
        let mut acc = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(ParUnseq, pos, mass, &mut acc, params);
        acc
    }

    #[test]
    fn theta_zero_blocked_matches_direct_sum() {
        let (pos, mass) = random_system(257, 41);
        let t = built(&pos, &mass, false);
        let params =
            ForceParams { theta: 0.0, eval: ForceEval::blocked(), ..ForceParams::default() };
        let acc = forces(&t, &pos, &mass, &params);
        for (b, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[b], Some(b as u32), &pos, &mass, 1.0, 0.0);
            assert!(
                (a - exact).norm() <= 1e-10 * (1.0 + exact.norm()),
                "body {b}: {a:?} vs {exact:?}"
            );
        }
    }

    #[test]
    fn blocked_error_within_per_body_budget() {
        let (pos, mass) = random_system(1000, 42);
        let t = built(&pos, &mass, false);
        let per_body = ForceParams { theta: 0.5, ..ForceParams::default() };
        let blocked = ForceParams { eval: ForceEval::blocked(), ..per_body };
        let (ap, ab) =
            (forces(&t, &pos, &mass, &per_body), forces(&t, &pos, &mass, &blocked));
        let (mut mp, mut mb) = (0.0f64, 0.0f64);
        for b in 0..pos.len() {
            let exact = direct_accel(pos[b], Some(b as u32), &pos, &mass, 1.0, 0.0);
            let d = 1e-12 + exact.norm();
            mp += (ap[b] - exact).norm() / d;
            mb += (ab[b] - exact).norm() / d;
        }
        mp /= pos.len() as f64;
        mb /= pos.len() as f64;
        // The group MAC opens at least every node the per-body MAC opens.
        assert!(mb <= mp + 1e-12, "blocked mean rel err {mb} vs per-body {mp}");
        assert!(mb < 0.01, "blocked mean rel err {mb}");
    }

    #[test]
    fn blocked_quadrupole_matches_budget() {
        let (pos, mass) = random_system(600, 43);
        let t = built(&pos, &mass, true);
        let params = ForceParams {
            theta: 0.8,
            use_quadrupole: true,
            eval: ForceEval::blocked(),
            ..ForceParams::default()
        };
        let acc = forces(&t, &pos, &mass, &params);
        let mut mean = 0.0;
        for (b, &a) in acc.iter().enumerate() {
            let exact = direct_accel(pos[b], Some(b as u32), &pos, &mass, 1.0, 0.0);
            mean += (a - exact).norm() / (1e-12 + exact.norm());
        }
        mean /= pos.len() as f64;
        assert!(mean < 0.01, "mean relative error {mean}");
    }

    #[test]
    fn blocked_policies_agree_bitwise_for_fixed_tree() {
        let (pos, mass) = random_system(400, 44);
        let t = built(&pos, &mass, false);
        let params =
            ForceParams { eval: ForceEval::Blocked { group: 48 }, ..ForceParams::default() };
        let mut reference: Option<Vec<Vec3>> = None;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let a = forces(&t, &pos, &mass, &params);
                match &reference {
                    None => reference = Some(a),
                    Some(r) => assert_eq!(r, &a),
                }
            });
        }
        let mut seq = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(Seq, &pos, &mass, &mut seq, &params);
        assert_eq!(reference.unwrap(), seq);
    }

    #[test]
    fn zero_group_resolves_to_tree_default() {
        let (pos, mass) = random_system(64, 45);
        let t = built(&pos, &mass, false);
        let auto = forces(
            &t,
            &pos,
            &mass,
            &ForceParams { eval: ForceEval::Blocked { group: 0 }, ..ForceParams::default() },
        );
        let explicit = forces(
            &t,
            &pos,
            &mass,
            &ForceParams {
                eval: ForceEval::Blocked { group: Octree::DEFAULT_BLOCK_GROUP },
                ..ForceParams::default()
            },
        );
        assert_eq!(auto, explicit);
    }

    #[test]
    fn simd_kernel_matches_scalar_within_rounding() {
        use nbody_math::gravity::{ForceKernel, KernelPrecision};
        let (pos, mass) = random_system(700, 46);
        for quad in [false, true] {
            let t = built(&pos, &mass, quad);
            let base = ForceParams {
                theta: 0.6,
                use_quadrupole: quad,
                eval: ForceEval::blocked(),
                ..ForceParams::default()
            };
            let scalar = forces(&t, &pos, &mass, &base);
            let simd =
                forces(&t, &pos, &mass, &ForceParams { kernel: ForceKernel::Simd, ..base });
            for b in 0..pos.len() {
                let rel = (simd[b] - scalar[b]).norm() / (1e-12 + scalar[b].norm());
                assert!(rel < 1e-12, "quad={quad} body {b}: rel {rel}");
            }
            // Mixed precision stays within f32 noise of the f64 answer.
            let mixed = forces(
                &t,
                &pos,
                &mass,
                &ForceParams {
                    kernel: ForceKernel::Simd,
                    precision: KernelPrecision::MixedF32Far,
                    ..base
                },
            );
            for b in 0..pos.len() {
                let rel = (mixed[b] - scalar[b]).norm() / (1e-12 + scalar[b].norm());
                assert!(rel < 1e-4, "mixed quad={quad} body {b}: rel {rel}");
            }
        }
    }

    #[test]
    fn simd_kernel_agrees_across_policies_and_backends() {
        use nbody_math::gravity::ForceKernel;
        let (pos, mass) = random_system(400, 47);
        let t = built(&pos, &mass, false);
        let params = ForceParams {
            eval: ForceEval::Blocked { group: 48 },
            kernel: ForceKernel::Simd,
            ..ForceParams::default()
        };
        let mut reference: Option<Vec<Vec3>> = None;
        for backend in Backend::ALL {
            with_backend(backend, || {
                let a = forces(&t, &pos, &mass, &params);
                match &reference {
                    None => reference = Some(a),
                    Some(r) => assert_eq!(r, &a),
                }
            });
        }
        let mut seq = vec![Vec3::ZERO; pos.len()];
        t.compute_forces(Seq, &pos, &mass, &mut seq, &params);
        assert_eq!(reference.unwrap(), seq);
    }

    #[test]
    fn blocked_edge_cases() {
        let params = ForceParams { eval: ForceEval::blocked(), ..ForceParams::default() };
        // Single body: zero self force.
        let pos = vec![Vec3::new(0.3, 0.4, 0.5)];
        let mass = vec![2.0];
        let t = built(&pos, &mass, false);
        assert_eq!(forces(&t, &pos, &mass, &params)[0], Vec3::ZERO);
        // Duplicate positions (co-located chain) stay finite with softening.
        let p = Vec3::new(0.2, 0.2, 0.2);
        let pos = vec![p, p, Vec3::new(-0.7, 0.1, 0.0)];
        let mass = vec![1.0, 1.0, 1.0];
        let t = built(&pos, &mass, false);
        let soft = ForceParams { softening: 0.05, ..params };
        let acc = forces(&t, &pos, &mass, &soft);
        assert!(acc.iter().all(|a| a.is_finite()));
        assert!((acc[0] - acc[1]).norm() < 1e-12);
    }
}
