//! Generic Barnes-Hut traversal (visitor API).
//!
//! The paper's introduction argues that the interest of Barnes-Hut trees
//! goes beyond gravity: "the tree data structures it uses are transferable
//! to other domains and algorithms" (§I), with t-SNE as the running
//! example (§VI). This module exposes the *same* stackless traversal used
//! by the force kernel, but with the interaction kernel supplied by the
//! caller: an approximated far-node visitor and an exact leaf-body visitor.
//! `bh-tsne` builds its repulsion field on this.

use crate::tags::{self, Slot};
use crate::tree::Octree;
use nbody_math::Vec3;

/// A far node accepted by the multipole acceptance criterion.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct NodeView {
    /// Node index (for [`Octree::node_quad_of`] etc.).
    pub index: u32,
    /// Total mass/weight of the subtree.
    pub mass: f64,
    /// Centre of mass of the subtree.
    pub com: Vec3,
    /// Cell edge length.
    pub width: f64,
}

// Note: kernels that need a body *count* rather than a mass (t-SNE) should
// build the tree with unit masses so `mass` is the count.

impl Octree {
    /// Stackless depth-first traversal from `p`.
    ///
    /// A node of cell width `s` whose centre of mass is at distance `d`
    /// from `p` is handed to `far` when `s/d < theta`; otherwise the
    /// traversal descends, eventually handing individual bodies to `near`
    /// (including `p`'s own body, if any — filter in the closure).
    pub fn traverse(
        &self,
        p: Vec3,
        theta: f64,
        mut far: impl FnMut(NodeView),
        mut near: impl FnMut(u32),
    ) {
        if self.n_bodies() == 0 {
            return;
        }
        let theta2 = theta * theta;
        let mut i: u32 = 0;
        let mut width = self.root_edge();
        loop {
            let mut descend = false;
            match self.slot(i) {
                Slot::Node(c) => {
                    let com = self.node_com_of(i);
                    let d2 = com.distance2(p);
                    if width * width < theta2 * d2 {
                        far(NodeView { index: i, mass: self.node_mass_of(i), com, width });
                    } else {
                        i = c;
                        width *= 0.5;
                        descend = true;
                    }
                }
                Slot::Empty => {}
                Slot::Body(head) => {
                    for b in self.chain(head) {
                        near(b);
                    }
                }
                Slot::Locked => unreachable!("locked slot during traversal"),
            }
            if descend {
                continue;
            }
            loop {
                if i == 0 {
                    return;
                }
                if tags::sibling_rank(i) != tags::CHILDREN - 1 {
                    i += 1;
                    break;
                }
                i = self.parent_of(i);
                width *= 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::gravity::{direct_accel, pair_accel};
    use nbody_math::{Aabb, SplitMix64};
    use stdpar::prelude::*;

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut r = SplitMix64::new(seed);
        let pos = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let mass = (0..n).map(|_| r.uniform(0.5, 2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn gravity_via_visitor_matches_builtin_kernel() {
        let (pos, mass) = random_system(800, 121);
        let mut t = Octree::new();
        t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        t.compute_multipoles(Par, &pos, &mass);

        let params = nbody_math::ForceParams { theta: 0.6, ..Default::default() };
        for b in (0..pos.len()).step_by(37) {
            let builtin = t.accel_at(pos[b], Some(b as u32), &pos, &mass, &params);
            let acc = std::cell::Cell::new(Vec3::ZERO);
            t.traverse(
                pos[b],
                0.6,
                |node| acc.set(acc.get() + pair_accel(node.com - pos[b], node.mass, 1.0, 0.0)),
                |j| {
                    if j != b as u32 {
                        acc.set(
                            acc.get()
                                + pair_accel(pos[j as usize] - pos[b], mass[j as usize], 1.0, 0.0),
                        );
                    }
                },
            );
            assert!((acc.get() - builtin).norm() < 1e-12 * (1.0 + builtin.norm()), "body {b}");
        }
    }

    #[test]
    fn theta_zero_visits_every_body_exactly_once() {
        let (pos, mass) = random_system(500, 122);
        let mut t = Octree::new();
        t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        t.compute_multipoles(Par, &pos, &mass);
        let mut seen = vec![0u32; pos.len()];
        t.traverse(Vec3::ZERO, 0.0, |_| panic!("θ=0 must never approximate"), |b| {
            seen[b as usize] += 1
        });
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn far_plus_near_masses_account_for_everything() {
        let (pos, mass) = random_system(700, 123);
        let mut t = Octree::new();
        t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        t.compute_multipoles(Par, &pos, &mass);
        let total: f64 = mass.iter().sum();
        let seen_mass = std::cell::Cell::new(0.0);
        t.traverse(
            pos[0],
            0.8,
            |node| seen_mass.set(seen_mass.get() + node.mass),
            |b| seen_mass.set(seen_mass.get() + mass[b as usize]),
        );
        assert!((seen_mass.get() - total).abs() < 1e-9 * total);
    }

    #[test]
    fn custom_kernel_example_tsne_style() {
        // t-SNE repulsion kernel: q = 1/(1+d²); contribution N_cell·q²·d.
        let (pos, _) = random_system(400, 124);
        let unit = vec![1.0; pos.len()]; // unit weights ⇒ node.mass = count
        let mut t = Octree::new();
        t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        t.compute_multipoles(Par, &pos, &unit);
        let p = pos[7];
        let approx = std::cell::Cell::new(Vec3::ZERO);
        let z = std::cell::Cell::new(0.0f64);
        t.traverse(
            p,
            0.5,
            |node| {
                let d = p - node.com;
                let q = 1.0 / (1.0 + d.norm2());
                z.set(z.get() + node.mass * q);
                approx.set(approx.get() + d * (node.mass * q * q));
            },
            |b| {
                if b != 7 {
                    let d = p - pos[b as usize];
                    let q = 1.0 / (1.0 + d.norm2());
                    z.set(z.get() + q);
                    approx.set(approx.get() + d * (q * q));
                }
            },
        );
        let (approx, z) = (approx.get(), z.get());
        // Exact reference.
        let mut exact = Vec3::ZERO;
        let mut z_exact = 0.0;
        for (j, &x) in pos.iter().enumerate() {
            if j != 7 {
                let d = p - x;
                let q = 1.0 / (1.0 + d.norm2());
                z_exact += q;
                exact += d * (q * q);
            }
        }
        assert!((z - z_exact).abs() < 0.05 * z_exact, "Z {z} vs {z_exact}");
        assert!((approx - exact).norm() < 0.05 * (1e-9 + exact.norm()));
        // Gravity sanity so the import is exercised end-to-end.
        let _ = direct_accel(p, None, &pos, &unit, 1.0, 0.0);
    }
}
