//! Incremental tree maintenance: persistent node storage with a first-fit
//! free-list allocator, count-delta refine/coarsen, and dirty-path
//! multipole recomputation.
//!
//! A from-scratch build ([`Octree::build`]) bump-allocates sibling groups
//! and re-inserts every body each step. This module keeps the tree alive
//! across steps instead (Cornerstone-style maintenance, Keller et al.):
//!
//! 1. [`Octree::init_incremental`] walks a freshly built tree once,
//!    caching per-slot subtree body counts, each body's leaf slot and leaf
//!    cell geometry, and handing every bump-unclaimed sibling group to a
//!    [`FirstFitAllocator`] free list.
//! 2. [`Octree::update_incremental`] detects *movers* (bodies that left
//!    their cached leaf cell), unlinks them (decrementing counts up their
//!    paths), coarsens any subtree whose count dropped to ≤ 1 (releasing
//!    its groups to the free list), and re-inserts the movers from the
//!    root, splitting leaves with freshly granted groups. The result is
//!    structurally canonical: a cell is internal exactly when it holds
//!    ≥ 2 bodies, the same shape a from-scratch build of the new
//!    positions (on the same root cube) produces.
//! 3. [`Octree::refresh_moments_incremental`] recomputes multipoles with a
//!    *pruned* post-order DFS: only nodes on dirty paths (structure
//!    changed, or a cached-position mismatch below them) are recombined;
//!    clean subtrees return their stored finalized moments. The DFS
//!    combines children in octant order from finalized values, so the
//!    result is independent of slot layout — an incrementally maintained
//!    tree and a from-scratch oracle on the same structure produce
//!    bitwise-identical moments ([`Octree::compute_multipoles_dfs`] is the
//!    same routine run unpruned, for oracles and fresh initialisation).
//!
//! Anything that would make the update non-canonical falls back: touching
//! a co-located chain, exceeding `MAX_DEPTH`, or a body escaping the
//! persistent root cube returns [`NeedsRebuild`] and the caller performs a
//! full build (counted in telemetry). Degenerate inputs therefore stay
//! correct — they just stop being incremental.
//!
//! With [`Octree::set_step_probes`] armed, every update and refresh runs
//! the free-list invariants ([`Octree::probe_incremental_invariants`]:
//! no leaked or double-granted groups, counts consistent, leaf caches
//! exact) and a moment-consistency check (stored dirty-path moments match
//! a from-scratch DFS recompute bitwise), so DetPar's adversarial
//! schedules can hunt torn incremental state from the surrounding
//! parallel phases.

use crate::tags::{self, Slot, CHILDREN, EMPTY, FIRST_GROUP};
use crate::tree::{octant_center, pool_size_for, Octree, CHAIN_END, MAX_DEPTH, NO_PARENT};
use nbody_math::{Aabb, Vec3};
use nbody_telemetry::record;
use std::sync::atomic::Ordering;

/// Relative (to the root edge) margin by which a body must sit *inside*
/// its cached leaf cell to be considered a non-mover. Cell centres are
/// accumulated through ~`depth` rounded additions, so the computed box can
/// drift a few ulps (≈ `depth · 2⁻⁵² · root_edge`) from the exact descent
/// geometry; the margin is orders of magnitude wider, so a body that
/// passes the strict-interior test is guaranteed to re-descend to the same
/// leaf. Borderline bodies are conservatively flagged as movers — always
/// correct, merely a little more work.
const CELL_MARGIN_REL: f64 = 1e-13;

/// When more than `n / CHANGED_DENSE_DIVISOR` bodies moved since the last
/// refresh, per-path dirty marking (O(changed · depth)) would cost more
/// than recomputing every moment (O(nodes)); flip to a full recompute.
const CHANGED_DENSE_DIVISOR: usize = 8;

/// The incremental update cannot express this step; the caller must fall
/// back to a from-scratch [`Octree::build`] (+ re-init).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeedsRebuild {
    /// Why the incremental path refused (diagnostic, stable strings).
    pub reason: &'static str,
}

impl std::fmt::Display for NeedsRebuild {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "incremental update needs a full rebuild: {}", self.reason)
    }
}

impl std::error::Error for NeedsRebuild {}

fn needs(reason: &'static str) -> NeedsRebuild {
    NeedsRebuild { reason }
}

/// What one successful [`Octree::update_incremental`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Bodies that left their leaf cell and were re-inserted.
    pub movers: usize,
    /// Bodies whose position changed at all since the last refresh.
    pub changed_positions: usize,
    /// Sibling groups granted from the free list (refinement).
    pub refined_groups: u32,
    /// Sibling groups released to the free list (coarsening).
    pub coarsened_groups: u32,
}

/// First-fit free list over sibling-group indices, bitmap-backed.
///
/// Bit `g` set ⇔ group `g` is free. `grant` returns the *lowest* free
/// group (true first-fit, so the pool stays compact and re-granted groups
/// are cache-warm); `release` returns a group and slides the scan hint
/// back. Grow-only: the bitmap never shrinks, and all bookkeeping is
/// O(groups/64) words.
#[derive(Debug, Default)]
pub(crate) struct FirstFitAllocator {
    /// Bit set ⇔ group free.
    free: Vec<u64>,
    groups: u32,
    free_count: u32,
    /// Lowest word that may contain a set bit — first-fit scan start.
    hint: usize,
    /// High-water mark of simultaneously granted (in-use) groups.
    used_high_water: u32,
}

impl FirstFitAllocator {
    /// Reset to `groups` groups, all free.
    fn reset_all_free(&mut self, groups: u32) {
        let words = (groups as usize).div_ceil(64);
        self.free.clear();
        self.free.resize(words, !0u64);
        // Mask the tail so the scan never grants a group beyond `groups`.
        let tail = groups as usize % 64;
        if tail != 0 {
            if let Some(w) = self.free.last_mut() {
                *w = (1u64 << tail) - 1;
            }
        }
        self.groups = groups;
        self.free_count = groups;
        self.hint = 0;
    }

    /// Extend the pool: groups `self.groups..new_groups` become free.
    fn extend_free(&mut self, new_groups: u32) {
        debug_assert!(new_groups >= self.groups);
        let words = (new_groups as usize).div_ceil(64);
        self.free.resize(words, 0);
        for g in self.groups..new_groups {
            self.free[g as usize / 64] |= 1u64 << (g % 64);
        }
        self.hint = self.hint.min(self.groups as usize / 64);
        self.free_count += new_groups - self.groups;
        self.groups = new_groups;
    }

    /// Claim a specific group (initial walk over a bump-built tree).
    fn mark_used(&mut self, g: u32) {
        let (w, m) = (g as usize / 64, 1u64 << (g % 64));
        debug_assert!(self.free[w] & m != 0, "group {g} double-claimed");
        self.free[w] &= !m;
        self.free_count -= 1;
        self.used_high_water = self.used_high_water.max(self.used());
    }

    /// First-fit grant: the lowest free group, or `None` when exhausted.
    fn grant(&mut self) -> Option<u32> {
        if self.free_count == 0 {
            return None;
        }
        let words = self.free.len();
        while self.hint < words && self.free[self.hint] == 0 {
            self.hint += 1;
        }
        if self.hint >= words {
            return None;
        }
        let w = self.hint;
        let b = self.free[w].trailing_zeros();
        self.free[w] &= !(1u64 << b);
        self.free_count -= 1;
        self.used_high_water = self.used_high_water.max(self.used());
        Some((w * 64) as u32 + b)
    }

    /// Return a group to the free list.
    fn release(&mut self, g: u32) {
        let (w, m) = (g as usize / 64, 1u64 << (g % 64));
        debug_assert!(self.free[w] & m == 0, "group {g} double-released");
        self.free[w] |= m;
        self.free_count += 1;
        self.hint = self.hint.min(w);
    }

    fn is_free(&self, g: u32) -> bool {
        self.free[g as usize / 64] & (1u64 << (g % 64)) != 0
    }

    fn used(&self) -> u32 {
        self.groups - self.free_count
    }
}

/// Persistent incremental-maintenance state. Every buffer is grow-only, so
/// steady-state updates perform zero heap allocations once warm.
#[derive(Debug, Default)]
pub struct IncState {
    /// False after any full build or failed update: the caches below no
    /// longer describe the tree and must be re-initialised.
    pub(crate) valid: bool,
    pub(crate) alloc: FirstFitAllocator,
    /// Subtree body count per node slot (leaf chains count each member).
    count: Vec<u32>,
    /// Leaf slot currently holding each body.
    body_leaf: Vec<u32>,
    /// Centre of each body's leaf cell (same values the insert descent
    /// computed, so the mover test reproduces descent geometry).
    cell_center: Vec<Vec3>,
    /// Half-width of each body's leaf cell.
    cell_half: Vec<f64>,
    /// Position snapshot taken at the last moment refresh.
    last_pos: Vec<Vec3>,
    /// Per-slot dirty bitset for the moment recompute.
    dirty: Vec<u64>,
    /// Slots whose dirty bit is set (for O(dirty) clearing).
    dirty_slots: Vec<u32>,
    /// Every moment is stale (initialisation, or dense position changes).
    all_dirty: bool,
    /// Bodies whose position changed, while sparse enough to path-mark.
    changed: Vec<u32>,
    movers: Vec<u32>,
    removed: Vec<u32>,
    /// DFS stack of group bases for subtree release.
    stack: Vec<u32>,
    /// Sibling ranks collected while replaying cell geometry.
    ranks: Vec<u8>,
}

impl IncState {
    #[inline]
    fn is_dirty(&self, i: u32) -> bool {
        self.dirty[i as usize / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    fn mark_dirty(&mut self, i: u32) {
        let (w, m) = (i as usize / 64, 1u64 << (i % 64));
        if self.dirty[w] & m == 0 {
            self.dirty[w] |= m;
            self.dirty_slots.push(i);
        }
    }

    /// Mark the path from `leaf` to the root dirty, stopping early at the
    /// first already-dirty node. Sound because every marking site
    /// preserves "dirty(i) ⇒ all ancestors of i dirty" (removals climb to
    /// the root, insertions mark top-down from the root).
    fn mark_path_dirty(&mut self, tree: &Octree, leaf: u32) {
        let mut i = leaf;
        loop {
            if self.is_dirty(i) {
                return;
            }
            self.mark_dirty(i);
            if i == 0 {
                return;
            }
            i = tree.parent_of(i);
        }
    }

    /// Resize per-slot buffers after a pool grow (counts of fresh slots are
    /// zero; their groups are free).
    fn on_pool_grown(&mut self, cap: usize, new_groups: u32) {
        self.count.resize(cap, 0);
        self.dirty.resize(cap.div_ceil(64), 0);
        self.alloc.extend_free(new_groups);
    }
}

/// Finalized moments of one node: total mass, centre of mass, and central
/// second moments (used only when quadrupoles are enabled).
#[derive(Clone, Copy)]
struct Moment {
    m: f64,
    com: Vec3,
    quad: [f64; 6],
}

const ZERO_MOMENT: Moment = Moment { m: 0.0, com: Vec3::ZERO, quad: [0.0; 6] };

impl Octree {
    /// Initialise incremental maintenance over the *current* (successfully
    /// built) tree: cache per-slot counts and per-body leaf cells, park the
    /// bump allocator, and hand every unclaimed sibling group to the
    /// first-fit free list. Call once after a full build; afterwards step
    /// with [`Octree::update_incremental`] +
    /// [`Octree::refresh_moments_incremental`].
    pub fn init_incremental(&mut self, positions: &[Vec3]) {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        let mut inc = self.inc.take().unwrap_or_default();
        let cap = self.node_capacity();
        let groups_total = ((cap - FIRST_GROUP as usize) / CHILDREN as usize) as u32;

        inc.count.clear();
        inc.count.resize(cap, 0);
        inc.body_leaf.clear();
        inc.body_leaf.resize(positions.len(), 0);
        inc.cell_center.clear();
        inc.cell_center.resize(positions.len(), Vec3::ZERO);
        inc.cell_half.clear();
        inc.cell_half.resize(positions.len(), 0.0);
        inc.dirty.clear();
        inc.dirty.resize(cap.div_ceil(64), 0);
        inc.dirty_slots.clear();
        inc.alloc.reset_all_free(groups_total);

        let root_half = self.root_edge * 0.5;
        self.init_walk(&mut inc, 0, self.root_center, root_half);

        // Groups the walk did not claim are free; stamp the sentinel so
        // stale climbs (and the probes) can recognise them.
        // relaxed-ok (whole method): `&mut self` — single-threaded; the
        // atomics only paper over the shared storage layout.
        for g in 0..groups_total {
            if inc.alloc.is_free(g) {
                self.parent[g as usize].store(NO_PARENT, Ordering::Relaxed);
            }
        }
        self.park_bump_at_capacity();

        inc.all_dirty = true;
        inc.last_pos.clear();
        inc.last_pos.extend_from_slice(positions);
        inc.valid = true;
        self.inc = Some(inc);
    }

    /// True when [`Octree::init_incremental`] state is live (no full build
    /// or failed update has invalidated it since).
    pub fn incremental_ready(&self) -> bool {
        self.inc.as_deref().is_some_and(|inc| inc.valid)
    }

    /// Free groups currently available to the incremental allocator
    /// (0 when incremental state is absent).
    pub fn free_groups(&self) -> u32 {
        self.inc.as_deref().map_or(0, |inc| inc.alloc.free_count)
    }

    fn init_walk(&self, inc: &mut IncState, i: u32, center: Vec3, half: f64) -> u32 {
        let cnt = match self.slot(i) {
            Slot::Empty => 0,
            Slot::Locked => unreachable!("locked slot after build"),
            Slot::Body(head) => {
                let mut c = 0;
                for b in self.chain(head) {
                    inc.body_leaf[b as usize] = i;
                    inc.cell_center[b as usize] = center;
                    inc.cell_half[b as usize] = half;
                    c += 1;
                }
                c
            }
            Slot::Node(cg) => {
                inc.alloc.mark_used(tags::group_of(cg));
                let mut c = 0;
                for oct in 0..CHILDREN as usize {
                    c += self.init_walk(
                        inc,
                        cg + oct as u32,
                        octant_center(center, half, oct),
                        half * 0.5,
                    );
                }
                c
            }
        };
        inc.count[i as usize] = cnt;
        cnt
    }

    /// Delta-update the persistent tree to `positions`: remove and
    /// re-insert bodies that left their leaf cells, coarsening emptied
    /// subtrees and refining split leaves through the free list. Marks
    /// dirty moment paths; call [`Octree::refresh_moments_incremental`]
    /// afterwards. On [`NeedsRebuild`] the state is invalidated and the
    /// caller must do a full build + [`Octree::init_incremental`].
    pub fn update_incremental(
        &mut self,
        positions: &[Vec3],
    ) -> Result<IncrementalStats, NeedsRebuild> {
        let Some(mut inc) = self.inc.take() else {
            return Err(needs("incremental state not initialised"));
        };
        if !inc.valid {
            self.inc = Some(inc);
            return Err(needs("incremental state invalidated"));
        }
        if positions.len() != self.n_bodies {
            inc.valid = false;
            self.inc = Some(inc);
            return Err(needs("body count changed"));
        }
        let res = self.update_inner(&mut inc, positions);
        if res.is_err() {
            inc.valid = false;
        }
        self.inc = Some(inc);
        match &res {
            Ok(stats) => {
                record!(counter OCTREE_INC_UPDATES, 1);
                if stats.refined_groups > 0 {
                    record!(counter OCTREE_NODES_REFINED, (stats.refined_groups * CHILDREN) as u64);
                }
                if stats.coarsened_groups > 0 {
                    record!(counter OCTREE_NODES_COARSENED, (stats.coarsened_groups * CHILDREN) as u64);
                }
                let hw = self.inc.as_deref().map_or(0, |i| i.alloc.used_high_water);
                record!(gauge OCTREE_FREELIST_HIGH_WATER, hw as u64);
                if self.step_probes_enabled() {
                    self.probe_incremental_invariants(positions);
                }
            }
            Err(_) => {
                record!(counter OCTREE_INC_FALLBACKS, 1);
            }
        }
        res
    }

    // relaxed-ok (whole method): `&mut self` — the update is strictly
    // single-threaded; atomics only paper over the shared storage layout,
    // and publication to the parallel force phase is the caller's join.
    fn update_inner(
        &mut self,
        inc: &mut IncState,
        positions: &[Vec3],
    ) -> Result<IncrementalStats, NeedsRebuild> {
        let n = positions.len();
        let root_half = self.root_edge * 0.5;
        let margin = self.root_edge * CELL_MARGIN_REL;
        let changed_cap = (n / CHANGED_DENSE_DIVISOR).max(16);

        // Phase 1: movers (left their leaf cell) and changed positions.
        inc.movers.clear();
        inc.changed.clear();
        let mut changed = 0usize;
        for b in 0..n as u32 {
            let p = positions[b as usize];
            if !p.is_finite() {
                return Err(needs("non-finite position"));
            }
            if p != inc.last_pos[b as usize] {
                changed += 1;
                if !inc.all_dirty {
                    if inc.changed.len() < changed_cap {
                        inc.changed.push(b);
                    } else {
                        inc.all_dirty = true;
                        inc.changed.clear();
                    }
                }
            }
            let c = inc.cell_center[b as usize];
            let h = inc.cell_half[b as usize];
            let inside = (p.x - c.x).abs() < h - margin
                && (p.y - c.y).abs() < h - margin
                && (p.z - c.z).abs() < h - margin;
            if !inside {
                if (p.x - self.root_center.x).abs() > root_half
                    || (p.y - self.root_center.y).abs() > root_half
                    || (p.z - self.root_center.z).abs() > root_half
                {
                    return Err(needs("body escaped the root cube"));
                }
                inc.movers.push(b);
            }
        }
        if inc.movers.is_empty() && changed == 0 {
            return Ok(IncrementalStats::default());
        }

        // Phase 2: unlink movers, decrementing counts (and marking moment
        // paths dirty) up to the root.
        let movers = std::mem::take(&mut inc.movers);
        inc.removed.clear();
        let mut fail: Option<NeedsRebuild> = None;
        for &b in &movers {
            let leaf = inc.body_leaf[b as usize];
            if inc.count[leaf as usize] != 1 {
                fail = Some(needs("mover shares a co-located chain"));
                break;
            }
            debug_assert_eq!(self.slot(leaf), Slot::Body(b), "leaf cache stale");
            self.child[leaf as usize].store(EMPTY, Ordering::Relaxed);
            inc.removed.push(leaf);
            let mut i = leaf;
            loop {
                inc.count[i as usize] -= 1;
                inc.mark_dirty(i);
                if i == 0 {
                    break;
                }
                i = self.parent_of(i);
            }
        }
        if let Some(e) = fail {
            inc.movers = movers;
            return Err(e);
        }

        // Phase 3: coarsen — collapse the topmost ancestor whose subtree
        // count fell to ≤ 1, releasing its groups to the free list.
        let removed = std::mem::take(&mut inc.removed);
        let mut coarsened = 0u32;
        for &leaf in &removed {
            if leaf != 0 && self.parent_of(leaf) == NO_PARENT {
                continue; // subtree already released by an earlier collapse
            }
            let mut x = leaf;
            while x != 0 {
                let p = self.parent_of(x);
                if inc.count[p as usize] <= 1 {
                    x = p;
                } else {
                    break;
                }
            }
            if let Slot::Node(cg) = self.slot(x) {
                coarsened += self.collapse(inc, x, cg);
            }
        }
        inc.removed = removed;

        // Phase 4: re-insert movers from the root, refining through the
        // free list.
        let mut refined = 0u32;
        for &b in &movers {
            match self.inc_insert(inc, b, positions) {
                Ok(g) => refined += g,
                Err(e) => {
                    fail = Some(e);
                    break;
                }
            }
        }
        inc.movers = movers;
        if let Some(e) = fail {
            return Err(e);
        }

        // Phase 5: sparse position changes dirty their (possibly new) leaf
        // paths; dense changes already flipped `all_dirty`.
        if !inc.all_dirty {
            let changed_bodies = std::mem::take(&mut inc.changed);
            for &b in &changed_bodies {
                inc.mark_path_dirty(self, inc.body_leaf[b as usize]);
            }
            inc.changed = changed_bodies;
        }

        Ok(IncrementalStats {
            movers: inc.movers.len(),
            changed_positions: changed,
            refined_groups: refined,
            coarsened_groups: coarsened,
        })
    }

    /// Collapse internal node `x` (subtree count ≤ 1): release every group
    /// beneath it and re-tag it as the surviving body's leaf (or empty).
    /// Returns the number of groups released.
    // relaxed-ok (whole method): `&mut self` via update_inner —
    // single-threaded; see update_inner.
    fn collapse(&mut self, inc: &mut IncState, x: u32, cg: u32) -> u32 {
        debug_assert!(inc.count[x as usize] <= 1);
        inc.stack.clear();
        inc.stack.push(cg);
        let mut survivor: Option<u32> = None;
        let mut released = 0u32;
        while let Some(base) = inc.stack.pop() {
            for k in 0..CHILDREN {
                match self.slot(base + k) {
                    Slot::Empty => {}
                    Slot::Locked => unreachable!("locked slot in live tree"),
                    Slot::Body(h) => {
                        debug_assert!(survivor.is_none(), "count said ≤ 1 body");
                        survivor = Some(h);
                    }
                    Slot::Node(c2) => inc.stack.push(c2),
                }
            }
            let g = tags::group_of(base);
            for k in 0..CHILDREN as usize {
                self.child[base as usize + k].store(EMPTY, Ordering::Relaxed);
                inc.count[base as usize + k] = 0;
            }
            self.parent[g as usize].store(NO_PARENT, Ordering::Relaxed);
            inc.alloc.release(g);
            released += 1;
        }
        match survivor {
            Some(b) => {
                debug_assert_eq!(inc.count[x as usize], 1);
                self.child[x as usize].store(tags::body_tag(b), Ordering::Relaxed);
                let (c, h) = self.cell_of(inc, x);
                inc.body_leaf[b as usize] = x;
                inc.cell_center[b as usize] = c;
                inc.cell_half[b as usize] = h;
            }
            None => self.child[x as usize].store(EMPTY, Ordering::Relaxed),
        }
        released
    }

    /// Cell geometry of slot `x`, reconstructed by climbing to the root
    /// collecting sibling ranks and replaying the descent — the *same*
    /// `octant_center` halving the insert path uses, so cached cells are
    /// bitwise-reproducible.
    fn cell_of(&self, inc: &mut IncState, x: u32) -> (Vec3, f64) {
        inc.ranks.clear();
        let mut i = x;
        while i != 0 {
            inc.ranks.push(tags::sibling_rank(i) as u8);
            i = self.parent_of(i);
        }
        let mut center = self.root_center;
        let mut half = self.root_edge * 0.5;
        for &r in inc.ranks.iter().rev() {
            center = octant_center(center, half, r as usize);
            half *= 0.5;
        }
        (center, half)
    }

    /// Sequential re-insert of one mover, mirroring the concurrent insert
    /// descent but allocating through the free list. Returns the number of
    /// groups granted (refinement).
    // relaxed-ok (whole method): `&mut self` via update_inner —
    // single-threaded; see update_inner.
    fn inc_insert(
        &mut self,
        inc: &mut IncState,
        b: u32,
        positions: &[Vec3],
    ) -> Result<u32, NeedsRebuild> {
        let p = positions[b as usize];
        let mut granted = 0u32;
        let mut i = 0u32;
        let mut center = self.root_center;
        let mut half = self.root_edge * 0.5;
        let mut depth = 0u32;
        inc.count[0] += 1;
        inc.mark_dirty(0);
        loop {
            match self.slot(i) {
                Slot::Empty => {
                    self.child[i as usize].store(tags::body_tag(b), Ordering::Relaxed);
                    self.next_colocated[b as usize].store(CHAIN_END, Ordering::Relaxed);
                    inc.body_leaf[b as usize] = i;
                    inc.cell_center[b as usize] = center;
                    inc.cell_half[b as usize] = half;
                    return Ok(granted);
                }
                Slot::Locked => unreachable!("locked slot in live tree"),
                Slot::Node(c) => {
                    let oct = Aabb::octant_of(center, p);
                    center = octant_center(center, half, oct);
                    half *= 0.5;
                    i = c + oct as u32;
                    depth += 1;
                    inc.count[i as usize] += 1;
                    inc.mark_dirty(i);
                }
                Slot::Body(b2) => {
                    // `count[i]` already includes the arriving body.
                    if inc.count[i as usize] != 2 {
                        return Err(needs("insert split a co-located chain"));
                    }
                    if depth >= MAX_DEPTH {
                        return Err(needs("insert reached max depth"));
                    }
                    let p2 = positions[b2 as usize];
                    if p == p2 {
                        return Err(needs("insert would create a chain"));
                    }
                    let g = match inc.alloc.grant() {
                        Some(g) => g,
                        None => {
                            self.grow_for_incremental(inc)?;
                            inc.alloc.grant().ok_or_else(|| needs("free list exhausted"))?
                        }
                    };
                    granted += 1;
                    let cbase = tags::group_base(g);
                    self.parent[g as usize].store(i, Ordering::Relaxed);
                    let oct2 = Aabb::octant_of(center, p2);
                    let slot2 = cbase + oct2 as u32;
                    self.child[slot2 as usize].store(tags::body_tag(b2), Ordering::Relaxed);
                    inc.count[slot2 as usize] = 1;
                    inc.mark_dirty(slot2);
                    inc.body_leaf[b2 as usize] = slot2;
                    inc.cell_center[b2 as usize] = octant_center(center, half, oct2);
                    inc.cell_half[b2 as usize] = half * 0.5;
                    self.child[i as usize].store(tags::node_tag(cbase), Ordering::Relaxed);
                    // Next iteration descends into the fresh group.
                }
            }
        }
    }

    fn grow_for_incremental(&mut self, inc: &mut IncState) -> Result<(), NeedsRebuild> {
        let cap = self.node_capacity() as u32;
        let want = pool_size_for(cap.saturating_mul(2).max(cap + CHILDREN));
        self.grow_pool_preserving(want).map_err(|_| needs("node pool at hard capacity"))?;
        let cap = self.node_capacity();
        let groups_total = ((cap - FIRST_GROUP as usize) / CHILDREN as usize) as u32;
        inc.on_pool_grown(cap, groups_total);
        Ok(())
    }

    /// Recompute multipoles along dirty paths only (pruned post-order
    /// DFS); clean subtrees keep their stored finalized moments. Clears
    /// the dirty set and snapshots `positions` as the new refresh
    /// baseline. Requires live incremental state.
    pub fn refresh_moments_incremental(&mut self, positions: &[Vec3], masses: &[f64]) {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        assert_eq!(masses.len(), self.n_bodies(), "masses length changed since build");
        let cap = self.node_capacity();
        self.ensure_moment_storage_preserving(cap);
        let mut inc = self.inc.take().expect("refresh_moments_incremental without init");
        assert!(inc.valid, "refresh_moments_incremental on invalidated state");

        if inc.all_dirty {
            self.dfs_moment(None, 0, positions, masses, false);
        } else {
            self.dfs_moment(Some(&inc), 0, positions, masses, false);
        }

        for &s in &inc.dirty_slots {
            inc.dirty[s as usize / 64] &= !(1u64 << (s % 64));
        }
        inc.dirty_slots.clear();
        inc.all_dirty = false;
        inc.last_pos.clear();
        inc.last_pos.extend_from_slice(positions);
        self.inc = Some(inc);

        if self.step_probes_enabled() {
            self.probe_incremental_moments(positions, masses);
        }
    }

    /// Layout-independent from-scratch multipole computation: a sequential
    /// post-order DFS combining children in octant order from finalized
    /// values. Used to initialise incremental trees and as the bitwise
    /// oracle the dirty-path refresh is verified against — on two trees
    /// with the same structure it produces identical bits regardless of
    /// slot layout (which the concurrent climb-based
    /// [`Octree::compute_multipoles`] does not guarantee).
    pub fn compute_multipoles_dfs(&mut self, positions: &[Vec3], masses: &[f64]) {
        assert_eq!(positions.len(), self.n_bodies(), "positions length changed since build");
        assert_eq!(masses.len(), self.n_bodies(), "masses length changed since build");
        let alloc = self.allocated_nodes() as usize;
        self.ensure_moment_storage_preserving(alloc);
        self.dfs_moment(None, 0, positions, masses, false);
    }

    /// Post-order moment DFS. `dirty: Some(inc)` prunes at clean nodes
    /// (their stored moments are returned untouched); `None` recomputes
    /// everything reachable. `verify` compares instead of storing,
    /// panicking on any bitwise mismatch (probe mode).
    // relaxed-ok (whole method): sequential `&self` walk; callers hold
    // `&mut self` or run post-join — no concurrent writers exist.
    fn dfs_moment(
        &self,
        dirty: Option<&IncState>,
        i: u32,
        positions: &[Vec3],
        masses: &[f64],
        verify: bool,
    ) -> Moment {
        let slot = self.slot(i);
        // Empty slots short-circuit *before* the dirty pruning: a re-granted
        // group's empty slots may hold stale stored moments from a previous
        // life without being dirty, and nothing is ever stored for empties.
        if slot == Slot::Empty {
            return ZERO_MOMENT;
        }
        if let Some(inc) = dirty {
            if !inc.is_dirty(i) {
                return self.stored_moment(i);
            }
        }
        let want_quad = self.node_quad.is_some();
        let mom = match slot {
            Slot::Empty => unreachable!("handled above"),
            Slot::Locked => unreachable!("locked slot in live tree"),
            Slot::Body(head) => {
                let mut m = 0.0;
                let mut mx = Vec3::ZERO;
                for b in self.chain(head) {
                    let w = masses[b as usize];
                    m += w;
                    mx += positions[b as usize] * w;
                }
                let com = if m > 0.0 { mx / m } else { positions[head as usize] };
                let mut quad = [0.0; 6];
                if want_quad {
                    for b in self.chain(head) {
                        let w = masses[b as usize];
                        let d = positions[b as usize] - com;
                        quad[0] += w * d.x * d.x;
                        quad[1] += w * d.x * d.y;
                        quad[2] += w * d.x * d.z;
                        quad[3] += w * d.y * d.y;
                        quad[4] += w * d.y * d.z;
                        quad[5] += w * d.z * d.z;
                    }
                }
                Moment { m, com, quad }
            }
            Slot::Node(c) => {
                let kids: [Moment; CHILDREN as usize] = std::array::from_fn(|k| {
                    self.dfs_moment(dirty, c + k as u32, positions, masses, verify)
                });
                let mut m = 0.0;
                let mut mx = Vec3::ZERO;
                for kid in &kids {
                    m += kid.m;
                    mx += kid.com * kid.m;
                }
                let com = if m > 0.0 { mx / m } else { Vec3::ZERO };
                let mut quad = [0.0; 6];
                if want_quad {
                    // Parallel-axis combination of the children's central
                    // moments about the joint centre of mass.
                    for kid in &kids {
                        if kid.m <= 0.0 {
                            continue;
                        }
                        let d = kid.com - com;
                        quad[0] += kid.quad[0] + kid.m * d.x * d.x;
                        quad[1] += kid.quad[1] + kid.m * d.x * d.y;
                        quad[2] += kid.quad[2] + kid.m * d.x * d.z;
                        quad[3] += kid.quad[3] + kid.m * d.y * d.y;
                        quad[4] += kid.quad[4] + kid.m * d.y * d.z;
                        quad[5] += kid.quad[5] + kid.m * d.z * d.z;
                    }
                }
                Moment { m, com, quad }
            }
        };
        if verify {
            let stored = self.stored_moment(i);
            assert_eq!(stored.m.to_bits(), mom.m.to_bits(), "node {i}: stale mass");
            for (a, b) in [
                (stored.com.x, mom.com.x),
                (stored.com.y, mom.com.y),
                (stored.com.z, mom.com.z),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "node {i}: stale centre of mass");
            }
            if want_quad {
                for k in 0..6 {
                    assert_eq!(
                        stored.quad[k].to_bits(),
                        mom.quad[k].to_bits(),
                        "node {i}: stale quadrupole [{k}]"
                    );
                }
            }
        } else {
            let idx = i as usize;
            self.node_mass[idx].store(mom.m, Ordering::Relaxed);
            self.node_com[0][idx].store(mom.com.x, Ordering::Relaxed);
            self.node_com[1][idx].store(mom.com.y, Ordering::Relaxed);
            self.node_com[2][idx].store(mom.com.z, Ordering::Relaxed);
            if let Some(q) = &self.node_quad {
                for (qk, &v) in q.iter().zip(&mom.quad) {
                    qk[idx].store(v, Ordering::Relaxed);
                }
            }
        }
        mom
    }

    // relaxed-ok (whole method): read-only accessor on quiescent storage;
    // see dfs_moment.
    fn stored_moment(&self, i: u32) -> Moment {
        let idx = i as usize;
        Moment {
            m: self.node_mass[idx].load(Ordering::Relaxed),
            com: Vec3::new(
                self.node_com[0][idx].load(Ordering::Relaxed),
                self.node_com[1][idx].load(Ordering::Relaxed),
                self.node_com[2][idx].load(Ordering::Relaxed),
            ),
            quad: match &self.node_quad {
                Some(q) => std::array::from_fn(|k| q[k][idx].load(Ordering::Relaxed)),
                None => [0.0; 6],
            },
        }
    }

    /// Free-list / structure invariants of an incrementally maintained
    /// tree (probe: panics on violation). Checks, in one recursive walk
    /// plus one bitmap sweep:
    ///
    /// * every reachable child group is group-aligned, in range, *not* on
    ///   the free list, visited at most once (no double-grants or cycles),
    ///   and its parent back-pointer names the publishing node;
    /// * cached subtree counts equal recomputed counts at every slot;
    /// * every body's cached leaf slot and cell geometry are exact, and
    ///   its position lies inside the (slightly inflated) cell box;
    /// * every group is either reachable or free — no leaks — and the
    ///   `NO_PARENT` sentinel marks exactly the free groups.
    pub fn probe_incremental_invariants(&self, positions: &[Vec3]) {
        let Some(inc) = self.inc.as_deref() else { return };
        if !inc.valid {
            return;
        }
        assert_eq!(positions.len(), self.n_bodies(), "probe: positions length");
        let groups_total = inc.alloc.groups;
        let mut seen = vec![false; groups_total as usize];
        let n = self
            .probe_walk(inc, &mut seen, 0, self.root_center, self.root_edge * 0.5, positions);
        assert_eq!(n as usize, self.n_bodies, "probe: reachable bodies");
        for g in 0..groups_total {
            let free = inc.alloc.is_free(g);
            assert!(
                seen[g as usize] != free,
                "group {g}: reachable={} free={free} (leak or double-grant)",
                seen[g as usize]
            );
            let sentinel = self.parent_of(tags::group_base(g)) == NO_PARENT;
            assert_eq!(sentinel, free, "group {g}: NO_PARENT sentinel out of sync");
        }
    }

    fn probe_walk(
        &self,
        inc: &IncState,
        seen: &mut [bool],
        i: u32,
        center: Vec3,
        half: f64,
        positions: &[Vec3],
    ) -> u32 {
        let cnt = match self.slot(i) {
            Slot::Empty => 0,
            Slot::Locked => panic!("probe: locked slot {i} in quiescent tree"),
            Slot::Body(head) => {
                let mut c = 0;
                let tol = 1e-9 * half.max(1e-300);
                for b in self.chain(head) {
                    assert_eq!(inc.body_leaf[b as usize], i, "probe: body {b} leaf cache");
                    let cc = inc.cell_center[b as usize];
                    assert_eq!(
                        (cc.x.to_bits(), cc.y.to_bits(), cc.z.to_bits()),
                        (center.x.to_bits(), center.y.to_bits(), center.z.to_bits()),
                        "probe: body {b} cell-centre cache"
                    );
                    assert_eq!(
                        inc.cell_half[b as usize].to_bits(),
                        half.to_bits(),
                        "probe: body {b} cell-half cache"
                    );
                    let p = positions[b as usize];
                    assert!(
                        (p.x - center.x).abs() <= half + tol
                            && (p.y - center.y).abs() <= half + tol
                            && (p.z - center.z).abs() <= half + tol,
                        "probe: body {b} outside its cell"
                    );
                    c += 1;
                }
                c
            }
            Slot::Node(cg) => {
                assert!(
                    cg >= FIRST_GROUP && (cg - FIRST_GROUP).is_multiple_of(CHILDREN),
                    "probe: node {i} child offset {cg} not group-aligned"
                );
                assert!(
                    cg + CHILDREN <= self.node_capacity() as u32,
                    "probe: node {i} child group {cg} beyond capacity"
                );
                let g = tags::group_of(cg);
                assert!(!seen[g as usize], "probe: group {g} reached twice (double-grant)");
                seen[g as usize] = true;
                assert!(!inc.alloc.is_free(g), "probe: live group {g} on the free list");
                assert_eq!(self.parent_of(cg), i, "probe: group {g} parent back-pointer");
                let mut c = 0;
                for oct in 0..CHILDREN as usize {
                    c += self.probe_walk(
                        inc,
                        seen,
                        cg + oct as u32,
                        octant_center(center, half, oct),
                        half * 0.5,
                        positions,
                    );
                }
                c
            }
        };
        assert_eq!(inc.count[i as usize], cnt, "probe: slot {i} count cache");
        cnt
    }

    /// Moment-consistency probe: every stored moment on the reachable tree
    /// must equal a from-scratch DFS recompute *bitwise* (panics
    /// otherwise). Valid right after a refresh.
    pub fn probe_incremental_moments(&self, positions: &[Vec3], masses: &[f64]) {
        if self.node_mass.len() < self.node_capacity() {
            return; // moments never computed for this tree
        }
        self.dfs_moment(None, 0, positions, masses, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;

    #[test]
    fn first_fit_grants_lowest_free_group() {
        let mut a = FirstFitAllocator::default();
        a.reset_all_free(130);
        assert_eq!(a.grant(), Some(0));
        assert_eq!(a.grant(), Some(1));
        a.mark_used(2);
        assert_eq!(a.grant(), Some(3));
        a.release(1);
        assert_eq!(a.grant(), Some(1), "first-fit must return the lowest free group");
        for _ in 0..126 {
            assert!(a.grant().is_some());
        }
        assert_eq!(a.grant(), None);
        assert_eq!(a.used(), 130);
        assert_eq!(a.used_high_water, 130);
        a.release(129);
        a.release(64);
        assert_eq!(a.grant(), Some(64));
        assert_eq!(a.grant(), Some(129));
        assert_eq!(a.grant(), None);
    }

    #[test]
    fn extend_free_adds_only_new_groups() {
        let mut a = FirstFitAllocator::default();
        a.reset_all_free(3);
        assert_eq!(a.grant(), Some(0));
        assert_eq!(a.grant(), Some(1));
        assert_eq!(a.grant(), Some(2));
        assert_eq!(a.grant(), None);
        a.extend_free(70);
        assert_eq!(a.free_count, 67);
        assert_eq!(a.grant(), Some(3));
        assert!(!a.is_free(0));
        assert!(a.is_free(69));
    }

    #[test]
    fn incremental_matches_rebuild_structure_and_moments() {
        let mut r = SplitMix64::new(99);
        let n = 600;
        let mut pos: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let masses: Vec<f64> = (0..n).map(|_| r.uniform(0.1, 2.0)).collect();

        // Inflated bounds so drift stays inside the persistent cube.
        let mut bounds = Aabb::from_points(&pos);
        let c = bounds.center();
        let half = bounds.extent() * 0.75;
        bounds = Aabb::new(c - half, c + half);

        let mut t = Octree::new();
        t.set_step_probes(true);
        t.build(stdpar::prelude::Par, &pos, bounds).unwrap();
        t.init_incremental(&pos);
        t.refresh_moments_incremental(&pos, &masses);
        let cube = t.root_cube();

        for step in 0..12 {
            // Alternate dense steps (every body random-walks, some teleport)
            // with sparse steps (a handful of bodies move — exercises the
            // pruned dirty-path refresh instead of the full recompute).
            let sparse = step % 3 == 2;
            for (k, p) in pos.iter_mut().enumerate() {
                if sparse && k % 31 != 0 {
                    continue;
                }
                let s = if k % 17 == step % 17 { 0.2 } else { 0.004 };
                *p += Vec3::new(r.uniform(-s, s), r.uniform(-s, s), r.uniform(-s, s));
                p.x = p.x.clamp(cube.min.x + 1e-6, cube.max.x - 1e-6);
                p.y = p.y.clamp(cube.min.y + 1e-6, cube.max.y - 1e-6);
                p.z = p.z.clamp(cube.min.z + 1e-6, cube.max.z - 1e-6);
            }
            let stats = t.update_incremental(&pos).unwrap();
            t.refresh_moments_incremental(&pos, &masses);
            assert!(stats.changed_positions <= n);
            if sparse {
                assert!(stats.changed_positions <= n.div_ceil(31), "sparse step moved too many");
            }

            // Oracle: from-scratch build on the same cube, same DFS moments.
            let mut oracle = Octree::new();
            oracle.build(stdpar::prelude::Seq, &pos, cube).unwrap();
            oracle.compute_multipoles_dfs(&pos, &masses);
            assert_eq!(
                t.node_mass_of(0).to_bits(),
                oracle.node_mass_of(0).to_bits(),
                "step {step}: root mass diverged"
            );
            let (a, b) = (t.node_com_of(0), oracle.node_com_of(0));
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits(), a.z.to_bits()),
                (b.x.to_bits(), b.y.to_bits(), b.z.to_bits()),
                "step {step}: root com diverged"
            );
        }
    }

    #[test]
    fn chain_touch_falls_back() {
        let p = Vec3::new(0.25, 0.25, 0.25);
        let mut pos = vec![p, p, Vec3::new(-0.5, -0.5, -0.5)];
        let mut t = Octree::new();
        t.build(stdpar::prelude::Par, &pos, Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)))
            .unwrap();
        t.init_incremental(&pos);
        // Move a chained body out of its cell: the incremental path must
        // refuse (removing one member would orphan the chain bookkeeping).
        pos[0] = Vec3::new(-0.7, 0.7, 0.7);
        let err = t.update_incremental(&pos).unwrap_err();
        assert_eq!(err.reason, "mover shares a co-located chain");
        assert!(!t.incremental_ready());
    }

    #[test]
    fn escape_of_root_cube_falls_back() {
        let mut pos = vec![Vec3::new(0.1, 0.1, 0.1), Vec3::new(-0.4, -0.2, 0.3)];
        let mut t = Octree::new();
        t.build(stdpar::prelude::Par, &pos, Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)))
            .unwrap();
        t.init_incremental(&pos);
        pos[0] = Vec3::new(5.0, 0.0, 0.0);
        let err = t.update_incremental(&pos).unwrap_err();
        assert_eq!(err.reason, "body escaped the root cube");
    }

    #[test]
    fn dt_zero_update_is_a_no_op() {
        let mut r = SplitMix64::new(5);
        let pos: Vec<Vec3> = (0..200)
            .map(|_| Vec3::new(r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0)))
            .collect();
        let masses = vec![1.0; 200];
        let mut t = Octree::new();
        t.set_step_probes(true);
        t.build(stdpar::prelude::Par, &pos, Aabb::from_points(&pos)).unwrap();
        t.init_incremental(&pos);
        t.refresh_moments_incremental(&pos, &masses);
        let stats = t.update_incremental(&pos).unwrap();
        assert_eq!(stats, IncrementalStats::default());
        t.refresh_moments_incremental(&pos, &masses);
    }
}
