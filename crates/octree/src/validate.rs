//! Post-build structural validation (test and debugging support).
//!
//! A sequential walk of the tree that checks every invariant the concurrent
//! algorithms rely on. Used heavily by unit, integration and property tests;
//! cheap enough to call in debug assertions.

use crate::tags::{self, Slot, CHILDREN, FIRST_GROUP};
use crate::tree::{octant_center, Octree};
use nbody_math::{Aabb, Vec3};

/// Summary of a successful invariant check.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeInvariants {
    /// Bodies reachable from the root (each exactly once).
    pub reachable_bodies: usize,
    /// Internal nodes visited.
    pub internal_nodes: usize,
    /// Non-empty leaves.
    pub body_leaves: usize,
    /// Empty leaves.
    pub empty_leaves: usize,
    /// Deepest leaf.
    pub max_depth: u32,
    /// Longest co-located chain.
    pub max_chain_len: usize,
}

impl TreeInvariants {
    /// Walk the tree and verify:
    /// 1. no `Locked` tags remain;
    /// 2. every internal child offset is greater than its parent's index
    ///    (the stackless-DFS precondition) and group-aligned;
    /// 3. parent back-pointers match the walk;
    /// 4. every body lies inside the cell of the leaf that holds it;
    /// 5. every body index appears exactly once.
    pub fn check(tree: &Octree, positions: &[Vec3]) -> Result<TreeInvariants, String> {
        Self::check_inner(tree, positions, true)
    }

    /// [`TreeInvariants::check`] for incrementally maintained trees: the
    /// free-list allocator recycles sibling groups, so a child offset may
    /// legitimately be *smaller* than its parent's index (the stackless-DFS
    /// ordering only holds for bump-allocated builds; incremental mode
    /// evaluates forces through the blocked traversal, which does not need
    /// it). Acyclicity is enforced by a visited-group set instead.
    pub fn check_relaxed(tree: &Octree, positions: &[Vec3]) -> Result<TreeInvariants, String> {
        Self::check_inner(tree, positions, false)
    }

    fn check_inner(
        tree: &Octree,
        positions: &[Vec3],
        ordered: bool,
    ) -> Result<TreeInvariants, String> {
        let n = tree.n_bodies();
        if n == 0 {
            return Ok(TreeInvariants::default());
        }
        let mut seen = vec![false; n];
        let groups = (tree.node_capacity().saturating_sub(FIRST_GROUP as usize))
            / CHILDREN as usize;
        let mut seen_groups = vec![false; groups];
        let mut inv = TreeInvariants::default();
        let root_cell = Aabb::new(
            tree.root_center - Vec3::splat(tree.root_edge * 0.5),
            tree.root_center + Vec3::splat(tree.root_edge * 0.5),
        );
        let mut stack: Vec<(u32, Vec3, f64, u32)> =
            vec![(0, tree.root_center, tree.root_edge * 0.5, 0)];
        while let Some((i, center, half, depth)) = stack.pop() {
            inv.max_depth = inv.max_depth.max(depth);
            match tree.slot(i) {
                Slot::Locked => return Err(format!("node {i} still Locked after build")),
                Slot::Empty => inv.empty_leaves += 1,
                Slot::Body(head) => {
                    inv.body_leaves += 1;
                    let mut chain_len = 0;
                    for b in tree.chain(head) {
                        chain_len += 1;
                        let bi = b as usize;
                        if bi >= n {
                            return Err(format!("leaf {i} references body {b} out of range"));
                        }
                        if seen[bi] {
                            return Err(format!("body {b} reachable twice"));
                        }
                        seen[bi] = true;
                        // Chained bodies may legitimately sit outside the
                        // exact cell when MAX_DEPTH chaining kicked in, but
                        // the chain head must be in-cell and all bodies in
                        // the root cube.
                        if b == head {
                            let cell = cell_box(center, half);
                            if !cell.contains(positions[bi]) {
                                return Err(format!(
                                    "body {b} at {:?} outside its leaf cell {cell:?}",
                                    positions[bi]
                                ));
                            }
                        }
                        if !root_cell.contains(positions[bi]) {
                            return Err(format!("body {b} outside the root cube"));
                        }
                    }
                    inv.max_chain_len = inv.max_chain_len.max(chain_len);
                }
                Slot::Node(c) => {
                    inv.internal_nodes += 1;
                    if ordered && c <= i {
                        return Err(format!("child offset {c} not greater than parent {i}"));
                    }
                    if c < FIRST_GROUP {
                        return Err(format!("child offset {c} below the first group"));
                    }
                    let g = tags::group_of(c) as usize;
                    if seen_groups[g] {
                        return Err(format!("child group {c} reachable twice (cycle)"));
                    }
                    seen_groups[g] = true;
                    if !(c - FIRST_GROUP).is_multiple_of(CHILDREN) {
                        return Err(format!("child offset {c} not group-aligned"));
                    }
                    if c + CHILDREN > tree.allocated_nodes() {
                        return Err(format!("child group {c} beyond allocation"));
                    }
                    let back = tree.parent_of(c);
                    if back != i {
                        return Err(format!("group at {c} has parent pointer {back}, expected {i}"));
                    }
                    for oct in 0..CHILDREN as usize {
                        stack.push((
                            c + oct as u32,
                            octant_center(center, half, oct),
                            half * 0.5,
                            depth + 1,
                        ));
                    }
                }
            }
        }
        inv.reachable_bodies = seen.iter().filter(|&&s| s).count();
        if inv.reachable_bodies != n {
            return Err(format!("only {}/{n} bodies reachable", inv.reachable_bodies));
        }
        Ok(inv)
    }
}

/// The cell box for (`center`, `half`).
fn cell_box(center: Vec3, half: f64) -> Aabb {
    // Inflate slightly: descent math accumulates rounding when halving, and
    // at depths where `half` shrinks below one ulp of the centre the cell
    // geometry degenerates — the absolute term covers that regime.
    let h = half * (1.0 + 1e-9) + center.abs().max_component() * 1e-12 + f64::MIN_POSITIVE;
    Aabb::new(center - Vec3::splat(h), center + Vec3::splat(h))
}

/// Collect every body id reachable from the root (order unspecified).
pub fn collect_bodies(tree: &Octree) -> Vec<u32> {
    let mut out = Vec::with_capacity(tree.n_bodies());
    let mut stack = Vec::new();
    collect_bodies_into(tree, &mut out, &mut stack);
    out
}

/// [`collect_bodies`] writing into caller-owned buffers, reusing their
/// capacity: zero heap allocations once `out` and `stack` have warmed up.
pub fn collect_bodies_into(tree: &Octree, out: &mut Vec<u32>, stack: &mut Vec<u32>) {
    out.clear();
    out.reserve(tree.n_bodies());
    stack.clear();
    stack.push(0u32);
    while let Some(i) = stack.pop() {
        match tree.slot(i) {
            Slot::Empty | Slot::Locked => {}
            Slot::Body(head) => out.extend(tree.chain(head)),
            Slot::Node(c) => stack.extend(c..c + CHILDREN),
        }
    }
}

/// Depth of the deepest leaf (0 = root only).
pub fn tree_depth(tree: &Octree) -> u32 {
    let mut max = 0;
    let mut stack = vec![(0u32, 0u32)];
    while let Some((i, d)) = stack.pop() {
        max = max.max(d);
        if let Slot::Node(c) = tree.slot(i) {
            for k in c..c + CHILDREN {
                stack.push((k, d + 1));
            }
        }
    }
    let _ = tags::EMPTY; // keep module linked in release builds
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_math::SplitMix64;
    use stdpar::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut r = SplitMix64::new(seed);
        (0..n)
            .map(|_| Vec3::new(r.uniform(-3.0, 3.0), r.uniform(-3.0, 3.0), r.uniform(-3.0, 3.0)))
            .collect()
    }

    #[test]
    fn invariants_hold_for_random_builds() {
        for seed in 40..45 {
            let pos = random_points(1500, seed);
            let mut t = Octree::new();
            t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
            let inv = TreeInvariants::check(&t, &pos).unwrap();
            assert_eq!(inv.reachable_bodies, 1500);
            assert!(inv.internal_nodes > 0);
            assert!(inv.max_depth > 0);
        }
    }

    #[test]
    fn invariants_hold_under_repeated_parallel_builds() {
        // Race-condition fishing: rebuild the same input many times.
        let pos = random_points(800, 50);
        let mut t = Octree::new();
        for _ in 0..20 {
            t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
            TreeInvariants::check(&t, &pos).unwrap();
        }
    }

    #[test]
    fn collect_bodies_matches_input_ids() {
        let pos = random_points(333, 51);
        let mut t = Octree::new();
        t.build(Par, &pos, Aabb::from_points(&pos)).unwrap();
        let mut ids = collect_bodies(&t);
        ids.sort_unstable();
        assert_eq!(ids, (0..333).collect::<Vec<u32>>());
    }

    #[test]
    fn depth_grows_with_clustering() {
        let spread = random_points(256, 52);
        let mut tight = spread.clone();
        for p in &mut tight {
            *p *= 1e-4; // same points, much tighter cluster
        }
        tight.push(Vec3::new(4.0, 4.0, 4.0)); // keep the root cube large
        let mut t1 = Octree::new();
        t1.build(Par, &spread, Aabb::from_points(&spread)).unwrap();
        let mut t2 = Octree::new();
        t2.build(Par, &tight, Aabb::from_points(&tight)).unwrap();
        assert!(tree_depth(&t2) > tree_depth(&t1));
    }
}
